file(REMOVE_RECURSE
  "CMakeFiles/sps_isa.dir/isa/fu_mix.cpp.o"
  "CMakeFiles/sps_isa.dir/isa/fu_mix.cpp.o.d"
  "CMakeFiles/sps_isa.dir/isa/latency.cpp.o"
  "CMakeFiles/sps_isa.dir/isa/latency.cpp.o.d"
  "CMakeFiles/sps_isa.dir/isa/opcode.cpp.o"
  "CMakeFiles/sps_isa.dir/isa/opcode.cpp.o.d"
  "libsps_isa.a"
  "libsps_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
