# Empty compiler generated dependencies file for sps_isa.
# This may be replaced when dependencies are built.
