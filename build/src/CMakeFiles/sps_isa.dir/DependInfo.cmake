
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/fu_mix.cpp" "src/CMakeFiles/sps_isa.dir/isa/fu_mix.cpp.o" "gcc" "src/CMakeFiles/sps_isa.dir/isa/fu_mix.cpp.o.d"
  "/root/repo/src/isa/latency.cpp" "src/CMakeFiles/sps_isa.dir/isa/latency.cpp.o" "gcc" "src/CMakeFiles/sps_isa.dir/isa/latency.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/sps_isa.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/sps_isa.dir/isa/opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
