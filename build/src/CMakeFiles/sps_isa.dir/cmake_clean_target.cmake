file(REMOVE_RECURSE
  "libsps_isa.a"
)
