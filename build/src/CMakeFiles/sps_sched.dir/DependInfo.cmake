
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/depgraph.cpp" "src/CMakeFiles/sps_sched.dir/sched/depgraph.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/depgraph.cpp.o.d"
  "/root/repo/src/sched/kernel_perf.cpp" "src/CMakeFiles/sps_sched.dir/sched/kernel_perf.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/kernel_perf.cpp.o.d"
  "/root/repo/src/sched/list_sched.cpp" "src/CMakeFiles/sps_sched.dir/sched/list_sched.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/list_sched.cpp.o.d"
  "/root/repo/src/sched/machine.cpp" "src/CMakeFiles/sps_sched.dir/sched/machine.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/machine.cpp.o.d"
  "/root/repo/src/sched/mii.cpp" "src/CMakeFiles/sps_sched.dir/sched/mii.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/mii.cpp.o.d"
  "/root/repo/src/sched/modulo.cpp" "src/CMakeFiles/sps_sched.dir/sched/modulo.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/modulo.cpp.o.d"
  "/root/repo/src/sched/schedule_dump.cpp" "src/CMakeFiles/sps_sched.dir/sched/schedule_dump.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/schedule_dump.cpp.o.d"
  "/root/repo/src/sched/unroll.cpp" "src/CMakeFiles/sps_sched.dir/sched/unroll.cpp.o" "gcc" "src/CMakeFiles/sps_sched.dir/sched/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
