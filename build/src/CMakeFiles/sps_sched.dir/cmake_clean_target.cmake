file(REMOVE_RECURSE
  "libsps_sched.a"
)
