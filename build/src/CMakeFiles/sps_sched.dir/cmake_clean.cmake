file(REMOVE_RECURSE
  "CMakeFiles/sps_sched.dir/sched/depgraph.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/depgraph.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/kernel_perf.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/kernel_perf.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/list_sched.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/list_sched.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/machine.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/machine.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/mii.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/mii.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/modulo.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/modulo.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/schedule_dump.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/schedule_dump.cpp.o.d"
  "CMakeFiles/sps_sched.dir/sched/unroll.cpp.o"
  "CMakeFiles/sps_sched.dir/sched/unroll.cpp.o.d"
  "libsps_sched.a"
  "libsps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
