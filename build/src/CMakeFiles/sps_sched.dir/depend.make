# Empty dependencies file for sps_sched.
# This may be replaced when dependencies are built.
