
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/deps.cpp" "src/CMakeFiles/sps_stream.dir/stream/deps.cpp.o" "gcc" "src/CMakeFiles/sps_stream.dir/stream/deps.cpp.o.d"
  "/root/repo/src/stream/program.cpp" "src/CMakeFiles/sps_stream.dir/stream/program.cpp.o" "gcc" "src/CMakeFiles/sps_stream.dir/stream/program.cpp.o.d"
  "/root/repo/src/stream/stripmine.cpp" "src/CMakeFiles/sps_stream.dir/stream/stripmine.cpp.o" "gcc" "src/CMakeFiles/sps_stream.dir/stream/stripmine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
