# Empty dependencies file for sps_stream.
# This may be replaced when dependencies are built.
