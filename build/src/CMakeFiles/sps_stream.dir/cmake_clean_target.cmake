file(REMOVE_RECURSE
  "libsps_stream.a"
)
