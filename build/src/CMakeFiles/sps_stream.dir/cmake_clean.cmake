file(REMOVE_RECURSE
  "CMakeFiles/sps_stream.dir/stream/deps.cpp.o"
  "CMakeFiles/sps_stream.dir/stream/deps.cpp.o.d"
  "CMakeFiles/sps_stream.dir/stream/program.cpp.o"
  "CMakeFiles/sps_stream.dir/stream/program.cpp.o.d"
  "CMakeFiles/sps_stream.dir/stream/stripmine.cpp.o"
  "CMakeFiles/sps_stream.dir/stream/stripmine.cpp.o.d"
  "libsps_stream.a"
  "libsps_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
