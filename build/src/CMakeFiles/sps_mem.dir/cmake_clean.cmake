file(REMOVE_RECURSE
  "CMakeFiles/sps_mem.dir/mem/access_sched.cpp.o"
  "CMakeFiles/sps_mem.dir/mem/access_sched.cpp.o.d"
  "CMakeFiles/sps_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/sps_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/sps_mem.dir/mem/stream_mem.cpp.o"
  "CMakeFiles/sps_mem.dir/mem/stream_mem.cpp.o.d"
  "libsps_mem.a"
  "libsps_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
