# Empty compiler generated dependencies file for sps_mem.
# This may be replaced when dependencies are built.
