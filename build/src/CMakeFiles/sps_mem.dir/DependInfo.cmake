
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access_sched.cpp" "src/CMakeFiles/sps_mem.dir/mem/access_sched.cpp.o" "gcc" "src/CMakeFiles/sps_mem.dir/mem/access_sched.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/sps_mem.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/sps_mem.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/stream_mem.cpp" "src/CMakeFiles/sps_mem.dir/mem/stream_mem.cpp.o" "gcc" "src/CMakeFiles/sps_mem.dir/mem/stream_mem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
