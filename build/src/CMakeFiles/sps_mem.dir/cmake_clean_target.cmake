file(REMOVE_RECURSE
  "libsps_mem.a"
)
