
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/builder.cpp" "src/CMakeFiles/sps_kernel.dir/kernel/builder.cpp.o" "gcc" "src/CMakeFiles/sps_kernel.dir/kernel/builder.cpp.o.d"
  "/root/repo/src/kernel/census.cpp" "src/CMakeFiles/sps_kernel.dir/kernel/census.cpp.o" "gcc" "src/CMakeFiles/sps_kernel.dir/kernel/census.cpp.o.d"
  "/root/repo/src/kernel/ir.cpp" "src/CMakeFiles/sps_kernel.dir/kernel/ir.cpp.o" "gcc" "src/CMakeFiles/sps_kernel.dir/kernel/ir.cpp.o.d"
  "/root/repo/src/kernel/validate.cpp" "src/CMakeFiles/sps_kernel.dir/kernel/validate.cpp.o" "gcc" "src/CMakeFiles/sps_kernel.dir/kernel/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
