# Empty dependencies file for sps_kernel.
# This may be replaced when dependencies are built.
