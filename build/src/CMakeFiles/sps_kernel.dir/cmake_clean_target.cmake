file(REMOVE_RECURSE
  "libsps_kernel.a"
)
