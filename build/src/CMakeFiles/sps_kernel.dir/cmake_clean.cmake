file(REMOVE_RECURSE
  "CMakeFiles/sps_kernel.dir/kernel/builder.cpp.o"
  "CMakeFiles/sps_kernel.dir/kernel/builder.cpp.o.d"
  "CMakeFiles/sps_kernel.dir/kernel/census.cpp.o"
  "CMakeFiles/sps_kernel.dir/kernel/census.cpp.o.d"
  "CMakeFiles/sps_kernel.dir/kernel/ir.cpp.o"
  "CMakeFiles/sps_kernel.dir/kernel/ir.cpp.o.d"
  "CMakeFiles/sps_kernel.dir/kernel/validate.cpp.o"
  "CMakeFiles/sps_kernel.dir/kernel/validate.cpp.o.d"
  "libsps_kernel.a"
  "libsps_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
