# Empty compiler generated dependencies file for sps_sim.
# This may be replaced when dependencies are built.
