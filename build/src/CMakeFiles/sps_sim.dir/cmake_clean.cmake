file(REMOVE_RECURSE
  "CMakeFiles/sps_sim.dir/sim/microcontroller.cpp.o"
  "CMakeFiles/sps_sim.dir/sim/microcontroller.cpp.o.d"
  "CMakeFiles/sps_sim.dir/sim/processor.cpp.o"
  "CMakeFiles/sps_sim.dir/sim/processor.cpp.o.d"
  "CMakeFiles/sps_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/sps_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/sps_sim.dir/sim/stream_controller.cpp.o"
  "CMakeFiles/sps_sim.dir/sim/stream_controller.cpp.o.d"
  "CMakeFiles/sps_sim.dir/sim/timeline.cpp.o"
  "CMakeFiles/sps_sim.dir/sim/timeline.cpp.o.d"
  "libsps_sim.a"
  "libsps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
