file(REMOVE_RECURSE
  "libsps_sim.a"
)
