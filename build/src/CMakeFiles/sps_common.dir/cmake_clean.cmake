file(REMOVE_RECURSE
  "CMakeFiles/sps_common.dir/common/csv.cpp.o"
  "CMakeFiles/sps_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/sps_common.dir/common/log.cpp.o"
  "CMakeFiles/sps_common.dir/common/log.cpp.o.d"
  "CMakeFiles/sps_common.dir/common/stats.cpp.o"
  "CMakeFiles/sps_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/sps_common.dir/common/table.cpp.o"
  "CMakeFiles/sps_common.dir/common/table.cpp.o.d"
  "libsps_common.a"
  "libsps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
