file(REMOVE_RECURSE
  "libsps_interp.a"
)
