file(REMOVE_RECURSE
  "CMakeFiles/sps_interp.dir/interp/comm.cpp.o"
  "CMakeFiles/sps_interp.dir/interp/comm.cpp.o.d"
  "CMakeFiles/sps_interp.dir/interp/cond_stream.cpp.o"
  "CMakeFiles/sps_interp.dir/interp/cond_stream.cpp.o.d"
  "CMakeFiles/sps_interp.dir/interp/interpreter.cpp.o"
  "CMakeFiles/sps_interp.dir/interp/interpreter.cpp.o.d"
  "libsps_interp.a"
  "libsps_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
