
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/comm.cpp" "src/CMakeFiles/sps_interp.dir/interp/comm.cpp.o" "gcc" "src/CMakeFiles/sps_interp.dir/interp/comm.cpp.o.d"
  "/root/repo/src/interp/cond_stream.cpp" "src/CMakeFiles/sps_interp.dir/interp/cond_stream.cpp.o" "gcc" "src/CMakeFiles/sps_interp.dir/interp/cond_stream.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/CMakeFiles/sps_interp.dir/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/sps_interp.dir/interp/interpreter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
