# Empty compiler generated dependencies file for sps_interp.
# This may be replaced when dependencies are built.
