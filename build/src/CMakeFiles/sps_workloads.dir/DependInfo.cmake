
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps/conv_app.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/apps/conv_app.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/apps/conv_app.cpp.o.d"
  "/root/repo/src/workloads/apps/depth.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/apps/depth.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/apps/depth.cpp.o.d"
  "/root/repo/src/workloads/apps/fft_app.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/apps/fft_app.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/apps/fft_app.cpp.o.d"
  "/root/repo/src/workloads/apps/qrd.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/apps/qrd.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/apps/qrd.cpp.o.d"
  "/root/repo/src/workloads/apps/render.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/apps/render.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/apps/render.cpp.o.d"
  "/root/repo/src/workloads/kernels/blocksad.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/blocksad.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/blocksad.cpp.o.d"
  "/root/repo/src/workloads/kernels/convolve.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/convolve.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/convolve.cpp.o.d"
  "/root/repo/src/workloads/kernels/dct.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/dct.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/dct.cpp.o.d"
  "/root/repo/src/workloads/kernels/fft.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/fft.cpp.o.d"
  "/root/repo/src/workloads/kernels/irast.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/irast.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/irast.cpp.o.d"
  "/root/repo/src/workloads/kernels/noise.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/noise.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/noise.cpp.o.d"
  "/root/repo/src/workloads/kernels/update.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/update.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/kernels/update.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/sps_workloads.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/sps_workloads.dir/workloads/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
