# Empty compiler generated dependencies file for sps_workloads.
# This may be replaced when dependencies are built.
