file(REMOVE_RECURSE
  "libsps_workloads.a"
)
