file(REMOVE_RECURSE
  "CMakeFiles/sps_workloads.dir/workloads/apps/conv_app.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/apps/conv_app.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/apps/depth.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/apps/depth.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/apps/fft_app.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/apps/fft_app.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/apps/qrd.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/apps/qrd.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/apps/render.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/apps/render.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/blocksad.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/blocksad.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/convolve.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/convolve.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/dct.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/dct.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/fft.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/fft.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/irast.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/irast.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/noise.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/noise.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/update.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/kernels/update.cpp.o.d"
  "CMakeFiles/sps_workloads.dir/workloads/suite.cpp.o"
  "CMakeFiles/sps_workloads.dir/workloads/suite.cpp.o.d"
  "libsps_workloads.a"
  "libsps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
