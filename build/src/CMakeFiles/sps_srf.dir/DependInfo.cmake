
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srf/allocator.cpp" "src/CMakeFiles/sps_srf.dir/srf/allocator.cpp.o" "gcc" "src/CMakeFiles/sps_srf.dir/srf/allocator.cpp.o.d"
  "/root/repo/src/srf/srf.cpp" "src/CMakeFiles/sps_srf.dir/srf/srf.cpp.o" "gcc" "src/CMakeFiles/sps_srf.dir/srf/srf.cpp.o.d"
  "/root/repo/src/srf/streambuffer.cpp" "src/CMakeFiles/sps_srf.dir/srf/streambuffer.cpp.o" "gcc" "src/CMakeFiles/sps_srf.dir/srf/streambuffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
