file(REMOVE_RECURSE
  "libsps_srf.a"
)
