# Empty compiler generated dependencies file for sps_srf.
# This may be replaced when dependencies are built.
