file(REMOVE_RECURSE
  "CMakeFiles/sps_srf.dir/srf/allocator.cpp.o"
  "CMakeFiles/sps_srf.dir/srf/allocator.cpp.o.d"
  "CMakeFiles/sps_srf.dir/srf/srf.cpp.o"
  "CMakeFiles/sps_srf.dir/srf/srf.cpp.o.d"
  "CMakeFiles/sps_srf.dir/srf/streambuffer.cpp.o"
  "CMakeFiles/sps_srf.dir/srf/streambuffer.cpp.o.d"
  "libsps_srf.a"
  "libsps_srf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_srf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
