file(REMOVE_RECURSE
  "libsps_core.a"
)
