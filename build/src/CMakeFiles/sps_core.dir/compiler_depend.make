# Empty compiler generated dependencies file for sps_core.
# This may be replaced when dependencies are built.
