file(REMOVE_RECURSE
  "CMakeFiles/sps_core.dir/core/design.cpp.o"
  "CMakeFiles/sps_core.dir/core/design.cpp.o.d"
  "CMakeFiles/sps_core.dir/core/experiments.cpp.o"
  "CMakeFiles/sps_core.dir/core/experiments.cpp.o.d"
  "CMakeFiles/sps_core.dir/core/multiproc.cpp.o"
  "CMakeFiles/sps_core.dir/core/multiproc.cpp.o.d"
  "CMakeFiles/sps_core.dir/core/scaling_study.cpp.o"
  "CMakeFiles/sps_core.dir/core/scaling_study.cpp.o.d"
  "libsps_core.a"
  "libsps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
