src/CMakeFiles/sps_vlsi.dir/vlsi/tech.cpp.o: /root/repo/src/vlsi/tech.cpp \
 /usr/include/stdc-predef.h /root/repo/src/vlsi/tech.h
