src/CMakeFiles/sps_vlsi.dir/vlsi/params.cpp.o: \
 /root/repo/src/vlsi/params.cpp /usr/include/stdc-predef.h \
 /root/repo/src/vlsi/params.h
