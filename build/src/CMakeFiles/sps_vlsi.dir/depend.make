# Empty dependencies file for sps_vlsi.
# This may be replaced when dependencies are built.
