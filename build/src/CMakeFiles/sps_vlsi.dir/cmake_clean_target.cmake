file(REMOVE_RECURSE
  "libsps_vlsi.a"
)
