file(REMOVE_RECURSE
  "CMakeFiles/sps_vlsi.dir/vlsi/cost_model.cpp.o"
  "CMakeFiles/sps_vlsi.dir/vlsi/cost_model.cpp.o.d"
  "CMakeFiles/sps_vlsi.dir/vlsi/params.cpp.o"
  "CMakeFiles/sps_vlsi.dir/vlsi/params.cpp.o.d"
  "CMakeFiles/sps_vlsi.dir/vlsi/sweep.cpp.o"
  "CMakeFiles/sps_vlsi.dir/vlsi/sweep.cpp.o.d"
  "CMakeFiles/sps_vlsi.dir/vlsi/tech.cpp.o"
  "CMakeFiles/sps_vlsi.dir/vlsi/tech.cpp.o.d"
  "libsps_vlsi.a"
  "libsps_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sps_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
