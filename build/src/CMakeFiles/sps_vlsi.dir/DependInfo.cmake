
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vlsi/cost_model.cpp" "src/CMakeFiles/sps_vlsi.dir/vlsi/cost_model.cpp.o" "gcc" "src/CMakeFiles/sps_vlsi.dir/vlsi/cost_model.cpp.o.d"
  "/root/repo/src/vlsi/params.cpp" "src/CMakeFiles/sps_vlsi.dir/vlsi/params.cpp.o" "gcc" "src/CMakeFiles/sps_vlsi.dir/vlsi/params.cpp.o.d"
  "/root/repo/src/vlsi/sweep.cpp" "src/CMakeFiles/sps_vlsi.dir/vlsi/sweep.cpp.o" "gcc" "src/CMakeFiles/sps_vlsi.dir/vlsi/sweep.cpp.o.d"
  "/root/repo/src/vlsi/tech.cpp" "src/CMakeFiles/sps_vlsi.dir/vlsi/tech.cpp.o" "gcc" "src/CMakeFiles/sps_vlsi.dir/vlsi/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
