file(REMOVE_RECURSE
  "CMakeFiles/srf_test.dir/srf/allocator_test.cpp.o"
  "CMakeFiles/srf_test.dir/srf/allocator_test.cpp.o.d"
  "CMakeFiles/srf_test.dir/srf/srf_test.cpp.o"
  "CMakeFiles/srf_test.dir/srf/srf_test.cpp.o.d"
  "CMakeFiles/srf_test.dir/srf/streambuffer_test.cpp.o"
  "CMakeFiles/srf_test.dir/srf/streambuffer_test.cpp.o.d"
  "srf_test"
  "srf_test.pdb"
  "srf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
