# Empty compiler generated dependencies file for srf_test.
# This may be replaced when dependencies are built.
