# Empty dependencies file for vlsi_test.
# This may be replaced when dependencies are built.
