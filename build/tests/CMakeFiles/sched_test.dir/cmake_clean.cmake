file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/depgraph_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/depgraph_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/kernel_perf_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/kernel_perf_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/list_sched_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/list_sched_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/machine_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/machine_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/mii_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/mii_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/modulo_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/modulo_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/scaling_behavior_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/scaling_behavior_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/schedule_dump_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/schedule_dump_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/unroll_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/unroll_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
