file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_perf_area.dir/bench_table5_perf_area.cpp.o"
  "CMakeFiles/bench_table5_perf_area.dir/bench_table5_perf_area.cpp.o.d"
  "bench_table5_perf_area"
  "bench_table5_perf_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_perf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
