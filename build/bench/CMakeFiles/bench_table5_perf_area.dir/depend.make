# Empty dependencies file for bench_table5_perf_area.
# This may be replaced when dependencies are built.
