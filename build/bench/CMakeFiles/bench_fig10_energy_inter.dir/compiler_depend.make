# Empty compiler generated dependencies file for bench_fig10_energy_inter.
# This may be replaced when dependencies are built.
