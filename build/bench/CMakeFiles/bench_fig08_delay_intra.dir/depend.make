# Empty dependencies file for bench_fig08_delay_intra.
# This may be replaced when dependencies are built.
