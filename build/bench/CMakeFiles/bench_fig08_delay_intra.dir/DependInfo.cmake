
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig08_delay_intra.cpp" "bench/CMakeFiles/bench_fig08_delay_intra.dir/bench_fig08_delay_intra.cpp.o" "gcc" "bench/CMakeFiles/bench_fig08_delay_intra.dir/bench_fig08_delay_intra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_srf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
