# Empty compiler generated dependencies file for bench_fig06_area_intra.
# This may be replaced when dependencies are built.
