file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_area_intra.dir/bench_fig06_area_intra.cpp.o"
  "CMakeFiles/bench_fig06_area_intra.dir/bench_fig06_area_intra.cpp.o.d"
  "bench_fig06_area_intra"
  "bench_fig06_area_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_area_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
