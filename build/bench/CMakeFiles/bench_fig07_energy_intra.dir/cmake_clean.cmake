file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_energy_intra.dir/bench_fig07_energy_intra.cpp.o"
  "CMakeFiles/bench_fig07_energy_intra.dir/bench_fig07_energy_intra.cpp.o.d"
  "bench_fig07_energy_intra"
  "bench_fig07_energy_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_energy_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
