file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiproc.dir/bench_ablation_multiproc.cpp.o"
  "CMakeFiles/bench_ablation_multiproc.dir/bench_ablation_multiproc.cpp.o.d"
  "bench_ablation_multiproc"
  "bench_ablation_multiproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
