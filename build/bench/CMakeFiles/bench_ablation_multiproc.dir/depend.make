# Empty dependencies file for bench_ablation_multiproc.
# This may be replaced when dependencies are built.
