file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_kernel_inter.dir/bench_fig14_kernel_inter.cpp.o"
  "CMakeFiles/bench_fig14_kernel_inter.dir/bench_fig14_kernel_inter.cpp.o.d"
  "bench_fig14_kernel_inter"
  "bench_fig14_kernel_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kernel_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
