# Empty dependencies file for bench_fig14_kernel_inter.
# This may be replaced when dependencies are built.
