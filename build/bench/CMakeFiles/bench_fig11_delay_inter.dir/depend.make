# Empty dependencies file for bench_fig11_delay_inter.
# This may be replaced when dependencies are built.
