# Empty compiler generated dependencies file for bench_table2_kernel_chars.
# This may be replaced when dependencies are built.
