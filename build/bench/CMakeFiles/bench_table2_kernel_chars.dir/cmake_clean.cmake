file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_kernel_chars.dir/bench_table2_kernel_chars.cpp.o"
  "CMakeFiles/bench_table2_kernel_chars.dir/bench_table2_kernel_chars.cpp.o.d"
  "bench_table2_kernel_chars"
  "bench_table2_kernel_chars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_kernel_chars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
