# Empty compiler generated dependencies file for bench_fig13_kernel_intra.
# This may be replaced when dependencies are built.
