file(REMOVE_RECURSE
  "CMakeFiles/bench_export_all.dir/bench_export_all.cpp.o"
  "CMakeFiles/bench_export_all.dir/bench_export_all.cpp.o.d"
  "bench_export_all"
  "bench_export_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
