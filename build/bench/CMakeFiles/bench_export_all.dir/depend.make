# Empty dependencies file for bench_export_all.
# This may be replaced when dependencies are built.
