# Empty dependencies file for bench_fig15_apps.
# This may be replaced when dependencies are built.
