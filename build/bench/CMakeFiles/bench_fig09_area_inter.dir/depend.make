# Empty dependencies file for bench_fig09_area_inter.
# This may be replaced when dependencies are built.
