file(REMOVE_RECURSE
  "CMakeFiles/fft_study.dir/fft_study.cpp.o"
  "CMakeFiles/fft_study.dir/fft_study.cpp.o.d"
  "fft_study"
  "fft_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
