file(REMOVE_RECURSE
  "CMakeFiles/depth_pipeline.dir/depth_pipeline.cpp.o"
  "CMakeFiles/depth_pipeline.dir/depth_pipeline.cpp.o.d"
  "depth_pipeline"
  "depth_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depth_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
