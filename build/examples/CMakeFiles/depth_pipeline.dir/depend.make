# Empty dependencies file for depth_pipeline.
# This may be replaced when dependencies are built.
