/**
 * @file
 * Shared input builders for the interpreter-throughput benchmarks
 * (bench_micro and bench_headline): deterministic Table-4 kernel
 * inputs at an arbitrary record count, plus the words-per-run
 * accounting used to report words/sec.
 */
#ifndef SPS_BENCH_INTERP_BENCH_UTIL_H
#define SPS_BENCH_INTERP_BENCH_UTIL_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.h"
#include "interp/interpreter.h"
#include "workloads/kernels/kernels.h"

namespace sps::bench {

/** Deterministic inputs for one Table-4 kernel. */
inline std::vector<interp::StreamData>
makeTable4Inputs(const std::string &name, int64_t records)
{
    using interp::StreamData;
    Prng rng{0xBE7C4ull};
    auto ints = [&](int per_record, int32_t lo, int32_t hi) {
        std::vector<int32_t> v;
        v.reserve(static_cast<size_t>(records) * per_record);
        for (int64_t i = 0; i < records * per_record; ++i)
            v.push_back(lo + static_cast<int32_t>(rng.below(
                                 static_cast<uint32_t>(hi - lo))));
        return StreamData::fromInts(v, per_record);
    };
    auto floats = [&](int per_record, float lo, float hi) {
        std::vector<float> v;
        v.reserve(static_cast<size_t>(records) * per_record);
        for (int64_t i = 0; i < records * per_record; ++i)
            v.push_back(rng.uniform(lo, hi));
        return StreamData::fromFloats(v, per_record);
    };

    if (name == "blocksad")
        return {ints(workloads::kPixelsPerRecord, 0, 255),
                ints(workloads::kPixelsPerRecord, 0, 255)};
    if (name == "convolve")
        return {ints(workloads::kPixelsPerRecord, -512, 512)};
    if (name == "update")
        return {floats(2, -2.0f, 2.0f),
                floats(workloads::kUpdateRank, -1.0f, 1.0f)};
    if (name == "fft") {
        StreamData x = floats(8, -1.0f, 1.0f);
        std::vector<float> tw;
        tw.reserve(static_cast<size_t>(records) * 6);
        for (int64_t i = 0; i < records; ++i) {
            for (int q = 0; q < 3; ++q) {
                float ang = rng.uniform(0.0f, 6.283f);
                tw.push_back(std::cos(ang));
                tw.push_back(std::sin(ang));
            }
        }
        return {x, StreamData::fromFloats(tw, 6)};
    }
    if (name == "noise")
        return {floats(2, -20.0f, 20.0f)};
    if (name == "irast")
        return {ints(5, 0, 256)};
    return {};
}

/** Stream words moved by one run: all input plus all output words. */
inline int64_t
wordsPerRun(const std::vector<interp::StreamData> &inputs,
            const interp::ExecResult &result)
{
    int64_t words = 0;
    for (const auto &s : inputs)
        words += static_cast<int64_t>(s.words.size());
    for (const auto &s : result.outputs)
        words += static_cast<int64_t>(s.words.size());
    return words;
}

} // namespace sps::bench

#endif // SPS_BENCH_INTERP_BENCH_UTIL_H
