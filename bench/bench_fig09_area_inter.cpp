/**
 * @file
 * Figure 9: area per ALU under intercluster scaling (N = 5),
 * normalized to C = 8, with the component breakdown.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    SweepSeries s =
        interclusterSweep(model, 5, defaultInterRange(), 8);
    double ref = s.points[s.refIndex].areaPerAlu;

    TextTable t;
    t.header({"C", "area/ALU (norm)", "SRF", "clusters", "uc",
              "inter-switch"});
    for (const auto &pt : s.points) {
        double alus = pt.size.totalAlus();
        t.row({std::to_string(pt.size.clusters),
               TextTable::num(pt.areaPerAlu / ref, 3),
               TextTable::num(pt.area.srf / alus / ref, 3),
               TextTable::num(pt.area.clusters / alus / ref, 3),
               TextTable::num(pt.area.microcontroller / alus / ref, 3),
               TextTable::num(
                   pt.area.interclusterSwitch / alus / ref, 3)});
    }
    std::printf("Figure 9: area per ALU, intercluster scaling "
                "(N=5, normalized to C=8)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
