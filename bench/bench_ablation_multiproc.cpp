/**
 * @file
 * Ablation (Section 6 future work): intercluster scaling vs multiple
 * independent stream processors per chip. For a fixed 640-ALU budget,
 * splitting into M processors replicates microcode storage (worse
 * area per ALU) and shrinks the intercluster switch (better COMM
 * latency); task-pipelining balanced kernel stages across processors
 * at best breaks even on throughput.
 */
#include <cstdio>

#include "common/table.h"
#include "core/multiproc.h"

int
main()
{
    using namespace sps;
    using sps::TextTable;
    vlsi::CostModel model;
    vlsi::MachineSize total{128, 5}; // the 640-ALU machine
    const int kernel_stages = 8;

    auto points = core::multiprocStudy(total, kernel_stages, model);
    TextTable t;
    t.header({"procs", "C each", "area/ALU (norm)", "energy/op (norm)",
              "COMM lat", "pipeline tput"});
    double ref_a = points[0].areaPerAlu;
    double ref_e = points[0].energyPerAluOp;
    for (const auto &pt : points) {
        t.row({std::to_string(pt.processors),
               std::to_string(pt.each.clusters),
               TextTable::num(pt.areaPerAlu / ref_a, 3),
               TextTable::num(pt.energyPerAluOp / ref_e, 3),
               std::to_string(pt.commLatency),
               TextTable::num(pt.pipelineThroughput, 2)});
    }
    std::printf("Multiprocessor alternative: 640 ALUs as M "
                "processors, %d balanced kernel stages\n\n%s\n",
                kernel_stages, t.toString().c_str());
    std::printf(
        "One large intercluster-scaled processor keeps the microcode\n"
        "storage amortized and full SIMD width per kernel; the\n"
        "multiprocessor only helps when stream lengths are shorter\n"
        "than the SIMD width (compare QRD in Figure 15).\n");
    return 0;
}
