/**
 * @file
 * Sensitivity ablations for the design choices DESIGN.md calls out:
 *  (1) the reconstruction calibration weights (do the paper's anchors
 *      depend delicately on them?),
 *  (2) external memory bandwidth (where do the Figure 15 apps go
 *      memory-bound?),
 *  (3) per-call overheads (what do short streams really cost?), and
 *  (4) SRF capacity (rm) -- where the QRD residency crossover lands.
 */
#include <cstdio>

#include "common/table.h"
#include "core/design.h"
#include "sim/processor.h"
#include "workloads/suite.h"

namespace {

void
weightSensitivity()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    TextTable t;
    t.header({"weights scaled by", "C=128 area/ALU", "C=128 energy/op",
              "N=16 energy/op"});
    for (double s : {0.5, 0.75, 1.0, 1.25, 1.5}) {
        Params p;
        p.kCommArea *= s;
        p.kCommEnergy *= s;
        p.kIntraEnergy *= s;
        p.kDistEnergy *= s;
        CostModel m(p);
        t.row({TextTable::num(s, 2),
               TextTable::num(m.areaPerAlu({128, 5}) /
                                  m.areaPerAlu({8, 5}),
                              3),
               TextTable::num(m.energyPerAluOp({128, 5}) /
                                  m.energyPerAluOp({8, 5}),
                              3),
               TextTable::num(m.energyPerAluOp({8, 16}) /
                                  m.energyPerAluOp({8, 5}),
                              3)});
    }
    std::printf("(1) calibration-weight sensitivity "
                "(paper anchors: 1.02, 1.07, 1.23)\n\n%s\n",
                t.toString().c_str());
}

void
memoryBandwidthSweep()
{
    using namespace sps;
    using sps::TextTable;
    TextTable t;
    t.header({"mem GB/s", "DEPTH speedup", "mem busy", "CONV speedup",
              "mem busy", "RENDER speedup", "mem busy"});
    for (double gbs : {4.0, 16.0, 64.0}) {
        std::vector<std::string> row{TextTable::num(gbs, 0)};
        for (const char *name : {"DEPTH", "CONV", "RENDER"}) {
            for (const auto &app : workloads::appSuite()) {
                if (app.name != name)
                    continue;
                auto run = [&](vlsi::MachineSize size) {
                    sim::SimConfig cfg;
                    cfg.size = size;
                    cfg.memConfig.peakWordsPerCycle = gbs / 4.0;
                    sim::StreamProcessor proc(cfg);
                    return proc.run(app.build(size, proc.srf()));
                };
                sim::SimResult small = run({8, 5});
                sim::SimResult big = run({128, 10});
                double speedup =
                    static_cast<double>(small.cycles) /
                    static_cast<double>(big.cycles);
                row.push_back(TextTable::num(speedup, 1) + "x");
                // Memory-pin occupancy of the big machine: near 1.0
                // means the app has gone memory-bound at this
                // bandwidth point.
                row.push_back(
                    TextTable::num(big.memBusyFraction(), 2));
            }
        }
        t.row(row);
    }
    std::printf("(2) C=128 N=10 app speedup and memory occupancy vs "
                "bandwidth (paper point: 16 GB/s)\n\n%s\n",
                t.toString().c_str());
}

void
overheadSweep()
{
    using namespace sps;
    using sps::TextTable;
    TextTable t;
    t.header({"host cycles/op", "pipe fill", "FFT1K speedup",
              "FFT4K speedup"});
    for (int host : {2, 8, 32}) {
        for (int fill : {8, 32}) {
            std::vector<std::string> row{std::to_string(host),
                                         std::to_string(fill)};
            for (int points : {1024, 4096}) {
                auto run = [&](vlsi::MachineSize size) {
                    sim::SimConfig cfg;
                    cfg.size = size;
                    cfg.hostIssueCycles = host;
                    cfg.ucConfig.pipeFillCycles = fill;
                    sim::StreamProcessor proc(cfg);
                    return proc
                        .run(workloads::buildFftApp(size, proc.srf(),
                                                    points))
                        .cycles;
                };
                double speedup =
                    static_cast<double>(run({8, 5})) /
                    static_cast<double>(run({128, 10}));
                row.push_back(TextTable::num(speedup, 1) + "x");
            }
            t.row(row);
        }
    }
    std::printf("(3) short-stream sensitivity to per-call overheads "
                "(C=128 N=10 vs C=8 N=5)\n\n%s\n",
                t.toString().c_str());
}

void
srfCapacitySweep()
{
    using namespace sps;
    using sps::TextTable;
    TextTable t;
    t.header({"rm (SRF words/ALU/latency-cycle)", "SRF KB @ C=32 N=5",
              "QRD mem words", "QRD cycles"});
    for (double rm : {5.0, 10.0, 20.0, 40.0}) {
        sim::SimConfig cfg;
        cfg.size = {32, 5};
        cfg.params.rM = rm;
        sim::StreamProcessor proc(cfg);
        auto prog = workloads::buildQrd(cfg.size, proc.srf());
        auto r = proc.run(prog);
        t.row({TextTable::num(rm, 0),
               std::to_string(proc.srf().capacityWords * 4 / 1024),
               std::to_string(r.memWords),
               std::to_string(r.cycles)});
    }
    std::printf("(4) SRF capacity (rm) and the QRD residency "
                "crossover at C=32 N=5 (paper rm = 20)\n\n%s\n",
                t.toString().c_str());
}

} // namespace

int
main()
{
    weightSensitivity();
    memoryBandwidthSweep();
    overheadSweep();
    srfCapacitySweep();
    return 0;
}
