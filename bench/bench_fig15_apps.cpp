/**
 * @file
 * Figure 15: application performance across the (C, N) grid on the
 * cycle-accurate stream-level simulator -- speedup over the C=8 N=5
 * machine per configuration, with sustained GOPS annotated at the
 * corner points, plus the harmonic-mean row.
 *
 * Observability options:
 *   --trace FILE       record one application run (default RENDER at
 *                      the C=8 N=5 baseline) as a Chrome trace_event
 *                      JSON, loadable in Perfetto / chrome://tracing
 *   --trace-app NAME   which application --trace records
 *   --counters FILE    per-run hardware-counter CSV for every (app,
 *                      C, N) grid point
 *   --energy FILE      per-run energy breakdown + bottleneck waterfall
 *                      CSV for every (app, C, N) grid point
 *   --cache-dir DIR    attach the disk-backed result store rooted at
 *                      DIR: warm entries skip schedule compilation and
 *                      re-simulation, cold entries persist for the
 *                      next run
 */
#include <cstdio>
#include <cstring>
#include <map>

#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/design.h"
#include "core/eval_engine.h"
#include "core/experiments.h"
#include "svc/eval_service.h"
#include "trace/chrome_trace.h"
#include "trace/counters_csv.h"
#include "trace/tracer.h"
#include "workloads/suite.h"

namespace {

/** Run one app at the baseline with the tracer attached and export. */
int
exportTrace(const std::string &app_name, const std::string &path)
{
    for (const auto &app : sps::workloads::appSuite()) {
        if (app.name != app_name)
            continue;
        sps::core::StreamProcessorDesign d(sps::core::kBaseline);
        sps::sim::StreamProcessor proc = d.makeProcessor();
        sps::stream::StreamProgram prog =
            app.build(sps::core::kBaseline, proc.srf());
        sps::trace::Tracer tracer;
        sps::sim::RunOptions opts;
        opts.tracer = &tracer;
        sps::sim::SimResult res = proc.run(prog, opts);
        if (!sps::trace::writeChromeTrace(tracer, path)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %zu trace events for %s (%lld cycles) to "
                    "%s -- open in https://ui.perfetto.dev\n",
                    tracer.size(), app_name.c_str(),
                    static_cast<long long>(res.cycles), path.c_str());
        return 0;
    }
    std::fprintf(stderr, "unknown application %s\n", app_name.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using sps::TextTable;
    std::string trace_path, trace_app = "RENDER", counters_path,
        energy_path, cache_dir;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs an argument\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--trace") == 0)
            trace_path = need("--trace");
        else if (std::strcmp(argv[i], "--trace-app") == 0)
            trace_app = need("--trace-app");
        else if (std::strcmp(argv[i], "--counters") == 0)
            counters_path = need("--counters");
        else if (std::strcmp(argv[i], "--energy") == 0)
            energy_path = need("--energy");
        else if (std::strcmp(argv[i], "--cache-dir") == 0)
            cache_dir = need("--cache-dir");
        else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 1;
        }
    }

    sps::core::EvalEngine *engine = &sps::core::EvalEngine::global();
    // Leaked on purpose: the global schedule cache keeps the pointer
    // past the end of main.
    sps::store::ResultStore *store = nullptr;
    if (!cache_dir.empty()) {
        store = new sps::store::ResultStore(cache_dir);
        engine->cache().attachStore(store);
    }
    sps::svc::EvalService service(engine, store);

    std::vector<int> cs{8, 16, 32, 64, 128};
    std::vector<int> ns{2, 5, 10, 14};
    auto points = service.appPerformance(cs, ns);

    if (!counters_path.empty()) {
        sps::CsvWriter w;
        sps::trace::beginCountersCsv(w, {"app", "C", "N"});
        for (const auto &pt : points)
            sps::trace::appendCountersRow(
                w,
                {pt.app, std::to_string(pt.size.clusters),
                 std::to_string(pt.size.alusPerCluster)},
                pt.result);
        if (!w.writeFile(counters_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         counters_path.c_str());
            return 1;
        }
        std::printf("wrote per-run hardware counters to %s\n",
                    counters_path.c_str());
    }

    if (!energy_path.empty()) {
        sps::CsvWriter w;
        sps::trace::beginEnergyCsv(w, {"app", "C", "N"});
        for (const auto &pt : points)
            sps::trace::appendEnergyRow(
                w,
                {pt.app, std::to_string(pt.size.clusters),
                 std::to_string(pt.size.alusPerCluster)},
                pt.result);
        if (!w.writeFile(energy_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         energy_path.c_str());
            return 1;
        }
        std::printf("wrote per-run energy breakdowns to %s\n",
                    energy_path.c_str());
    }

    std::map<std::string, std::map<std::pair<int, int>,
                                   sps::core::AppPoint>> by_app;
    for (const auto &pt : points)
        by_app[pt.app][{pt.size.alusPerCluster, pt.size.clusters}] =
            pt;

    const char *apps[] = {"RENDER", "DEPTH", "CONV",
                          "QRD",    "FFT1K", "FFT4K"};
    for (int n : ns) {
        TextTable t;
        std::vector<std::string> head{"App (N=" + std::to_string(n) +
                                      ")"};
        for (int c : cs)
            head.push_back("C=" + std::to_string(c));
        t.header(head);
        std::vector<std::vector<double>> cols(cs.size());
        for (const char *app : apps) {
            std::vector<std::string> row{app};
            for (size_t i = 0; i < cs.size(); ++i) {
                const auto &pt = by_app[app][{n, cs[i]}];
                row.push_back(TextTable::num(pt.speedup, 2));
                cols[i].push_back(pt.speedup);
            }
            t.row(row);
        }
        std::vector<std::string> hm{"HARMONIC MEAN"};
        for (auto &col : cols)
            hm.push_back(TextTable::num(sps::harmonicMean(col), 2));
        t.row(hm);
        std::printf("%s\n", t.toString().c_str());
    }

    // GOPS annotations at the paper's corner points.
    TextTable g;
    g.header({"App", "GOPS @ C=8 N=5", "GOPS @ C=128 N=10"});
    for (const char *app : apps) {
        g.row({app,
               TextTable::num(by_app[app][{5, 8}].gops, 1),
               TextTable::num(by_app[app][{10, 128}].gops, 1)});
    }
    std::printf("Figure 15: application speedups over C=8 N=5 "
                "(tables above) and sustained GOPS:\n\n%s\n",
                g.toString().c_str());

    if (store) {
        auto rows = sps::svc::cacheStatsRows(
            engine->cache().counters(), store, &service);
        std::printf("cache tiers (--cache-dir %s):\n",
                    cache_dir.c_str());
        for (const auto &r : rows)
            std::printf("  %-16s %-16s %s\n", r[0].c_str(),
                        r[1].c_str(), r[2].c_str());
        std::printf("\n");
    }

    if (!trace_path.empty())
        return exportTrace(trace_app, trace_path);
    return 0;
}
