/**
 * @file
 * Figure 15: application performance across the (C, N) grid on the
 * cycle-accurate stream-level simulator -- speedup over the C=8 N=5
 * machine per configuration, with sustained GOPS annotated at the
 * corner points, plus the harmonic-mean row.
 */
#include <cstdio>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "core/eval_engine.h"
#include "core/experiments.h"

int
main()
{
    using sps::TextTable;
    std::vector<int> cs{8, 16, 32, 64, 128};
    std::vector<int> ns{2, 5, 10, 14};
    auto points = sps::core::appPerformance(
        cs, ns, &sps::core::EvalEngine::global());

    std::map<std::string, std::map<std::pair<int, int>,
                                   sps::core::AppPoint>> by_app;
    for (const auto &pt : points)
        by_app[pt.app][{pt.size.alusPerCluster, pt.size.clusters}] =
            pt;

    const char *apps[] = {"RENDER", "DEPTH", "CONV",
                          "QRD",    "FFT1K", "FFT4K"};
    for (int n : ns) {
        TextTable t;
        std::vector<std::string> head{"App (N=" + std::to_string(n) +
                                      ")"};
        for (int c : cs)
            head.push_back("C=" + std::to_string(c));
        t.header(head);
        std::vector<std::vector<double>> cols(cs.size());
        for (const char *app : apps) {
            std::vector<std::string> row{app};
            for (size_t i = 0; i < cs.size(); ++i) {
                const auto &pt = by_app[app][{n, cs[i]}];
                row.push_back(TextTable::num(pt.speedup, 2));
                cols[i].push_back(pt.speedup);
            }
            t.row(row);
        }
        std::vector<std::string> hm{"HARMONIC MEAN"};
        for (auto &col : cols)
            hm.push_back(TextTable::num(sps::harmonicMean(col), 2));
        t.row(hm);
        std::printf("%s\n", t.toString().c_str());
    }

    // GOPS annotations at the paper's corner points.
    TextTable g;
    g.header({"App", "GOPS @ C=8 N=5", "GOPS @ C=128 N=10"});
    for (const char *app : apps) {
        g.row({app,
               TextTable::num(by_app[app][{5, 8}].gops, 1),
               TextTable::num(by_app[app][{10, 128}].gops, 1)});
    }
    std::printf("Figure 15: application speedups over C=8 N=5 "
                "(tables above) and sustained GOPS:\n\n%s\n",
                g.toString().c_str());
    return 0;
}
