/**
 * @file
 * Figure 6: area per ALU under intracluster scaling (C = 8),
 * normalized to N = 5, with the per-component breakdown the paper
 * stacks (SRF / clusters / microcontroller / intercluster switch).
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    SweepSeries s =
        intraclusterSweep(model, 8, defaultIntraRange(), 5);
    double ref = s.points[s.refIndex].areaPerAlu;

    TextTable t;
    t.header({"N", "area/ALU (norm)", "SRF", "clusters", "uc",
              "inter-switch"});
    for (const auto &pt : s.points) {
        double alus = pt.size.totalAlus();
        t.row({std::to_string(pt.size.alusPerCluster),
               TextTable::num(pt.areaPerAlu / ref, 3),
               TextTable::num(pt.area.srf / alus / ref, 3),
               TextTable::num(pt.area.clusters / alus / ref, 3),
               TextTable::num(pt.area.microcontroller / alus / ref, 3),
               TextTable::num(
                   pt.area.interclusterSwitch / alus / ref, 3)});
    }
    std::printf("Figure 6: area per ALU, intracluster scaling "
                "(C=8, normalized to N=5)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
