/**
 * @file
 * google-benchmark microbenchmarks of the reproduction stack itself:
 * cost-model evaluation, kernel compilation (modulo scheduling),
 * functional interpretation, and stream-level simulation throughput.
 */
#include <benchmark/benchmark.h>

#include "core/design.h"
#include "interp/interpreter.h"
#include "vlsi/cost_model.h"
#include "workloads/suite.h"

namespace {

void
BM_CostModelFullEvaluation(benchmark::State &state)
{
    sps::vlsi::CostModel model;
    sps::vlsi::MachineSize size{static_cast<int>(state.range(0)), 5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.area(size).total());
        benchmark::DoNotOptimize(model.energy(size).total());
        benchmark::DoNotOptimize(model.interDelayFo4(size));
    }
}
BENCHMARK(BM_CostModelFullEvaluation)->Arg(8)->Arg(128);

void
BM_CompileKernel(benchmark::State &state)
{
    sps::sched::MachineModel m = sps::sched::MachineModel::forSize(
        {8, static_cast<int>(state.range(0))});
    const auto &k = sps::workloads::fftKernel();
    for (auto _ : state)
        benchmark::DoNotOptimize(sps::sched::compileKernel(k, m));
}
BENCHMARK(BM_CompileKernel)->Arg(2)->Arg(5)->Arg(14);

void
BM_InterpretConvolve(benchmark::State &state)
{
    std::vector<int32_t> px(8 * 1024, 7);
    auto in = sps::interp::StreamData::fromInts(px, 8);
    for (auto _ : state) {
        auto r = sps::interp::runKernel(
            sps::workloads::convolveKernel(),
            static_cast<int>(state.range(0)), {in});
        benchmark::DoNotOptimize(r.outputs[0].words.size());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_InterpretConvolve)->Arg(8)->Arg(64);

void
BM_SimulateConvApp(benchmark::State &state)
{
    sps::core::StreamProcessorDesign d(
        {static_cast<int>(state.range(0)), 5});
    for (auto _ : state) {
        auto proc = d.makeProcessor();
        auto prog =
            sps::workloads::buildConvApp(d.size(), proc.srf());
        benchmark::DoNotOptimize(proc.run(prog).cycles);
    }
}
BENCHMARK(BM_SimulateConvApp)->Arg(8)->Arg(128);

void
BM_SimulateQrd(benchmark::State &state)
{
    sps::core::StreamProcessorDesign d(
        {static_cast<int>(state.range(0)), 5});
    for (auto _ : state) {
        auto proc = d.makeProcessor();
        auto prog = sps::workloads::buildQrd(d.size(), proc.srf());
        benchmark::DoNotOptimize(proc.run(prog).cycles);
    }
}
BENCHMARK(BM_SimulateQrd)->Arg(8);

} // namespace
