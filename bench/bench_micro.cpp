/**
 * @file
 * google-benchmark microbenchmarks of the reproduction stack itself:
 * cost-model evaluation, kernel compilation (modulo scheduling),
 * functional interpretation, and stream-level simulation throughput.
 */
#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/design.h"
#include "interp/interpreter.h"
#include "interp/lowered.h"
#include "interp_bench_util.h"
#include "vlsi/cost_model.h"
#include "workloads/suite.h"

namespace {

void
BM_CostModelFullEvaluation(benchmark::State &state)
{
    sps::vlsi::CostModel model;
    sps::vlsi::MachineSize size{static_cast<int>(state.range(0)), 5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.area(size).total());
        benchmark::DoNotOptimize(model.energy(size).total());
        benchmark::DoNotOptimize(model.interDelayFo4(size));
    }
}
BENCHMARK(BM_CostModelFullEvaluation)->Arg(8)->Arg(128);

void
BM_CompileKernel(benchmark::State &state)
{
    sps::sched::MachineModel m = sps::sched::MachineModel::forSize(
        {8, static_cast<int>(state.range(0))});
    const auto &k = sps::workloads::fftKernel();
    for (auto _ : state)
        benchmark::DoNotOptimize(sps::sched::compileKernel(k, m));
}
BENCHMARK(BM_CompileKernel)->Arg(2)->Arg(5)->Arg(14);

void
BM_InterpretConvolve(benchmark::State &state)
{
    std::vector<int32_t> px(8 * 1024, 7);
    auto in = sps::interp::StreamData::fromInts(px, 8);
    for (auto _ : state) {
        auto r = sps::interp::runKernel(
            sps::workloads::convolveKernel(),
            static_cast<int>(state.range(0)), {in});
        benchmark::DoNotOptimize(r.outputs[0].words.size());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_InterpretConvolve)->Arg(8)->Arg(64);

/**
 * Interpreter throughput over the Table-4 kernel suite at C = 8.
 * range(0) selects the kernel (kernelSuite() order), range(1) the
 * engine: 0 = reference, 1 = lowered forced scalar, 2 = lowered with
 * the best SIMD backend the host offers. items/sec reports stream
 * words moved per second (inputs + outputs), the metric the interp
 * speedup gates are stated in.
 */
void
BM_InterpTable4(benchmark::State &state)
{
    const auto suite = sps::workloads::kernelSuite();
    const auto &entry = suite[static_cast<size_t>(state.range(0))];
    const int engine = static_cast<int>(state.range(1));
    const sps::interp::SimdBackend backend =
        engine == 2 ? sps::interp::bestSimdBackend()
                    : sps::interp::SimdBackend::Scalar;
    const int c = 8;
    const int64_t records = 4096;
    auto inputs = sps::bench::makeTable4Inputs(entry.name, records);
    // Lower (and warm the cache) outside the timed region.
    const sps::interp::LoweredKernel &lk =
        sps::interp::LoweredCache::global().get(*entry.kernel);
    const int64_t words = sps::bench::wordsPerRun(
        inputs, sps::interp::executeLowered(lk, c, inputs));

    for (auto _ : state) {
        auto r =
            engine == 0
                ? sps::interp::runKernelReference(*entry.kernel, c,
                                                  inputs)
                : sps::interp::runKernel(*entry.kernel, c, inputs,
                                         backend);
        benchmark::DoNotOptimize(r.iterations);
    }
    state.SetItemsProcessed(state.iterations() * words);
    // Fraction of body ops the megastrip-fusion engine runs fused
    // under the default (partial) policy: why the speedups moved, not
    // just that they did.
    const double fused =
        lk.fusedOpFraction(sps::interp::FusionPolicy::Partial);
    state.counters["fused_fraction"] = fused;
    char fused_buf[32];
    std::snprintf(fused_buf, sizeof(fused_buf), " fused=%.2f", fused);
    state.SetLabel(
        entry.name + " " +
        (engine == 0 ? "reference"
                     : sps::interp::simdBackendName(backend)) +
        fused_buf);
}
BENCHMARK(BM_InterpTable4)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1, 2}});

void
BM_SimulateConvApp(benchmark::State &state)
{
    sps::core::StreamProcessorDesign d(
        {static_cast<int>(state.range(0)), 5});
    for (auto _ : state) {
        auto proc = d.makeProcessor();
        auto prog =
            sps::workloads::buildConvApp(d.size(), proc.srf());
        benchmark::DoNotOptimize(proc.run(prog).cycles);
    }
}
BENCHMARK(BM_SimulateConvApp)->Arg(8)->Arg(128);

void
BM_SimulateQrd(benchmark::State &state)
{
    sps::core::StreamProcessorDesign d(
        {static_cast<int>(state.range(0)), 5});
    for (auto _ : state) {
        auto proc = d.makeProcessor();
        auto prog = sps::workloads::buildQrd(d.size(), proc.srf());
        benchmark::DoNotOptimize(proc.run(prog).cycles);
    }
}
BENCHMARK(BM_SimulateQrd)->Arg(8);

} // namespace
