/**
 * @file
 * Table 2: kernel inner-loop characteristics -- ALU operations, SRF
 * accesses, intercluster communications, and scratchpad accesses per
 * iteration, with the per-ALU-op ratios in parentheses. Our
 * reconstructed kernels are printed next to the published counts.
 */
#include <cstdio>

#include "common/table.h"
#include "kernel/census.h"
#include "workloads/suite.h"

int
main()
{
    using sps::TextTable;
    TextTable t;
    t.header({"Kernel", "ALU Ops", "SRF Accesses", "Intercl. Comms",
              "SP Accesses", "paper (ALU/SRF/COMM/SP)"});
    for (const auto &e : sps::workloads::table2Suite()) {
        sps::kernel::Census c = sps::kernel::takeCensus(*e.kernel);
        auto cell = [&](int n, double ratio) {
            return std::to_string(n) + " (" +
                   TextTable::num(ratio, 2) + ")";
        };
        t.row({e.name, std::to_string(c.aluOps),
               cell(c.srfAccesses, c.srfPerAlu()),
               cell(c.comms, c.commPerAlu()),
               cell(c.spAccesses, c.spPerAlu()),
               std::to_string(e.paperAlu) + "/" +
                   std::to_string(e.paperSrf) + "/" +
                   std::to_string(e.paperComm) + "/" +
                   std::to_string(e.paperSp)});
    }
    std::printf(
        "Table 2: kernel inner-loop characteristics (ours vs paper)\n"
        "Counts differ where our stream formulation differs from the\n"
        "Imagine hand-written kernels; see EXPERIMENTS.md.\n\n%s\n",
        t.toString().c_str());
    return 0;
}
