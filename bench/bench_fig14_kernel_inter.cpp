/**
 * @file
 * Figure 14: kernel inner-loop speedup under intercluster scaling
 * (N = 5, C in {8..128}), relative to C=8 N=5.
 */
#include <cstdio>

#include "common/table.h"
#include "core/eval_engine.h"
#include "core/experiments.h"

int
main()
{
    using sps::TextTable;
    auto &eng = sps::core::EvalEngine::global();
    auto data =
        sps::core::kernelInterSpeedups({8, 16, 32, 64, 128}, 5, &eng);
    TextTable t;
    std::vector<std::string> head{"Kernel"};
    for (int c : data.axis)
        head.push_back("C=" + std::to_string(c));
    t.header(head);
    for (const auto &series : data.series) {
        std::vector<std::string> row{series.name};
        for (double v : series.values)
            row.push_back(TextTable::num(v, 2));
        t.row(row);
    }
    std::printf("Figure 14: intercluster kernel speedup "
                "(N=5, vs C=8 N=5)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
