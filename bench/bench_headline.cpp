/**
 * @file
 * The abstract's headline comparison: the 640-ALU C=128 N=5 machine
 * (and the 1280-ALU C=128 N=10 machine) against the 40-ALU C=8 N=5
 * baseline -- kernel and application speedups, sustained kernel GOPS,
 * and per-ALU area/energy degradations -- next to the published
 * numbers.
 */
#include <cstdio>

#include "common/table.h"
#include "core/design.h"
#include "core/experiments.h"

int
main()
{
    using sps::TextTable;
    sps::core::Headline h = sps::core::headlineNumbers(true);

    TextTable t;
    t.header({"Metric", "measured", "paper"});
    t.row({"640-ALU kernel speedup (HM)",
           TextTable::num(h.kernelSpeedup640, 1) + "x", "15.3x"});
    t.row({"640-ALU app speedup (HM)",
           TextTable::num(h.appSpeedup640, 1) + "x", "8.0x"});
    t.row({"640-ALU kernel GOPS (mean)",
           TextTable::num(h.kernelGops640, 0), ">300"});
    t.row({"640-ALU area/ALU degradation",
           TextTable::num(100 * h.areaPerAluDegradation640, 1) + "%",
           "2%"});
    t.row({"640-ALU energy/op degradation",
           TextTable::num(100 * h.energyPerOpDegradation640, 1) + "%",
           "7%"});
    t.row({"1280-ALU kernel speedup (HM)",
           TextTable::num(h.kernelSpeedup1280, 1) + "x", "27.9x"});
    t.row({"1280-ALU app speedup (HM)",
           TextTable::num(h.appSpeedup1280, 1) + "x", "10.4x"});

    sps::core::StreamProcessorDesign big({128, 10});
    t.row({"1280-ALU peak GOPS (subword x2)",
           TextTable::num(2 * big.peakGops(), 0), ">1000"});
    t.row({"1280-ALU power (W)",
           TextTable::num(big.powerWatts(), 1), "<10"});

    std::printf("Headline: scaled machines vs the 40-ALU baseline\n\n"
                "%s\n",
                t.toString().c_str());
    return 0;
}
