/**
 * @file
 * The abstract's headline comparison: the 640-ALU C=128 N=5 machine
 * (and the 1280-ALU C=128 N=10 machine) against the 40-ALU C=8 N=5
 * baseline -- kernel and application speedups, sustained kernel GOPS,
 * and per-ALU area/energy degradations -- next to the published
 * numbers.
 *
 * Also reports evaluation-engine throughput: wall-clock for the full
 * figure-suite computation serial vs parallel and cold vs warm
 * caches, with the recompilation and re-simulation counts that prove
 * the warm runs compile and simulate nothing. App runs route through
 * svc::EvalService; pass --cache-dir DIR to add the disk tier (a warm
 * DIR makes even the "cold" rows compile/simulate nothing) and a
 * cache-tier counter section prints at the end.
 *
 * Reports functional-interpreter throughput (words/sec per Table-4
 * kernel: reference engine, lowered engine forced scalar, and lowered
 * engine on the host's best SIMD backend) and writes the numbers to
 * BENCH_interp.json so the perf trajectory is recorded across PRs.
 * The SIMD aggregate speedup is gated (>= 8x over the reference) via
 * the exit code, alongside the energy within-2x gate.
 *
 * Finally cross-checks the measured energy model against the
 * analytical one: intercluster energy-per-ALU-op scaling at
 * C = 1..16 (N = 5), aggregated over the app suite and normalized to
 * C = 8, next to the analytical Figure 10 curve -- written to
 * BENCH_energy.json with the per-point measured/analytic ratios.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/design.h"
#include "core/eval_engine.h"
#include "core/experiments.h"
#include "interp/interpreter.h"
#include "interp/lowered.h"
#include "interp_bench_util.h"
#include "svc/eval_service.h"
#include "vlsi/cost_model.h"
#include "vlsi/sweep.h"
#include "workloads/suite.h"

namespace {

/** One full figure-suite computation (the work bench_export_all
 *  formats), with the app grid routed through the evaluation
 *  service; returns wall-clock seconds. */
double
runFigureSuite(sps::core::EvalEngine &eng,
               sps::svc::EvalService &service)
{
    using namespace sps;
    auto t0 = std::chrono::steady_clock::now();
    vlsi::CostModel model;
    vlsi::intraclusterSweep(model, 8, vlsi::defaultIntraRange(), 5,
                            &eng.pool());
    vlsi::interclusterSweep(model, 5, vlsi::defaultInterRange(), 8,
                            &eng.pool());
    core::kernelIntraSpeedups({2, 5, 10, 14}, 8, &eng);
    core::kernelInterSpeedups({8, 16, 32, 64, 128}, 5, &eng);
    core::table5PerfPerArea({2, 5, 10, 14}, {8, 16, 32, 64, 128},
                            &eng);
    service.appPerformance({8, 16, 32, 64, 128}, {2, 5, 10, 14});
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count();
}

/** Seconds per call of `fn`, measured over at least 0.1 s. */
template <typename Fn>
double
secondsPerRun(Fn &&fn)
{
    fn(); // warm caches outside the timed region
    int reps = 0;
    double secs = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    do {
        fn();
        ++reps;
        secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    } while (secs < 0.1 && reps < 10000);
    return secs / reps;
}

struct InterpRow
{
    std::string name;
    int64_t words = 0;
    double refWps = 0.0;
    double scalarWps = 0.0;
    double simdWps = 0.0;
    /** Fraction of steady-state body ops in fused regions under the
     *  default (partial) megastrip-fusion policy. */
    double fusedFraction = 0.0;
};

/**
 * Interpreter throughput per Table-4 kernel at C = 8: stream words
 * moved per second (inputs + outputs) through the reference engine,
 * the lowered engine forced scalar, and the lowered engine on the
 * host's best SIMD backend. The aggregate speedup is total reference
 * time over total SIMD time for the whole suite (one run each).
 */
std::vector<InterpRow>
interpThroughput(int c, int64_t records, double *aggregate)
{
    const sps::interp::SimdBackend best =
        sps::interp::bestSimdBackend();
    std::vector<InterpRow> rows;
    double ref_total = 0.0, simd_total = 0.0;
    for (const auto &entry : sps::workloads::kernelSuite()) {
        auto inputs = sps::bench::makeTable4Inputs(entry.name, records);
        InterpRow row;
        row.name = entry.name;
        row.words = sps::bench::wordsPerRun(
            inputs, sps::interp::runKernel(*entry.kernel, c, inputs));
        row.fusedFraction =
            sps::interp::LoweredCache::global()
                .get(*entry.kernel)
                .fusedOpFraction(sps::interp::FusionPolicy::Partial);
        double ref = secondsPerRun([&] {
            sps::interp::runKernelReference(*entry.kernel, c, inputs);
        });
        double scalar = secondsPerRun([&] {
            sps::interp::runKernel(*entry.kernel, c, inputs,
                                   sps::interp::SimdBackend::Scalar);
        });
        double simd = secondsPerRun([&] {
            sps::interp::runKernel(*entry.kernel, c, inputs, best);
        });
        row.refWps = static_cast<double>(row.words) / ref;
        row.scalarWps = static_cast<double>(row.words) / scalar;
        row.simdWps = static_cast<double>(row.words) / simd;
        ref_total += ref;
        simd_total += simd;
        rows.push_back(row);
    }
    *aggregate = simd_total > 0.0 ? ref_total / simd_total : 0.0;
    return rows;
}

struct EnergyScalePoint
{
    int clusters = 0;
    double measuredNorm = 0.0; // scaled E/op, normalized to C=8
    double analyticNorm = 0.0; // Figure 10 curve, normalized to C=8
    double ratio = 0.0;        // measured / analytic
};

/**
 * Measured intercluster energy-per-ALU-op scaling: run the whole app
 * suite at each C (N = 5) through the simulator, aggregate the
 * paper-scope (no DRAM) energy over total ALU ops, and normalize to
 * the C = 8 baseline -- the measured counterpart of the analytical
 * Figure 10 energy curve.
 */
std::vector<EnergyScalePoint>
energyScaling(sps::core::EvalEngine &eng)
{
    using namespace sps;
    const std::vector<int> cs{1, 2, 4, 8, 16};
    auto apps = workloads::appSuite();
    struct Cell
    {
        double ew = 0.0;
        double ops = 0.0;
    };
    auto cells = eng.map(cs.size() * apps.size(), [&](size_t idx) {
        vlsi::MachineSize size{cs[idx / apps.size()], 5};
        const auto &app = apps[idx % apps.size()];
        core::StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        sim::SimResult res = proc.run(prog);
        Cell cell;
        cell.ew = res.energy.scaledTotalEw();
        cell.ops = static_cast<double>(res.energy.aluOps);
        return cell;
    });

    std::map<int, Cell> by_c;
    for (size_t i = 0; i < cells.size(); ++i) {
        auto &acc = by_c[cs[i / apps.size()]];
        acc.ew += cells[i].ew;
        acc.ops += cells[i].ops;
    }

    vlsi::CostModel model;
    double measured_ref = by_c[8].ew / by_c[8].ops;
    double analytic_ref = model.energyPerAluOp({8, 5});
    std::vector<EnergyScalePoint> pts;
    for (int c : cs) {
        EnergyScalePoint pt;
        pt.clusters = c;
        pt.measuredNorm =
            (by_c[c].ew / by_c[c].ops) / measured_ref;
        pt.analyticNorm =
            model.energyPerAluOp({c, 5}) / analytic_ref;
        pt.ratio = pt.measuredNorm / pt.analyticNorm;
        pts.push_back(pt);
    }
    return pts;
}

void
writeEnergyJson(const char *path,
                const std::vector<EnergyScalePoint> &pts)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"alus_per_cluster\": 5,\n"
                 "  \"normalized_to_clusters\": 8,\n"
                 "  \"energy_per_alu_op\": [\n");
    for (size_t i = 0; i < pts.size(); ++i) {
        const EnergyScalePoint &p = pts[i];
        std::fprintf(f,
                     "    {\"clusters\": %d, \"measured\": %.6f, "
                     "\"analytic\": %.6f, \"ratio\": %.4f}%s\n",
                     p.clusters, p.measuredNorm, p.analyticNorm,
                     p.ratio, i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

void
writeInterpJson(const char *path, int c, int64_t records,
                const std::vector<InterpRow> &rows, double aggregate)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"clusters\": %d,\n  \"records\": %lld,\n"
                 "  \"simd_backend\": \"%s\",\n  \"kernels\": [\n",
                 c, static_cast<long long>(records),
                 sps::interp::simdBackendName(
                     sps::interp::bestSimdBackend()));
    for (size_t i = 0; i < rows.size(); ++i) {
        const InterpRow &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"words_per_run\": %lld, "
            "\"reference_words_per_sec\": %.4e, "
            "\"scalar_words_per_sec\": %.4e, "
            "\"simd_words_per_sec\": %.4e, "
            "\"scalar_speedup\": %.3f, \"speedup\": %.3f, "
            "\"fused_fraction\": %.3f}%s\n",
            r.name.c_str(), static_cast<long long>(r.words), r.refWps,
            r.scalarWps, r.simdWps,
            r.refWps > 0.0 ? r.scalarWps / r.refWps : 0.0,
            r.refWps > 0.0 ? r.simdWps / r.refWps : 0.0,
            r.fusedFraction, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"aggregate_speedup\": %.3f\n}\n",
                 aggregate);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    using sps::TextTable;
    std::string cache_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc)
            cache_dir = argv[++i];
    }
    // Leaked on purpose: the global schedule cache keeps the pointer
    // past the end of main.
    sps::store::ResultStore *store = nullptr;
    if (!cache_dir.empty()) {
        store = new sps::store::ResultStore(cache_dir);
        sps::sched::ScheduleCache::global().attachStore(store);
    }

    sps::core::Headline h = sps::core::headlineNumbers(true);

    TextTable t;
    t.header({"Metric", "measured", "paper"});
    t.row({"640-ALU kernel speedup (HM)",
           TextTable::num(h.kernelSpeedup640, 1) + "x", "15.3x"});
    t.row({"640-ALU app speedup (HM)",
           TextTable::num(h.appSpeedup640, 1) + "x", "8.0x"});
    t.row({"640-ALU kernel GOPS (mean)",
           TextTable::num(h.kernelGops640, 0), ">300"});
    t.row({"640-ALU area/ALU degradation",
           TextTable::num(100 * h.areaPerAluDegradation640, 1) + "%",
           "2%"});
    t.row({"640-ALU energy/op degradation",
           TextTable::num(100 * h.energyPerOpDegradation640, 1) + "%",
           "7%"});
    t.row({"1280-ALU kernel speedup (HM)",
           TextTable::num(h.kernelSpeedup1280, 1) + "x", "27.9x"});
    t.row({"1280-ALU app speedup (HM)",
           TextTable::num(h.appSpeedup1280, 1) + "x", "10.4x"});

    sps::core::StreamProcessorDesign big({128, 10});
    t.row({"1280-ALU peak GOPS (subword x2)",
           TextTable::num(2 * big.peakGops(), 0), ">1000"});
    t.row({"1280-ALU power (W)",
           TextTable::num(big.powerWatts(), 1), "<10"});

    std::printf("Headline: scaled machines vs the 40-ALU baseline\n\n"
                "%s\n",
                t.toString().c_str());

    // --- Evaluation-engine throughput: the full figure suite ---
    sps::core::EvalEngine serial(1);
    sps::core::EvalEngine &parallel = sps::core::EvalEngine::global();
    auto &cache = parallel.cache();
    sps::svc::EvalService serial_svc(&serial, store);
    sps::svc::EvalService parallel_svc(&parallel, store);

    // "cold" empties the in-process tiers (schedule cache + service
    // memory); with --cache-dir the disk tier stays warm, which is
    // exactly what the cold rows then demonstrate.
    auto sims = [](const sps::svc::EvalService &s) {
        return s.counters().computed;
    };
    cache.clear();
    serial_svc.clearMemory();
    double cold_serial = runFigureSuite(serial, serial_svc);
    auto after_cold = cache.counters();
    uint64_t sims_cold = sims(serial_svc);
    double warm_serial = runFigureSuite(serial, serial_svc);
    auto after_warm = cache.counters();
    uint64_t sims_warm = sims(serial_svc) - sims_cold;

    cache.clear();
    parallel_svc.clearMemory();
    double cold_parallel = runFigureSuite(parallel, parallel_svc);
    auto after_cold_p = cache.counters();
    uint64_t sims_cold_p = sims(parallel_svc);
    double warm_parallel = runFigureSuite(parallel, parallel_svc);
    auto after_warm_p = cache.counters();
    uint64_t sims_warm_p = sims(parallel_svc) - sims_cold_p;

    TextTable e;
    e.header({"Figure-suite run", "threads", "wall (s)",
              "kernel compiles", "app sims"});
    auto row = [&](const char *name, int threads, double secs,
                   uint64_t compiles, uint64_t sim_count) {
        e.row({name, std::to_string(threads),
               TextTable::num(secs, 3), std::to_string(compiles),
               std::to_string(sim_count)});
    };
    row("serial, cold cache", serial.threadCount(), cold_serial,
        after_cold.misses, sims_cold);
    row("serial, warm cache", serial.threadCount(), warm_serial,
        after_warm.misses - after_cold.misses, sims_warm);
    row("parallel, cold cache", parallel.threadCount(), cold_parallel,
        after_cold_p.misses, sims_cold_p);
    row("parallel, warm cache", parallel.threadCount(), warm_parallel,
        after_warm_p.misses - after_cold_p.misses, sims_warm_p);

    std::printf("Evaluation engine: full figure-suite wall-clock\n\n"
                "%s\n"
                "parallel speedup over serial (cold): %.2fx; "
                "warm-cache speedup (serial): %.2fx\n",
                e.toString().c_str(),
                cold_parallel > 0.0 ? cold_serial / cold_parallel
                                    : 0.0,
                warm_serial > 0.0 ? cold_serial / warm_serial : 0.0);

    // --- Cache tiers: where every request was answered ---
    std::printf("\nCache tiers%s%s (schedule cache + result store + "
                "parallel eval service):\n",
                cache_dir.empty() ? "" : ", --cache-dir ",
                cache_dir.c_str());
    for (const auto &r : sps::svc::cacheStatsRows(cache.counters(),
                                                  store,
                                                  &parallel_svc))
        std::printf("  %-16s %-16s %s\n", r[0].c_str(), r[1].c_str(),
                    r[2].c_str());

    // --- Interpreter throughput: reference vs scalar vs SIMD ---
    const int interp_c = 8;
    const int64_t interp_records = 8192;
    double aggregate = 0.0;
    std::vector<InterpRow> rows =
        interpThroughput(interp_c, interp_records, &aggregate);

    TextTable it;
    it.header({"Kernel", "ref Mwords/s", "scalar Mwords/s",
               "simd Mwords/s", "speedup", "fused frac"});
    for (const InterpRow &r : rows)
        it.row({r.name, TextTable::num(r.refWps / 1e6, 1),
                TextTable::num(r.scalarWps / 1e6, 1),
                TextTable::num(r.simdWps / 1e6, 1),
                TextTable::num(r.refWps > 0.0 ? r.simdWps / r.refWps
                                              : 0.0,
                               2) +
                    "x",
                TextTable::num(r.fusedFraction, 2)});
    const double interp_gate = 10.0;
    const bool interp_fast = aggregate >= interp_gate;
    std::printf("\nInterpreter throughput: Table-4 kernels at C=%d, "
                "%lld records (simd backend: %s)\n\n%s\n"
                "aggregate simd-vs-reference speedup: %.2fx "
                "(gate: >= %.0fx: %s; written to BENCH_interp.json)\n",
                interp_c, static_cast<long long>(interp_records),
                sps::interp::simdBackendName(
                    sps::interp::bestSimdBackend()),
                it.toString().c_str(), aggregate, interp_gate,
                interp_fast ? "yes" : "NO");
    writeInterpJson("BENCH_interp.json", interp_c, interp_records,
                    rows, aggregate);

    // --- Energy model: measured vs analytical Figure 10 scaling ---
    std::vector<EnergyScalePoint> epts = energyScaling(parallel);
    TextTable et;
    et.header({"C (N=5)", "measured E/op", "analytic E/op",
               "ratio"});
    bool within2x = true;
    for (const EnergyScalePoint &p : epts) {
        et.row({std::to_string(p.clusters),
                TextTable::num(p.measuredNorm, 3),
                TextTable::num(p.analyticNorm, 3),
                TextTable::num(p.ratio, 2) + "x"});
        if (p.ratio < 0.5 || p.ratio > 2.0)
            within2x = false;
    }
    std::printf("\nEnergy: measured vs analytical intercluster "
                "energy per ALU op (normalized to C=8)\n\n%s\n"
                "every point within 2x of the Figure 10 curve: %s "
                "(written to BENCH_energy.json)\n",
                et.toString().c_str(), within2x ? "yes" : "NO");
    writeEnergyJson("BENCH_energy.json", epts);
    return within2x && interp_fast ? 0 : 1;
}
