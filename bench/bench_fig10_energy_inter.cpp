/**
 * @file
 * Figure 10: energy per ALU operation under intercluster scaling
 * (N = 5), normalized to C = 8.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    SweepSeries s =
        interclusterSweep(model, 5, defaultInterRange(), 8);
    double ref = s.points[s.refIndex].energyPerAluOp;

    TextTable t;
    t.header({"C", "energy/op (norm)", "SRF", "clusters", "uc",
              "inter-comm"});
    for (const auto &pt : s.points) {
        double alus = pt.size.totalAlus();
        t.row({std::to_string(pt.size.clusters),
               TextTable::num(pt.energyPerAluOp / ref, 3),
               TextTable::num(pt.energy.srf / alus / ref, 3),
               TextTable::num(pt.energy.clusters / alus / ref, 3),
               TextTable::num(
                   pt.energy.microcontroller / alus / ref, 3),
               TextTable::num(
                   pt.energy.interclusterComm / alus / ref, 3)});
    }
    std::printf("Figure 10: energy per ALU op, intercluster scaling "
                "(N=5, normalized to C=8)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
