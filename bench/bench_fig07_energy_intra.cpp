/**
 * @file
 * Figure 7: energy per ALU operation under intracluster scaling
 * (C = 8), normalized to N = 5, with the component breakdown.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    SweepSeries s =
        intraclusterSweep(model, 8, defaultIntraRange(), 5);
    double ref = s.points[s.refIndex].energyPerAluOp;

    TextTable t;
    t.header({"N", "energy/op (norm)", "SRF", "clusters", "uc",
              "inter-comm"});
    for (const auto &pt : s.points) {
        double alus = pt.size.totalAlus();
        t.row({std::to_string(pt.size.alusPerCluster),
               TextTable::num(pt.energyPerAluOp / ref, 3),
               TextTable::num(pt.energy.srf / alus / ref, 3),
               TextTable::num(pt.energy.clusters / alus / ref, 3),
               TextTable::num(
                   pt.energy.microcontroller / alus / ref, 3),
               TextTable::num(
                   pt.energy.interclusterComm / alus / ref, 3)});
    }
    std::printf("Figure 7: energy per ALU op, intracluster scaling "
                "(C=8, normalized to N=5)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
