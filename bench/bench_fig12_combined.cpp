/**
 * @file
 * Figure 12: area per ALU under combined scaling for N in {2, 5, 16}
 * against total ALU count, normalized to the C=32 N=5 point.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    MachineSize ref{32, 5};
    double ref_area = model.areaPerAlu(ref);

    TextTable t;
    t.header({"C", "total ALUs (N=2)", "N=2", "total ALUs (N=5)",
              "N=5", "total ALUs (N=16)", "N=16"});
    for (int c : {8, 16, 32, 64, 128, 256}) {
        auto cell = [&](int n) {
            return TextTable::num(
                model.areaPerAlu(MachineSize{c, n}) / ref_area, 3);
        };
        t.row({std::to_string(c), std::to_string(c * 2), cell(2),
               std::to_string(c * 5), cell(5), std::to_string(c * 16),
               cell(16)});
    }
    std::printf("Figure 12: area per ALU, combined scaling "
                "(normalized to C=32 N=5)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
