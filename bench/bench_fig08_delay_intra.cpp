/**
 * @file
 * Figure 8: intracluster and intercluster switch traversal delay
 * (FO4) under intracluster scaling at C = 8. The 45 FO4 cycle and its
 * half-cycle intracluster budget are annotated, as are the extra
 * pipeline stages the Section 5 experiments charge.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    TextTable t;
    t.header({"N", "intra (FO4)", "inter (FO4)", "intra stages",
              "COMM cycles"});
    for (int n : defaultIntraRange()) {
        MachineSize size{8, n};
        t.row({std::to_string(n),
               TextTable::num(model.intraDelayFo4(n), 1),
               TextTable::num(model.interDelayFo4(size), 1),
               std::to_string(model.intraPipeStages(n)),
               std::to_string(model.interCommCycles(size))});
    }
    std::printf("Figure 8: switch delays, intracluster scaling (C=8; "
                "clock = 45 FO4, intra budget = 22.5 FO4)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
