/**
 * @file
 * Figure 11: switch delays under intercluster scaling (N = 5).
 * Intracluster delay stays constant; intercluster delay grows with C
 * but pipelines into whole cycles.
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/sweep.h"

int
main()
{
    using namespace sps::vlsi;
    using sps::TextTable;
    CostModel model;
    TextTable t;
    t.header({"C", "intra (FO4)", "inter (FO4)", "COMM cycles"});
    for (int c : defaultInterRange()) {
        MachineSize size{c, 5};
        t.row({std::to_string(c),
               TextTable::num(model.intraDelayFo4(5), 1),
               TextTable::num(model.interDelayFo4(size), 1),
               std::to_string(model.interCommCycles(size))});
    }
    std::printf("Figure 11: switch delays, intercluster scaling "
                "(N=5; clock = 45 FO4)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
