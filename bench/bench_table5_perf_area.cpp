/**
 * @file
 * Table 5: kernel inner-loop performance per unit area (harmonic mean
 * over the six kernels; 1.0 = a machine that is pure ALU area running
 * one op per ALU per cycle).
 */
#include <cstdio>

#include "common/table.h"
#include "core/eval_engine.h"
#include "core/experiments.h"

int
main()
{
    using sps::TextTable;
    auto &eng = sps::core::EvalEngine::global();
    auto data = sps::core::table5PerfPerArea(
        {2, 5, 10, 14}, {8, 16, 32, 64, 128}, &eng);
    TextTable t;
    std::vector<std::string> head{"N \\ C"};
    for (int c : data.cValues)
        head.push_back(std::to_string(c));
    t.header(head);
    for (size_t i = 0; i < data.nValues.size(); ++i) {
        std::vector<std::string> row{
            std::to_string(data.nValues[i])};
        for (double v : data.value[i])
            row.push_back(TextTable::num(v, 3));
        t.row(row);
    }
    std::printf("Table 5: kernel performance per unit area "
                "(harmonic mean over kernels)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
