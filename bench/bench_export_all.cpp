/**
 * @file
 * Exports the data series behind every figure as CSV files (into the
 * directory given as argv[1], default "results") so the paper's plots
 * can be regenerated with any plotting tool. All series are produced
 * through the evaluation engine: design points run concurrently
 * (pass --serial to force one thread) and kernel compilations memoize
 * in the shared schedule cache; the deterministic axis-order
 * collection keeps the CSVs byte-identical to a serial export.
 *
 * Persistence:
 *   --cache-dir DIR  attach the disk-backed result store rooted at
 *                    DIR: schedules and app simulation results read
 *                    through it (memory -> disk -> compute) and
 *                    computed entries persist, so a second process
 *                    pointed at a warm DIR re-exports everything with
 *                    0 schedule compiles and 0 re-simulations --
 *                    byte-identical CSVs. Also writes cache_stats.csv
 *                    (per-tier hit/miss/dedup counters).
 *   --expect-warm    exit nonzero if the run compiled any schedule or
 *                    simulated any app (the warm-cache CI assertion).
 *   --max-cache-bytes N  bound the --cache-dir store: writes that
 *                    cross the budget evict least-recently-used
 *                    entries (eviction counters land in
 *                    cache_stats.csv).
 *
 * Client mode:
 *   --server SOCK    evaluate the Figure-15 app grid through a
 *                    resident sps_evald daemon listening on the
 *                    Unix-domain socket SOCK instead of in-process.
 *                    Results come back bit-identical (the store
 *                    codec's encoding rides the wire), so the CSVs
 *                    are byte-identical to an in-process run; many
 *                    concurrent client processes share the daemon's
 *                    warm tiers and dedup against each other.
 *                    cache_stats.csv then records the daemon's
 *                    cumulative per-tier counters, and --expect-warm
 *                    asserts the daemon simulated nothing for *this*
 *                    run (the delta while we were connected).
 *   --metrics [prom|json]  scrape verb (requires --server): fetch a
 *                    live metrics snapshot from the daemon
 *                    (MetricsRequest round trip), print it to stdout
 *                    in the Prometheus text format (default) or as
 *                    JSON, and exit without exporting anything --
 *                    `bench_export_all --server SOCK --metrics` is
 *                    the command-line scrape for a running daemon.
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/eval_engine.h"
#include "core/experiments.h"
#include "svc/eval_client.h"
#include "svc/eval_service.h"
#include "trace/counters_csv.h"
#include "vlsi/sweep.h"

namespace {

std::string g_dir = "results";
sps::core::EvalEngine *g_engine = nullptr;
sps::svc::EvalService *g_service = nullptr;
sps::svc::EvalClient *g_client = nullptr;

/** Value of one (tier, counter) row in a stats snapshot, or 0. */
uint64_t
statsValue(const std::vector<std::vector<std::string>> &rows,
           const char *tier, const char *counter)
{
    for (const auto &row : rows)
        if (row.size() == 3 && row[0] == tier && row[1] == counter)
            return std::strtoull(row[2].c_str(), nullptr, 10);
    return 0;
}

std::string
path(const char *name)
{
    return g_dir + "/" + name;
}

void
exportIntraInterSweeps()
{
    using namespace sps::vlsi;
    CostModel model;
    sps::ThreadPool *pool = &g_engine->pool();
    {
        SweepSeries s =
            intraclusterSweep(model, 8, defaultIntraRange(), 5, pool);
        sps::CsvWriter w;
        w.header({"N", "area_per_alu_norm", "energy_per_op_norm",
                  "t_intra_fo4", "t_inter_fo4"});
        auto a = s.normalizedAreaPerAlu();
        auto e = s.normalizedEnergyPerOp();
        for (size_t i = 0; i < s.points.size(); ++i) {
            const auto &pt = s.points[i];
            w.row({std::to_string(pt.size.alusPerCluster),
                   std::to_string(a[i]), std::to_string(e[i]),
                   std::to_string(pt.delay.intraFo4),
                   std::to_string(pt.delay.interFo4)});
        }
        w.writeFile(path("fig06_07_08_intracluster.csv"));
    }
    {
        SweepSeries s =
            interclusterSweep(model, 5, defaultInterRange(), 8, pool);
        sps::CsvWriter w;
        w.header({"C", "area_per_alu_norm", "energy_per_op_norm",
                  "t_inter_fo4"});
        auto a = s.normalizedAreaPerAlu();
        auto e = s.normalizedEnergyPerOp();
        for (size_t i = 0; i < s.points.size(); ++i) {
            const auto &pt = s.points[i];
            w.row({std::to_string(pt.size.clusters),
                   std::to_string(a[i]), std::to_string(e[i]),
                   std::to_string(pt.delay.interFo4)});
        }
        w.writeFile(path("fig09_10_11_intercluster.csv"));
    }
    {
        sps::CsvWriter w;
        w.header({"C", "N", "total_alus", "area_per_alu_norm"});
        double ref = model.areaPerAlu({32, 5});
        for (int n : {2, 5, 16})
            for (int c : {8, 16, 32, 64, 128, 256})
                w.row({std::to_string(c), std::to_string(n),
                       std::to_string(c * n),
                       std::to_string(model.areaPerAlu({c, n}) /
                                      ref)});
        w.writeFile(path("fig12_combined.csv"));
    }
}

void
exportKernelSpeedups()
{
    auto dump = [&](const sps::core::KernelSpeedupData &d,
                    const char *axis, const char *file) {
        sps::CsvWriter w;
        std::vector<std::string> head{"kernel"};
        for (int x : d.axis)
            head.push_back(std::string(axis) + std::to_string(x));
        w.header(head);
        for (const auto &s : d.series) {
            std::vector<std::string> row{s.name};
            for (double v : s.values)
                row.push_back(std::to_string(v));
            w.row(row);
        }
        w.writeFile(path(file));
    };
    dump(sps::core::kernelIntraSpeedups({2, 5, 10, 14}, 8, g_engine),
         "N", "fig13_kernel_intra.csv");
    dump(sps::core::kernelInterSpeedups({8, 16, 32, 64, 128}, 5,
                                        g_engine),
         "C", "fig14_kernel_inter.csv");
}

void
exportTable5()
{
    auto t = sps::core::table5PerfPerArea({2, 5, 10, 14},
                                          {8, 16, 32, 64, 128},
                                          g_engine);
    sps::CsvWriter w;
    std::vector<std::string> head{"N"};
    for (int c : t.cValues)
        head.push_back("C" + std::to_string(c));
    w.header(head);
    for (size_t i = 0; i < t.nValues.size(); ++i) {
        std::vector<std::string> row{std::to_string(t.nValues[i])};
        for (double v : t.value[i])
            row.push_back(std::to_string(v));
        w.row(row);
    }
    w.writeFile(path("table5_perf_per_area.csv"));
}

void
exportFig15()
{
    // The app grid routes through the evaluation service: submissions
    // batch onto the engine pool, identical points (the baseline and
    // its grid twin) dedup, and results read/write the disk store. In
    // --server mode the same sweep plan rides the socket to the
    // daemon instead; the result bytes are identical either way.
    auto pts =
        g_client
            ? g_client->appPerformance({8, 16, 32, 64, 128},
                                       {2, 5, 10, 14})
        : g_service
            ? g_service->appPerformance({8, 16, 32, 64, 128},
                                        {2, 5, 10, 14})
            : sps::core::appPerformance({8, 16, 32, 64, 128},
                                        {2, 5, 10, 14}, g_engine);
    sps::CsvWriter w;
    w.header({"app", "C", "N", "cycles", "speedup", "gops"});
    for (const auto &pt : pts) {
        w.row({pt.app, std::to_string(pt.size.clusters),
               std::to_string(pt.size.alusPerCluster),
               std::to_string(pt.cycles), std::to_string(pt.speedup),
               std::to_string(pt.gops)});
    }
    w.writeFile(path("fig15_apps.csv"));

    // Per-run hardware counters for every grid point (the data behind
    // any "why is this point slow" question about Figure 15).
    sps::CsvWriter counters;
    sps::trace::beginCountersCsv(counters, {"app", "C", "N"});
    for (const auto &pt : pts)
        sps::trace::appendCountersRow(
            counters,
            {pt.app, std::to_string(pt.size.clusters),
             std::to_string(pt.size.alusPerCluster)},
            pt.result);
    counters.writeFile(path("fig15_app_counters.csv"));

    // Per-run energy breakdown + bottleneck waterfall (the data
    // behind any "where does the power go" question about Figure 15).
    sps::CsvWriter energy;
    sps::trace::beginEnergyCsv(energy, {"app", "C", "N"});
    for (const auto &pt : pts)
        sps::trace::appendEnergyRow(
            energy,
            {pt.app, std::to_string(pt.size.clusters),
             std::to_string(pt.size.alusPerCluster)},
            pt.result);
    energy.writeFile(path("fig15_app_energy.csv"));
}

} // namespace

int
main(int argc, char **argv)
{
    bool serial = false;
    bool expect_warm = false;
    bool metrics = false;
    bool metrics_json = false;
    std::string cache_dir;
    std::string server_sock;
    unsigned long long max_cache_bytes = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serial") == 0)
            serial = true;
        else if (std::strcmp(argv[i], "--expect-warm") == 0)
            expect_warm = true;
        else if (std::strcmp(argv[i], "--metrics") == 0) {
            metrics = true;
            // Optional format operand; anything else is the usual
            // positional output directory.
            if (i + 1 < argc &&
                (std::strcmp(argv[i + 1], "prom") == 0 ||
                 std::strcmp(argv[i + 1], "json") == 0))
                metrics_json = std::strcmp(argv[++i], "json") == 0;
        }
        else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                 i + 1 < argc)
            cache_dir = argv[++i];
        else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc)
            server_sock = argv[++i];
        else if (std::strcmp(argv[i], "--max-cache-bytes") == 0 &&
                 i + 1 < argc)
            max_cache_bytes =
                std::strtoull(argv[++i], nullptr, 10);
        else
            g_dir = argv[i];
    }

    // The metrics verb is a pure scrape: connect, fetch, print, exit.
    if (metrics) {
        if (server_sock.empty()) {
            std::fprintf(stderr,
                         "--metrics requires --server SOCK\n");
            return 2;
        }
        try {
            sps::svc::EvalClient client(server_sock);
            sps::obs::MetricsSnapshot snap = client.metrics();
            std::fputs(metrics_json
                           ? sps::obs::renderJson(snap).c_str()
                           : sps::obs::renderPrometheus(snap).c_str(),
                       stdout);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "metrics scrape failed: %s\n",
                         e.what());
            return 1;
        }
        return 0;
    }

    sps::core::EvalEngine serial_engine(serial ? 1 : 0);
    g_engine = serial ? &serial_engine
                      : &sps::core::EvalEngine::global();

    // The store outlives every consumer -- including the global
    // schedule cache, whose destructor order against locals is not
    // ours to control -- so it is deliberately leaked.
    sps::store::ResultStore *store = nullptr;
    if (!cache_dir.empty()) {
        store = new sps::store::ResultStore(cache_dir,
                                            max_cache_bytes);
        g_engine->cache().attachStore(store);
    }
    sps::svc::EvalService service(g_engine, store);
    g_service = &service;

    // --server: the Figure-15 app grid evaluates in the daemon; the
    // figure-12-and-earlier sweeps and kernel exports stay local
    // (they are pure cost-model / schedule work, not app sims). The
    // starting stats snapshot turns the daemon's cumulative counters
    // into this run's delta for --expect-warm.
    sps::svc::EvalClient *client = nullptr;
    std::vector<std::vector<std::string>> server_stats_before;
    if (!server_sock.empty()) {
        try {
            client = new sps::svc::EvalClient(server_sock);
            server_stats_before = client->stats();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        g_client = client;
    }

    std::error_code ec;
    std::filesystem::create_directories(g_dir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", g_dir.c_str(),
                     ec.message().c_str());
        return 1;
    }
    try {
        exportIntraInterSweeps();
        exportKernelSpeedups();
        exportTable5();
        exportFig15();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "export failed: %s\n", e.what());
        return 1;
    }
    auto ctr = g_engine->cache().counters();
    auto svc_ctr = service.counters();
    std::printf("wrote figure data CSVs to %s/ "
                "(%d threads; schedule cache: %llu compiles, "
                "%llu disk hits, %llu hits; apps: %llu sims, "
                "%llu disk hits)\n",
                g_dir.c_str(), g_engine->threadCount(),
                static_cast<unsigned long long>(ctr.misses),
                static_cast<unsigned long long>(ctr.diskHits),
                static_cast<unsigned long long>(ctr.hits),
                static_cast<unsigned long long>(svc_ctr.computed),
                static_cast<unsigned long long>(svc_ctr.diskHits));
    if (client) {
        // The daemon's cumulative per-tier counters: a second
        // concurrent client shows up here as in-flight dedup and
        // memory hits, which is the observable proof of cross-client
        // sharing.
        std::vector<std::vector<std::string>> after;
        try {
            after = client->stats();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "stats query failed: %s\n", e.what());
            return 1;
        }
        sps::CsvWriter stats;
        stats.header({"tier", "counter", "value"});
        for (const auto &row : after)
            stats.row(row);
        stats.writeFile(path("cache_stats.csv"));
        if (expect_warm) {
            uint64_t sims =
                statsValue(after, "eval_service", "sims") -
                statsValue(server_stats_before, "eval_service",
                           "sims");
            if (sims > 0) {
                std::fprintf(
                    stderr,
                    "--expect-warm: daemon simulated %llu app(s) "
                    "for this run\n",
                    static_cast<unsigned long long>(sims));
                g_client = nullptr;
                g_service = nullptr;
                return 1;
            }
        }
        g_client = nullptr;
        delete client;
    } else if (store) {
        sps::CsvWriter stats;
        stats.header({"tier", "counter", "value"});
        sps::svc::appendCacheStatsRows(stats, ctr, store, &service);
        stats.writeFile(path("cache_stats.csv"));
    }
    if (!client && expect_warm &&
        (ctr.misses > 0 || svc_ctr.computed > 0)) {
        std::fprintf(stderr,
                     "--expect-warm: cache was cold (%llu schedule "
                     "compiles, %llu app sims)\n",
                     static_cast<unsigned long long>(ctr.misses),
                     static_cast<unsigned long long>(svc_ctr.computed));
        g_service = nullptr;
        return 1;
    }
    g_service = nullptr;
    return 0;
}
