/**
 * @file
 * Table 1: the model parameter set (printed for provenance; every
 * other bench derives from these values).
 */
#include <cstdio>

#include "common/table.h"
#include "vlsi/params.h"

int
main()
{
    using sps::TextTable;
    sps::vlsi::Params p = sps::vlsi::Params::imagine();
    TextTable t;
    t.header({"Param", "Value", "Description"});
    auto row = [&](const char *name, double v, const char *desc,
                   int prec = 1) {
        t.row({name, TextTable::num(v, prec), desc});
    };
    row("ASRAM", p.aSram, "area of 1 SRAM bit (grids)");
    row("ASB", p.aSb, "area per SB width (grids)");
    row("wALU", p.wAlu, "ALU datapath width (tracks)");
    row("wLRF", p.wLrf, "width of 2 LRFs (tracks)");
    row("wSP", p.wSp, "scratchpad datapath width (tracks)");
    row("h", p.h, "datapath height (tracks)", 0);
    row("v0", p.v0, "wire velocity (tracks/FO4)", 0);
    row("tcyc", p.tCyc, "FO4s per clock", 0);
    row("tmux", p.tMux, "2:1 mux delay (FO4)", 0);
    row("EALU", p.eAlu, "ALU op energy (Ew)", 0);
    row("ESRAM", p.eSram, "SRAM access energy per bit (Ew)");
    row("ESB", p.eSb, "SB access energy per bit (Ew)", 0);
    row("ELRF", p.eLrf, "LRF access energy (Ew)", 0);
    row("ESP", p.eSp, "SP access energy (Ew)", 0);
    row("T", p.tMem, "memory latency (cycles)", 0);
    row("b", p.b, "data width (bits)", 0);
    row("GSRF", p.gSrf, "SRF bank width per N (words)", 2);
    row("GSB", p.gSb, "SB accesses per ALU op", 2);
    row("GCOMM", p.gComm, "COMM units per N", 2);
    row("GSP", p.gSp, "SP units per N", 2);
    row("I0", p.i0, "initial VLIW width (bits)", 0);
    row("IN", p.iN, "VLIW width per FU (bits)", 0);
    row("LC", p.lC, "initial cluster SBs", 0);
    row("LO", p.lO, "non-cluster SBs", 0);
    row("LN", p.lN, "SBs per N", 2);
    row("rm", p.rM, "SRF words per ALU per latency cycle", 0);
    row("ruc", p.rUc, "microcode instructions", 0);
    std::printf("Table 1: model parameters (Imagine-measured)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
