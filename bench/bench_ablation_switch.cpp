/**
 * @file
 * Ablation (Section 6 future work): non-fully-connected crossbars.
 * Sweeps crossbar connectivity and shows how sparse switches extend
 * the area- and energy-efficient range of intracluster scaling, at
 * the price of extra forwarding latency below 50% connectivity.
 */
#include <cstdio>

#include "common/table.h"
#include "core/design.h"
#include "workloads/suite.h"

int
main()
{
    using namespace sps;
    using sps::TextTable;

    for (double conn : {1.0, 0.75, 0.5, 0.25}) {
        vlsi::Params p = vlsi::Params::sparseSwitch(conn);
        vlsi::CostModel model(p);
        TextTable t;
        t.header({"N", "area/ALU (norm to N=5 full)", "energy/op",
                  "t_intra (FO4)"});
        vlsi::CostModel full;
        double ref_a = full.areaPerAlu({8, 5});
        double ref_e = full.energyPerAluOp({8, 5});
        for (int n : {5, 10, 16, 32, 64}) {
            vlsi::MachineSize s{8, n};
            t.row({std::to_string(n),
                   TextTable::num(model.areaPerAlu(s) / ref_a, 3),
                   TextTable::num(model.energyPerAluOp(s) / ref_e, 3),
                   TextTable::num(model.intraDelayFo4(n), 1)});
        }
        std::printf("Crossbar connectivity %.2f%s\n\n%s\n", conn,
                    conn < 0.5 ? "  (+1 forwarding stage)" : "",
                    t.toString().c_str());
    }

    // Effect on kernel throughput at the penalized design point.
    core::StreamProcessorDesign full({8, 16});
    core::StreamProcessorDesign sparse(
        {8, 16}, vlsi::Params::sparseSwitch(0.25));
    std::printf("Kernel throughput at C=8 N=16 (fft): full %.2f vs "
                "sparse(0.25) %.2f ALU ops/cycle/cluster\n",
                full.compile(workloads::fftKernel()).aluOpsPerCycle(),
                sparse.compile(workloads::fftKernel())
                    .aluOpsPerCycle());
    return 0;
}
