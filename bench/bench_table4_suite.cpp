/**
 * @file
 * Table 4: the kernel and application suite, with the data class and
 * reconstructed descriptions.
 */
#include <cstdio>

#include "common/table.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

int
main()
{
    using sps::TextTable;
    TextTable t;
    t.header({"Kernel/App", "Data", "Description"});
    auto dc = [](const sps::kernel::Kernel &k) {
        return k.dataClass == sps::kernel::DataClass::Half16 ? "16b"
                                                             : "FP/32b";
    };
    using namespace sps::workloads;
    t.row({"Blocksad", dc(blocksadKernel()),
           "sum-of-absolute-differences for image processing"});
    t.row({"Convolve", dc(convolveKernel()),
           "convolution filter for image processing"});
    t.row({"Update", dc(updateKernel()), "matrix block update for QRD"});
    t.row({"FFT", dc(fftKernel()), "radix-4 fast Fourier transform"});
    t.row({"Noise", dc(noiseKernel()),
           "Perlin noise for a procedural marble shader"});
    t.row({"Irast", dc(irastKernel()), "triangle span rasterizer"});
    for (const auto &app : appSuite())
        t.row({app.name, "-", app.description});
    std::printf("Table 4: kernels and applications\n\n%s\n",
                t.toString().c_str());
    return 0;
}
