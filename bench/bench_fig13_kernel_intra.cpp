/**
 * @file
 * Figure 13: kernel inner-loop speedup under intracluster scaling
 * (C = 8, N in {2, 5, 10, 14}), relative to C=8 N=5, from static
 * analysis of compiled kernels.
 */
#include <cstdio>

#include "common/table.h"
#include "core/eval_engine.h"
#include "core/experiments.h"

int
main()
{
    using sps::TextTable;
    auto &eng = sps::core::EvalEngine::global();
    auto data = sps::core::kernelIntraSpeedups({2, 5, 10, 14}, 8,
                                               &eng);
    TextTable t;
    std::vector<std::string> head{"Kernel"};
    for (int n : data.axis)
        head.push_back("N=" + std::to_string(n));
    t.header(head);
    for (const auto &series : data.series) {
        std::vector<std::string> row{series.name};
        for (double v : series.values)
            row.push_back(TextTable::num(v, 2));
        t.row(row);
    }
    std::printf("Figure 13: intracluster kernel speedup "
                "(C=8, vs C=8 N=5)\n\n%s\n",
                t.toString().c_str());
    return 0;
}
