/**
 * @file
 * Design-space exploration: sweep the (C, N) grid, print area /
 * power / peak-rate Pareto information, and pick the best machine
 * under an area and power budget -- the workflow the paper's Section
 * 4 analysis supports.
 */
#include <cstdio>

#include "common/table.h"
#include "core/scaling_study.h"

int
main()
{
    using namespace sps;
    using sps::TextTable;

    auto grid = core::designGrid({8, 16, 32, 64, 128},
                                 {2, 5, 10, 16});
    auto points = core::evaluateDesigns(grid);

    TextTable t;
    t.header({"C", "N", "ALUs", "mm^2", "W", "peak GOPS",
              "area/ALU vs C8N5", "COMM lat"});
    core::StreamProcessorDesign base({8, 5});
    for (const auto &pt : points) {
        t.row({std::to_string(pt.size.clusters),
               std::to_string(pt.size.alusPerCluster),
               std::to_string(pt.size.totalAlus()),
               TextTable::num(pt.areaMm2, 1),
               TextTable::num(pt.powerWatts, 2),
               TextTable::num(pt.peakGops, 0),
               TextTable::num(pt.areaPerAlu / base.areaPerAlu(), 3),
               std::to_string(pt.commLatencyCycles)});
    }
    std::printf("Design space at 45nm:\n\n%s\n", t.toString().c_str());

    for (double area : {50.0, 150.0}) {
        bool found = false;
        core::DesignPoint best =
            core::bestUnderBudget(points, area, 10.0, found);
        if (found) {
            std::printf("Best under %.0f mm^2 / 10 W: C=%d N=%d "
                        "(%.0f peak GOPS, %.1f mm^2, %.2f W)\n",
                        area, best.size.clusters,
                        best.size.alusPerCluster, best.peakGops,
                        best.areaMm2, best.powerWatts);
        } else {
            std::printf("No design fits %.0f mm^2 / 10 W\n", area);
        }
    }
    return 0;
}
