/**
 * @file
 * FFT study: validate the radix-4 FFT numerically against a direct
 * DFT, then reproduce the paper's short-stream comparison -- FFT1K
 * vs FFT4K across cluster counts (Section 5.3: at large C the
 * difference "is due purely to stream length").
 */
#include <cmath>
#include <cstdio>

#include "common/prng.h"
#include "core/design.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

int
main()
{
    using namespace sps;

    // --- Numerics: kernel-built FFT vs direct DFT ------------------
    Prng rng(42);
    std::vector<float> signal;
    for (int i = 0; i < 2 * 1024; ++i)
        signal.push_back(rng.uniform(-1.0f, 1.0f));
    auto fft = workloads::runFftOnInterpreter(8, signal);
    auto dft = workloads::refFft(signal);
    double err = 0.0, mag = 0.0;
    for (size_t i = 0; i < fft.size(); ++i) {
        err += (fft[i] - dft[i]) * (fft[i] - dft[i]);
        mag += dft[i] * dft[i];
    }
    std::printf("1024-point FFT vs direct DFT: relative error %.2e\n",
                std::sqrt(err / mag));

    // --- Short-stream effects: FFT1K vs FFT4K ----------------------
    std::printf("\n%-12s %10s %10s %12s\n", "machine", "FFT1K",
                "FFT4K", "FFT4K/FFT1K");
    for (auto size :
         {vlsi::MachineSize{8, 5}, vlsi::MachineSize{32, 5},
          vlsi::MachineSize{128, 5}, vlsi::MachineSize{128, 10}}) {
        core::StreamProcessorDesign d(size);
        double gf[2];
        int idx = 0;
        for (int points : {1024, 4096}) {
            sim::StreamProcessor proc = d.makeProcessor();
            stream::StreamProgram prog =
                workloads::buildFftApp(size, proc.srf(), points);
            sim::SimResult r = proc.run(prog);
            gf[idx++] = r.gops(d.tech().clockGHz());
        }
        std::printf("C=%-3d N=%-4d %8.1f %10.1f %11.2fx\n",
                    size.clusters, size.alusPerCluster, gf[0], gf[1],
                    gf[1] / gf[0]);
    }
    std::printf("\nLonger streams amortize per-call overheads: the "
                "FFT4K advantage grows with C.\n");
    return 0;
}
