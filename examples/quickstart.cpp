/**
 * @file
 * Quickstart: write a kernel with the KernelC-like builder, run it on
 * the functional interpreter, compile it for two machine sizes, and
 * query the VLSI cost model -- the whole public API in one page.
 */
#include <cstdio>

#include "core/design.h"
#include "interp/interpreter.h"
#include "kernel/builder.h"

int
main()
{
    using namespace sps;

    // 1. Write a kernel: y = a*x + b over a stream of (x, a, b).
    kernel::KernelBuilder b("saxpy");
    int in = b.inStream("xab", 3);
    int out = b.outStream("y", 1);
    auto x = b.sbRead(in, 0);
    auto a = b.sbRead(in, 1);
    auto c = b.sbRead(in, 2);
    b.sbWrite(out, b.fadd(b.fmul(a, x), c));
    kernel::Kernel saxpy = b.build();

    // 2. Execute it functionally on an 8-cluster machine.
    std::vector<float> data;
    for (int i = 0; i < 16; ++i) {
        data.push_back(static_cast<float>(i)); // x
        data.push_back(2.0f);                  // a
        data.push_back(1.0f);                  // b
    }
    auto result = interp::runKernel(
        saxpy, 8, {interp::StreamData::fromFloats(data, 3)});
    std::printf("saxpy(3) = %.1f (expect 7.0)\n",
                result.outputs[0].toFloats()[3]);

    // 3. Compile it for two machine sizes and compare throughput.
    for (auto size : {vlsi::MachineSize{8, 5},
                      vlsi::MachineSize{128, 10}}) {
        core::StreamProcessorDesign d(size);
        sched::CompiledKernel ck = d.compile(saxpy);
        std::printf(
            "C=%3d N=%2d: II=%d, unroll=%d, %5.1f ALU ops/cycle "
            "machine-wide\n",
            size.clusters, size.alusPerCluster, ck.ii, ck.unroll,
            ck.aluOpsPerCycle() * size.clusters);
    }

    // 4. Ask the VLSI model what the machines cost.
    for (auto size : {vlsi::MachineSize{8, 5},
                      vlsi::MachineSize{128, 10}}) {
        core::StreamProcessorDesign d(size);
        std::printf("C=%3d N=%2d: %6.1f mm^2, %5.2f W, peak %6.0f "
                    "GOPS @ %.1f GHz\n",
                    size.clusters, size.alusPerCluster, d.areaMm2(),
                    d.powerWatts(), d.peakGops(),
                    d.tech().clockGHz());
    }
    return 0;
}
