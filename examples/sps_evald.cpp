/**
 * @file
 * sps_evald: the resident evaluation daemon. One process owns the
 * warm tiers -- the in-memory request map, the shared schedule cache,
 * and (with --cache-dir) the disk-backed result store -- and serves
 * any number of concurrent sweep clients over a Unix-domain socket
 * (svc::EvalServer). Identical points requested by different clients
 * are simulated once; results stream back bit-identical to an
 * in-process run, so client-side CSVs match byte for byte.
 *
 *   sps_evald --sock /tmp/sps-eval.sock --cache-dir cache \
 *             [--max-cache-bytes N] [--threads N] \
 *             [--reap-tmp-seconds S]
 *
 * --max-cache-bytes bounds the cache directory: every write that
 * crosses the budget evicts least-recently-used entries. At startup
 * the daemon also reaps `.tmp.*` debris older than --reap-tmp-seconds
 * (default 900) left by writers that died mid-put.
 *
 * The daemon runs until SIGINT/SIGTERM, then prints its cumulative
 * cache-tier counters and exits cleanly.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/eval_engine.h"
#include "svc/eval_server.h"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void
handleStop(int)
{
    g_stop.store(true);
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --sock PATH [--cache-dir DIR] "
        "[--max-cache-bytes N] [--threads N] [--reap-tmp-seconds S]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string sock;
    std::string cache_dir;
    unsigned long long max_cache_bytes = 0;
    int threads = 0;
    unsigned long long reap_tmp_seconds = 900;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--sock") == 0)
            sock = value("--sock");
        else if (std::strcmp(argv[i], "--cache-dir") == 0)
            cache_dir = value("--cache-dir");
        else if (std::strcmp(argv[i], "--max-cache-bytes") == 0)
            max_cache_bytes =
                std::strtoull(value("--max-cache-bytes"), nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0)
            threads = std::atoi(value("--threads"));
        else if (std::strcmp(argv[i], "--reap-tmp-seconds") == 0)
            reap_tmp_seconds = std::strtoull(
                value("--reap-tmp-seconds"), nullptr, 10);
        else
            return usage(argv[0]);
    }
    if (sock.empty())
        return usage(argv[0]);

    sps::core::EvalEngine engine(threads);

    // The store must outlive the global schedule cache, whose
    // destruction order against locals is not ours to control, so it
    // is deliberately leaked (same pattern as bench_export_all).
    sps::store::ResultStore *store = nullptr;
    if (!cache_dir.empty()) {
        store = new sps::store::ResultStore(cache_dir,
                                            max_cache_bytes);
        uint64_t reaped = store->reapOrphanTemps(reap_tmp_seconds);
        if (reaped > 0)
            std::fprintf(stderr,
                         "sps_evald: reaped %llu orphaned temp "
                         "file(s) from %s\n",
                         static_cast<unsigned long long>(reaped),
                         cache_dir.c_str());
        store->sweepToBudget();
        engine.cache().attachStore(store);
    }

    sps::svc::EvalService service(&engine, store);
    try {
        sps::svc::EvalServer server(&service, sock);
        std::signal(SIGINT, handleStop);
        std::signal(SIGTERM, handleStop);
        std::printf("sps_evald: listening on %s (%d threads%s%s)\n",
                    sock.c_str(), engine.threadCount(),
                    cache_dir.empty() ? "" : ", cache ",
                    cache_dir.c_str());
        std::fflush(stdout);
        while (!g_stop.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        server.stop();
        auto sc = server.counters();
        std::printf("sps_evald: served %llu request(s) over %llu "
                    "connection(s), %llu protocol error(s)\n",
                    static_cast<unsigned long long>(sc.requests),
                    static_cast<unsigned long long>(sc.connections),
                    static_cast<unsigned long long>(
                        sc.protocolErrors));
        for (const auto &row : sps::svc::cacheStatsRows(
                 engine.cache().counters(), store, &service))
            std::printf("  %s %s = %s\n", row[0].c_str(),
                        row[1].c_str(), row[2].c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sps_evald: %s\n", e.what());
        return 1;
    }
    return 0;
}
