/**
 * @file
 * sps_evald: the resident evaluation daemon. One process owns the
 * warm tiers -- the in-memory request map, the shared schedule cache,
 * and (with --cache-dir) the disk-backed result store -- and serves
 * any number of concurrent sweep clients over a Unix-domain socket
 * (svc::EvalServer). Identical points requested by different clients
 * are simulated once; results stream back bit-identical to an
 * in-process run, so client-side CSVs match byte for byte.
 *
 *   sps_evald --sock /tmp/sps-eval.sock --cache-dir cache \
 *             [--max-cache-bytes N] [--threads N] \
 *             [--reap-tmp-seconds S] \
 *             [--metrics-out FILE] [--metrics-interval SEC] \
 *             [--slow-request-ms MS] [--span-trace FILE] \
 *             [--quiet | -v]
 *
 * --max-cache-bytes bounds the cache directory: every write that
 * crosses the budget evicts least-recently-used entries. At startup
 * the daemon also reaps `.tmp.*` debris older than --reap-tmp-seconds
 * (default 900) left by writers that died mid-put.
 *
 * Telemetry is always on (an obs::MetricsRegistry wired through the
 * server, service, store, and schedule cache -- the hot path is a
 * handful of relaxed atomics), so any client can scrape a live
 * MetricsRequest snapshot at any time. --metrics-out dumps the
 * snapshot to FILE in the Prometheus text format (plus FILE.json;
 * both written temp-then-rename, so a concurrent reader never sees a
 * partial dump) at shutdown and, with --metrics-interval, every SEC
 * seconds while serving. --slow-request-ms logs one structured warn()
 * line per request slower than MS milliseconds end to end.
 * --span-trace exports the most recent request spans as a Chrome
 * trace_event file on shutdown (open in Perfetto, one track per
 * pipeline stage).
 *
 * The daemon runs until SIGINT/SIGTERM, then prints its cumulative
 * cache-tier counters and exits cleanly.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/log.h"
#include "core/eval_engine.h"
#include "obs/metrics.h"
#include "svc/eval_server.h"
#include "trace/chrome_trace.h"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void
handleStop(int)
{
    g_stop.store(true);
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --sock PATH [--cache-dir DIR] "
        "[--max-cache-bytes N] [--threads N] [--reap-tmp-seconds S] "
        "[--metrics-out FILE] [--metrics-interval SEC] "
        "[--slow-request-ms MS] [--span-trace FILE] [--quiet | -v]\n",
        argv0);
    return 2;
}

/** Write `text` to `path` via temp-file-plus-rename, so a reader
 *  polling the path never observes a partial dump. */
bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(text.data(),
                               static_cast<std::streamsize>(
                                   text.size())))
            return false;
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

/** One snapshot, two renditions: FILE (Prometheus text) and
 *  FILE.json, rendered from the same snapshot so they agree. */
void
dumpMetrics(const sps::obs::MetricsRegistry &registry,
            const std::string &path)
{
    sps::obs::MetricsSnapshot snap = registry.snapshot();
    if (!writeFileAtomic(path, sps::obs::renderPrometheus(snap)))
        sps::warn("sps_evald: cannot write metrics to %s",
                  path.c_str());
    if (!writeFileAtomic(path + ".json", sps::obs::renderJson(snap)))
        sps::warn("sps_evald: cannot write metrics to %s.json",
                  path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string sock;
    std::string cache_dir;
    std::string metrics_out;
    std::string span_trace;
    unsigned long long max_cache_bytes = 0;
    unsigned long long metrics_interval = 0;
    unsigned long long slow_request_ms = 0;
    int threads = 0;
    unsigned long long reap_tmp_seconds = 900;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                sps::fatal("sps_evald: %s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--sock") == 0)
            sock = value("--sock");
        else if (std::strcmp(argv[i], "--cache-dir") == 0)
            cache_dir = value("--cache-dir");
        else if (std::strcmp(argv[i], "--max-cache-bytes") == 0)
            max_cache_bytes =
                std::strtoull(value("--max-cache-bytes"), nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0)
            threads = std::atoi(value("--threads"));
        else if (std::strcmp(argv[i], "--reap-tmp-seconds") == 0)
            reap_tmp_seconds = std::strtoull(
                value("--reap-tmp-seconds"), nullptr, 10);
        else if (std::strcmp(argv[i], "--metrics-out") == 0)
            metrics_out = value("--metrics-out");
        else if (std::strcmp(argv[i], "--metrics-interval") == 0)
            metrics_interval = std::strtoull(
                value("--metrics-interval"), nullptr, 10);
        else if (std::strcmp(argv[i], "--slow-request-ms") == 0)
            slow_request_ms = std::strtoull(
                value("--slow-request-ms"), nullptr, 10);
        else if (std::strcmp(argv[i], "--span-trace") == 0)
            span_trace = value("--span-trace");
        else if (std::strcmp(argv[i], "--quiet") == 0)
            sps::setLogLevel(sps::LogLevel::Quiet);
        else if (std::strcmp(argv[i], "-v") == 0)
            sps::setLogLevel(sps::LogLevel::Debug);
        else
            return usage(argv[0]);
    }
    if (sock.empty())
        return usage(argv[0]);

    sps::core::EvalEngine engine(threads);

    // The registry is read by store/cache/service hot paths and by
    // collector callbacks at snapshot time; like the store below it
    // must outlive the global schedule cache, so it is deliberately
    // leaked.
    auto *registry = new sps::obs::MetricsRegistry();

    // The store must outlive the global schedule cache, whose
    // destruction order against locals is not ours to control, so it
    // is deliberately leaked (same pattern as bench_export_all).
    sps::store::ResultStore *store = nullptr;
    if (!cache_dir.empty()) {
        store = new sps::store::ResultStore(cache_dir,
                                            max_cache_bytes);
        uint64_t reaped = store->reapOrphanTemps(reap_tmp_seconds);
        if (reaped > 0)
            sps::inform(
                "sps_evald: reaped %llu orphaned temp file(s) from %s",
                static_cast<unsigned long long>(reaped),
                cache_dir.c_str());
        store->sweepToBudget();
        store->attachMetrics(registry);
        engine.cache().attachStore(store);
    }
    engine.cache().attachMetrics(registry);

    sps::svc::EvalService service(&engine, store);
    try {
        sps::svc::ServerTelemetry telemetry;
        telemetry.registry = registry;
        telemetry.slowRequestUs = slow_request_ms * 1000;
        sps::svc::EvalServer server(&service, sock, telemetry);
        std::signal(SIGINT, handleStop);
        std::signal(SIGTERM, handleStop);
        sps::inform("sps_evald: listening on %s (%d threads%s%s)",
                    sock.c_str(), engine.threadCount(),
                    cache_dir.empty() ? "" : ", cache ",
                    cache_dir.c_str());
        // Readiness watchers tail the log; don't sit in stdio buffers.
        std::fflush(stdout);

        auto last_dump = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            if (metrics_interval > 0 && !metrics_out.empty()) {
                auto now = std::chrono::steady_clock::now();
                if (now - last_dump >=
                    std::chrono::seconds(metrics_interval)) {
                    dumpMetrics(*registry, metrics_out);
                    last_dump = now;
                }
            }
        }
        server.stop();
        if (!metrics_out.empty())
            dumpMetrics(*registry, metrics_out);
        if (!span_trace.empty()) {
            sps::trace::Tracer tracer;
            server.spanRecorder().toTracer(&tracer);
            if (!sps::trace::writeChromeTrace(tracer, span_trace))
                sps::warn("sps_evald: cannot write span trace to %s",
                          span_trace.c_str());
        }
        auto sc = server.counters();
        sps::inform("sps_evald: served %llu request(s) over %llu "
                    "connection(s), %llu protocol error(s)",
                    static_cast<unsigned long long>(sc.requests),
                    static_cast<unsigned long long>(sc.connections),
                    static_cast<unsigned long long>(
                        sc.protocolErrors));
        for (const auto &row : sps::svc::cacheStatsRows(
                 engine.cache().counters(), store, &service))
            sps::inform("  %s %s = %s", row[0].c_str(),
                        row[1].c_str(), row[2].c_str());
    } catch (const std::exception &e) {
        sps::warn("sps_evald: %s", e.what());
        return 1;
    }
    return 0;
}
