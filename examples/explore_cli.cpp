/**
 * @file
 * Command-line machine explorer: `explore_cli <C> <N> [app]`.
 * Prints the full design report for a (C, N) stream processor --
 * VLSI costs, per-kernel compiled schedules with unit utilization --
 * and, when an application name is given, simulates it and renders
 * the stream-operation timeline.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/design.h"
#include "sched/schedule_dump.h"
#include "sim/timeline.h"
#include "workloads/suite.h"

int
main(int argc, char **argv)
{
    using namespace sps;
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <clusters> <alus-per-cluster> "
                     "[RENDER|DEPTH|CONV|QRD|FFT1K|FFT4K]\n",
                     argv[0]);
        return 2;
    }
    int c = std::atoi(argv[1]);
    int n = std::atoi(argv[2]);
    if (c < 1 || n < 1) {
        std::fprintf(stderr, "bad machine size %s x %s\n", argv[1],
                     argv[2]);
        return 2;
    }

    core::StreamProcessorDesign d({c, n});
    auto area = d.area();
    std::printf("Stream processor C=%d N=%d (%d ALUs) at %s\n", c, n,
                c * n, d.tech().name);
    std::printf("  area   %.1f mm^2 (SRF %.0f%%, clusters %.0f%%, "
                "uc %.0f%%, switch %.0f%%)\n",
                d.areaMm2(), 100 * area.srf / area.total(),
                100 * area.clusters / area.total(),
                100 * area.microcontroller / area.total(),
                100 * area.interclusterSwitch / area.total());
    std::printf("  power  %.2f W at full issue; peak %.0f GOPS\n",
                d.powerWatts(), d.peakGops());
    std::printf("  delay  intra %.1f FO4 (+%d stages), inter %.1f FO4 "
                "(%d cycles)\n\n",
                d.delay().intraFo4,
                d.costModel().intraPipeStages(n), d.delay().interFo4,
                d.costModel().interCommCycles({c, n}));

    std::printf("Compiled kernel suite:\n");
    for (const auto &entry : workloads::kernelSuite()) {
        if (!d.machine().canExecute(*entry.kernel)) {
            std::printf("  %-9s (not executable at N=%d)\n",
                        entry.name.c_str(), n);
            continue;
        }
        sched::CompiledKernel ck = d.compile(*entry.kernel);
        std::printf("  %-9s II=%-3d unroll=%d stages=%-2d "
                    "%5.2f ops/cycle/cluster\n",
                    entry.name.c_str(), ck.ii, ck.unroll, ck.stages,
                    ck.aluOpsPerCycle());
    }

    if (argc >= 4) {
        const char *app_name = argv[3];
        for (const auto &app : workloads::appSuite()) {
            if (std::strcmp(app.name.c_str(), app_name) != 0)
                continue;
            sim::StreamProcessor proc = d.makeProcessor();
            stream::StreamProgram prog =
                app.build(d.size(), proc.srf());
            sim::SimResult r = proc.run(prog);
            std::printf("\n%s: %lld cycles, %.1f GOPS, memory busy "
                        "%.0f%%, SRF high water %lld/%lld words\n\n",
                        app.name.c_str(),
                        static_cast<long long>(r.cycles),
                        r.gops(d.tech().clockGHz()),
                        100 * r.memBusyFraction(),
                        static_cast<long long>(r.srfHighWater),
                        static_cast<long long>(
                            proc.srf().capacityWords));
            std::printf("%s", sim::renderTimeline(r).c_str());
            return 0;
        }
        std::fprintf(stderr, "unknown app %s\n", app_name);
        return 2;
    }
    return 0;
}
