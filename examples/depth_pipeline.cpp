/**
 * @file
 * DEPTH end to end: run the stereo block-matching kernels on real
 * (synthetic) image data through the functional interpreter, then
 * simulate the full strip-mined application across machine sizes.
 * Demonstrates the producer-consumer locality story: only the raw
 * images and the final disparity map touch external memory.
 */
#include <cstdio>

#include "common/prng.h"
#include "core/design.h"
#include "interp/interpreter.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

int
main()
{
    using namespace sps;

    // --- Functional slice: match one strip of a stereo pair --------
    const int strip_records = 64; // 64 x 8-pixel blocks
    const int strip_px = strip_records * workloads::kPixelsPerRecord;
    Prng rng(2026);
    std::vector<int32_t> ref_px(strip_px), cand_px(strip_px);
    for (int i = 0; i < strip_px; ++i)
        ref_px[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.below(200)) + 20;
    // The candidate image is the reference shifted right by 3 pixels
    // plus a little noise, so disparity 3 should win most blocks.
    for (int i = 0; i < strip_px; ++i) {
        int32_t v = (i >= 3) ? ref_px[static_cast<size_t>(i - 3)] : 0;
        cand_px[static_cast<size_t>(i)] =
            v + static_cast<int32_t>(rng.below(3)) - 1;
    }
    auto res = interp::runKernel(
        workloads::blocksadKernel(), 8,
        {interp::StreamData::fromInts(ref_px, 8),
         interp::StreamData::fromInts(cand_px, 8)});
    auto sad = res.outputs[0].toInts();
    int64_t best_d0 = 0, best_d3 = 0;
    for (size_t r = 0; r < sad.size() / 4; ++r) {
        if (sad[4 * r + 2] == sad[4 * r])
            ++best_d0;
        if (sad[4 * r + 2] == sad[4 * r + 1])
            ++best_d3;
    }
    std::printf("functional strip: %lld/%d blocks best at d=0, "
                "%lld at d=3\n",
                static_cast<long long>(best_d0), strip_records,
                static_cast<long long>(best_d3));

    // --- Timing: the full 512x384 application across machines ------
    std::printf("\n%-14s %12s %9s %9s %8s\n", "machine", "cycles",
                "GOPS", "speedup", "mem busy");
    int64_t base_cycles = 0;
    for (auto size :
         {vlsi::MachineSize{8, 5}, vlsi::MachineSize{32, 5},
          vlsi::MachineSize{128, 5}, vlsi::MachineSize{128, 10}}) {
        core::StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog =
            workloads::buildDepth(size, proc.srf());
        sim::SimResult r = proc.run(prog);
        if (base_cycles == 0)
            base_cycles = r.cycles;
        std::printf("C=%-3d N=%-6d %12lld %9.1f %8.1fx %7.0f%%\n",
                    size.clusters, size.alusPerCluster,
                    static_cast<long long>(r.cycles),
                    r.gops(d.tech().clockGHz()),
                    static_cast<double>(base_cycles) / r.cycles,
                    100.0 * r.memBusyFraction());
    }
    return 0;
}
