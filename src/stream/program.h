/**
 * @file
 * StreamC-level program representation: an application is a sequence
 * of stream loads, stores, and kernel calls over declared streams.
 * Programs are authored (by the workload builders) already
 * strip-mined for a concrete machine; the simulator derives
 * dependences from stream usage and executes with a scoreboard, so
 * independent loads overlap kernel execution exactly as on Imagine.
 */
#ifndef SPS_STREAM_PROGRAM_H
#define SPS_STREAM_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/ir.h"

namespace sps::stream {

/** A declared stream. */
struct StreamInfo
{
    std::string name;
    int recordWords = 1;
    int64_t records = 0;
    /** True if the stream's home is external memory. */
    bool memoryBacked = false;
    /**
     * True for 16-bit data: two subwords pack into each memory word,
     * halving external transfer size (SRF occupancy is unchanged --
     * clusters operate on unpacked words).
     */
    bool packed16 = false;

    int64_t words() const { return records * recordWords; }
    /** Words moved over the external memory interface. */
    int64_t memWords() const { return packed16 ? words() / 2 : words(); }
};

/** Kind of one stream-level operation. */
enum class OpKind { Load, Store, Kernel };

/** One stream-level operation. */
struct StreamOp
{
    OpKind kind = OpKind::Kernel;
    /** Load/Store: the stream moved. */
    int stream = -1;
    /** Kernel: the kernel and its stream arguments in port order. */
    const kernel::Kernel *k = nullptr;
    std::vector<int> args;
    /** Records processed (driver-stream records for kernel calls). */
    int64_t records = 0;
    std::string label;
};

/**
 * A stream program. Built by application code, executed by sim::.
 */
class StreamProgram
{
  public:
    explicit StreamProgram(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<StreamInfo> &streams() const { return streams_; }
    const std::vector<StreamOp> &ops() const { return ops_; }

    /** Declare a stream; returns its id. */
    int declareStream(const std::string &name, int record_words,
                      int64_t records, bool memory_backed = false,
                      bool packed16 = false);

    /** Load a memory-backed stream into the SRF. */
    void load(int stream);

    /** Store an SRF stream back to memory. */
    void store(int stream);

    /**
     * Call a kernel. `args` bind program streams to the kernel's
     * stream ports in declaration order. `driver_records` overrides
     * the iteration count (default: the bound length-driver stream's
     * record count).
     */
    void callKernel(const kernel::Kernel *k, std::vector<int> args,
                    int64_t driver_records = -1);

    /** Total records each stream op processes (for stats/tests). */
    int64_t totalKernelRecords() const;

  private:
    std::string name_;
    std::vector<StreamInfo> streams_;
    std::vector<StreamOp> ops_;
};

} // namespace sps::stream

#endif // SPS_STREAM_PROGRAM_H
