/**
 * @file
 * StreamC-level program representation: an application is a sequence
 * of stream loads, stores, and kernel calls over declared streams.
 * Programs are authored (by the workload builders) already
 * strip-mined for a concrete machine; the simulator derives
 * dependences from stream usage and executes with a scoreboard, so
 * independent loads overlap kernel execution exactly as on Imagine.
 */
#ifndef SPS_STREAM_PROGRAM_H
#define SPS_STREAM_PROGRAM_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/ir.h"

namespace sps::stream {

/** A declared stream. */
struct StreamInfo
{
    std::string name;
    int recordWords = 1;
    int64_t records = 0;
    /** True if the stream's home is external memory. */
    bool memoryBacked = false;
    /**
     * True for 16-bit data: two subwords pack into each memory word,
     * halving external transfer size (SRF occupancy is unchanged --
     * clusters operate on unpacked words).
     */
    bool packed16 = false;
    /**
     * External-memory layout: word address of the first record
     * (assigned from the program's layout cursor on declaration for
     * memory-backed streams, on first store otherwise; overridable
     * via setMemLayout) and the start-to-start distance between
     * consecutive records in memory words (0 = dense).
     */
    int64_t memBaseWord = -1;
    int64_t memStrideWords = 0;

    int64_t words() const { return records * recordWords; }
    /** Words moved over the external memory interface. */
    int64_t memWords() const { return packed16 ? words() / 2 : words(); }
    /** Contiguous memory words per record (packed16 halves them). */
    int64_t memRecordWords() const
    {
        return packed16 ? std::max(1, recordWords / 2) : recordWords;
    }
    /** Memory words spanned from the first to past the last record. */
    int64_t memFootprintWords() const;
};

/** Kind of one stream-level operation. */
enum class OpKind { Load, Store, Kernel };

/** One stream-level operation. */
struct StreamOp
{
    OpKind kind = OpKind::Kernel;
    /** Load/Store: the stream moved. */
    int stream = -1;
    /** Kernel: the kernel and its stream arguments in port order. */
    const kernel::Kernel *k = nullptr;
    std::vector<int> args;
    /** Records processed (driver-stream records for kernel calls). */
    int64_t records = 0;
    std::string label;
    /**
     * Load/Store: resolved memory addressing, carried on the op so
     * the memory system can generate real word addresses -- base word
     * address, start-to-start record stride, and contiguous words per
     * record (all in memory words, i.e. after 16-bit packing).
     */
    int64_t memBase = 0;
    int64_t memStride = 0;
    int64_t memRecordWords = 1;
};

/**
 * A stream program. Built by application code, executed by sim::.
 */
class StreamProgram
{
  public:
    explicit StreamProgram(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<StreamInfo> &streams() const { return streams_; }
    const std::vector<StreamOp> &ops() const { return ops_; }

    /** Declare a stream; returns its id. */
    int declareStream(const std::string &name, int record_words,
                      int64_t records, bool memory_backed = false,
                      bool packed16 = false);

    /**
     * Override a stream's external-memory layout before its first
     * load/store: record stride in memory words (0 = dense), and
     * optionally an explicit base word address (-1 keeps the
     * program-assigned base). A stride smaller than the record length
     * reads overlapping windows; a stride of `channels` words aliases
     * every record start onto one memory channel.
     */
    void setMemLayout(int stream, int64_t stride_words,
                      int64_t base_word = -1);

    /** Load a memory-backed stream into the SRF. */
    void load(int stream);

    /** Store an SRF stream back to memory. */
    void store(int stream);

    /**
     * Call a kernel. `args` bind program streams to the kernel's
     * stream ports in declaration order. `driver_records` overrides
     * the iteration count (default: the bound length-driver stream's
     * record count).
     */
    void callKernel(const kernel::Kernel *k, std::vector<int> args,
                    int64_t driver_records = -1);

    /** Total records each stream op processes (for stats/tests). */
    int64_t totalKernelRecords() const;

  private:
    /** Assign a base address from the layout cursor if unassigned. */
    void ensureMemLayout(int stream);

    std::string name_;
    std::vector<StreamInfo> streams_;
    std::vector<StreamOp> ops_;
    /** Next free external-memory word (bump allocator). */
    int64_t memCursor_ = 0;
};

/**
 * Structural fingerprint of a whole stream program: name, every
 * declared stream (lengths, packing, memory layout), and every op
 * (kind, bound streams, called-kernel fingerprints, record counts,
 * resolved addressing). Two programs with equal fingerprints simulate
 * identically on a given machine, so the fingerprint keys persisted
 * simulation results in the content-addressed result store.
 */
uint64_t programFingerprint(const StreamProgram &p);

} // namespace sps::stream

#endif // SPS_STREAM_PROGRAM_H
