/**
 * @file
 * Dependence analysis over a stream program: RAW / WAR / WAW edges
 * derived from each operation's stream reads and writes, plus
 * last-use information for SRF deallocation.
 */
#ifndef SPS_STREAM_DEPS_H
#define SPS_STREAM_DEPS_H

#include <vector>

#include "stream/program.h"

namespace sps::stream {

/** Per-op dependence and liveness facts. */
struct ProgramDeps
{
    /** For each op, indices of ops it must wait for. */
    std::vector<std::vector<int>> deps;
    /** For each op, streams whose last use this op is. */
    std::vector<std::vector<int>> lastUseOf;
    /** Streams each op reads / writes (kernel inputs / outputs). */
    std::vector<std::vector<int>> reads;
    std::vector<std::vector<int>> writes;
};

/** Analyze the program. */
ProgramDeps analyzeDeps(const StreamProgram &prog);

} // namespace sps::stream

#endif // SPS_STREAM_DEPS_H
