#include "stream/stripmine.h"

#include <algorithm>

#include "common/log.h"

namespace sps::stream {

BatchPlan
planBatches(int64_t total_records, int64_t words_per_record,
            const srf::SrfModel &srf, int64_t align, double srf_fraction)
{
    SPS_ASSERT(total_records >= 0 && words_per_record >= 1 && align >= 1,
               "bad strip-mine request");
    BatchPlan plan;
    if (total_records == 0) {
        plan.recordsPerBatch = 0;
        plan.batches = 0;
        return plan;
    }
    auto budget = static_cast<int64_t>(
        static_cast<double>(srf.capacityWords) * srf_fraction);
    int64_t max_records = budget / words_per_record;
    // At least one aligned group per batch, even if it oversubscribes
    // a tiny SRF: the simulator's allocator will flag real overflow.
    max_records = std::max(max_records, align);
    int64_t aligned = (max_records / align) * align;
    if (aligned < align)
        aligned = align;
    plan.recordsPerBatch = std::min(total_records, aligned);
    plan.batches = (total_records + plan.recordsPerBatch - 1) /
                   plan.recordsPerBatch;
    return plan;
}

} // namespace sps::stream
