#include "stream/program.h"

#include "common/log.h"

namespace sps::stream {

int
StreamProgram::declareStream(const std::string &name, int record_words,
                             int64_t records, bool memory_backed,
                             bool packed16)
{
    SPS_ASSERT(record_words >= 1 && records >= 0,
               "bad stream declaration %s", name.c_str());
    streams_.push_back(StreamInfo{name, record_words, records,
                                  memory_backed, packed16});
    return static_cast<int>(streams_.size()) - 1;
}

void
StreamProgram::load(int stream)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(streams_.size()),
               "bad stream id %d", stream);
    SPS_ASSERT(streams_[stream].memoryBacked,
               "load of non-memory stream %s",
               streams_[stream].name.c_str());
    StreamOp op;
    op.kind = OpKind::Load;
    op.stream = stream;
    op.records = streams_[stream].records;
    op.label = "load " + streams_[stream].name;
    ops_.push_back(std::move(op));
}

void
StreamProgram::store(int stream)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(streams_.size()),
               "bad stream id %d", stream);
    StreamOp op;
    op.kind = OpKind::Store;
    op.stream = stream;
    op.records = streams_[stream].records;
    op.label = "store " + streams_[stream].name;
    ops_.push_back(std::move(op));
}

void
StreamProgram::callKernel(const kernel::Kernel *k, std::vector<int> args,
                          int64_t driver_records)
{
    SPS_ASSERT(k != nullptr, "null kernel");
    SPS_ASSERT(args.size() == k->streams.size(),
               "kernel %s takes %zu streams, got %zu", k->name.c_str(),
               k->streams.size(), args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        int s = args[i];
        SPS_ASSERT(s >= 0 && s < static_cast<int>(streams_.size()),
                   "kernel %s arg %zu: bad stream id %d",
                   k->name.c_str(), i, s);
        SPS_ASSERT(streams_[s].recordWords == k->streams[i].recordWords,
                   "kernel %s arg %zu (%s): record width %d != %d",
                   k->name.c_str(), i, streams_[s].name.c_str(),
                   streams_[s].recordWords, k->streams[i].recordWords);
    }
    StreamOp op;
    op.kind = OpKind::Kernel;
    op.k = k;
    op.args = std::move(args);
    op.records = driver_records >= 0
                     ? driver_records
                     : streams_[op.args[k->lengthDriver]].records;
    op.label = k->name;
    ops_.push_back(std::move(op));
}

int64_t
StreamProgram::totalKernelRecords() const
{
    int64_t total = 0;
    for (const StreamOp &op : ops_)
        if (op.kind == OpKind::Kernel)
            total += op.records;
    return total;
}

} // namespace sps::stream
