#include "stream/program.h"

#include "common/fnv.h"
#include "common/log.h"
#include "kernel/fingerprint.h"

namespace sps::stream {

int64_t
StreamInfo::memFootprintWords() const
{
    if (records <= 0)
        return 0;
    int64_t stride =
        memStrideWords > 0 ? memStrideWords : memRecordWords();
    return (records - 1) * stride + memRecordWords();
}

int
StreamProgram::declareStream(const std::string &name, int record_words,
                             int64_t records, bool memory_backed,
                             bool packed16)
{
    SPS_ASSERT(record_words >= 1 && records >= 0,
               "bad stream declaration %s", name.c_str());
    streams_.push_back(StreamInfo{name, record_words, records,
                                  memory_backed, packed16});
    int id = static_cast<int>(streams_.size()) - 1;
    // Memory-backed streams get their home address up front; streams
    // first materialized in the SRF get one on first store.
    if (memory_backed)
        ensureMemLayout(id);
    return id;
}

void
StreamProgram::setMemLayout(int stream, int64_t stride_words,
                            int64_t base_word)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(streams_.size()),
               "bad stream id %d", stream);
    SPS_ASSERT(stride_words >= 0, "bad stride %lld",
               static_cast<long long>(stride_words));
    StreamInfo &info = streams_[static_cast<size_t>(stream)];
    info.memStrideWords = stride_words;
    if (base_word >= 0) {
        info.memBaseWord = base_word;
    } else if (info.memBaseWord >= 0) {
        // Re-assign from the cursor so the strided footprint does not
        // collide with later streams.
        info.memBaseWord = -1;
        ensureMemLayout(stream);
    }
}

void
StreamProgram::ensureMemLayout(int stream)
{
    StreamInfo &info = streams_[static_cast<size_t>(stream)];
    if (info.memBaseWord >= 0)
        return;
    info.memBaseWord = memCursor_;
    memCursor_ += info.memFootprintWords();
}

void
StreamProgram::load(int stream)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(streams_.size()),
               "bad stream id %d", stream);
    SPS_ASSERT(streams_[stream].memoryBacked,
               "load of non-memory stream %s",
               streams_[stream].name.c_str());
    ensureMemLayout(stream);
    const StreamInfo &info = streams_[static_cast<size_t>(stream)];
    StreamOp op;
    op.kind = OpKind::Load;
    op.stream = stream;
    op.records = info.records;
    op.label = "load " + info.name;
    op.memBase = info.memBaseWord;
    op.memStride = info.memStrideWords;
    op.memRecordWords = info.memRecordWords();
    ops_.push_back(std::move(op));
}

void
StreamProgram::store(int stream)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(streams_.size()),
               "bad stream id %d", stream);
    ensureMemLayout(stream);
    const StreamInfo &info = streams_[static_cast<size_t>(stream)];
    StreamOp op;
    op.kind = OpKind::Store;
    op.stream = stream;
    op.records = info.records;
    op.label = "store " + info.name;
    op.memBase = info.memBaseWord;
    op.memStride = info.memStrideWords;
    op.memRecordWords = info.memRecordWords();
    ops_.push_back(std::move(op));
}

void
StreamProgram::callKernel(const kernel::Kernel *k, std::vector<int> args,
                          int64_t driver_records)
{
    SPS_ASSERT(k != nullptr, "null kernel");
    SPS_ASSERT(args.size() == k->streams.size(),
               "kernel %s takes %zu streams, got %zu", k->name.c_str(),
               k->streams.size(), args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        int s = args[i];
        SPS_ASSERT(s >= 0 && s < static_cast<int>(streams_.size()),
                   "kernel %s arg %zu: bad stream id %d",
                   k->name.c_str(), i, s);
        SPS_ASSERT(streams_[s].recordWords == k->streams[i].recordWords,
                   "kernel %s arg %zu (%s): record width %d != %d",
                   k->name.c_str(), i, streams_[s].name.c_str(),
                   streams_[s].recordWords, k->streams[i].recordWords);
    }
    StreamOp op;
    op.kind = OpKind::Kernel;
    op.k = k;
    op.args = std::move(args);
    op.records = driver_records >= 0
                     ? driver_records
                     : streams_[op.args[k->lengthDriver]].records;
    op.label = k->name;
    ops_.push_back(std::move(op));
}

int64_t
StreamProgram::totalKernelRecords() const
{
    int64_t total = 0;
    for (const StreamOp &op : ops_)
        if (op.kind == OpKind::Kernel)
            total += op.records;
    return total;
}

uint64_t
programFingerprint(const StreamProgram &p)
{
    Fnv f;
    f.mix(p.name());
    f.mix(static_cast<uint64_t>(p.streams().size()));
    for (const StreamInfo &s : p.streams()) {
        f.mix(s.name);
        f.mix(static_cast<uint64_t>(s.recordWords));
        f.mix(static_cast<uint64_t>(s.records));
        f.mix(static_cast<uint64_t>(s.memoryBacked ? 1 : 0));
        f.mix(static_cast<uint64_t>(s.packed16 ? 1 : 0));
        f.mix(static_cast<uint64_t>(s.memBaseWord));
        f.mix(static_cast<uint64_t>(s.memStrideWords));
    }
    f.mix(static_cast<uint64_t>(p.ops().size()));
    for (const StreamOp &op : p.ops()) {
        f.mix(static_cast<uint64_t>(op.kind));
        f.mix(static_cast<uint64_t>(op.stream));
        f.mix(op.k ? kernel::fingerprint(*op.k) : 0);
        f.mix(static_cast<uint64_t>(op.args.size()));
        for (int a : op.args)
            f.mix(static_cast<uint64_t>(a));
        f.mix(static_cast<uint64_t>(op.records));
        f.mix(op.label);
        f.mix(static_cast<uint64_t>(op.memBase));
        f.mix(static_cast<uint64_t>(op.memStride));
        f.mix(static_cast<uint64_t>(op.memRecordWords));
    }
    return f.h;
}

} // namespace sps::stream
