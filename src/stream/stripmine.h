/**
 * @file
 * Strip-mining arithmetic: applications process one batch of the
 * dataset at a time so the working set fits in the SRF (Section 2.2:
 * "Programs are strip-mined so that the processor reads only one
 * batch of the input dataset at a time"). Workload builders use these
 * helpers to size batches per machine.
 */
#ifndef SPS_STREAM_STRIPMINE_H
#define SPS_STREAM_STRIPMINE_H

#include <cstdint>

#include "srf/srf.h"

namespace sps::stream {

/** A batching decision. */
struct BatchPlan
{
    int64_t recordsPerBatch = 0;
    int64_t batches = 0;
    /** True if the full dataset fits in one batch. */
    bool singleBatch() const { return batches == 1; }
};

/**
 * Size batches for a working set of `words_per_record` SRF words per
 * processed record (inputs + outputs + intermediates, including
 * double-buffering if the caller wants overlap).
 *
 * @param total_records dataset size
 * @param words_per_record SRF words needed per in-flight record
 * @param srf the machine's SRF
 * @param align batch sizes are rounded to a multiple of this
 *        (usually the cluster count)
 * @param srf_fraction fraction of SRF capacity usable for data
 */
BatchPlan planBatches(int64_t total_records, int64_t words_per_record,
                      const srf::SrfModel &srf, int64_t align,
                      double srf_fraction = 0.9);

} // namespace sps::stream

#endif // SPS_STREAM_STRIPMINE_H
