#include "stream/deps.h"

#include <algorithm>
#include <set>

#include "common/log.h"

namespace sps::stream {

ProgramDeps
analyzeDeps(const StreamProgram &prog)
{
    const auto &ops = prog.ops();
    const int n_streams = static_cast<int>(prog.streams().size());
    ProgramDeps out;
    out.deps.resize(ops.size());
    out.lastUseOf.resize(ops.size());
    out.reads.resize(ops.size());
    out.writes.resize(ops.size());

    for (size_t i = 0; i < ops.size(); ++i) {
        const StreamOp &op = ops[i];
        switch (op.kind) {
          case OpKind::Load:
            out.writes[i].push_back(op.stream);
            break;
          case OpKind::Store:
            out.reads[i].push_back(op.stream);
            break;
          case OpKind::Kernel:
            for (size_t p = 0; p < op.args.size(); ++p) {
                if (op.k->streams[p].dir == kernel::PortDir::In)
                    out.reads[i].push_back(op.args[p]);
                else
                    out.writes[i].push_back(op.args[p]);
            }
            break;
        }
    }

    std::vector<int> last_writer(static_cast<size_t>(n_streams), -1);
    std::vector<std::vector<int>> readers_since(
        static_cast<size_t>(n_streams));
    for (size_t i = 0; i < ops.size(); ++i) {
        std::set<int> d;
        for (int s : out.reads[i]) {
            if (last_writer[static_cast<size_t>(s)] >= 0)
                d.insert(last_writer[static_cast<size_t>(s)]);
            readers_since[static_cast<size_t>(s)].push_back(
                static_cast<int>(i));
        }
        for (int s : out.writes[i]) {
            if (last_writer[static_cast<size_t>(s)] >= 0)
                d.insert(last_writer[static_cast<size_t>(s)]);
            for (int r : readers_since[static_cast<size_t>(s)])
                d.insert(r);
            last_writer[static_cast<size_t>(s)] = static_cast<int>(i);
            readers_since[static_cast<size_t>(s)].clear();
        }
        d.erase(static_cast<int>(i));
        out.deps[i].assign(d.begin(), d.end());
    }

    // Last use per stream.
    std::vector<int> last_use(static_cast<size_t>(n_streams), -1);
    for (size_t i = 0; i < ops.size(); ++i) {
        for (int s : out.reads[i])
            last_use[static_cast<size_t>(s)] = static_cast<int>(i);
        for (int s : out.writes[i])
            last_use[static_cast<size_t>(s)] = static_cast<int>(i);
    }
    for (int s = 0; s < n_streams; ++s) {
        if (last_use[static_cast<size_t>(s)] >= 0)
            out.lastUseOf[static_cast<size_t>(
                              last_use[static_cast<size_t>(s)])]
                .push_back(s);
    }
    return out;
}

} // namespace sps::stream
