/**
 * @file
 * Bottleneck attribution: post-process a run's op timeline (with its
 * per-op issue metadata) and the exact busy-interval sets of the
 * memory pins and the microcontroller into a stall waterfall
 * (analysis/bottleneck_report.h) that assigns every cycle of the run
 * to exactly one limiting cause.
 *
 * Attribution model: cycles where the microcontroller was busy are
 * kernel-bound (overlapped memory traffic rides along for free);
 * cycles where only the memory pins were busy are memory-bound. The
 * remaining quiet cycles are attributed by intersecting the idle set
 * with the per-op wait windows recorded at issue, in fixed priority
 * order: scoreboard-full waits, then dependence waits of issued ops
 * (trailing memory latency), then host-channel serialization; any
 * remainder is reported as unattributed idle. Pure integer interval
 * arithmetic -- deterministic for a given timeline.
 */
#ifndef SPS_ANALYSIS_BOTTLENECK_H
#define SPS_ANALYSIS_BOTTLENECK_H

#include <cstdint>
#include <vector>

#include "analysis/bottleneck_report.h"
#include "sim/stats.h"

namespace sps::analysis {

/** One half-open [start, end) interval of simulated cycles. */
struct CycleInterval
{
    int64_t start = 0;
    int64_t end = 0;
};

/** Sort and merge possibly-overlapping intervals into a disjoint,
 *  sorted set (empty intervals dropped). */
std::vector<CycleInterval> mergeIntervals(std::vector<CycleInterval> v);

/** Total length of a disjoint interval set. */
int64_t intervalLength(const std::vector<CycleInterval> &v);

/** Intersection of two disjoint sorted sets. */
std::vector<CycleInterval> intersectIntervals(
    const std::vector<CycleInterval> &a,
    const std::vector<CycleInterval> &b);

/** Set difference a \ b of two disjoint sorted sets. */
std::vector<CycleInterval> subtractIntervals(
    const std::vector<CycleInterval> &a,
    const std::vector<CycleInterval> &b);

/**
 * Attribute every cycle of a run. `memBusy` and `ucBusy` are the
 * run's busy intervals (any order, overlaps allowed; they are merged
 * internally); `timeline` supplies the per-op wait windows.
 */
BottleneckReport attributeBottleneck(
    const std::vector<sim::OpInterval> &timeline,
    std::vector<CycleInterval> memBusy,
    std::vector<CycleInterval> ucBusy, int64_t cycles);

} // namespace sps::analysis

#endif // SPS_ANALYSIS_BOTTLENECK_H
