#include "analysis/bottleneck.h"

#include <algorithm>

namespace sps::analysis {

std::vector<CycleInterval>
mergeIntervals(std::vector<CycleInterval> v)
{
    std::sort(v.begin(), v.end(),
              [](const CycleInterval &a, const CycleInterval &b) {
                  return a.start < b.start;
              });
    std::vector<CycleInterval> out;
    for (const CycleInterval &iv : v) {
        if (iv.end <= iv.start)
            continue;
        if (!out.empty() && iv.start <= out.back().end)
            out.back().end = std::max(out.back().end, iv.end);
        else
            out.push_back(iv);
    }
    return out;
}

int64_t
intervalLength(const std::vector<CycleInterval> &v)
{
    int64_t n = 0;
    for (const CycleInterval &iv : v)
        n += iv.end - iv.start;
    return n;
}

std::vector<CycleInterval>
intersectIntervals(const std::vector<CycleInterval> &a,
                   const std::vector<CycleInterval> &b)
{
    std::vector<CycleInterval> out;
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        int64_t lo = std::max(a[i].start, b[j].start);
        int64_t hi = std::min(a[i].end, b[j].end);
        if (lo < hi)
            out.push_back({lo, hi});
        if (a[i].end < b[j].end)
            ++i;
        else
            ++j;
    }
    return out;
}

std::vector<CycleInterval>
subtractIntervals(const std::vector<CycleInterval> &a,
                  const std::vector<CycleInterval> &b)
{
    std::vector<CycleInterval> out;
    size_t j = 0;
    for (CycleInterval iv : a) {
        while (j < b.size() && b[j].end <= iv.start)
            ++j;
        int64_t cur = iv.start;
        size_t k = j;
        while (k < b.size() && b[k].start < iv.end) {
            if (b[k].start > cur)
                out.push_back({cur, b[k].start});
            cur = std::max(cur, b[k].end);
            ++k;
        }
        if (cur < iv.end)
            out.push_back({cur, iv.end});
    }
    return out;
}

BottleneckReport
attributeBottleneck(const std::vector<sim::OpInterval> &timeline,
                    std::vector<CycleInterval> memBusy,
                    std::vector<CycleInterval> ucBusy, int64_t cycles)
{
    BottleneckReport r;
    r.valid = true;

    std::vector<CycleInterval> mem = mergeIntervals(std::move(memBusy));
    std::vector<CycleInterval> uc = mergeIntervals(std::move(ucBusy));

    // Busy attribution: microcontroller-busy cycles are kernel-bound
    // whether or not memory overlapped them; memory-only cycles are
    // memory-bound. This matches the SimCounters cycle breakdown
    // (kernelBound == kernelOnly + overlap, memoryBound == memOnly).
    r.kernelBoundCycles = intervalLength(uc);
    r.memoryBoundCycles =
        intervalLength(mem) - intervalLength(intersectIntervals(mem, uc));

    // Quiet cycles: the complement of all busy intervals in [0, cycles).
    std::vector<CycleInterval> busy;
    busy.reserve(mem.size() + uc.size());
    busy.insert(busy.end(), mem.begin(), mem.end());
    busy.insert(busy.end(), uc.begin(), uc.end());
    std::vector<CycleInterval> idle =
        subtractIntervals({{0, cycles}}, mergeIntervals(std::move(busy)));

    // Per-op wait windows from the issue metadata.
    std::vector<CycleInterval> sb, host, dep;
    for (const sim::OpInterval &op : timeline) {
        if (op.issueStart > op.sbWaitStart)
            sb.push_back({op.sbWaitStart, op.issueStart});
        if (op.issueEnd > op.issueStart)
            host.push_back({op.issueStart, op.issueEnd});
        if (op.readyCycle > op.issueEnd)
            dep.push_back({op.issueEnd, op.readyCycle});
    }

    // Attribute quiet cycles by priority; each window class claims its
    // intersection with the still-unattributed idle set.
    auto claim = [&idle](std::vector<CycleInterval> windows) {
        std::vector<CycleInterval> w =
            mergeIntervals(std::move(windows));
        std::vector<CycleInterval> got = intersectIntervals(idle, w);
        idle = subtractIntervals(idle, got);
        return intervalLength(got);
    };
    r.scoreboardCycles = claim(std::move(sb));
    r.dependenceCycles = claim(std::move(dep));
    r.hostIssueCycles = claim(std::move(host));
    r.idleCycles = intervalLength(idle);
    return r;
}

} // namespace sps::analysis
