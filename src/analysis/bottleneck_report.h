/**
 * @file
 * Per-run bottleneck attribution: every cycle of a simulated run
 * assigned to exactly one category, producing the stall waterfall the
 * perf work optimizes against. Filled by analysis::attributeBottleneck
 * (analysis/bottleneck.h) from the op timeline, the per-op issue
 * metadata, and the exact busy-interval sets of the run.
 *
 * Categories (they sum exactly to SimResult::cycles):
 *  - kernelBound:  the microcontroller was executing a kernel (alone
 *                  or overlapped with memory) -- more ALUs or a better
 *                  schedule is the only way to shrink these.
 *  - memoryBound:  only the memory pins were busy -- DRAM bandwidth
 *                  limits these cycles.
 *  - dependence:   nothing was busy; the next op had issued but was
 *                  waiting for a predecessor's completion (typically
 *                  trailing memory latency after the pins went quiet).
 *  - scoreboard:   nothing was busy; issue was blocked on a full
 *                  scoreboard waiting for an in-flight op to retire.
 *  - hostIssue:    nothing was busy; the host channel was still
 *                  serializing the next stream instruction.
 *  - idle:         remaining unattributed quiet cycles.
 *
 * This header is pure data so sim/stats.h can embed a report on every
 * SimResult without a library dependency.
 */
#ifndef SPS_ANALYSIS_BOTTLENECK_REPORT_H
#define SPS_ANALYSIS_BOTTLENECK_REPORT_H

#include <cstdint>

namespace sps::analysis {

/** The stall-attribution waterfall of one run. */
struct BottleneckReport
{
    /** False until attributeBottleneck filled the report. */
    bool valid = false;

    int64_t kernelBoundCycles = 0;
    int64_t memoryBoundCycles = 0;
    int64_t dependenceCycles = 0;
    int64_t scoreboardCycles = 0;
    int64_t hostIssueCycles = 0;
    int64_t idleCycles = 0;

    /** Total cycles attributed (== SimResult::cycles). */
    int64_t
    totalCycles() const
    {
        return kernelBoundCycles + memoryBoundCycles +
               dependenceCycles + scoreboardCycles + hostIssueCycles +
               idleCycles;
    }

    /**
     * The limiting resource: the hardware resource behind the largest
     * category. Ties break toward the earlier category in waterfall
     * order (kernel, memory, dependence, scoreboard, host, idle).
     */
    const char *
    limitingResource() const
    {
        const int64_t v[] = {kernelBoundCycles,  memoryBoundCycles,
                             dependenceCycles,   scoreboardCycles,
                             hostIssueCycles,    idleCycles};
        static const char *kNames[] = {
            "cluster ALUs (kernel-bound)",
            "DRAM bandwidth (memory-bound)",
            "dependences / memory latency",
            "scoreboard depth",
            "host issue bandwidth",
            "idle",
        };
        int best = 0;
        for (int i = 1; i < 6; ++i)
            if (v[i] > v[best])
                best = i;
        return kNames[best];
    }

    double
    fraction(int64_t part) const
    {
        int64_t t = totalCycles();
        return t > 0 ? static_cast<double>(part) / t : 0.0;
    }
};

} // namespace sps::analysis

#endif // SPS_ANALYSIS_BOTTLENECK_REPORT_H
