#include "vlsi/cost_model.h"

#include <cmath>

#include "common/log.h"

namespace sps::vlsi {

DerivedCounts
CostModel::derive(int n) const
{
    SPS_ASSERT(n >= 1, "need at least one ALU per cluster, got %d", n);
    DerivedCounts d;
    // A cluster always contains at least one COMM and one SP unit; the
    // G* ratios add more as N grows. The ceiling is what produces the
    // small-N overhead visible in Figure 6 ("the COMM and SP units
    // contribute to larger area per ALU").
    d.nComm = std::max(1, static_cast<int>(std::ceil(p_.gComm * n)));
    d.nSp = std::max(1, static_cast<int>(std::ceil(p_.gSp * n)));
    d.nFu = n + d.nSp + d.nComm;
    d.nClSb = static_cast<int>(std::ceil(p_.lC + p_.lN * n));
    d.nSb = static_cast<int>(p_.lO) + d.nClSb;
    d.pe = d.nClSb;
    return d;
}

// --------------------------------------------------------------------
// Area
// --------------------------------------------------------------------

double
CostModel::srfBankArea(int n) const
{
    DerivedCounts d = derive(n);
    // Stream storage: rm*T*N words of b bits per bank, single-ported
    // SRAM. Streambuffers: each of the NSB buffers double-buffers two
    // blocks of GSRF*N*b bits in every bank; ASB is the (much larger)
    // per-bit cost of the dual-ported, widely-muxed SB storage.
    double storage = p_.rM * p_.tMem * n * p_.b * p_.aSram;
    double sbs = 2.0 * p_.gSrf * n * p_.b * d.nSb * p_.aSb;
    return storage + sbs;
}

double
CostModel::intraSwitchArea(int n) const
{
    DerivedCounts d = derive(n);
    double nfu = d.nFu;
    double rnfu = std::sqrt(nfu);
    double b = p_.b;
    // Grid floorplan (Figure 5): sqrt(NFU) x sqrt(NFU) array of FUs.
    // Rows carry one b-bit output bus per FU in the row; columns carry
    // one b-bit input bus per LRF in the column. First term: bus tracks
    // over the FU datapaths and cross-points; second term: external
    // port (Pe) buses entering the grid. A non-fully-connected
    // crossbar (Section 6 future work) populates only a fraction of
    // the cross-points and needs proportionally fewer bus tracks.
    double conn = p_.xbarConnectivity;
    double core = conn * nfu * (rnfu * b) *
                  (2.0 * rnfu * b + p_.h + 2.0 * p_.wAlu + 2.0 * p_.wLrf);
    double ports = rnfu * (3.0 * rnfu * b + p_.h + p_.wAlu + p_.wLrf) *
                   d.pe * b;
    return core + ports;
}

double
CostModel::clusterArea(int n) const
{
    DerivedCounts d = derive(n);
    // Every FU (ALU, SP, COMM) is fed by two LRFs; only the N ALUs and
    // NSP scratchpads add their own datapath area (the COMM unit is
    // just bus drivers, accounted in the switches).
    double lrfs = d.nFu * p_.wLrf * p_.h;
    double alus = n * p_.wAlu * p_.h;
    double sps = d.nSp * p_.wSp * p_.h;
    return lrfs + alus + sps + intraSwitchArea(n);
}

double
CostModel::interSwitchArea(MachineSize size) const
{
    DerivedCounts d = derive(size.alusPerCluster);
    double c = size.clusters;
    double rc = std::sqrt(c);
    double busw = d.nComm * p_.b * rc; // bus tracks along one grid edge
    // Clusters sit in a sqrt(C) x sqrt(C) grid (Figure 4). Each row and
    // column carries sqrt(C)*NCOMM b-bit buses past every cluster+SRF
    // bank, plus the cross-point area where rows meet columns.
    double aclst = clusterArea(size.alusPerCluster);
    double asrf = srfBankArea(size.alusPerCluster);
    return p_.xbarConnectivity * p_.kCommArea * c * d.nComm * p_.b *
           rc * (busw + 2.0 * std::sqrt(aclst) + std::sqrt(asrf));
}

double
CostModel::microcontrollerArea(MachineSize size) const
{
    DerivedCounts d = derive(size.alusPerCluster);
    double ibits = p_.i0 + p_.iN * d.nFu;
    double storage = p_.rUc * ibits * p_.aSram;
    // Instruction distribution: IN*NFU control bits are driven down
    // sqrt(C) column trunks and across sqrt(C) rows of the cluster
    // grid; total wire length ~ sqrt(C) * chip edge, one track each.
    double distribution =
        p_.iN * d.nFu * std::sqrt(static_cast<double>(size.clusters)) *
        chipEdge(size);
    return storage + distribution;
}

double
CostModel::chipEdge(MachineSize size) const
{
    double c = size.clusters;
    double aclst = clusterArea(size.alusPerCluster);
    double asrf = srfBankArea(size.alusPerCluster);
    return std::sqrt(c * aclst + c * asrf + interSwitchArea(size));
}

AreaBreakdown
CostModel::area(MachineSize size) const
{
    AreaBreakdown a;
    a.srf = size.clusters * srfBankArea(size.alusPerCluster);
    a.clusters = size.clusters * clusterArea(size.alusPerCluster);
    a.interclusterSwitch = interSwitchArea(size);
    a.microcontroller = microcontrollerArea(size);
    return a;
}

double
CostModel::areaPerAlu(MachineSize size) const
{
    return area(size).total() / size.totalAlus();
}

// --------------------------------------------------------------------
// Delay
// --------------------------------------------------------------------

double
CostModel::intraDelayFo4(int n) const
{
    DerivedCounts d = derive(n);
    double nfu = d.nFu;
    double rnfu = std::sqrt(nfu);
    double b = p_.b;
    // Wire: worst case crosses the cluster's width plus height.
    double wire = rnfu *
                  (p_.h + 2.0 * rnfu * b + p_.wAlu + p_.wLrf + rnfu * b) /
                  p_.v0;
    // Logic: a sqrt(NFU):1 mux per row-column intersection
    // (log2(sqrt(NFU)) 2:1 levels) plus one extra 2:1 mux per row
    // traversed down the column. Sparse crossbars select among fewer
    // sources per intersection.
    double fan = std::max(2.0, rnfu * p_.xbarConnectivity);
    double logic = p_.tMux * (std::log2(fan) + rnfu);
    return wire + logic;
}

double
CostModel::interDelayFo4(MachineSize size) const
{
    DerivedCounts d = derive(size.alusPerCluster);
    double c = size.clusters;
    // Crossing the cluster grid horizontally then vertically, plus the
    // source cluster's intracluster traversal, plus mux logic to select
    // among C*NCOMM row buses and sqrt(C) column hops.
    double wire = 2.0 * chipEdge(size) / p_.v0;
    double logic = p_.tMux * (std::log2(c * d.nComm) + std::sqrt(c));
    return intraDelayFo4(size.alusPerCluster) + wire + logic;
}

DelayResult
CostModel::delay(MachineSize size) const
{
    return DelayResult{intraDelayFo4(size.alusPerCluster),
                       interDelayFo4(size)};
}

int
CostModel::intraPipeStages(int n) const
{
    // Half a cycle is budgeted for intracluster communication (as in the
    // Imagine design); each additional half... no: each additional full
    // cycle of delay becomes an extra pipeline stage on ALU operations
    // and streambuffer reads.
    double budget = p_.tCyc / 2.0;
    double t = intraDelayFo4(n);
    if (t <= budget)
        return 0;
    return static_cast<int>(std::ceil((t - budget) / p_.tCyc));
}

int
CostModel::interCommCycles(MachineSize size) const
{
    // Intercluster traversals are fully pipelined in whole cycles.
    return std::max(
        1, static_cast<int>(std::ceil(interDelayFo4(size) / p_.tCyc)));
}

// --------------------------------------------------------------------
// Energy
// --------------------------------------------------------------------

double
CostModel::intraCommEnergyPerBit(int n) const
{
    DerivedCounts d = derive(n);
    double rnfu = std::sqrt(static_cast<double>(d.nFu));
    double b = p_.b;
    // Row bus across the grid width plus column bus down the height;
    // bus-track contributions shrink with crossbar connectivity.
    double conn = p_.xbarConnectivity;
    return p_.eW * (rnfu * (p_.h + conn * 2.0 * rnfu * b) +
                    2.0 * rnfu *
                        (p_.wAlu + p_.wLrf + conn * rnfu * b));
}

double
CostModel::interCommEnergyPerBit(MachineSize size) const
{
    DerivedCounts d = derive(size.alusPerCluster);
    double rc = std::sqrt(static_cast<double>(size.clusters));
    double aclst = clusterArea(size.alusPerCluster);
    double asrf = srfBankArea(size.alusPerCluster);
    // One row bus and one destination-column bus switch, each running
    // past sqrt(C) clusters, SRF banks, and the COMM bus tracks.
    return p_.eW * 2.0 * rc *
           (std::sqrt(aclst) + std::sqrt(asrf) +
            p_.xbarConnectivity * d.nComm * p_.b * rc);
}

double
CostModel::srfBankEnergy(int n) const
{
    DerivedCounts d = derive(n);
    (void)d;
    // Stream storage: GSB*N words/cycle move through blocks of
    // GSRF*N words, i.e. GSB/GSRF array accesses per cycle, each
    // costing ESRAM per bit of capacity. SB side: GSB*N*b bits/cycle
    // are read or written; half of the accesses (the reads) also cross
    // the intracluster switch.
    double storage = p_.rM * p_.tMem * n * p_.b * p_.eSram *
                     (p_.gSb / p_.gSrf);
    double sbs = p_.gSb * n * p_.b *
                 (p_.eSb + intraCommEnergyPerBit(n) / 2.0);
    return storage + sbs;
}

double
CostModel::clusterEnergy(int n) const
{
    DerivedCounts d = derive(n);
    // Per cycle at full issue: every FU reads its LRFs, the N ALUs each
    // perform an operation, the SPs are accessed, and every FU result
    // crosses the intracluster switch.
    return d.nFu * p_.eLrf + n * p_.eAlu + d.nSp * p_.eSp +
           p_.kIntraEnergy * d.nFu * p_.b * intraCommEnergyPerBit(n);
}

double
CostModel::microcontrollerEnergy(MachineSize size) const
{
    DerivedCounts d = derive(size.alusPerCluster);
    double ibits = p_.i0 + p_.iN * d.nFu;
    // One VLIW fetch per cycle from the full microcode array, plus
    // driving IN*NFU control wires across the cluster grid.
    double fetch = p_.rUc * ibits * p_.eSram;
    double distribution =
        p_.kDistEnergy * p_.iN * d.nFu * p_.eW *
        std::sqrt(static_cast<double>(size.clusters)) * chipEdge(size);
    return fetch + distribution;
}

EnergyBreakdown
CostModel::energy(MachineSize size) const
{
    EnergyBreakdown e;
    e.srf = size.clusters * srfBankEnergy(size.alusPerCluster);
    e.clusters = size.clusters * clusterEnergy(size.alusPerCluster);
    e.microcontroller = microcontrollerEnergy(size);
    // GCOMM*N*C intercluster words move per N*C ALU operations.
    e.interclusterComm = p_.kCommEnergy * p_.gComm * size.alusPerCluster *
                         size.clusters * p_.b *
                         interCommEnergyPerBit(size);
    return e;
}

double
CostModel::energyPerAluOp(MachineSize size) const
{
    return energy(size).total() / size.totalAlus();
}

} // namespace sps::vlsi
