#include "vlsi/sweep.h"

#include "common/log.h"
#include "common/parallel.h"

namespace sps::vlsi {

namespace {

SweepPoint
evaluate(const CostModel &model, MachineSize size)
{
    SweepPoint pt;
    pt.size = size;
    pt.area = model.area(size);
    pt.energy = model.energy(size);
    pt.delay = model.delay(size);
    pt.areaPerAlu = model.areaPerAlu(size);
    pt.energyPerAluOp = model.energyPerAluOp(size);
    return pt;
}

/** Evaluate all sizes on the pool; out[i] always belongs to sizes[i]. */
std::vector<SweepPoint>
evaluateAll(const CostModel &model,
            const std::vector<MachineSize> &sizes, ThreadPool *pool)
{
    ThreadPool &p = pool ? *pool : ThreadPool::shared();
    std::vector<SweepPoint> out(sizes.size());
    p.forEach(sizes.size(),
              [&](size_t i) { out[i] = evaluate(model, sizes[i]); });
    return out;
}

} // namespace

std::vector<double>
SweepSeries::normalizedAreaPerAlu() const
{
    SPS_ASSERT(refIndex < points.size(), "bad reference index");
    std::vector<double> out;
    out.reserve(points.size());
    double ref = points[refIndex].areaPerAlu;
    for (const auto &pt : points)
        out.push_back(pt.areaPerAlu / ref);
    return out;
}

std::vector<double>
SweepSeries::normalizedEnergyPerOp() const
{
    SPS_ASSERT(refIndex < points.size(), "bad reference index");
    std::vector<double> out;
    out.reserve(points.size());
    double ref = points[refIndex].energyPerAluOp;
    for (const auto &pt : points)
        out.push_back(pt.energyPerAluOp / ref);
    return out;
}

SweepSeries
intraclusterSweep(const CostModel &model, int c,
                  const std::vector<int> &n_values, int ref_n,
                  ThreadPool *pool)
{
    SweepSeries series;
    std::vector<MachineSize> sizes;
    bool found_ref = false;
    for (int n : n_values) {
        if (n == ref_n) {
            series.refIndex = sizes.size();
            found_ref = true;
        }
        sizes.push_back(MachineSize{c, n});
    }
    SPS_ASSERT(found_ref, "reference N=%d not in sweep range", ref_n);
    series.points = evaluateAll(model, sizes, pool);
    return series;
}

SweepSeries
interclusterSweep(const CostModel &model, int n,
                  const std::vector<int> &c_values, int ref_c,
                  ThreadPool *pool)
{
    SweepSeries series;
    std::vector<MachineSize> sizes;
    bool found_ref = false;
    for (int c : c_values) {
        if (c == ref_c) {
            series.refIndex = sizes.size();
            found_ref = true;
        }
        sizes.push_back(MachineSize{c, n});
    }
    SPS_ASSERT(found_ref, "reference C=%d not in sweep range", ref_c);
    series.points = evaluateAll(model, sizes, pool);
    return series;
}

SweepSeries
combinedSweep(const CostModel &model, int n,
              const std::vector<int> &c_values, MachineSize ref,
              ThreadPool *pool)
{
    SweepSeries series;
    std::vector<MachineSize> sizes;
    for (int c : c_values)
        sizes.push_back(MachineSize{c, n});
    // Normalize against an external reference: stash it as an extra
    // trailing point so normalized*() can use it, then drop it.
    sizes.push_back(ref);
    series.points = evaluateAll(model, sizes, pool);
    series.refIndex = series.points.size() - 1;
    return series;
}

std::vector<int>
defaultIntraRange()
{
    return {1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 32,
            48, 64, 96, 128};
}

std::vector<int>
defaultInterRange()
{
    return {8, 16, 32, 64, 128, 256};
}

} // namespace sps::vlsi
