#include "vlsi/sweep.h"

#include "common/log.h"

namespace sps::vlsi {

namespace {

SweepPoint
evaluate(const CostModel &model, MachineSize size)
{
    SweepPoint pt;
    pt.size = size;
    pt.area = model.area(size);
    pt.energy = model.energy(size);
    pt.delay = model.delay(size);
    pt.areaPerAlu = model.areaPerAlu(size);
    pt.energyPerAluOp = model.energyPerAluOp(size);
    return pt;
}

} // namespace

std::vector<double>
SweepSeries::normalizedAreaPerAlu() const
{
    SPS_ASSERT(refIndex < points.size(), "bad reference index");
    std::vector<double> out;
    out.reserve(points.size());
    double ref = points[refIndex].areaPerAlu;
    for (const auto &pt : points)
        out.push_back(pt.areaPerAlu / ref);
    return out;
}

std::vector<double>
SweepSeries::normalizedEnergyPerOp() const
{
    SPS_ASSERT(refIndex < points.size(), "bad reference index");
    std::vector<double> out;
    out.reserve(points.size());
    double ref = points[refIndex].energyPerAluOp;
    for (const auto &pt : points)
        out.push_back(pt.energyPerAluOp / ref);
    return out;
}

SweepSeries
intraclusterSweep(const CostModel &model, int c,
                  const std::vector<int> &n_values, int ref_n)
{
    SweepSeries series;
    bool found_ref = false;
    for (int n : n_values) {
        if (n == ref_n) {
            series.refIndex = series.points.size();
            found_ref = true;
        }
        series.points.push_back(evaluate(model, MachineSize{c, n}));
    }
    SPS_ASSERT(found_ref, "reference N=%d not in sweep range", ref_n);
    return series;
}

SweepSeries
interclusterSweep(const CostModel &model, int n,
                  const std::vector<int> &c_values, int ref_c)
{
    SweepSeries series;
    bool found_ref = false;
    for (int c : c_values) {
        if (c == ref_c) {
            series.refIndex = series.points.size();
            found_ref = true;
        }
        series.points.push_back(evaluate(model, MachineSize{c, n}));
    }
    SPS_ASSERT(found_ref, "reference C=%d not in sweep range", ref_c);
    return series;
}

SweepSeries
combinedSweep(const CostModel &model, int n,
              const std::vector<int> &c_values, MachineSize ref)
{
    SweepSeries series;
    for (int c : c_values)
        series.points.push_back(evaluate(model, MachineSize{c, n}));
    // Normalize against an external reference: stash it as an extra
    // trailing point so normalized*() can use it, then drop it.
    series.points.push_back(evaluate(model, ref));
    series.refIndex = series.points.size() - 1;
    return series;
}

std::vector<int>
defaultIntraRange()
{
    return {1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 32,
            48, 64, 96, 128};
}

std::vector<int>
defaultInterRange()
{
    return {8, 16, 32, 64, 128, 256};
}

} // namespace sps::vlsi
