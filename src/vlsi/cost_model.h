/**
 * @file
 * Table 3 of the paper: analytical area, delay, and energy models for a
 * stream processor as a function of C (arithmetic clusters) and N (ALUs
 * per cluster).
 *
 * The modeled machine is subdivided into the stream register file (SRF,
 * C banks plus streambuffers), the microcontroller (microcode storage
 * plus VLIW instruction distribution), the C SIMD arithmetic clusters
 * (LRFs, ALUs, scratchpad, intracluster switch), and the intercluster
 * switch. Components that do not scale with the number of ALUs (stream
 * controller, memory system) are excluded, as in the paper.
 *
 * Energy figures are per machine cycle at full ALU issue rate, so
 * energyPerAluOp() is the paper's "energy dissipated per ALU operation".
 *
 * Transcription note: the published equations were reconstructed from an
 * OCR'd copy with misplaced radicals; each method documents the reading
 * used, and tests/vlsi/cost_anchor_test.cpp pins the model to the
 * paper's quantitative anchor points.
 */
#ifndef SPS_VLSI_COST_MODEL_H
#define SPS_VLSI_COST_MODEL_H

#include "vlsi/params.h"

namespace sps::vlsi {

/** A machine configuration point: C clusters of N ALUs. */
struct MachineSize
{
    int clusters = 8;      ///< C
    int alusPerCluster = 5; ///< N

    int totalAlus() const { return clusters * alusPerCluster; }
};

/**
 * Counts derived from N (first section of Table 3).
 */
struct DerivedCounts
{
    int nComm = 0;  ///< intercluster COMM units per cluster
    int nSp = 0;    ///< scratchpad units per cluster
    int nFu = 0;    ///< total functional units per cluster
    int nClSb = 0;  ///< cluster streambuffers
    int nSb = 0;    ///< total streambuffers
    int pe = 0;     ///< external (SB) ports per cluster
};

/** Component-wise area breakdown (grids). */
struct AreaBreakdown
{
    double srf = 0.0;          ///< C * per-bank SRF area
    double microcontroller = 0.0;
    double clusters = 0.0;     ///< C * per-cluster area
    double interclusterSwitch = 0.0;

    double total() const
    {
        return srf + microcontroller + clusters + interclusterSwitch;
    }
};

/** Component-wise energy-per-cycle breakdown (units of Ew). */
struct EnergyBreakdown
{
    double srf = 0.0;
    double microcontroller = 0.0;
    double clusters = 0.0;
    double interclusterComm = 0.0;

    double total() const
    {
        return srf + microcontroller + clusters + interclusterComm;
    }
};

/** Switch traversal delays (FO4). */
struct DelayResult
{
    double intraFo4 = 0.0;
    double interFo4 = 0.0;
};

/**
 * The analytical cost model. Stateless apart from the parameter set;
 * all queries are const and cheap.
 */
class CostModel
{
  public:
    explicit CostModel(Params params = Params::imagine())
        : p_(params)
    {}

    const Params &params() const { return p_; }

    /** Unit counts per cluster / machine for N ALUs per cluster. */
    DerivedCounts derive(int n) const;

    // --- Area (grids) ---

    /** Area of one SRF bank including its slice of all streambuffers. */
    double srfBankArea(int n) const;
    /** Area of one arithmetic cluster (LRFs, ALUs, SP, intra switch). */
    double clusterArea(int n) const;
    /** Area of the intracluster switch inside one cluster. */
    double intraSwitchArea(int n) const;
    /** Microcontroller area: microcode store + instruction distribution. */
    double microcontrollerArea(MachineSize size) const;
    /** Intercluster switch area. */
    double interSwitchArea(MachineSize size) const;
    /** Full per-component area breakdown. */
    AreaBreakdown area(MachineSize size) const;
    /** Total area divided by total ALU count. */
    double areaPerAlu(MachineSize size) const;

    // --- Delay (FO4) ---

    /** Worst-case intracluster switch traversal (wire + mux logic). */
    double intraDelayFo4(int n) const;
    /** Worst-case intercluster traversal (includes an intra traversal). */
    double interDelayFo4(MachineSize size) const;
    DelayResult delay(MachineSize size) const;

    /**
     * Pipeline stages needed for a traversal given the cycle time.
     * The Imagine design budgeted half a cycle for intracluster
     * communication; extra latency is pipelined in whole cycles.
     */
    int intraPipeStages(int n) const;
    /** Whole cycles of operation latency for an intercluster COMM. */
    int interCommCycles(MachineSize size) const;

    // --- Energy (Ew, per cycle at full issue) ---

    /** Energy per bit crossing the intracluster switch. */
    double intraCommEnergyPerBit(int n) const;
    /** Energy per bit crossing the intercluster switch. */
    double interCommEnergyPerBit(MachineSize size) const;
    /** Per-cycle energy of one SRF bank at typical access rates. */
    double srfBankEnergy(int n) const;
    /** Per-cycle energy of one cluster at full issue. */
    double clusterEnergy(int n) const;
    /** Per-cycle microcontroller energy (fetch + distribution). */
    double microcontrollerEnergy(MachineSize size) const;
    /** Full per-component energy breakdown. */
    EnergyBreakdown energy(MachineSize size) const;
    /** Total per-cycle energy divided by ALU operations per cycle. */
    double energyPerAluOp(MachineSize size) const;

  private:
    /** Linear dimension of the cluster+SRF+COMM region (tracks). */
    double chipEdge(MachineSize size) const;

    Params p_;
};

} // namespace sps::vlsi

#endif // SPS_VLSI_COST_MODEL_H
