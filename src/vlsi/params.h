/**
 * @file
 * Table 1 of the paper: process-independent VLSI model parameters,
 * measured from the Imagine stream processor prototype plus empirically
 * determined kernel characteristics.
 *
 * Units follow the paper:
 *  - areas are in "grids" (squared wire tracks),
 *  - datapath widths/heights are in wire tracks,
 *  - delays are in FO4 (fan-out-of-4 inverter delays),
 *  - energies are normalized to Ew, the wire propagation energy per
 *    wire track (0.093 fJ in 0.18um).
 */
#ifndef SPS_VLSI_PARAMS_H
#define SPS_VLSI_PARAMS_H

namespace sps::vlsi {

/**
 * The full Table 1 parameter set. Defaults are the published values.
 */
struct Params
{
    // --- Measured building-block parameters (Imagine prototype) ---

    /** Area of 1 bit of SRAM used for SRF or microcontroller (grids). */
    double aSram = 16.1;
    /** Area per SB width (grids per bit of streambuffer width). */
    double aSb = 2161.8;
    /** Datapath width of an ALU (tracks). */
    double wAlu = 876.9;
    /** Datapath width of 2 LRFs (tracks). */
    double wLrf = 437.0;
    /** Scratchpad datapath width (tracks). */
    double wSp = 708.9;
    /** Datapath height for all cluster components (tracks). */
    double h = 1400.0;
    /** Wire propagation velocity (tracks per FO4) with repeatering. */
    double v0 = 1400.0;
    /** FO4 delays per clock cycle (Imagine-style standard-cell design). */
    double tCyc = 45.0;
    /** Delay of a 2:1 mux (FO4). */
    double tMux = 2.0;
    /** Normalized wire propagation energy per wire track. */
    double eW = 1.0;
    /** Energy of an ALU operation (normalized to Ew). */
    double eAlu = 2.0e6;
    /** SRAM access energy per bit of capacity (normalized to Ew). */
    double eSram = 8.7;
    /** Energy of 1 bit of SB access (normalized to Ew). */
    double eSb = 1936.0;
    /** LRF access energy (normalized to Ew). */
    double eLrf = 8.9e5;
    /** Scratchpad access energy (normalized to Ew). */
    double eSp = 1.6e6;
    /** External memory latency (cycles). */
    double tMem = 55.0;
    /** Data width of the architecture (bits). */
    int b = 32;

    // --- Empirical kernel-derived parameters ---

    /** Width of an SRF bank per ALU (words). */
    double gSrf = 0.5;
    /** Average SB accesses per ALU operation in typical kernels. */
    double gSb = 0.2;
    /** COMM units required per ALU. */
    double gComm = 0.2;
    /** SP units required per ALU. */
    double gSp = 0.2;
    /** Initial width of VLIW instructions (bits). */
    double i0 = 196.0;
    /** Additional VLIW instruction width per functional unit (bits). */
    double iN = 40.0;
    /** Initial (fixed) number of cluster SBs. */
    double lC = 6.0;
    /** Number of non-cluster SBs (memory/host/microcontroller). */
    double lO = 6.0;
    /** Additional cluster SBs required per ALU. */
    double lN = 0.2;
    /** SRF capacity per ALU per cycle of memory latency (words). */
    double rM = 20.0;
    /** VLIW instructions of microcode storage required. */
    double rUc = 2048.0;

    // --- Reconstruction calibration weights ---
    //
    // The published Table 3 equations could not be transcribed exactly
    // (misplaced radicals in the source text). These weights scale the
    // reconstructed switch/distribution terms and were fit once against
    // the paper's quantitative anchors (Section 4 prose; see DESIGN.md
    // and tests/vlsi/cost_anchor_test.cpp). They are deliberately
    // visible so sensitivity studies can sweep them.

    /** Weight on intercluster switch area. */
    double kCommArea = 0.75;
    /** Weight on intercluster communication energy. */
    double kCommEnergy = 0.70;
    /** Weight on intracluster switch traversal energy in clusters. */
    double kIntraEnergy = 0.90;
    /** Weight on microcontroller instruction-distribution energy. */
    double kDistEnergy = 0.95;

    // --- Extensions (Section 6 future work) ---

    /**
     * Crossbar connectivity: the fraction of intracluster and
     * intercluster cross-points populated. 1.0 is the paper's fully
     * connected switch; lower values model the "non-fully-connected
     * crossbars" named as future work, trading switch area/energy/
     * delay for an operation-latency penalty the scheduler absorbs
     * (see sched::MachineModel).
     */
    double xbarConnectivity = 1.0;

    /** The published Imagine-derived defaults. */
    static Params imagine() { return Params{}; }

    /**
     * A full-custom design point (Section 4.3): ~20 FO4 clocks
     * instead of the 45 FO4 standard-cell methodology. Relative area
     * and energy results are unchanged; communication latencies in
     * cycles grow.
     */
    static Params
    custom20Fo4()
    {
        Params p;
        p.tCyc = 20.0;
        return p;
    }

    /** The future-work sparse-crossbar variant. */
    static Params
    sparseSwitch(double connectivity)
    {
        Params p;
        p.xbarConnectivity = connectivity;
        return p;
    }
};

} // namespace sps::vlsi

#endif // SPS_VLSI_PARAMS_H
