/**
 * @file
 * Scaling-sweep utilities that evaluate the cost model across ranges of
 * C and N and produce the normalized series plotted in Figures 6-12.
 *
 * Sweep points evaluate concurrently on a thread pool (the same
 * substrate core::EvalEngine runs on; pass nullptr for the shared
 * pool) with results collected in axis order, so series are identical
 * whatever the thread count.
 */
#ifndef SPS_VLSI_SWEEP_H
#define SPS_VLSI_SWEEP_H

#include <cstddef>
#include <vector>

#include "vlsi/cost_model.h"

namespace sps {
class ThreadPool;
}

namespace sps::vlsi {

/** One point of a scaling sweep with per-component detail. */
struct SweepPoint
{
    MachineSize size;
    AreaBreakdown area;
    EnergyBreakdown energy;
    DelayResult delay;
    double areaPerAlu = 0.0;
    double energyPerAluOp = 0.0;
};

/** A full sweep plus the index of its normalization reference. */
struct SweepSeries
{
    std::vector<SweepPoint> points;
    size_t refIndex = 0;

    /** Area per ALU of each point divided by the reference point's. */
    std::vector<double> normalizedAreaPerAlu() const;
    /** Energy per op of each point divided by the reference point's. */
    std::vector<double> normalizedEnergyPerOp() const;
};

/**
 * Intracluster sweep: C fixed, N varies (Figures 6-8). The reference
 * point for normalization is N = ref_n (the paper uses N = 5).
 */
SweepSeries intraclusterSweep(const CostModel &model, int c,
                              const std::vector<int> &n_values,
                              int ref_n = 5,
                              ThreadPool *pool = nullptr);

/**
 * Intercluster sweep: N fixed, C varies (Figures 9-11). The reference
 * point is C = ref_c (the paper uses C = 8).
 */
SweepSeries interclusterSweep(const CostModel &model, int n,
                              const std::vector<int> &c_values,
                              int ref_c = 8,
                              ThreadPool *pool = nullptr);

/**
 * Combined sweep for one N across a list of C values (Figure 12), with
 * normalization against an arbitrary (ref_c, ref_n) point evaluated on
 * the same model.
 */
SweepSeries combinedSweep(const CostModel &model, int n,
                          const std::vector<int> &c_values,
                          MachineSize ref,
                          ThreadPool *pool = nullptr);

/** The standard N values plotted in Figures 6-8. */
std::vector<int> defaultIntraRange();

/** The standard C values plotted in Figures 9-11 (powers of two). */
std::vector<int> defaultInterRange();

} // namespace sps::vlsi

#endif // SPS_VLSI_SWEEP_H
