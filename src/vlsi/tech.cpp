#include "vlsi/tech.h"

// Technology is a plain aggregate with inline helpers; this file anchors
// the header in the sps_vlsi library.
