#include "vlsi/params.h"

// Params is a plain aggregate; this translation unit exists so the header
// has an anchor in the library and a home for any future validation code.
