/**
 * @file
 * Technology scaling helpers. The paper's model parameters are process
 * independent (grids / tracks / FO4 / Ew); this header converts them to
 * absolute quantities for a concrete process node, and projects the
 * 2007-era 45nm target used in the performance evaluation (Section 5).
 */
#ifndef SPS_VLSI_TECH_H
#define SPS_VLSI_TECH_H

namespace sps::vlsi {

/**
 * A concrete process technology. The defaults describe the 0.18um
 * process of the Imagine prototype; fortyFiveNm() gives the paper's
 * 2007 projection.
 */
struct Technology
{
    /** Human-readable node name. */
    const char *name = "180nm";
    /** Metal wire track pitch (um). */
    double trackPitchUm = 0.80;
    /** Delay of one FO4 inverter (ps). */
    double fo4Ps = 90.0;
    /** Wire propagation energy per track, Ew (fJ). */
    double ewFj = 0.093;
    /** FO4 delays per clock (45 = Imagine-style standard cell). */
    double clockFo4 = 45.0;
    /** External memory bandwidth (GB/s). */
    double memBwGBs = 2.3;
    /** Host interface bandwidth (GB/s). */
    double hostBwGBs = 0.5;

    /** Clock frequency implied by fo4Ps and clockFo4 (GHz). */
    double
    clockGHz() const
    {
        return 1000.0 / (fo4Ps * clockFo4);
    }

    /** Convert an area in grids to mm^2. */
    double
    gridsToMm2(double grids) const
    {
        double pitch_mm = trackPitchUm * 1e-3;
        return grids * pitch_mm * pitch_mm;
    }

    /** Convert a normalized (Ew) energy to picojoules. */
    double
    normEnergyToPj(double e_norm) const
    {
        return e_norm * ewFj * 1e-3;
    }

    /** Power in watts given per-cycle energy in Ew units. */
    double
    powerWatts(double energy_per_cycle_norm) const
    {
        // pJ per cycle * GHz = mW.
        return normEnergyToPj(energy_per_cycle_norm) * clockGHz() * 1e-3;
    }

    /** The Imagine prototype's 0.18um process. */
    static Technology imagine180() { return Technology{}; }

    /**
     * The 45nm 2007 projection of Section 5: 1 GHz at 45 FO4, 16 GB/s
     * external memory (eight Rambus channels), 2 GB/s host channel.
     * FO4 delay scales with drawn gate length. Ew scales with wire
     * pitch (x0.25) and supply voltage squared (1.8 V -> ~0.65 V for
     * the 2007 low-power node, x0.13), calibrated so the model
     * reproduces the paper's Section 6 power claim (a 1280-ALU
     * machine dissipating under 10 W).
     */
    static Technology
    fortyFiveNm()
    {
        Technology t;
        t.name = "45nm";
        t.trackPitchUm = 0.20;   // 4x pitch shrink from 0.18um rules
        t.fo4Ps = 22.2;          // 45 FO4 => 1.0 GHz
        t.ewFj = 0.0012;         // pitch x voltage-squared scaling
        t.clockFo4 = 45.0;
        t.memBwGBs = 16.0;
        t.hostBwGBs = 2.0;
        return t;
    }
};

} // namespace sps::vlsi

#endif // SPS_VLSI_TECH_H
