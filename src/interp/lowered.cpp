#include "interp/lowered.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interp/exec_span.h"
#include "kernel/fingerprint.h"
#include "kernel/validate.h"

namespace sps::interp {

using isa::Opcode;
using isa::Word;
using kernel::Kernel;
using kernel::Op;
using kernel::PortDir;

LaneClass
laneClassOf(Opcode code)
{
    switch (code) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IAbs:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::ICmpEq:
      case Opcode::ICmpLt:
      case Opcode::ICmpLe:
      case Opcode::Select:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
      case Opcode::FAbs:
      case Opcode::FNeg:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FCmpEq:
      case Opcode::FCmpLt:
      case Opcode::FCmpLe:
      case Opcode::FToI:
      case Opcode::IToF:
        return LaneClass::Vector;
      case Opcode::FFloor:
        return LaneClass::VectorWide;
      case Opcode::SbRead:
      case Opcode::SbWrite:
        return LaneClass::Stream;
      case Opcode::LoopIndex:
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ClusterId:
      case Opcode::NumClusters:
        return LaneClass::Broadcast;
      case Opcode::CommPerm:
        return LaneClass::Cross;
      case Opcode::Phi:
      case Opcode::SbCondRead:
      case Opcode::SbCondWrite:
      case Opcode::SpRead:
      case Opcode::SpWrite:
      case Opcode::NumOpcodes:
        return LaneClass::Scalar;
    }
    return LaneClass::Scalar;
}

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Prefix:
        return "prefix";
      case Region::Core:
        return "core";
      case Region::Suffix:
        return "suffix";
    }
    return "unknown";
}

namespace {

/**
 * Dependence-cone partition (see Region in lowered.h): seed from the
 * loop-carried ops, slice forward and backward over dataflow args,
 * side-effect token edges (Op::orderAfter), and phi-latch edges
 * (latch source -> phi), then reorder the body into
 * [prefix | core | suffix] with program order kept inside each
 * region. `bodyOf` maps a ValueId to its body index (-1 for preamble
 * ops, which are iteration-invariant and partition-neutral).
 */
void
partitionRegions(const Kernel &k, const std::vector<int> &bodyOf,
                 LoweredKernel &lk)
{
    const int n = static_cast<int>(lk.body.size());
    std::vector<std::vector<int>> succ(static_cast<size_t>(n));
    std::vector<std::vector<int>> pred(static_cast<size_t>(n));
    auto addEdge = [&](int from, int to) {
        if (from >= 0 && to >= 0 && from != to) {
            succ[static_cast<size_t>(from)].push_back(to);
            pred[static_cast<size_t>(to)].push_back(from);
        }
    };
    for (int j = 0; j < n; ++j) {
        const LoweredInsn &insn = lk.body[static_cast<size_t>(j)];
        for (kernel::ValueId a : {insn.a0, insn.a1, insn.a2}) {
            if (a != kernel::kNoValue)
                addEdge(bodyOf[static_cast<size_t>(a)], j);
        }
        // Token edges keep side effects (same-stream accesses,
        // scratchpad traffic) in program order across regions.
        const Op &op = k.ops[static_cast<size_t>(insn.dst)];
        for (kernel::ValueId t : op.orderAfter)
            addEdge(bodyOf[static_cast<size_t>(t)], j);
    }
    // Phi-latch edges: the latch reads its source at end of
    // iteration, so the source must be computed by the time the
    // carried core of the same iteration retires.
    for (const LoweredKernel::PhiLatch &latch : lk.latches) {
        for (int j = 0; j < n; ++j) {
            const LoweredInsn &insn = lk.body[static_cast<size_t>(j)];
            if (insn.code == Opcode::Phi &&
                insn.histBase == latch.histBase)
                addEdge(bodyOf[static_cast<size_t>(latch.src)], j);
        }
    }

    std::vector<char> inF(static_cast<size_t>(n), 0);
    std::vector<char> inB(static_cast<size_t>(n), 0);
    std::vector<int> work;
    for (int j = 0; j < n; ++j) {
        if (lk.body[static_cast<size_t>(j)].lanes ==
            LaneClass::Scalar) {
            inF[static_cast<size_t>(j)] = 1;
            inB[static_cast<size_t>(j)] = 1;
            work.push_back(j);
        }
    }
    std::vector<int> seeds = work;
    while (!work.empty()) {
        int j = work.back();
        work.pop_back();
        for (int s : succ[static_cast<size_t>(j)]) {
            if (!inF[static_cast<size_t>(s)]) {
                inF[static_cast<size_t>(s)] = 1;
                work.push_back(s);
            }
        }
    }
    work = seeds;
    while (!work.empty()) {
        int j = work.back();
        work.pop_back();
        for (int p : pred[static_cast<size_t>(j)]) {
            if (!inB[static_cast<size_t>(p)]) {
                inB[static_cast<size_t>(p)] = 1;
                work.push_back(p);
            }
        }
    }

    std::vector<LoweredInsn> prefix, core, suffix;
    for (int j = 0; j < n; ++j) {
        LoweredInsn &insn = lk.body[static_cast<size_t>(j)];
        if (!inF[static_cast<size_t>(j)]) {
            insn.region = Region::Prefix;
            prefix.push_back(insn);
        } else if (inB[static_cast<size_t>(j)]) {
            insn.region = Region::Core;
            core.push_back(insn);
        } else {
            insn.region = Region::Suffix;
            suffix.push_back(insn);
        }
    }
    lk.coreBegin = static_cast<int>(prefix.size());
    lk.coreEnd = lk.coreBegin + static_cast<int>(core.size());
    lk.body.clear();
    lk.body.insert(lk.body.end(), prefix.begin(), prefix.end());
    lk.body.insert(lk.body.end(), core.begin(), core.end());
    lk.body.insert(lk.body.end(), suffix.begin(), suffix.end());
}

/**
 * Partial megastrip fusion over one run's steady-state blocks: for
 * each block of `fuse` adjacent full strips, run the fusible prefix
 * once across all c * fuse lanes, iterate the serial core strip by
 * strip in strict iteration order (a pointer-bumped ExecCtx windows
 * lanes [t*c, (t+1)*c) of the megastrip SoA rows; scratch, cursors and
 * phi history are deliberately NOT shifted — they are per-cluster
 * state addressed at lanes [0, c)), then run the fusible suffix once
 * across all lanes. The phi latch fires inside the core phase, per
 * real iteration, exactly as in unfused execution.
 */
void
runPartialFused(SimdBackend backend, const detail::ExecCtx &ctx,
                int64_t blocks, int64_t fuse)
{
    const LoweredKernel &lk = *ctx.lk;
    const int c = ctx.c;
    const int ewFused = static_cast<int>(c * fuse);
    const int nbody = static_cast<int>(lk.body.size());
    detail::ExecCtx strip = ctx;
    for (int64_t b = 0; b < blocks; ++b) {
        if (lk.coreBegin > 0)
            detail::runSpanSimd(backend, ctx, b, b + 1, ewFused, 0,
                                lk.coreBegin, /*latch=*/false);
        for (int64_t t = 0; t < fuse; ++t) {
            strip.val =
                ctx.val + static_cast<size_t>(t) * static_cast<size_t>(c);
            detail::runSpanSimd(backend, strip, b * fuse + t,
                                b * fuse + t + 1, c, lk.coreBegin,
                                lk.coreEnd, /*latch=*/true);
        }
        if (lk.coreEnd < nbody)
            detail::runSpanSimd(backend, ctx, b, b + 1, ewFused,
                                lk.coreEnd, nbody, /*latch=*/false);
    }
}

} // namespace

LoweredKernel
lowerKernel(const Kernel &k)
{
    kernel::validateKernel(k);

    LoweredKernel lk;
    lk.name = k.name;
    lk.nops = static_cast<int>(k.ops.size());
    lk.spWords = std::max(1, k.scratchpadWords);
    lk.nStreams = static_cast<int>(k.streams.size());

    lk.ports.reserve(k.streams.size());
    for (const kernel::StreamPort &port : k.streams) {
        LoweredKernel::PortInfo pi;
        pi.name = port.name;
        pi.isInput = port.dir == PortDir::In;
        pi.conditional = port.conditional;
        pi.recordWords = port.recordWords;
        pi.ordinal = pi.isInput ? lk.nIn++ : lk.nOut++;
        lk.ports.push_back(std::move(pi));
    }
    lk.driverOrdinal = lk.ports[static_cast<size_t>(k.lengthDriver)].ordinal;

    std::vector<int> bodyOf(k.ops.size(), -1);
    for (size_t i = 0; i < k.ops.size(); ++i) {
        const Op &op = k.ops[i];
        LoweredInsn insn;
        insn.code = op.code;
        insn.dst = static_cast<kernel::ValueId>(i);
        if (op.args.size() > 0)
            insn.a0 = op.args[0];
        if (op.args.size() > 1)
            insn.a1 = op.args[1];
        if (op.args.size() > 2)
            insn.a2 = op.args[2];
        insn.imm = op.code == Opcode::Phi ? op.init : op.imm;
        insn.field = op.field;
        insn.distance = op.distance;
        insn.lanes = laneClassOf(op.code);
        if (isa::isSrfAccess(op.code)) {
            insn.stream = op.stream;
            const auto &port = lk.ports[static_cast<size_t>(op.stream)];
            insn.ordinal = port.ordinal;
            insn.recordWords = port.recordWords;
        }
        switch (op.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
          case Opcode::ClusterId:
          case Opcode::NumClusters:
            // Iteration-invariant: hoisted into the preamble. Safe
            // because the IR is SSA (no other op writes these slots)
            // and forward references are only legal to Phi ops.
            lk.preamble.push_back(insn);
            continue;
          case Opcode::Phi:
            insn.histBase = lk.histRows;
            lk.histRows += op.distance;
            lk.latches.push_back(
                {op.args[0], op.distance, insn.histBase});
            break;
          case Opcode::SbRead:
            if (std::find(lk.steadyReadOrdinals.begin(),
                          lk.steadyReadOrdinals.end(),
                          insn.ordinal) == lk.steadyReadOrdinals.end())
                lk.steadyReadOrdinals.push_back(insn.ordinal);
            break;
          default:
            break;
        }
        bodyOf[i] = static_cast<int>(lk.body.size());
        lk.body.push_back(insn);
    }

    partitionRegions(k, bodyOf, lk);
    // Fully fusible <=> the serial core is empty (no LaneClass::Scalar
    // body op seeds the carried cone).
    lk.fusible = lk.coreBegin == lk.coreEnd;
    return lk;
}

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs)
{
    return executeLowered(lk, c, inputs, defaultSimdBackend());
}

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs,
               SimdBackend backend)
{
    return executeLowered(lk, c, inputs, backend,
                          defaultFusionPolicy());
}

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs,
               SimdBackend backend, FusionPolicy fusion)
{
    SPS_ASSERT(c >= 1, "need at least one cluster");
    SPS_ASSERT(static_cast<int>(inputs.size()) == lk.nIn,
               "kernel %s expects %d inputs, got %zu", lk.name.c_str(),
               lk.nIn, inputs.size());
    for (const auto &port : lk.ports) {
        if (!port.isInput)
            continue;
        SPS_ASSERT(inputs[static_cast<size_t>(port.ordinal)]
                           .recordWords == port.recordWords,
                   "kernel %s stream %s: record width mismatch",
                   lk.name.c_str(), port.name.c_str());
    }
    if (!simdBackendSupported(backend))
        backend = bestSimdBackend();

    const int64_t driver_records =
        inputs[static_cast<size_t>(lk.driverOrdinal)].records();
    const int64_t iterations = (driver_records + c - 1) / c;

    ExecResult result;
    result.iterations = iterations;
    result.outputs.resize(static_cast<size_t>(lk.nOut));
    for (const auto &port : lk.ports) {
        if (port.isInput)
            continue;
        StreamData &out =
            result.outputs[static_cast<size_t>(port.ordinal)];
        out.recordWords = port.recordWords;
        if (!port.conditional)
            out.words.assign(static_cast<size_t>(driver_records) *
                                 static_cast<size_t>(port.recordWords),
                             Word{});
    }

    // Steady-state strips: every iteration where the driver and all
    // unconditionally-read inputs have a full strip of C records.
    int64_t steady = driver_records / c;
    for (int ord : lk.steadyReadOrdinals)
        steady = std::min(
            steady, inputs[static_cast<size_t>(ord)].records() / c);
    steady = std::min(steady, iterations);

    // Megastrip fusion (SIMD backends): treat `fuse` adjacent full
    // strips as one virtual strip of c * fuse lanes so narrow cluster
    // counts still fill whole vectors and per-iteration dispatch
    // amortizes. For fully fusible bodies (no cross-iteration state)
    // the whole body fuses: lane l = it * c + cl of the megastrip
    // computes exactly what strip it, cluster cl computes, and the
    // only cross-lane traffic (CommPerm) stays inside each c-wide
    // sub-strip. Under FusionPolicy::Partial, bodies with a
    // loop-carried core still fuse their prefix/suffix regions and
    // serialize only the core (runPartialFused). Leftover strips past
    // the last full block run unfused through the same buffers.
    const bool partial = !lk.fusible &&
                         fusion == FusionPolicy::Partial &&
                         lk.partiallyFusible();
    int64_t fuse = 1;
    if (backend != SimdBackend::Scalar && steady > 1 &&
        fusion != FusionPolicy::Off && (lk.fusible || partial))
        fuse = std::clamp<int64_t>(64 / c, 1, steady);

    // Structure-of-arrays state: row `op`, stride adjacent lane words
    // (stride == c unfused). Scratch stays c-wide: scratchpad ops are
    // never fused.
    const size_t cw = static_cast<size_t>(c);
    const size_t stride = cw * static_cast<size_t>(fuse);
    std::vector<Word> val(static_cast<size_t>(lk.nops) * stride);
    std::vector<Word> scratch(static_cast<size_t>(lk.spWords) * cw);
    std::vector<Word> hist(static_cast<size_t>(lk.histRows) * stride);
    std::vector<int64_t> cond_cursor(static_cast<size_t>(lk.nStreams),
                                     0);

    const int lanes = static_cast<int>(stride);
    for (const LoweredInsn &insn : lk.preamble) {
        Word *D = val.data() + static_cast<size_t>(insn.dst) * stride;
        switch (insn.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
            std::fill(D, D + lanes, insn.imm);
            break;
          case Opcode::ClusterId:
            // Fused lanes repeat the cluster pattern every c words.
            for (int l = 0; l < lanes; ++l)
                D[l] = Word::fromInt(l % c);
            break;
          case Opcode::NumClusters:
            std::fill(D, D + lanes, Word::fromInt(c));
            break;
          default:
            panic("lowered execute: unexpected opcode %s in preamble",
                  std::string(isa::mnemonic(insn.code)).c_str());
        }
    }

    detail::ExecCtx ctx;
    ctx.lk = &lk;
    ctx.c = c;
    ctx.stride = stride;
    ctx.driverRecords = driver_records;
    ctx.inputs = &inputs;
    ctx.result = &result;
    ctx.val = val.data();
    ctx.scratch = scratch.data();
    ctx.hist = hist.data();
    ctx.condCursor = cond_cursor.data();

    if (backend == SimdBackend::Scalar) {
        detail::runSpanScalar<false>(ctx, 0, steady);
    } else {
        const int64_t blocks = steady / fuse;
        if (blocks > 0) {
            if (fuse == 1 || lk.fusible)
                detail::runSteadySimd(backend, ctx, 0, blocks,
                                      static_cast<int>(cw * fuse));
            else
                runPartialFused(backend, ctx, blocks, fuse);
        }
        if (blocks * fuse < steady)
            detail::runSteadySimd(backend, ctx, blocks * fuse, steady,
                                  c);
    }
    detail::runSpanScalar<true>(ctx, steady, iterations);
    return result;
}

const LoweredKernel &
LoweredCache::get(const Kernel &k)
{
    const uint64_t key = kernel::fingerprint(k);
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Lower outside the map lock so distinct kernels lower in
    // parallel; call_once makes concurrent same-kernel requests block
    // on the single winner.
    bool lowered = false;
    std::call_once(entry->once, [&] {
        entry->lk = lowerKernel(k);
        lowered = true;
    });
    if (lowered)
        misses_.fetch_add(1, std::memory_order_relaxed);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->lk;
}

LoweredCache::Counters
LoweredCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

size_t
LoweredCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
LoweredCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

LoweredCache &
LoweredCache::global()
{
    static LoweredCache cache;
    return cache;
}

} // namespace sps::interp
