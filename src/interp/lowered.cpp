#include "interp/lowered.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interp/exec_span.h"
#include "kernel/fingerprint.h"
#include "kernel/validate.h"

namespace sps::interp {

using isa::Opcode;
using isa::Word;
using kernel::Kernel;
using kernel::Op;
using kernel::PortDir;

LaneClass
laneClassOf(Opcode code)
{
    switch (code) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IAbs:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::ICmpEq:
      case Opcode::ICmpLt:
      case Opcode::ICmpLe:
      case Opcode::Select:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
      case Opcode::FAbs:
      case Opcode::FNeg:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FCmpEq:
      case Opcode::FCmpLt:
      case Opcode::FCmpLe:
      case Opcode::FToI:
      case Opcode::IToF:
        return LaneClass::Vector;
      case Opcode::FFloor:
        return LaneClass::VectorWide;
      case Opcode::SbRead:
      case Opcode::SbWrite:
        return LaneClass::Stream;
      case Opcode::LoopIndex:
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::ClusterId:
      case Opcode::NumClusters:
        return LaneClass::Broadcast;
      case Opcode::CommPerm:
        return LaneClass::Cross;
      case Opcode::Phi:
      case Opcode::SbCondRead:
      case Opcode::SbCondWrite:
      case Opcode::SpRead:
      case Opcode::SpWrite:
      case Opcode::NumOpcodes:
        return LaneClass::Scalar;
    }
    return LaneClass::Scalar;
}

LoweredKernel
lowerKernel(const Kernel &k)
{
    kernel::validateKernel(k);

    LoweredKernel lk;
    lk.name = k.name;
    lk.nops = static_cast<int>(k.ops.size());
    lk.spWords = std::max(1, k.scratchpadWords);
    lk.nStreams = static_cast<int>(k.streams.size());

    lk.ports.reserve(k.streams.size());
    for (const kernel::StreamPort &port : k.streams) {
        LoweredKernel::PortInfo pi;
        pi.name = port.name;
        pi.isInput = port.dir == PortDir::In;
        pi.conditional = port.conditional;
        pi.recordWords = port.recordWords;
        pi.ordinal = pi.isInput ? lk.nIn++ : lk.nOut++;
        lk.ports.push_back(std::move(pi));
    }
    lk.driverOrdinal = lk.ports[static_cast<size_t>(k.lengthDriver)].ordinal;

    for (size_t i = 0; i < k.ops.size(); ++i) {
        const Op &op = k.ops[i];
        LoweredInsn insn;
        insn.code = op.code;
        insn.dst = static_cast<kernel::ValueId>(i);
        if (op.args.size() > 0)
            insn.a0 = op.args[0];
        if (op.args.size() > 1)
            insn.a1 = op.args[1];
        if (op.args.size() > 2)
            insn.a2 = op.args[2];
        insn.imm = op.code == Opcode::Phi ? op.init : op.imm;
        insn.field = op.field;
        insn.distance = op.distance;
        insn.lanes = laneClassOf(op.code);
        if (isa::isSrfAccess(op.code)) {
            insn.stream = op.stream;
            const auto &port = lk.ports[static_cast<size_t>(op.stream)];
            insn.ordinal = port.ordinal;
            insn.recordWords = port.recordWords;
        }
        switch (op.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
          case Opcode::ClusterId:
          case Opcode::NumClusters:
            // Iteration-invariant: hoisted into the preamble. Safe
            // because the IR is SSA (no other op writes these slots)
            // and forward references are only legal to Phi ops.
            lk.preamble.push_back(insn);
            continue;
          case Opcode::Phi:
            insn.histBase = lk.histRows;
            lk.histRows += op.distance;
            lk.latches.push_back(
                {op.args[0], op.distance, insn.histBase});
            break;
          case Opcode::SbRead:
            if (std::find(lk.steadyReadOrdinals.begin(),
                          lk.steadyReadOrdinals.end(),
                          insn.ordinal) == lk.steadyReadOrdinals.end())
                lk.steadyReadOrdinals.push_back(insn.ordinal);
            break;
          default:
            break;
        }
        lk.body.push_back(insn);
    }

    lk.fusible =
        std::none_of(lk.body.begin(), lk.body.end(),
                     [](const LoweredInsn &insn) {
                         return insn.lanes == LaneClass::Scalar;
                     });
    return lk;
}

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs)
{
    return executeLowered(lk, c, inputs, defaultSimdBackend());
}

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs,
               SimdBackend backend)
{
    SPS_ASSERT(c >= 1, "need at least one cluster");
    SPS_ASSERT(static_cast<int>(inputs.size()) == lk.nIn,
               "kernel %s expects %d inputs, got %zu", lk.name.c_str(),
               lk.nIn, inputs.size());
    for (const auto &port : lk.ports) {
        if (!port.isInput)
            continue;
        SPS_ASSERT(inputs[static_cast<size_t>(port.ordinal)]
                           .recordWords == port.recordWords,
                   "kernel %s stream %s: record width mismatch",
                   lk.name.c_str(), port.name.c_str());
    }
    if (!simdBackendSupported(backend))
        backend = bestSimdBackend();

    const int64_t driver_records =
        inputs[static_cast<size_t>(lk.driverOrdinal)].records();
    const int64_t iterations = (driver_records + c - 1) / c;

    ExecResult result;
    result.iterations = iterations;
    result.outputs.resize(static_cast<size_t>(lk.nOut));
    for (const auto &port : lk.ports) {
        if (port.isInput)
            continue;
        StreamData &out =
            result.outputs[static_cast<size_t>(port.ordinal)];
        out.recordWords = port.recordWords;
        if (!port.conditional)
            out.words.assign(static_cast<size_t>(driver_records) *
                                 static_cast<size_t>(port.recordWords),
                             Word{});
    }

    // Steady-state strips: every iteration where the driver and all
    // unconditionally-read inputs have a full strip of C records.
    int64_t steady = driver_records / c;
    for (int ord : lk.steadyReadOrdinals)
        steady = std::min(
            steady, inputs[static_cast<size_t>(ord)].records() / c);
    steady = std::min(steady, iterations);

    // Megastrip fusion (SIMD backends, fusible bodies only): treat
    // `fuse` adjacent full strips as one virtual strip of c * fuse
    // lanes so narrow cluster counts still fill whole vectors and
    // per-iteration dispatch amortizes. Correct because a fusible
    // body has no cross-iteration state: lane l = it * c + cl of the
    // megastrip computes exactly what strip it, cluster cl computes,
    // and the only cross-lane traffic (CommPerm) stays inside each
    // c-wide sub-strip. Leftover strips past the last full block run
    // unfused through the same buffers.
    int64_t fuse = 1;
    if (backend != SimdBackend::Scalar && lk.fusible && steady > 1)
        fuse = std::clamp<int64_t>(64 / c, 1, steady);

    // Structure-of-arrays state: row `op`, stride adjacent lane words
    // (stride == c unfused). Scratch stays c-wide: scratchpad ops are
    // never fused.
    const size_t cw = static_cast<size_t>(c);
    const size_t stride = cw * static_cast<size_t>(fuse);
    std::vector<Word> val(static_cast<size_t>(lk.nops) * stride);
    std::vector<Word> scratch(static_cast<size_t>(lk.spWords) * cw);
    std::vector<Word> hist(static_cast<size_t>(lk.histRows) * stride);
    std::vector<int64_t> cond_cursor(static_cast<size_t>(lk.nStreams),
                                     0);

    const int lanes = static_cast<int>(stride);
    for (const LoweredInsn &insn : lk.preamble) {
        Word *D = val.data() + static_cast<size_t>(insn.dst) * stride;
        switch (insn.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
            std::fill(D, D + lanes, insn.imm);
            break;
          case Opcode::ClusterId:
            // Fused lanes repeat the cluster pattern every c words.
            for (int l = 0; l < lanes; ++l)
                D[l] = Word::fromInt(l % c);
            break;
          case Opcode::NumClusters:
            std::fill(D, D + lanes, Word::fromInt(c));
            break;
          default:
            panic("lowered execute: unexpected opcode %s in preamble",
                  std::string(isa::mnemonic(insn.code)).c_str());
        }
    }

    detail::ExecCtx ctx;
    ctx.lk = &lk;
    ctx.c = c;
    ctx.stride = stride;
    ctx.driverRecords = driver_records;
    ctx.inputs = &inputs;
    ctx.result = &result;
    ctx.val = val.data();
    ctx.scratch = scratch.data();
    ctx.hist = hist.data();
    ctx.condCursor = cond_cursor.data();

    if (backend == SimdBackend::Scalar) {
        detail::runSpanScalar<false>(ctx, 0, steady);
    } else {
        const int64_t blocks = steady / fuse;
        if (blocks > 0)
            detail::runSteadySimd(backend, ctx, 0, blocks,
                                  static_cast<int>(cw * fuse));
        if (blocks * fuse < steady)
            detail::runSteadySimd(backend, ctx, blocks * fuse, steady,
                                  c);
    }
    detail::runSpanScalar<true>(ctx, steady, iterations);
    return result;
}

const LoweredKernel &
LoweredCache::get(const Kernel &k)
{
    const uint64_t key = kernel::fingerprint(k);
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Lower outside the map lock so distinct kernels lower in
    // parallel; call_once makes concurrent same-kernel requests block
    // on the single winner.
    bool lowered = false;
    std::call_once(entry->once, [&] {
        entry->lk = lowerKernel(k);
        lowered = true;
    });
    if (lowered)
        misses_.fetch_add(1, std::memory_order_relaxed);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->lk;
}

LoweredCache::Counters
LoweredCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

size_t
LoweredCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
LoweredCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

LoweredCache &
LoweredCache::global()
{
    static LoweredCache cache;
    return cache;
}

} // namespace sps::interp
