#include "interp/lowered.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interp/comm.h"
#include "interp/cond_stream.h"
#include "kernel/fingerprint.h"
#include "kernel/validate.h"

namespace sps::interp {

using isa::Opcode;
using isa::Word;
using kernel::Kernel;
using kernel::Op;
using kernel::PortDir;

LoweredKernel
lowerKernel(const Kernel &k)
{
    kernel::validateKernel(k);

    LoweredKernel lk;
    lk.name = k.name;
    lk.nops = static_cast<int>(k.ops.size());
    lk.spWords = std::max(1, k.scratchpadWords);
    lk.nStreams = static_cast<int>(k.streams.size());

    lk.ports.reserve(k.streams.size());
    for (const kernel::StreamPort &port : k.streams) {
        LoweredKernel::PortInfo pi;
        pi.name = port.name;
        pi.isInput = port.dir == PortDir::In;
        pi.conditional = port.conditional;
        pi.recordWords = port.recordWords;
        pi.ordinal = pi.isInput ? lk.nIn++ : lk.nOut++;
        lk.ports.push_back(std::move(pi));
    }
    lk.driverOrdinal = lk.ports[static_cast<size_t>(k.lengthDriver)].ordinal;

    for (size_t i = 0; i < k.ops.size(); ++i) {
        const Op &op = k.ops[i];
        LoweredInsn insn;
        insn.code = op.code;
        insn.dst = static_cast<kernel::ValueId>(i);
        if (op.args.size() > 0)
            insn.a0 = op.args[0];
        if (op.args.size() > 1)
            insn.a1 = op.args[1];
        if (op.args.size() > 2)
            insn.a2 = op.args[2];
        insn.imm = op.code == Opcode::Phi ? op.init : op.imm;
        insn.field = op.field;
        insn.distance = op.distance;
        if (isa::isSrfAccess(op.code)) {
            insn.stream = op.stream;
            const auto &port = lk.ports[static_cast<size_t>(op.stream)];
            insn.ordinal = port.ordinal;
            insn.recordWords = port.recordWords;
        }
        switch (op.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
          case Opcode::ClusterId:
          case Opcode::NumClusters:
            // Iteration-invariant: hoisted into the preamble. Safe
            // because the IR is SSA (no other op writes these slots)
            // and forward references are only legal to Phi ops.
            lk.preamble.push_back(insn);
            continue;
          case Opcode::Phi:
            insn.histBase = lk.histRows;
            lk.histRows += op.distance;
            lk.latches.push_back(
                {op.args[0], op.distance, insn.histBase});
            break;
          case Opcode::SbRead:
            if (std::find(lk.steadyReadOrdinals.begin(),
                          lk.steadyReadOrdinals.end(),
                          insn.ordinal) == lk.steadyReadOrdinals.end())
                lk.steadyReadOrdinals.push_back(insn.ordinal);
            break;
          default:
            break;
        }
        lk.body.push_back(insn);
    }
    return lk;
}

namespace {

Word
wi(int64_t v)
{
    return Word::fromInt(static_cast<int32_t>(v));
}

Word
wf(float v)
{
    return Word::fromFloat(v);
}

/**
 * Execute iterations [from, to). Guarded = true keeps the reference
 * interpreter's per-record bounds checks (the tail path); false is
 * the steady-state path where every strip is full (all C records in
 * range for the driver and every unconditionally-read input), so
 * SbRead/SbWrite run without per-record checks and single-word
 * records move as whole blocks.
 */
template <bool Guarded>
void
runSpan(const LoweredKernel &lk, int c, int64_t from, int64_t to,
        int64_t driver_records, const std::vector<StreamData> &inputs,
        ExecResult &result, Word *val, Word *scratch, Word *hist,
        int64_t *cond_cursor)
{
    const size_t cw = static_cast<size_t>(c);
    const int sp_words = lk.spWords;

// Binary/unary sweeps over adjacent words: x, y, z name the operand
// words of one cluster; the expression produces the result word.
#define SPS_UN(EXPR)                                                   \
    {                                                                  \
        const Word *A0 = val + static_cast<size_t>(insn.a0) * cw;      \
        for (int cl = 0; cl < c; ++cl) {                               \
            const Word x = A0[cl];                                     \
            D[cl] = (EXPR);                                            \
        }                                                              \
    }                                                                  \
    break
#define SPS_BIN(EXPR)                                                  \
    {                                                                  \
        const Word *A0 = val + static_cast<size_t>(insn.a0) * cw;      \
        const Word *A1 = val + static_cast<size_t>(insn.a1) * cw;      \
        for (int cl = 0; cl < c; ++cl) {                               \
            const Word x = A0[cl];                                     \
            const Word y = A1[cl];                                     \
            D[cl] = (EXPR);                                            \
        }                                                              \
    }                                                                  \
    break

    for (int64_t iter = from; iter < to; ++iter) {
        for (const LoweredInsn &insn : lk.body) {
            Word *D = val + static_cast<size_t>(insn.dst) * cw;
            switch (insn.code) {
              case Opcode::IAdd:
                SPS_BIN(wi(static_cast<int64_t>(x.asInt()) + y.asInt()));
              case Opcode::ISub:
                SPS_BIN(wi(static_cast<int64_t>(x.asInt()) - y.asInt()));
              case Opcode::IMul:
                SPS_BIN(wi(static_cast<int64_t>(x.asInt()) * y.asInt()));
              case Opcode::IAnd:
                SPS_BIN(wi(x.asInt() & y.asInt()));
              case Opcode::IOr:
                SPS_BIN(wi(x.asInt() | y.asInt()));
              case Opcode::IXor:
                SPS_BIN(wi(x.asInt() ^ y.asInt()));
              case Opcode::IShl:
                SPS_BIN(wi(static_cast<int64_t>(x.asInt())
                           << (y.asInt() & 31)));
              case Opcode::IShr:
                SPS_BIN(wi(x.asInt() >> (y.asInt() & 31)));
              case Opcode::IAbs:
                SPS_UN(wi(std::abs(static_cast<int64_t>(x.asInt()))));
              case Opcode::IMin:
                SPS_BIN(wi(std::min(x.asInt(), y.asInt())));
              case Opcode::IMax:
                SPS_BIN(wi(std::max(x.asInt(), y.asInt())));
              case Opcode::ICmpEq:
                SPS_BIN(wi(x.asInt() == y.asInt() ? 1 : 0));
              case Opcode::ICmpLt:
                SPS_BIN(wi(x.asInt() < y.asInt() ? 1 : 0));
              case Opcode::ICmpLe:
                SPS_BIN(wi(x.asInt() <= y.asInt() ? 1 : 0));
              case Opcode::Select: {
                const Word *A0 =
                    val + static_cast<size_t>(insn.a0) * cw;
                const Word *A1 =
                    val + static_cast<size_t>(insn.a1) * cw;
                const Word *A2 =
                    val + static_cast<size_t>(insn.a2) * cw;
                for (int cl = 0; cl < c; ++cl)
                    D[cl] = A0[cl].asInt() != 0 ? A1[cl] : A2[cl];
                break;
              }
              case Opcode::FAdd:
                SPS_BIN(wf(x.asFloat() + y.asFloat()));
              case Opcode::FSub:
                SPS_BIN(wf(x.asFloat() - y.asFloat()));
              case Opcode::FMul:
                SPS_BIN(wf(x.asFloat() * y.asFloat()));
              case Opcode::FDiv:
                SPS_BIN(wf(x.asFloat() / y.asFloat()));
              case Opcode::FSqrt:
                SPS_UN(wf(std::sqrt(x.asFloat())));
              case Opcode::FRsqrt:
                SPS_UN(wf(1.0f / std::sqrt(x.asFloat())));
              case Opcode::FAbs:
                SPS_UN(wf(std::fabs(x.asFloat())));
              case Opcode::FNeg:
                SPS_UN(wf(-x.asFloat()));
              case Opcode::FMin:
                SPS_BIN(wf(std::fmin(x.asFloat(), y.asFloat())));
              case Opcode::FMax:
                SPS_BIN(wf(std::fmax(x.asFloat(), y.asFloat())));
              case Opcode::FCmpEq:
                SPS_BIN(wi(x.asFloat() == y.asFloat() ? 1 : 0));
              case Opcode::FCmpLt:
                SPS_BIN(wi(x.asFloat() < y.asFloat() ? 1 : 0));
              case Opcode::FCmpLe:
                SPS_BIN(wi(x.asFloat() <= y.asFloat() ? 1 : 0));
              case Opcode::FToI:
                SPS_UN(wi(static_cast<int32_t>(x.asFloat())));
              case Opcode::IToF:
                SPS_UN(wf(static_cast<float>(x.asInt())));
              case Opcode::FFloor:
                SPS_UN(wf(std::floor(x.asFloat())));
              case Opcode::LoopIndex: {
                const Word w = Word::fromInt(static_cast<int32_t>(iter));
                std::fill(D, D + c, w);
                break;
              }
              case Opcode::Phi: {
                if (iter >= insn.distance) {
                    const Word *row =
                        hist + (static_cast<size_t>(insn.histBase) +
                                static_cast<size_t>(
                                    iter % insn.distance)) *
                                   cw;
                    std::copy(row, row + c, D);
                } else {
                    std::fill(D, D + c, insn.imm);
                }
                break;
              }
              case Opcode::SbRead: {
                const StreamData &in =
                    inputs[static_cast<size_t>(insn.ordinal)];
                const size_t rw =
                    static_cast<size_t>(insn.recordWords);
                if constexpr (!Guarded) {
                    const Word *src =
                        in.words.data() +
                        static_cast<size_t>(iter) * cw * rw +
                        static_cast<size_t>(insn.field);
                    if (rw == 1) {
                        std::copy(src, src + c, D);
                    } else {
                        for (int cl = 0; cl < c; ++cl)
                            D[cl] = src[static_cast<size_t>(cl) * rw];
                    }
                } else {
                    const int64_t nrec = in.records();
                    for (int cl = 0; cl < c; ++cl) {
                        const int64_t rec = iter * c + cl;
                        D[cl] = rec < nrec
                                    ? in.words[static_cast<size_t>(
                                          rec * insn.recordWords +
                                          insn.field)]
                                    : Word{};
                    }
                }
                break;
              }
              case Opcode::SbWrite: {
                StreamData &out =
                    result.outputs[static_cast<size_t>(insn.ordinal)];
                const Word *S =
                    val + static_cast<size_t>(insn.a0) * cw;
                const size_t rw =
                    static_cast<size_t>(insn.recordWords);
                if constexpr (!Guarded) {
                    Word *dst = out.words.data() +
                                static_cast<size_t>(iter) * cw * rw +
                                static_cast<size_t>(insn.field);
                    if (rw == 1) {
                        std::copy(S, S + c, dst);
                    } else {
                        for (int cl = 0; cl < c; ++cl)
                            dst[static_cast<size_t>(cl) * rw] = S[cl];
                    }
                } else {
                    for (int cl = 0; cl < c; ++cl) {
                        const int64_t rec = iter * c + cl;
                        if (rec < driver_records)
                            out.words[static_cast<size_t>(
                                rec * insn.recordWords +
                                insn.field)] = S[cl];
                    }
                }
                break;
              }
              case Opcode::SbCondRead: {
                const StreamData &in =
                    inputs[static_cast<size_t>(insn.ordinal)];
                condReadStep(in,
                             cond_cursor[static_cast<size_t>(
                                 insn.stream)],
                             c, val + static_cast<size_t>(insn.a0) * cw,
                             D);
                break;
              }
              case Opcode::SbCondWrite: {
                StreamData &out =
                    result.outputs[static_cast<size_t>(insn.ordinal)];
                condWriteStep(out, c,
                              val + static_cast<size_t>(insn.a1) * cw,
                              val + static_cast<size_t>(insn.a0) * cw);
                break;
              }
              case Opcode::SpRead: {
                const Word *A0 =
                    val + static_cast<size_t>(insn.a0) * cw;
                for (int cl = 0; cl < c; ++cl) {
                    const int32_t addr = A0[cl].asInt();
                    SPS_ASSERT(addr >= 0 && addr < sp_words,
                               "kernel %s: SP read at %d out of %d",
                               lk.name.c_str(), addr, sp_words);
                    D[cl] = scratch[static_cast<size_t>(cl) *
                                        static_cast<size_t>(sp_words) +
                                    static_cast<size_t>(addr)];
                }
                break;
              }
              case Opcode::SpWrite: {
                const Word *A0 =
                    val + static_cast<size_t>(insn.a0) * cw;
                const Word *A1 =
                    val + static_cast<size_t>(insn.a1) * cw;
                for (int cl = 0; cl < c; ++cl) {
                    const int32_t addr = A0[cl].asInt();
                    SPS_ASSERT(addr >= 0 && addr < sp_words,
                               "kernel %s: SP write at %d out of %d",
                               lk.name.c_str(), addr, sp_words);
                    scratch[static_cast<size_t>(cl) *
                                static_cast<size_t>(sp_words) +
                            static_cast<size_t>(addr)] = A1[cl];
                }
                break;
              }
              case Opcode::CommPerm:
                // SSA guarantees dst != a0/a1, so the exchange can
                // read the send row in place (no staging copy).
                commExchange(val + static_cast<size_t>(insn.a0) * cw, c,
                             val + static_cast<size_t>(insn.a1) * cw,
                             D);
                break;
              default:
                panic("lowered execute: unexpected opcode %s in body",
                      std::string(isa::mnemonic(insn.code)).c_str());
            }
        }
        // Latch phi sources for future iterations.
        for (const LoweredKernel::PhiLatch &latch : lk.latches) {
            Word *row =
                hist + (static_cast<size_t>(latch.histBase) +
                        static_cast<size_t>(iter % latch.distance)) *
                           cw;
            const Word *src =
                val + static_cast<size_t>(latch.src) * cw;
            std::copy(src, src + c, row);
        }
    }

#undef SPS_UN
#undef SPS_BIN
}

} // namespace

ExecResult
executeLowered(const LoweredKernel &lk, int c,
               const std::vector<StreamData> &inputs)
{
    SPS_ASSERT(c >= 1, "need at least one cluster");
    SPS_ASSERT(static_cast<int>(inputs.size()) == lk.nIn,
               "kernel %s expects %d inputs, got %zu", lk.name.c_str(),
               lk.nIn, inputs.size());
    for (const auto &port : lk.ports) {
        if (!port.isInput)
            continue;
        SPS_ASSERT(inputs[static_cast<size_t>(port.ordinal)]
                           .recordWords == port.recordWords,
                   "kernel %s stream %s: record width mismatch",
                   lk.name.c_str(), port.name.c_str());
    }

    const int64_t driver_records =
        inputs[static_cast<size_t>(lk.driverOrdinal)].records();
    const int64_t iterations = (driver_records + c - 1) / c;

    ExecResult result;
    result.iterations = iterations;
    result.outputs.resize(static_cast<size_t>(lk.nOut));
    for (const auto &port : lk.ports) {
        if (port.isInput)
            continue;
        StreamData &out =
            result.outputs[static_cast<size_t>(port.ordinal)];
        out.recordWords = port.recordWords;
        if (!port.conditional)
            out.words.assign(static_cast<size_t>(driver_records) *
                                 static_cast<size_t>(port.recordWords),
                             Word{});
    }

    // Structure-of-arrays state: row `op`, C adjacent cluster words.
    const size_t cw = static_cast<size_t>(c);
    std::vector<Word> val(static_cast<size_t>(lk.nops) * cw);
    std::vector<Word> scratch(static_cast<size_t>(lk.spWords) * cw);
    std::vector<Word> hist(static_cast<size_t>(lk.histRows) * cw);
    std::vector<int64_t> cond_cursor(static_cast<size_t>(lk.nStreams),
                                     0);

    for (const LoweredInsn &insn : lk.preamble) {
        Word *D = val.data() + static_cast<size_t>(insn.dst) * cw;
        switch (insn.code) {
          case Opcode::ConstInt:
          case Opcode::ConstFloat:
            std::fill(D, D + c, insn.imm);
            break;
          case Opcode::ClusterId:
            for (int cl = 0; cl < c; ++cl)
                D[cl] = Word::fromInt(cl);
            break;
          case Opcode::NumClusters:
            std::fill(D, D + c, Word::fromInt(c));
            break;
          default:
            panic("lowered execute: unexpected opcode %s in preamble",
                  std::string(isa::mnemonic(insn.code)).c_str());
        }
    }

    // Steady-state strips: every iteration where the driver and all
    // unconditionally-read inputs have a full strip of C records.
    int64_t steady = driver_records / c;
    for (int ord : lk.steadyReadOrdinals)
        steady = std::min(
            steady, inputs[static_cast<size_t>(ord)].records() / c);
    steady = std::min(steady, iterations);

    runSpan<false>(lk, c, 0, steady, driver_records, inputs, result,
                   val.data(), scratch.data(), hist.data(),
                   cond_cursor.data());
    runSpan<true>(lk, c, steady, iterations, driver_records, inputs,
                  result, val.data(), scratch.data(), hist.data(),
                  cond_cursor.data());
    return result;
}

const LoweredKernel &
LoweredCache::get(const Kernel &k)
{
    const uint64_t key = kernel::fingerprint(k);
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Lower outside the map lock so distinct kernels lower in
    // parallel; call_once makes concurrent same-kernel requests block
    // on the single winner.
    bool lowered = false;
    std::call_once(entry->once, [&] {
        entry->lk = lowerKernel(k);
        lowered = true;
    });
    if (lowered)
        misses_.fetch_add(1, std::memory_order_relaxed);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->lk;
}

LoweredCache::Counters
LoweredCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

size_t
LoweredCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
LoweredCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

LoweredCache &
LoweredCache::global()
{
    static LoweredCache cache;
    return cache;
}

} // namespace sps::interp
