/**
 * @file
 * Conditional stream access (Kapasi et al., MICRO-33): data-dependent
 * stream rates implemented as data routing. A conditional write
 * compacts the values of predicated-on clusters into the output in
 * cluster order; a conditional read expands the next stream elements
 * to exactly the predicated-on clusters, in cluster order.
 */
#ifndef SPS_INTERP_COND_STREAM_H
#define SPS_INTERP_COND_STREAM_H

#include <cstdint>
#include <functional>

#include "interp/interpreter.h"

namespace sps::interp {

/**
 * One conditional-read step across all clusters. Clusters whose
 * predicate is false receive a zero word; reads past the end of the
 * stream also deliver zero (kernels guard with their own counts).
 */
void condReadStep(const StreamData &in, int64_t &cursor, int c,
                  const std::function<bool(int)> &pred,
                  const std::function<void(int, isa::Word)> &deliver);

/** One conditional-write step: append predicated clusters' values. */
void condWriteStep(StreamData &out, int c,
                   const std::function<bool(int)> &pred,
                   const std::function<isa::Word(int)> &value);

/**
 * Contiguous-layout overloads for the lowered engine: `pred`, `dst`,
 * and `values` are C adjacent words (one per cluster); a cluster is
 * predicated on when its word is non-zero as an integer.
 */
void condReadStep(const StreamData &in, int64_t &cursor, int c,
                  const isa::Word *pred, isa::Word *dst);
void condWriteStep(StreamData &out, int c, const isa::Word *pred,
                   const isa::Word *values);

} // namespace sps::interp

#endif // SPS_INTERP_COND_STREAM_H
