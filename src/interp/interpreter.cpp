#include "interp/interpreter.h"

#include <cmath>

#include "common/log.h"
#include "interp/comm.h"
#include "isa/fp.h"
#include "interp/cond_stream.h"
#include "interp/lowered.h"
#include "kernel/validate.h"

namespace sps::interp {

using isa::Opcode;
using isa::Word;
using kernel::Kernel;
using kernel::Op;
using kernel::PortDir;
using kernel::ValueId;

StreamData
StreamData::fromFloats(const std::vector<float> &v, int record_words)
{
    StreamData s;
    s.recordWords = record_words;
    s.words.reserve(v.size());
    for (float f : v)
        s.words.push_back(Word::fromFloat(f));
    return s;
}

StreamData
StreamData::fromInts(const std::vector<int32_t> &v, int record_words)
{
    StreamData s;
    s.recordWords = record_words;
    s.words.reserve(v.size());
    for (int32_t i : v)
        s.words.push_back(Word::fromInt(i));
    return s;
}

std::vector<float>
StreamData::toFloats() const
{
    std::vector<float> out;
    out.reserve(words.size());
    for (Word w : words)
        out.push_back(w.asFloat());
    return out;
}

std::vector<int32_t>
StreamData::toInts() const
{
    std::vector<int32_t> out;
    out.reserve(words.size());
    for (Word w : words)
        out.push_back(w.asInt());
    return out;
}

namespace {

Word
evalScalar(const Op &op, const Word *a)
{
    auto I = [](Word w) { return w.asInt(); };
    auto F = [](Word w) { return w.asFloat(); };
    auto wi = [](int64_t v) {
        return Word::fromInt(static_cast<int32_t>(v));
    };
    auto wf = [](float v) { return Word::fromFloat(v); };
    switch (op.code) {
      case Opcode::IAdd: return wi(static_cast<int64_t>(I(a[0])) + I(a[1]));
      case Opcode::ISub: return wi(static_cast<int64_t>(I(a[0])) - I(a[1]));
      case Opcode::IMul: return wi(static_cast<int64_t>(I(a[0])) * I(a[1]));
      case Opcode::IAnd: return wi(I(a[0]) & I(a[1]));
      case Opcode::IOr: return wi(I(a[0]) | I(a[1]));
      case Opcode::IXor: return wi(I(a[0]) ^ I(a[1]));
      case Opcode::IShl:
        return wi(static_cast<int64_t>(I(a[0]))
                  << (I(a[1]) & 31));
      case Opcode::IShr: return wi(I(a[0]) >> (I(a[1]) & 31));
      case Opcode::IAbs: return wi(std::abs(static_cast<int64_t>(I(a[0]))));
      case Opcode::IMin: return wi(std::min(I(a[0]), I(a[1])));
      case Opcode::IMax: return wi(std::max(I(a[0]), I(a[1])));
      case Opcode::ICmpEq: return wi(I(a[0]) == I(a[1]) ? 1 : 0);
      case Opcode::ICmpLt: return wi(I(a[0]) < I(a[1]) ? 1 : 0);
      case Opcode::ICmpLe: return wi(I(a[0]) <= I(a[1]) ? 1 : 0);
      case Opcode::Select: return I(a[0]) != 0 ? a[1] : a[2];
      // NaN-sensitive ops go through the pinned semantics in
      // isa/fp.h (libm and inline expansions disagree on signed-zero
      // ties and NaN payloads; see that header).
      case Opcode::FAdd: return wf(isa::fpAdd(F(a[0]), F(a[1])));
      case Opcode::FSub: return wf(F(a[0]) - F(a[1]));
      case Opcode::FMul: return wf(isa::fpMul(F(a[0]), F(a[1])));
      case Opcode::FDiv: return wf(F(a[0]) / F(a[1]));
      case Opcode::FSqrt: return wf(std::sqrt(F(a[0])));
      case Opcode::FRsqrt: return wf(1.0f / std::sqrt(F(a[0])));
      case Opcode::FAbs: return wf(std::fabs(F(a[0])));
      case Opcode::FNeg: return wf(-F(a[0]));
      case Opcode::FMin: return wf(isa::fpMin(F(a[0]), F(a[1])));
      case Opcode::FMax: return wf(isa::fpMax(F(a[0]), F(a[1])));
      case Opcode::FCmpEq: return wi(F(a[0]) == F(a[1]) ? 1 : 0);
      case Opcode::FCmpLt: return wi(F(a[0]) < F(a[1]) ? 1 : 0);
      case Opcode::FCmpLe: return wi(F(a[0]) <= F(a[1]) ? 1 : 0);
      case Opcode::FToI: return wi(static_cast<int32_t>(F(a[0])));
      case Opcode::IToF: return wf(static_cast<float>(I(a[0])));
      case Opcode::FFloor: return wf(isa::fpFloor(F(a[0])));
      default:
        panic("evalScalar: unexpected opcode %s",
              std::string(isa::mnemonic(op.code)).c_str());
    }
}

} // namespace

ExecResult
runKernel(const Kernel &k, int c, const std::vector<StreamData> &inputs)
{
    return executeLowered(LoweredCache::global().get(k), c, inputs);
}

ExecResult
runKernel(const Kernel &k, int c, const std::vector<StreamData> &inputs,
          SimdBackend backend)
{
    return executeLowered(LoweredCache::global().get(k), c, inputs,
                          backend);
}

ExecResult
runKernel(const Kernel &k, int c, const std::vector<StreamData> &inputs,
          SimdBackend backend, FusionPolicy fusion)
{
    return executeLowered(LoweredCache::global().get(k), c, inputs,
                          backend, fusion);
}

ExecResult
runKernelReference(const Kernel &k, int c,
                   const std::vector<StreamData> &inputs)
{
    SPS_ASSERT(c >= 1, "need at least one cluster");
    kernel::validateKernel(k);

    // Map stream indices to input/output ordinals.
    std::vector<int> in_ordinal(k.streams.size(), -1);
    std::vector<int> out_ordinal(k.streams.size(), -1);
    int n_in = 0, n_out = 0;
    for (size_t s = 0; s < k.streams.size(); ++s) {
        if (k.streams[s].dir == PortDir::In)
            in_ordinal[s] = n_in++;
        else
            out_ordinal[s] = n_out++;
    }
    SPS_ASSERT(static_cast<int>(inputs.size()) == n_in,
               "kernel %s expects %d inputs, got %zu", k.name.c_str(),
               n_in, inputs.size());
    for (size_t s = 0; s < k.streams.size(); ++s) {
        if (in_ordinal[s] < 0)
            continue;
        SPS_ASSERT(inputs[in_ordinal[s]].recordWords ==
                       k.streams[s].recordWords,
                   "kernel %s stream %s: record width mismatch",
                   k.name.c_str(), k.streams[s].name.c_str());
    }

    const int64_t driver_records =
        inputs[in_ordinal[k.lengthDriver]].records();
    const int64_t iterations = (driver_records + c - 1) / c;

    ExecResult result;
    result.iterations = iterations;
    result.outputs.resize(static_cast<size_t>(n_out));
    for (size_t s = 0; s < k.streams.size(); ++s) {
        if (out_ordinal[s] < 0)
            continue;
        StreamData &out = result.outputs[out_ordinal[s]];
        out.recordWords = k.streams[s].recordWords;
        if (!k.streams[s].conditional) {
            out.words.assign(static_cast<size_t>(driver_records) *
                                 out.recordWords,
                             Word{});
        }
    }

    // Per-cluster state.
    const size_t nops = k.ops.size();
    std::vector<std::vector<Word>> val(
        static_cast<size_t>(c), std::vector<Word>(nops, Word{}));
    int sp_words = std::max(1, k.scratchpadWords);
    std::vector<std::vector<Word>> scratch(
        static_cast<size_t>(c),
        std::vector<Word>(static_cast<size_t>(sp_words), Word{}));
    // Phi history ring buffers: hist[op][slot][cluster].
    std::vector<std::vector<std::vector<Word>>> hist(nops);
    for (size_t i = 0; i < nops; ++i) {
        if (k.ops[i].code == Opcode::Phi)
            hist[i].assign(static_cast<size_t>(k.ops[i].distance),
                           std::vector<Word>(static_cast<size_t>(c),
                                             Word{}));
    }
    // Conditional stream cursors (shared across clusters).
    std::vector<int64_t> cond_cursor(k.streams.size(), 0);

    // Scalar-op argument staging: a fixed stack buffer reused for
    // every op on every cluster (max arity is 3), so the hot default
    // case never touches the heap.
    Word args[3];
    std::vector<Word> comm_src(static_cast<size_t>(c));
    for (int64_t iter = 0; iter < iterations; ++iter) {
        for (size_t i = 0; i < nops; ++i) {
            const Op &op = k.ops[i];
            switch (op.code) {
              case Opcode::ConstInt:
              case Opcode::ConstFloat:
                for (int cl = 0; cl < c; ++cl)
                    val[cl][i] = op.imm;
                break;
              case Opcode::LoopIndex:
                for (int cl = 0; cl < c; ++cl)
                    val[cl][i] =
                        Word::fromInt(static_cast<int32_t>(iter));
                break;
              case Opcode::ClusterId:
                for (int cl = 0; cl < c; ++cl)
                    val[cl][i] = Word::fromInt(cl);
                break;
              case Opcode::NumClusters:
                for (int cl = 0; cl < c; ++cl)
                    val[cl][i] = Word::fromInt(c);
                break;
              case Opcode::Phi: {
                int d = op.distance;
                for (int cl = 0; cl < c; ++cl) {
                    val[cl][i] =
                        (iter >= d)
                            ? hist[i][static_cast<size_t>(iter % d)]
                                  [static_cast<size_t>(cl)]
                            : op.init;
                }
                break;
              }
              case Opcode::SbRead: {
                const StreamData &in = inputs[in_ordinal[op.stream]];
                for (int cl = 0; cl < c; ++cl) {
                    int64_t rec = iter * c + cl;
                    Word w{};
                    if (rec < in.records())
                        w = in.words[static_cast<size_t>(
                            rec * in.recordWords + op.field)];
                    val[cl][i] = w;
                }
                break;
              }
              case Opcode::SbWrite: {
                StreamData &out =
                    result.outputs[out_ordinal[op.stream]];
                for (int cl = 0; cl < c; ++cl) {
                    int64_t rec = iter * c + cl;
                    if (rec < driver_records)
                        out.words[static_cast<size_t>(
                            rec * out.recordWords + op.field)] =
                            val[cl][op.args[0]];
                }
                break;
              }
              case Opcode::SbCondRead: {
                const StreamData &in = inputs[in_ordinal[op.stream]];
                condReadStep(in, cond_cursor[op.stream], c,
                             [&](int cl) {
                                 return val[cl][op.args[0]].asInt() != 0;
                             },
                             [&](int cl, Word w) { val[cl][i] = w; });
                break;
              }
              case Opcode::SbCondWrite: {
                StreamData &out =
                    result.outputs[out_ordinal[op.stream]];
                condWriteStep(out, c,
                              [&](int cl) {
                                  return val[cl][op.args[1]].asInt() !=
                                         0;
                              },
                              [&](int cl) { return val[cl][op.args[0]]; });
                break;
              }
              case Opcode::SpRead:
                for (int cl = 0; cl < c; ++cl) {
                    int32_t addr = val[cl][op.args[0]].asInt();
                    SPS_ASSERT(addr >= 0 && addr < sp_words,
                               "kernel %s: SP read at %d out of %d",
                               k.name.c_str(), addr, sp_words);
                    val[cl][i] =
                        scratch[cl][static_cast<size_t>(addr)];
                }
                break;
              case Opcode::SpWrite:
                for (int cl = 0; cl < c; ++cl) {
                    int32_t addr = val[cl][op.args[0]].asInt();
                    SPS_ASSERT(addr >= 0 && addr < sp_words,
                               "kernel %s: SP write at %d out of %d",
                               k.name.c_str(), addr, sp_words);
                    scratch[cl][static_cast<size_t>(addr)] =
                        val[cl][op.args[1]];
                }
                break;
              case Opcode::CommPerm: {
                for (int cl = 0; cl < c; ++cl)
                    comm_src[cl] = val[cl][op.args[0]];
                commExchange(comm_src, c, [&](int cl) {
                    return val[cl][op.args[1]].asInt();
                }, [&](int cl, Word w) { val[cl][i] = w; });
                break;
              }
              default: {
                const size_t nargs = op.args.size();
                SPS_ASSERT(nargs <= 3, "kernel %s op %zu: arity %zu > 3",
                           k.name.c_str(), i, nargs);
                for (int cl = 0; cl < c; ++cl) {
                    for (size_t a = 0; a < nargs; ++a)
                        args[a] = val[cl][op.args[a]];
                    val[cl][i] = evalScalar(op, args);
                }
                break;
              }
            }
        }
        // Latch phi sources for future iterations.
        for (size_t i = 0; i < nops; ++i) {
            const Op &op = k.ops[i];
            if (op.code != Opcode::Phi)
                continue;
            int d = op.distance;
            for (int cl = 0; cl < c; ++cl)
                hist[i][static_cast<size_t>(iter % d)]
                    [static_cast<size_t>(cl)] = val[cl][op.args[0]];
        }
    }
    return result;
}

} // namespace sps::interp
