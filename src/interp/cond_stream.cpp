#include "interp/cond_stream.h"

namespace sps::interp {

void
condReadStep(const StreamData &in, int64_t &cursor, int c,
             const std::function<bool(int)> &pred,
             const std::function<void(int, isa::Word)> &deliver)
{
    for (int cl = 0; cl < c; ++cl) {
        if (!pred(cl)) {
            deliver(cl, isa::Word{});
            continue;
        }
        isa::Word w{};
        if (cursor < static_cast<int64_t>(in.words.size()))
            w = in.words[static_cast<size_t>(cursor)];
        ++cursor;
        deliver(cl, w);
    }
}

void
condWriteStep(StreamData &out, int c,
              const std::function<bool(int)> &pred,
              const std::function<isa::Word(int)> &value)
{
    for (int cl = 0; cl < c; ++cl) {
        if (pred(cl))
            out.words.push_back(value(cl));
    }
}

void
condReadStep(const StreamData &in, int64_t &cursor, int c,
             const isa::Word *pred, isa::Word *dst)
{
    const int64_t avail = static_cast<int64_t>(in.words.size());
    for (int cl = 0; cl < c; ++cl) {
        if (pred[cl].asInt() == 0) {
            dst[cl] = isa::Word{};
            continue;
        }
        dst[cl] = cursor < avail
                      ? in.words[static_cast<size_t>(cursor)]
                      : isa::Word{};
        ++cursor;
    }
}

void
condWriteStep(StreamData &out, int c, const isa::Word *pred,
              const isa::Word *values)
{
    for (int cl = 0; cl < c; ++cl) {
        if (pred[cl].asInt() != 0)
            out.words.push_back(values[cl]);
    }
}

} // namespace sps::interp
