#include "interp/cond_stream.h"

namespace sps::interp {

void
condReadStep(const StreamData &in, int64_t &cursor, int c,
             const std::function<bool(int)> &pred,
             const std::function<void(int, isa::Word)> &deliver)
{
    for (int cl = 0; cl < c; ++cl) {
        if (!pred(cl)) {
            deliver(cl, isa::Word{});
            continue;
        }
        isa::Word w{};
        if (cursor < static_cast<int64_t>(in.words.size()))
            w = in.words[static_cast<size_t>(cursor)];
        ++cursor;
        deliver(cl, w);
    }
}

void
condWriteStep(StreamData &out, int c,
              const std::function<bool(int)> &pred,
              const std::function<isa::Word(int)> &value)
{
    for (int cl = 0; cl < c; ++cl) {
        if (pred(cl))
            out.words.push_back(value(cl));
    }
}

} // namespace sps::interp
