#include "interp/simd.h"

#include <cstdlib>

#include "common/log.h"
#include "interp/exec_span.h"

#if defined(__x86_64__) || defined(_M_X64)
#define SPS_HAVE_X86_SIMD 1
#include <immintrin.h>
#else
#define SPS_HAVE_X86_SIMD 0
#endif

namespace sps::interp {

#if SPS_HAVE_X86_SIMD

// Each tier stamps out the same strip-executor body (simd_strips.inc)
// in its own namespace: function target attributes cannot be
// templated, so re-inclusion is how one source serves both ISAs.

namespace sse2_tier {
#define SPS_SIMD_W 4
#define SPS_SIMD_TARGET // x86-64 baseline: no attribute needed
#define SPS_SIMD_AVX 0
#include "interp/simd_strips.inc"
#undef SPS_SIMD_W
#undef SPS_SIMD_TARGET
#undef SPS_SIMD_AVX
} // namespace sse2_tier

namespace avx2_tier {
#define SPS_SIMD_W 8
#define SPS_SIMD_TARGET __attribute__((target("avx2")))
#define SPS_SIMD_AVX 1
#include "interp/simd_strips.inc"
#undef SPS_SIMD_W
#undef SPS_SIMD_TARGET
#undef SPS_SIMD_AVX
} // namespace avx2_tier

#endif // SPS_HAVE_X86_SIMD

const char *
simdBackendName(SimdBackend b)
{
    switch (b) {
      case SimdBackend::Scalar:
        return "scalar";
      case SimdBackend::Sse2:
        return "sse2";
      case SimdBackend::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
parseSimdBackend(std::string_view name, SimdBackend *out)
{
    for (SimdBackend b : {SimdBackend::Scalar, SimdBackend::Sse2,
                          SimdBackend::Avx2}) {
        if (name == simdBackendName(b)) {
            *out = b;
            return true;
        }
    }
    return false;
}

bool
simdBackendSupported(SimdBackend b)
{
    switch (b) {
      case SimdBackend::Scalar:
        return true;
      case SimdBackend::Sse2:
#if SPS_HAVE_X86_SIMD
        return true; // SSE2 is the x86-64 baseline
#else
        return false;
#endif
      case SimdBackend::Avx2:
#if SPS_HAVE_X86_SIMD
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    }
    return false;
}

std::vector<SimdBackend>
availableSimdBackends()
{
    std::vector<SimdBackend> v;
    for (SimdBackend b : {SimdBackend::Scalar, SimdBackend::Sse2,
                          SimdBackend::Avx2}) {
        if (simdBackendSupported(b))
            v.push_back(b);
    }
    return v;
}

SimdBackend
bestSimdBackend()
{
    SimdBackend best = SimdBackend::Scalar;
    for (SimdBackend b : {SimdBackend::Sse2, SimdBackend::Avx2}) {
        if (simdBackendSupported(b))
            best = b;
    }
    return best;
}

SimdBackend
resolveSimdBackend(const char *scalar_env, const char *backend_env)
{
    if (scalar_env != nullptr && scalar_env[0] != '\0' &&
        std::string_view(scalar_env) != "0")
        return SimdBackend::Scalar;
    if (backend_env != nullptr) {
        SimdBackend requested;
        if (parseSimdBackend(backend_env, &requested)) {
            // Clamp to the best supported tier at or below the request
            // so a pinned backend degrades instead of crashing.
            while (requested != SimdBackend::Scalar &&
                   !simdBackendSupported(requested))
                requested = static_cast<SimdBackend>(
                    static_cast<uint8_t>(requested) - 1);
            return requested;
        }
    }
    return bestSimdBackend();
}

SimdBackend
defaultSimdBackend()
{
    static const SimdBackend b =
        resolveSimdBackend(std::getenv("SPS_INTERP_SCALAR"),
                           std::getenv("SPS_INTERP_BACKEND"));
    return b;
}

const char *
fusionPolicyName(FusionPolicy p)
{
    switch (p) {
      case FusionPolicy::Off:
        return "off";
      case FusionPolicy::Full:
        return "full";
      case FusionPolicy::Partial:
        return "partial";
    }
    return "unknown";
}

bool
parseFusionPolicy(std::string_view name, FusionPolicy *out)
{
    for (FusionPolicy p : {FusionPolicy::Off, FusionPolicy::Full,
                           FusionPolicy::Partial}) {
        if (name == fusionPolicyName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

FusionPolicy
resolveFusionPolicy(const char *fusion_env)
{
    FusionPolicy p = FusionPolicy::Partial;
    if (fusion_env != nullptr)
        parseFusionPolicy(fusion_env, &p);
    return p;
}

FusionPolicy
defaultFusionPolicy()
{
    static const FusionPolicy p =
        resolveFusionPolicy(std::getenv("SPS_INTERP_FUSION"));
    return p;
}

namespace detail {

void
runSpanSimd(SimdBackend backend, const ExecCtx &ctx, int64_t from,
            int64_t to, int ew, int bodyBegin, int bodyEnd, bool latch)
{
#if SPS_HAVE_X86_SIMD
    // An 8-wide strip executor over fewer than 8 lanes would fall
    // through to all-scalar remainders; hand narrow widths to the
    // 4-wide tier instead (which itself scalarizes below 4 lanes).
    if (backend == SimdBackend::Avx2 && ew >= 8)
        avx2_tier::runSpan(ctx, from, to, ew, bodyBegin, bodyEnd,
                           latch);
    else
        sse2_tier::runSpan(ctx, from, to, ew, bodyBegin, bodyEnd,
                           latch);
#else
    // executeLowered clamps to a supported backend first, and Scalar
    // never routes here, so this is unreachable off x86-64.
    (void)ctx;
    (void)from;
    (void)to;
    (void)ew;
    (void)bodyBegin;
    (void)bodyEnd;
    (void)latch;
    panic("SIMD backend %s unavailable on this platform",
          simdBackendName(backend));
#endif
}

void
runSteadySimd(SimdBackend backend, const ExecCtx &ctx, int64_t from,
              int64_t to, int ew)
{
    runSpanSimd(backend, ctx, from, to, ew, 0,
                static_cast<int>(ctx.lk->body.size()),
                /*latch=*/true);
}

} // namespace detail

} // namespace sps::interp
