#include "interp/comm.h"

#include "common/log.h"

namespace sps::interp {

void
commExchange(const std::vector<isa::Word> &sent, int c,
             const std::function<int(int)> &src_of,
             const std::function<void(int, isa::Word)> &deliver)
{
    SPS_ASSERT(static_cast<int>(sent.size()) >= c, "short send vector");
    for (int cl = 0; cl < c; ++cl) {
        int src = src_of(cl) % c;
        if (src < 0)
            src += c;
        deliver(cl, sent[static_cast<size_t>(src)]);
    }
}

void
commExchange(const isa::Word *sent, int c, const isa::Word *src_sel,
             isa::Word *dst)
{
    if ((c & (c - 1)) == 0) {
        // Power-of-two cluster counts: two's-complement masking is
        // exactly the wrapped Euclidean modulus, without the per-lane
        // integer divide.
        const uint32_t mask = static_cast<uint32_t>(c - 1);
        for (int cl = 0; cl < c; ++cl)
            dst[cl] = sent[src_sel[cl].bits & mask];
        return;
    }
    for (int cl = 0; cl < c; ++cl) {
        int src = src_sel[cl].asInt() % c;
        if (src < 0)
            src += c;
        dst[cl] = sent[static_cast<size_t>(src)];
    }
}

} // namespace sps::interp
