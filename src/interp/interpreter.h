/**
 * @file
 * Functional SIMD interpreter for kernels: executes a kernel's
 * dataflow graph over C clusters on real data, faithfully modeling
 * SRF stream access order (cluster c reads record i*C + c on
 * iteration i), intercluster COMM exchange, per-cluster scratchpads,
 * loop-carried values, and conditional stream compaction/expansion.
 *
 * The interpreter is the oracle for the test suite (kernel outputs are
 * checked against independent reference implementations) and supplies
 * functional results for the example applications. Timing comes from
 * the scheduler (sched::compileKernel), not from here, mirroring the
 * paper's split between static kernel analysis and stream-level
 * simulation.
 */
#ifndef SPS_INTERP_INTERPRETER_H
#define SPS_INTERP_INTERPRETER_H

#include <vector>

#include "interp/simd.h"
#include "isa/value.h"
#include "kernel/ir.h"

namespace sps::interp {

/** A stream's contents: records of recordWords words each. */
struct StreamData
{
    int recordWords = 1;
    std::vector<isa::Word> words;

    int64_t
    records() const
    {
        return static_cast<int64_t>(words.size()) / recordWords;
    }

    /** Convenience: build a single-word-record stream of floats. */
    static StreamData fromFloats(const std::vector<float> &v,
                                 int record_words = 1);
    /** Convenience: build a single-word-record stream of ints. */
    static StreamData fromInts(const std::vector<int32_t> &v,
                               int record_words = 1);

    std::vector<float> toFloats() const;
    std::vector<int32_t> toInts() const;
};

/** Outputs of one kernel execution. */
struct ExecResult
{
    /** Output streams, in kernel output-port order. */
    std::vector<StreamData> outputs;
    /** Inner-loop iterations executed. */
    int64_t iterations = 0;
};

/**
 * Execute `k` on `c` clusters.
 *
 * Runs through the lowered execution engine (interp/lowered.h): the
 * kernel is lowered once into a flat instruction array (memoized in
 * the process-wide LoweredCache) and executed over contiguous
 * structure-of-arrays cluster state. Outputs are bit-identical to
 * runKernelReference().
 *
 * @param inputs input streams in kernel input-port order; each must
 *        match its port's record width.
 */
ExecResult runKernel(const kernel::Kernel &k, int c,
                     const std::vector<StreamData> &inputs);

/** Same, pinning the steady-state SIMD backend (tests, benchmarks,
 *  the forced-scalar escape hatch). Results are bit-identical across
 *  backends; an unsupported backend falls back to the best tier. */
ExecResult runKernel(const kernel::Kernel &k, int c,
                     const std::vector<StreamData> &inputs,
                     SimdBackend backend);

/** Same, also pinning the megastrip-fusion policy (differential tests
 *  and the SPS_INTERP_FUSION escape hatch). Results are bit-identical
 *  across every backend x policy combination. */
ExecResult runKernel(const kernel::Kernel &k, int c,
                     const std::vector<StreamData> &inputs,
                     SimdBackend backend, FusionPolicy fusion);

/**
 * Reference interpreter: the original op-at-a-time engine that walks
 * the kernel IR directly, re-decoding each op every iteration. Kept
 * as the semantic oracle for the lowered engine's equivalence suite
 * and for throughput comparisons; new callers should use runKernel().
 */
ExecResult runKernelReference(const kernel::Kernel &k, int c,
                              const std::vector<StreamData> &inputs);

} // namespace sps::interp

#endif // SPS_INTERP_INTERPRETER_H
