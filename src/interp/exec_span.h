/**
 * @file
 * Internal shared executor for lowered kernels: one definition of the
 * per-opcode scalar semantics, usable over any lane sub-range of a
 * strip. The scalar backend runs whole strips through it; the SIMD
 * tiers (interp/simd.cpp) call it for remainder lanes past the last
 * full vector, for ops whose LaneClass forbids vectorization, and for
 * the guarded tail. Keeping exactly one copy of the semantics is what
 * makes the bit-exactness contract auditable.
 *
 * Lane geometry: `stride` is the row pitch of the SoA value/history
 * buffers (== c, or c * fuse when adjacent full strips are fused into
 * a megastrip). `ew` is the execution width of the current span: the
 * number of lanes one virtual iteration advances the streams by
 * (== stride while fused, == c otherwise). Unguarded stream ops
 * address records at iter * ew * recordWords; guarded ops and all
 * cross-lane ops (COMM, conditional streams, scratchpad, phi) only
 * ever run with ew == c.
 */
#ifndef SPS_INTERP_EXEC_SPAN_H
#define SPS_INTERP_EXEC_SPAN_H

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/log.h"
#include "interp/comm.h"
#include "interp/cond_stream.h"
#include "interp/lowered.h"
#include "isa/fp.h"
#include "interp/simd.h"

namespace sps::interp::detail {

inline isa::Word
wi(int64_t v)
{
    return isa::Word::fromInt(static_cast<int32_t>(v));
}

inline isa::Word
wf(float v)
{
    return isa::Word::fromFloat(v);
}

/** Per-run execution state shared by every backend. */
struct ExecCtx
{
    const LoweredKernel *lk = nullptr;
    /** Real cluster count. */
    int c = 0;
    /** Row pitch of val/hist (>= c; == c * fuse when fused). */
    size_t stride = 0;
    int64_t driverRecords = 0;
    const std::vector<StreamData> *inputs = nullptr;
    ExecResult *result = nullptr;
    isa::Word *val = nullptr;
    isa::Word *scratch = nullptr;
    isa::Word *hist = nullptr;
    int64_t *condCursor = nullptr;
};

/**
 * Execute one lowered instruction for lanes [lane0, lane1) of virtual
 * iteration `iter` at execution width `ew`. Guarded keeps the
 * reference interpreter's per-record bounds checks (the tail path).
 * Stateful ops (SbCond*, Sp*) ignore the lane range and act on all c
 * lanes; CommPerm exchanges within every c-wide sub-strip of [0, ew);
 * callers only route these here full-span.
 */
template <bool Guarded>
inline void
execInsn(const ExecCtx &ctx, const LoweredInsn &insn, int64_t iter,
         int ew, int lane0, int lane1)
{
    using isa::Opcode;
    using isa::Word;
    const size_t stride = ctx.stride;
    const int c = ctx.c;
    const int sp_words = ctx.lk->spWords;
    Word *const val = ctx.val;
    Word *D = val + static_cast<size_t>(insn.dst) * stride;

// Binary/unary sweeps over adjacent words: x, y name the operand
// words of one lane; the expression produces the result word.
#define SPS_UN(EXPR)                                                   \
    {                                                                  \
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;  \
        for (int cl = lane0; cl < lane1; ++cl) {                       \
            const Word x = A0[cl];                                     \
            D[cl] = (EXPR);                                            \
        }                                                              \
    }                                                                  \
    break
#define SPS_BIN(EXPR)                                                  \
    {                                                                  \
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;  \
        const Word *A1 = val + static_cast<size_t>(insn.a1) * stride;  \
        for (int cl = lane0; cl < lane1; ++cl) {                       \
            const Word x = A0[cl];                                     \
            const Word y = A1[cl];                                     \
            D[cl] = (EXPR);                                            \
        }                                                              \
    }                                                                  \
    break

    switch (insn.code) {
      case Opcode::IAdd:
        SPS_BIN(wi(static_cast<int64_t>(x.asInt()) + y.asInt()));
      case Opcode::ISub:
        SPS_BIN(wi(static_cast<int64_t>(x.asInt()) - y.asInt()));
      case Opcode::IMul:
        SPS_BIN(wi(static_cast<int64_t>(x.asInt()) * y.asInt()));
      case Opcode::IAnd:
        SPS_BIN(wi(x.asInt() & y.asInt()));
      case Opcode::IOr:
        SPS_BIN(wi(x.asInt() | y.asInt()));
      case Opcode::IXor:
        SPS_BIN(wi(x.asInt() ^ y.asInt()));
      case Opcode::IShl:
        SPS_BIN(wi(static_cast<int64_t>(x.asInt()) << (y.asInt() & 31)));
      case Opcode::IShr:
        SPS_BIN(wi(x.asInt() >> (y.asInt() & 31)));
      case Opcode::IAbs:
        SPS_UN(wi(std::abs(static_cast<int64_t>(x.asInt()))));
      case Opcode::IMin:
        SPS_BIN(wi(std::min(x.asInt(), y.asInt())));
      case Opcode::IMax:
        SPS_BIN(wi(std::max(x.asInt(), y.asInt())));
      case Opcode::ICmpEq:
        SPS_BIN(wi(x.asInt() == y.asInt() ? 1 : 0));
      case Opcode::ICmpLt:
        SPS_BIN(wi(x.asInt() < y.asInt() ? 1 : 0));
      case Opcode::ICmpLe:
        SPS_BIN(wi(x.asInt() <= y.asInt() ? 1 : 0));
      case Opcode::Select: {
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;
        const Word *A1 = val + static_cast<size_t>(insn.a1) * stride;
        const Word *A2 = val + static_cast<size_t>(insn.a2) * stride;
        for (int cl = lane0; cl < lane1; ++cl)
            D[cl] = A0[cl].asInt() != 0 ? A1[cl] : A2[cl];
        break;
      }
      // NaN-sensitive ops use the pinned semantics from isa/fp.h,
      // identical to the reference interpreter's.
      case Opcode::FAdd:
        SPS_BIN(wf(isa::fpAdd(x.asFloat(), y.asFloat())));
      case Opcode::FSub:
        SPS_BIN(wf(x.asFloat() - y.asFloat()));
      case Opcode::FMul:
        SPS_BIN(wf(isa::fpMul(x.asFloat(), y.asFloat())));
      case Opcode::FDiv:
        SPS_BIN(wf(x.asFloat() / y.asFloat()));
      case Opcode::FSqrt:
        SPS_UN(wf(std::sqrt(x.asFloat())));
      case Opcode::FRsqrt:
        SPS_UN(wf(1.0f / std::sqrt(x.asFloat())));
      case Opcode::FAbs:
        SPS_UN(wf(std::fabs(x.asFloat())));
      case Opcode::FNeg:
        SPS_UN(wf(-x.asFloat()));
      case Opcode::FMin:
        SPS_BIN(wf(isa::fpMin(x.asFloat(), y.asFloat())));
      case Opcode::FMax:
        SPS_BIN(wf(isa::fpMax(x.asFloat(), y.asFloat())));
      case Opcode::FCmpEq:
        SPS_BIN(wi(x.asFloat() == y.asFloat() ? 1 : 0));
      case Opcode::FCmpLt:
        SPS_BIN(wi(x.asFloat() < y.asFloat() ? 1 : 0));
      case Opcode::FCmpLe:
        SPS_BIN(wi(x.asFloat() <= y.asFloat() ? 1 : 0));
      case Opcode::FToI:
        SPS_UN(wi(static_cast<int32_t>(x.asFloat())));
      case Opcode::IToF:
        SPS_UN(wf(static_cast<float>(x.asInt())));
      case Opcode::FFloor:
        SPS_UN(wf(isa::fpFloor(x.asFloat())));
      case Opcode::LoopIndex: {
        if (ew > c) {
            // Fused megastrip: lane cl holds real iteration
            // iter * fuse + cl / c.
            const int64_t base = iter * (ew / c);
            for (int cl = lane0; cl < lane1; ++cl)
                D[cl] = wi(base + cl / c);
        } else {
            std::fill(D + lane0, D + lane1, wi(iter));
        }
        break;
      }
      case Opcode::Phi: {
        if (iter >= insn.distance) {
            const Word *row =
                ctx.hist +
                (static_cast<size_t>(insn.histBase) +
                 static_cast<size_t>(iter % insn.distance)) *
                    stride;
            std::copy(row + lane0, row + lane1, D + lane0);
        } else {
            std::fill(D + lane0, D + lane1, insn.imm);
        }
        break;
      }
      case Opcode::SbRead: {
        const StreamData &in =
            (*ctx.inputs)[static_cast<size_t>(insn.ordinal)];
        const size_t rw = static_cast<size_t>(insn.recordWords);
        if constexpr (!Guarded) {
            const Word *src = in.words.data() +
                              static_cast<size_t>(iter) *
                                  static_cast<size_t>(ew) * rw +
                              static_cast<size_t>(insn.field);
            if (rw == 1) {
                std::copy(src + lane0, src + lane1, D + lane0);
            } else {
                for (int cl = lane0; cl < lane1; ++cl)
                    D[cl] = src[static_cast<size_t>(cl) * rw];
            }
        } else {
            const int64_t nrec = in.records();
            for (int cl = lane0; cl < lane1; ++cl) {
                const int64_t rec = iter * c + cl;
                D[cl] = rec < nrec
                            ? in.words[static_cast<size_t>(
                                  rec * insn.recordWords + insn.field)]
                            : Word{};
            }
        }
        break;
      }
      case Opcode::SbWrite: {
        StreamData &out =
            ctx.result->outputs[static_cast<size_t>(insn.ordinal)];
        const Word *S = val + static_cast<size_t>(insn.a0) * stride;
        const size_t rw = static_cast<size_t>(insn.recordWords);
        if constexpr (!Guarded) {
            Word *dst = out.words.data() +
                        static_cast<size_t>(iter) *
                            static_cast<size_t>(ew) * rw +
                        static_cast<size_t>(insn.field);
            if (rw == 1) {
                std::copy(S + lane0, S + lane1, dst + lane0);
            } else {
                for (int cl = lane0; cl < lane1; ++cl)
                    dst[static_cast<size_t>(cl) * rw] = S[cl];
            }
        } else {
            for (int cl = lane0; cl < lane1; ++cl) {
                const int64_t rec = iter * c + cl;
                if (rec < ctx.driverRecords)
                    out.words[static_cast<size_t>(
                        rec * insn.recordWords + insn.field)] = S[cl];
            }
        }
        break;
      }
      case Opcode::SbCondRead: {
        const StreamData &in =
            (*ctx.inputs)[static_cast<size_t>(insn.ordinal)];
        condReadStep(in,
                     ctx.condCursor[static_cast<size_t>(insn.stream)],
                     c, val + static_cast<size_t>(insn.a0) * stride, D);
        break;
      }
      case Opcode::SbCondWrite: {
        StreamData &out =
            ctx.result->outputs[static_cast<size_t>(insn.ordinal)];
        condWriteStep(out, c,
                      val + static_cast<size_t>(insn.a1) * stride,
                      val + static_cast<size_t>(insn.a0) * stride);
        break;
      }
      case Opcode::SpRead: {
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;
        for (int cl = 0; cl < c; ++cl) {
            const int32_t addr = A0[cl].asInt();
            SPS_ASSERT(addr >= 0 && addr < sp_words,
                       "kernel %s: SP read at %d out of %d",
                       ctx.lk->name.c_str(), addr, sp_words);
            D[cl] = ctx.scratch[static_cast<size_t>(cl) *
                                    static_cast<size_t>(sp_words) +
                                static_cast<size_t>(addr)];
        }
        break;
      }
      case Opcode::SpWrite: {
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;
        const Word *A1 = val + static_cast<size_t>(insn.a1) * stride;
        for (int cl = 0; cl < c; ++cl) {
            const int32_t addr = A0[cl].asInt();
            SPS_ASSERT(addr >= 0 && addr < sp_words,
                       "kernel %s: SP write at %d out of %d",
                       ctx.lk->name.c_str(), addr, sp_words);
            ctx.scratch[static_cast<size_t>(cl) *
                            static_cast<size_t>(sp_words) +
                        static_cast<size_t>(addr)] = A1[cl];
        }
        break;
      }
      case Opcode::CommPerm: {
        // SSA guarantees dst != a0/a1, so the exchange can read the
        // send row in place (no staging copy). Under megastrip fusion
        // (ew > c) the exchange is cross-lane but intra-iteration:
        // each fused c-wide sub-strip exchanges within itself.
        const Word *A0 = val + static_cast<size_t>(insn.a0) * stride;
        const Word *A1 = val + static_cast<size_t>(insn.a1) * stride;
        for (int s0 = 0; s0 < ew; s0 += c)
            commExchange(A0 + s0, c, A1 + s0, D + s0);
        break;
      }
      default:
        panic("lowered execute: unexpected opcode %s in body",
              std::string(isa::mnemonic(insn.code)).c_str());
    }

#undef SPS_UN
#undef SPS_BIN
}

/** End-of-iteration phi latch: hist ring row <- source value row. */
inline void
latchPhis(const ExecCtx &ctx, int64_t iter)
{
    using isa::Word;
    for (const LoweredKernel::PhiLatch &latch : ctx.lk->latches) {
        Word *row = ctx.hist +
                    (static_cast<size_t>(latch.histBase) +
                     static_cast<size_t>(iter % latch.distance)) *
                        ctx.stride;
        const Word *src =
            ctx.val + static_cast<size_t>(latch.src) * ctx.stride;
        std::copy(src, src + ctx.c, row);
    }
}

/** Scalar backend: run iterations [from, to) at width c. */
template <bool Guarded>
inline void
runSpanScalar(const ExecCtx &ctx, int64_t from, int64_t to)
{
    for (int64_t iter = from; iter < to; ++iter) {
        for (const LoweredInsn &insn : ctx.lk->body)
            execInsn<Guarded>(ctx, insn, iter, ctx.c, 0, ctx.c);
        latchPhis(ctx, iter);
    }
}

/**
 * SIMD backends (interp/simd.cpp): run body ops [bodyBegin, bodyEnd)
 * of unguarded virtual iterations [from, to) at execution width `ew`
 * (ew == c * fuse for fused megastrip spans, ew == c for plain strips
 * and partial-fusion serial cores). `latch` fires the end-of-iteration
 * phi latch. `backend` must be a supported non-Scalar tier.
 */
void runSpanSimd(SimdBackend backend, const ExecCtx &ctx, int64_t from,
                 int64_t to, int ew, int bodyBegin, int bodyEnd,
                 bool latch);

/** Full-body runSpanSimd (all ops, latch on): plain steady strips and
 *  fully fused megastrip blocks. */
void runSteadySimd(SimdBackend backend, const ExecCtx &ctx,
                   int64_t from, int64_t to, int ew);

} // namespace sps::interp::detail

#endif // SPS_INTERP_EXEC_SPAN_H
