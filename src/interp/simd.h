/**
 * @file
 * Host-SIMD backend selection for the lowered interpreter.
 *
 * The steady-state strips of interp::executeLowered are uniform data
 * parallelism across the cluster dimension (the paper's whole premise),
 * so they vectorize directly over the contiguous SoA value buffer:
 * AVX2 runs 8 int32/float lanes per op, SSE2 runs 4. Both tiers are
 * compiled into every binary via function target attributes and picked
 * at runtime from CPUID, so one build serves every host.
 *
 * Bit-exactness contract: every backend produces results bit-identical
 * to runKernelReference. Vector lanes use only strict per-lane IEEE
 * ops (no FMA contraction, no reassociation, denormals untouched); the
 * few ops whose vector instruction can differ from the scalar libm
 * call on special values (FFloor on signaling NaN, FMin/FMax on
 * unordered inputs) recompute exactly those lanes through the same
 * scalar expression the scalar engine uses, so equality holds by
 * construction. See DESIGN.md "SIMD backend".
 *
 * Escape hatch: SPS_INTERP_SCALAR=1 in the environment (or
 * sim::RunOptions::forceScalarInterp) forces the scalar span executor;
 * SPS_INTERP_BACKEND=scalar|sse2|avx2 pins a specific tier;
 * SPS_INTERP_FUSION=off|full|partial (or sim::RunOptions::interpFusion)
 * pins the megastrip fusion policy.
 */
#ifndef SPS_INTERP_SIMD_H
#define SPS_INTERP_SIMD_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace sps::interp {

/** Instruction-set tiers for the lowered executor's steady state. */
enum class SimdBackend : uint8_t
{
    Scalar = 0, ///< portable scalar span executor (always available)
    Sse2 = 1,   ///< 4-wide int32/float lanes (x86-64 baseline)
    Avx2 = 2,   ///< 8-wide int32/float lanes
};

/** Stable lower-case name ("scalar", "sse2", "avx2"). */
const char *simdBackendName(SimdBackend b);

/** Parse a backend name (case-sensitive, as in simdBackendName).
 *  Returns false and leaves *out untouched on unknown names. */
bool parseSimdBackend(std::string_view name, SimdBackend *out);

/** True when `b` is compiled in AND this CPU can execute it. */
bool simdBackendSupported(SimdBackend b);

/** Every supported backend, Scalar first, widest last. */
std::vector<SimdBackend> availableSimdBackends();

/** The widest supported backend on this host. */
SimdBackend bestSimdBackend();

/**
 * Pure selection policy (unit-testable): `scalar_env` /`backend_env`
 * are the values of SPS_INTERP_SCALAR / SPS_INTERP_BACKEND (null when
 * unset). A non-empty SPS_INTERP_SCALAR other than "0" wins and forces
 * Scalar; otherwise a recognized SPS_INTERP_BACKEND is used (clamped
 * to the best supported tier at or below it); otherwise the best
 * supported backend.
 */
SimdBackend resolveSimdBackend(const char *scalar_env,
                               const char *backend_env);

/** Process-wide default: resolveSimdBackend over the real
 *  environment, resolved once on first use. */
SimdBackend defaultSimdBackend();

/**
 * Megastrip-fusion policy for the SIMD steady state. Fusion never
 * changes results (bit-identical by construction); the policy exists
 * as a perf escape hatch and for differential testing.
 */
enum class FusionPolicy : uint8_t
{
    /** No megastrip fusion: every strip runs at width C. */
    Off = 0,
    /** All-or-nothing fusion only: bodies with any loop-carried op
     *  run entirely unfused (the pre-partial behaviour). */
    Full = 1,
    /** Full fusion plus partial (prefix/suffix) fusion around the
     *  loop-carried serial core (the default). */
    Partial = 2,
};

/** Stable lower-case name ("off", "full", "partial"). */
const char *fusionPolicyName(FusionPolicy p);

/** Parse a policy name (case-sensitive, as in fusionPolicyName).
 *  Returns false and leaves *out untouched on unknown names. */
bool parseFusionPolicy(std::string_view name, FusionPolicy *out);

/**
 * Pure selection policy (unit-testable): `fusion_env` is the value of
 * SPS_INTERP_FUSION (null when unset). A recognized name wins;
 * anything else resolves to Partial, the default.
 */
FusionPolicy resolveFusionPolicy(const char *fusion_env);

/** Process-wide default: resolveFusionPolicy over the real
 *  environment, resolved once on first use. */
FusionPolicy defaultFusionPolicy();

} // namespace sps::interp

#endif // SPS_INTERP_SIMD_H
