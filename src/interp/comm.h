/**
 * @file
 * Intercluster communication exchange: the COMM unit's data movement
 * across the intercluster switch. Each cluster names a source cluster
 * (any permutation, broadcast, or gather pattern is legal) and
 * receives the named cluster's value.
 */
#ifndef SPS_INTERP_COMM_H
#define SPS_INTERP_COMM_H

#include <functional>
#include <vector>

#include "isa/value.h"

namespace sps::interp {

/**
 * Deliver one intercluster exchange.
 *
 * @param sent value each source cluster drives onto its row bus
 * @param c cluster count
 * @param src_of source cluster index requested by each cluster
 *        (wrapped into [0, c))
 * @param deliver sink called with (cluster, received value)
 */
void commExchange(const std::vector<isa::Word> &sent, int c,
                  const std::function<int(int)> &src_of,
                  const std::function<void(int, isa::Word)> &deliver);

/**
 * Contiguous-layout overload for the lowered engine: `sent`,
 * `src_sel`, and `dst` are C adjacent words (one per cluster);
 * dst[cl] = sent[src_sel[cl] mod c]. `dst` must not alias `sent`
 * (guaranteed by SSA: an op never defines one of its own operands).
 */
void commExchange(const isa::Word *sent, int c,
                  const isa::Word *src_sel, isa::Word *dst);

} // namespace sps::interp

#endif // SPS_INTERP_COMM_H
