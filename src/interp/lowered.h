/**
 * @file
 * Lowered SIMD execution engine: a one-time lowering pass from
 * kernel::Kernel to a flat, cache-friendly LoweredKernel, plus an
 * executor that stores all values as one contiguous
 * structure-of-arrays buffer (val[op * C + cluster]) so each opcode's
 * per-cluster loop is a branch-free sweep over adjacent words.
 *
 * Lowering pre-resolves everything the interpreter's inner loop used
 * to recompute per op per iteration: stream indices become
 * input/output ordinals, phi history becomes ring-row offsets into a
 * single shared buffer, argument lists become fixed slots, and
 * iteration-invariant ops (ConstInt/ConstFloat/ClusterId/NumClusters)
 * move to a preamble executed once. Execution splits into a
 * steady-state path over full strips of C records with no per-record
 * bounds checks and a tail path that keeps the original guarded
 * semantics, so outputs are bit-identical to the reference
 * interpreter (interp::runKernelReference) for every kernel.
 *
 * Lowered kernels are memoized in LoweredCache (keyed by the
 * structural kernel::fingerprint, thread-safe like
 * sched::ScheduleCache), so repeated runs across EvalEngine threads
 * lower and validate each kernel exactly once.
 */
#ifndef SPS_INTERP_LOWERED_H
#define SPS_INTERP_LOWERED_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"
#include "interp/simd.h"
#include "kernel/ir.h"

namespace sps::interp {

/**
 * Per-op lane-width legality for the SIMD steady-state executors,
 * emitted by lowering. Ops that are not legal at a tier's width split
 * the strip back to the shared scalar span executor.
 */
enum class LaneClass : uint8_t
{
    /** Elementwise: vectorizes at any lane width. */
    Vector = 0,
    /** Elementwise but needs the wide tier's ISA (FFloor: roundps is
     *  SSE4.1+, absent from the SSE2 baseline). */
    VectorWide = 1,
    /** Unconditional stream access: block copies / gathers. */
    Stream = 2,
    /** Per-iteration fill that does not block megastrip fusion
     *  (LoopIndex; also the preamble's iteration-invariant ops). */
    Broadcast = 3,
    /** Cross-iteration or cursor/scratchpad state: always scalar,
     *  blocks fusion (Phi, conditional streams, scratchpad). */
    Scalar = 4,
    /** Cross-lane but confined to one iteration's c-wide strip
     *  (CommPerm): legal under megastrip fusion by exchanging within
     *  each c-wide sub-strip, and vectorizable on the wide tier as an
     *  in-register permute when c is a power of two <= the vector
     *  width. */
    Cross = 5,
};

/** The LaneClass lowering assigns to `code`. */
LaneClass laneClassOf(isa::Opcode code);

/**
 * Dependence-cone region of a body op, emitted by lowering (the
 * partial-megastrip-fusion partition). The loop-carried ops
 * (LaneClass::Scalar: phi, conditional streams, scratchpad) seed two
 * slices over the body's dataflow + side-effect-token + phi-latch
 * edges: the forward slice F (ops transitively reading carried state)
 * and the backward slice B (ops carried state transitively reads).
 *
 *   Prefix  = not in F   — depends on nothing carried; safe to run
 *                          megastrip-fused across strips *before* any
 *                          of the block's serial cores.
 *   Core    = F ∩ B      — the carried chain's cone; must run strip
 *                          by strip in strict iteration order.
 *   Suffix  = F \ B      — reads core results but feeds nothing
 *                          carried (no cross-iteration out-edges);
 *                          safe to fuse *after* the block's cores.
 *
 * Prefix-then-core-then-suffix is a topological order of the body, so
 * lowering stores the body already partitioned ([prefix|core|suffix],
 * program order preserved within each region) and execution in that
 * order is bit-identical to program order.
 */
enum class Region : uint8_t
{
    Prefix = 0,
    Core = 1,
    Suffix = 2,
};

/** Stable lower-case name ("prefix", "core", "suffix"). */
const char *regionName(Region r);

/** One lowered instruction: opcode plus fully pre-resolved operands. */
struct LoweredInsn
{
    isa::Opcode code = isa::Opcode::ConstInt;
    /** Destination value slot (row `dst` of the SoA value buffer). */
    kernel::ValueId dst = 0;
    /** Argument value slots (kNoValue when unused). */
    kernel::ValueId a0 = kernel::kNoValue;
    kernel::ValueId a1 = kernel::kNoValue;
    kernel::ValueId a2 = kernel::kNoValue;
    /** Constant payload, or the Phi init value. */
    isa::Word imm;
    /** Kernel stream index for Sb* ops (conditional cursor key). */
    int32_t stream = -1;
    /** Pre-resolved input/output ordinal for Sb* ops. */
    int32_t ordinal = -1;
    /** Record field for SbRead/SbWrite. */
    int32_t field = 0;
    /** Record width of the accessed stream. */
    int32_t recordWords = 1;
    /** Phi dependence distance. */
    int32_t distance = 0;
    /** Phi: first ring row in the shared history buffer. */
    int32_t histBase = 0;
    /** Lane-width legality for the SIMD executors. */
    LaneClass lanes = LaneClass::Scalar;
    /** Dependence-cone region (partial megastrip fusion). */
    Region region = Region::Core;
};

/**
 * A kernel lowered to flat execution form. Independent of the cluster
 * count C: per-run buffers are sized C-wide at execution time, so one
 * lowering serves every design point of a sweep.
 */
struct LoweredKernel
{
    std::string name;
    int nops = 0;
    /** Scratchpad words per cluster (>= 1 so the buffer is non-empty). */
    int spWords = 1;
    /** Total phi-history ring rows across all phis. */
    int histRows = 0;
    int nStreams = 0;
    int nIn = 0;
    int nOut = 0;
    /** Input ordinal of the length-driving stream. */
    int driverOrdinal = 0;

    /** Iteration-invariant ops, executed once before the loop. */
    std::vector<LoweredInsn> preamble;
    /** Loop body, executed every iteration in program order. */
    std::vector<LoweredInsn> body;

    /** End-of-iteration phi latch: hist row <- value of `src`. */
    struct PhiLatch
    {
        kernel::ValueId src = 0;
        int32_t distance = 1;
        int32_t histBase = 0;
    };
    std::vector<PhiLatch> latches;

    /** Stream ports in kernel stream order. */
    struct PortInfo
    {
        std::string name;
        bool isInput = true;
        bool conditional = false;
        int recordWords = 1;
        int ordinal = 0;
    };
    std::vector<PortInfo> ports;

    /**
     * Input ordinals read by unconditional SbRead ops; together with
     * the driver length they bound the steady-state strip count.
     */
    std::vector<int> steadyReadOrdinals;

    /**
     * Region split points: body is stored partitioned as
     * [0, coreBegin) prefix, [coreBegin, coreEnd) serial core,
     * [coreEnd, body.size()) suffix. The partition is a property of
     * the kernel's dataflow alone — independent of backend, fusion
     * policy, and cluster count — so one LoweredCache entry serves
     * every execution configuration.
     */
    int coreBegin = 0;
    int coreEnd = 0;

    /**
     * True when no body op is LaneClass::Scalar (the core is empty):
     * the body has no cross-iteration state, so adjacent full strips
     * can fuse into one megastrip of c * fuse virtual lanes to
     * amortize dispatch. Cross-lane CommPerm does not block fusion:
     * each c-wide sub-strip exchanges within itself.
     */
    bool fusible = false;

    /** True when the body has a loop-carried core but also a nonempty
     *  fusible prefix and/or suffix: partial megastrip fusion can run
     *  the off-chain regions fused and serialize only the cone. */
    bool
    partiallyFusible() const
    {
        return coreEnd > coreBegin &&
               (coreBegin > 0 ||
                coreEnd < static_cast<int>(body.size()));
    }

    /**
     * Fraction of steady-state body ops that execute in fused
     * (prefix/suffix) regions when megastrip fusion engages under
     * `policy`: 1 for fully fusible bodies, the off-cone fraction for
     * partially fusible ones, 0 when fusion cannot engage.
     */
    double
    fusedOpFraction(FusionPolicy policy) const
    {
        if (body.empty() || policy == FusionPolicy::Off)
            return 0.0;
        if (fusible)
            return 1.0;
        if (policy != FusionPolicy::Partial || !partiallyFusible())
            return 0.0;
        return 1.0 - static_cast<double>(coreEnd - coreBegin) /
                         static_cast<double>(body.size());
    }
};

/** Lower `k` (validating it once). Uncached; see LoweredCache. */
LoweredKernel lowerKernel(const kernel::Kernel &k);

/** Execute a lowered kernel on `c` clusters with the process-default
 *  SIMD backend (interp::defaultSimdBackend). */
ExecResult executeLowered(const LoweredKernel &lk, int c,
                          const std::vector<StreamData> &inputs);

/**
 * Execute with an explicit backend (tests, benchmarks, the forced-
 * scalar escape hatch). An unsupported backend falls back to the best
 * supported tier. Results are bit-identical across backends.
 */
ExecResult executeLowered(const LoweredKernel &lk, int c,
                          const std::vector<StreamData> &inputs,
                          SimdBackend backend);

/**
 * Execute with an explicit backend AND megastrip-fusion policy
 * (tests, benchmarks, the SPS_INTERP_FUSION escape hatch). Results
 * are bit-identical across every backend x policy combination.
 */
ExecResult executeLowered(const LoweredKernel &lk, int c,
                          const std::vector<StreamData> &inputs,
                          SimdBackend backend, FusionPolicy fusion);

/**
 * Thread-safe memoized lowering cache keyed by the structural kernel
 * fingerprint. get() may be called concurrently from any number of
 * threads; a given kernel is lowered exactly once (concurrent
 * requests block on the winner). Returned references stay valid until
 * clear(), which must not race in-flight get() calls or outstanding
 * references.
 */
class LoweredCache
{
  public:
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    /** The lowered form of `k`, lowering on first use. */
    const LoweredKernel &get(const kernel::Kernel &k);

    Counters counters() const;
    size_t size() const;

    /** Drop all entries and reset the counters (not concurrency-safe
     *  against in-flight get() calls or live references). */
    void clear();

    /** The process-wide cache shared by all interpreter callers. */
    static LoweredCache &global();

  private:
    struct Entry
    {
        std::once_flag once;
        LoweredKernel lk;
    };

    mutable std::mutex mu_;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> map_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace sps::interp

#endif // SPS_INTERP_LOWERED_H
