#include "trace/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sps::trace {

namespace {

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeEvent(std::ostringstream &os, const TraceEvent &ev, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
       << jsonEscape(ev.cat) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << ev.ts << ",\"pid\":0,\"tid\":" << ev.tid;
    if (ev.phase == 'X')
        os << ",\"dur\":" << ev.dur;
    if (ev.phase == 'b' || ev.phase == 'e')
        os << ",\"id\":" << ev.id;
    if (ev.phase == 'i')
        os << ",\"s\":\"t\"";
    if (!ev.args.empty()) {
        os << ",\"args\":{";
        for (size_t i = 0; i < ev.args.size(); ++i) {
            if (i)
                os << ",";
            os << "\"" << jsonEscape(ev.args[i].first)
               << "\":" << ev.args[i].second;
        }
        os << "}";
    }
    os << "}";
}

} // namespace

std::string
toChromeJson(const Tracer &tracer)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (const auto &[tid, name] : tracer.trackNames()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    }
    for (const TraceEvent &ev : tracer.events())
        writeEvent(os, ev, first);
    os << "\n]}\n";
    return os.str();
}

bool
writeChromeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toChromeJson(tracer);
    return static_cast<bool>(out);
}

void
timelineToTracer(const sim::SimResult &result, Tracer &tracer)
{
    tracer.setTrackName(trace::kTrackHost, "stream ops (other)");
    tracer.setTrackName(trace::kTrackMem, "stream ops (mem)");
    tracer.setTrackName(trace::kTrackClusters, "stream ops (kernel)");
    for (const sim::OpInterval &iv : result.timeline) {
        int tid = trace::kTrackHost;
        const char *cat = "op";
        switch (iv.kind) {
          case sim::OpClass::Load:
            tid = trace::kTrackMem;
            cat = "load";
            break;
          case sim::OpClass::Store:
            tid = trace::kTrackMem;
            cat = "store";
            break;
          case sim::OpClass::Kernel:
            tid = trace::kTrackClusters;
            cat = "kernel";
            break;
          case sim::OpClass::Other:
            break;
        }
        tracer.span(cat, iv.label, iv.start, iv.end, iv.opId, tid,
                    {{"op_id", iv.opId}});
    }
}

bool
writeTimelineTrace(const sim::SimResult &result, const std::string &path)
{
    Tracer t;
    timelineToTracer(result, t);
    return writeChromeTrace(t, path);
}

} // namespace sps::trace
