#include "trace/counters_csv.h"

#include <cstdio>

namespace sps::trace {

namespace {

void
addExact(std::vector<CounterValue> &out, const char *name, int64_t v)
{
    out.push_back(CounterValue{name, static_cast<double>(v), true});
}

void
addRate(std::vector<CounterValue> &out, const char *name, double v)
{
    out.push_back(CounterValue{name, v, false});
}

void
addBottleneckSection(std::vector<CounterValue> &out,
                     const sim::SimResult &r)
{
    const analysis::BottleneckReport &b = r.bottleneck;
    addExact(out, "bn_valid", b.valid ? 1 : 0);
    addExact(out, "bn_kernel_bound_cycles", b.kernelBoundCycles);
    addExact(out, "bn_memory_bound_cycles", b.memoryBoundCycles);
    addExact(out, "bn_dependence_cycles", b.dependenceCycles);
    addExact(out, "bn_scoreboard_cycles", b.scoreboardCycles);
    addExact(out, "bn_host_issue_cycles", b.hostIssueCycles);
    addExact(out, "bn_idle_cycles", b.idleCycles);
}

void
addEnergySection(std::vector<CounterValue> &out,
                 const sim::SimResult &r)
{
    const energy::EnergyReport &e = r.energy;
    addExact(out, "energy_valid", e.valid ? 1 : 0);
    addRate(out, "energy_srf_dyn_ew", e.srf.dynamicEw);
    addRate(out, "energy_srf_idle_ew", e.srf.idleEw);
    addRate(out, "energy_clusters_dyn_ew", e.clusters.dynamicEw);
    addRate(out, "energy_clusters_idle_ew", e.clusters.idleEw);
    addRate(out, "energy_uc_dyn_ew", e.microcontroller.dynamicEw);
    addRate(out, "energy_uc_idle_ew", e.microcontroller.idleEw);
    addRate(out, "energy_comm_dyn_ew", e.interclusterComm.dynamicEw);
    addRate(out, "energy_comm_idle_ew", e.interclusterComm.idleEw);
    addRate(out, "energy_dram_dyn_ew", e.dram.dynamicEw);
    addRate(out, "energy_dram_idle_ew", e.dram.idleEw);
    addRate(out, "energy_total_ew", e.totalEw());
    addRate(out, "energy_scaled_total_ew", e.scaledTotalEw());
    addRate(out, "energy_per_alu_op_ew", e.energyPerAluOpEw());
    addRate(out, "energy_scaled_per_alu_op_ew",
            e.scaledEnergyPerAluOpEw());
    addRate(out, "energy_per_output_word_ew",
            e.energyPerOutputWordEw());
    addRate(out, "avg_power_watts", e.averagePowerWatts());
}

} // namespace

std::string
CounterValue::toCell() const
{
    char buf[48];
    if (exact)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
    else
        std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

std::vector<CounterValue>
counterValues(const sim::SimResult &r)
{
    const sim::SimCounters &c = r.counters;
    std::vector<CounterValue> out;
    out.reserve(72);
    addExact(out, "schema_version", kCountersSchemaVersion);
    // Headline aggregates.
    addExact(out, "cycles", r.cycles);
    addExact(out, "alu_ops", r.aluOps);
    addExact(out, "mem_words", r.memWords);
    addExact(out, "mem_busy_cycles", r.memBusy);
    addExact(out, "uc_busy_cycles", r.ucBusy);
    addExact(out, "srf_high_water_words", r.srfHighWater);
    // Cycle breakdown (sums to cycles).
    addExact(out, "kernel_only_cycles", c.kernelOnlyCycles);
    addExact(out, "mem_only_cycles", c.memOnlyCycles);
    addExact(out, "overlap_cycles", c.overlapCycles);
    addExact(out, "idle_cycles", c.idleCycles);
    // Stream controller / host interface.
    addExact(out, "kernel_calls", c.kernelCalls);
    addExact(out, "loads", c.loads);
    addExact(out, "stores", c.stores);
    addExact(out, "host_issue_busy_cycles", c.hostIssueBusyCycles);
    addExact(out, "scoreboard_stall_cycles", c.scoreboardStallCycles);
    addExact(out, "dep_stall_cycles", c.depStallCycles);
    addExact(out, "mem_pipe_stall_cycles", c.memPipeStallCycles);
    addExact(out, "uc_pipe_stall_cycles", c.ucPipeStallCycles);
    addExact(out, "uc_overhead_cycles", c.ucOverheadCycles);
    // Cluster ALUs.
    addExact(out, "alu_issue_slots", c.aluIssueSlots);
    addExact(out, "kernel_alu_slots", c.kernelAluSlots);
    // Cluster activity census.
    addExact(out, "cluster_fu_ops", c.clusterFuOps);
    addExact(out, "cluster_sp_ops", c.clusterSpOps);
    addExact(out, "inter_comm_words", c.interCommWords);
    // SRF.
    addExact(out, "srf_read_words", c.srfReadWords);
    addExact(out, "srf_write_words", c.srfWriteWords);
    addExact(out, "mem_store_words", c.memStoreWords);
    addExact(out, "srf_bw_stall_cycles", c.srfBwStallCycles);
    // DRAM.
    addExact(out, "dram_accesses", c.dramAccesses);
    addExact(out, "dram_row_hits", c.dramRowHits);
    addExact(out, "dram_row_misses", c.dramRowMisses);
    addExact(out, "dram_bank_conflicts", c.dramBankConflicts);
    addExact(out, "dram_reorder_sum", c.dramReorderSum);
    addExact(out, "dram_reorder_max", c.dramReorderMax);
    addExact(out, "mem_alias_stall_cycles", c.memAliasStallCycles);
    addExact(out, "dram_channel_busy_max", r.dramChannelBusyMax());
    addExact(out, "dram_channel_busy_min", r.dramChannelBusyMin());
    // Derived rates (tolerance-compared).
    addRate(out, "alu_occupancy", r.aluOccupancy());
    addRate(out, "kernel_alu_occupancy", r.kernelAluOccupancy());
    addRate(out, "srf_read_bw_words_per_cycle", r.srfReadBandwidth());
    addRate(out, "srf_write_bw_words_per_cycle",
            r.srfWriteBandwidth());
    addRate(out, "dram_row_hit_rate", r.dramRowHitRate());
    addRate(out, "dram_avg_reorder_distance",
            r.dramAvgReorderDistance());
    addRate(out, "mem_busy_fraction", r.memBusyFraction());
    addRate(out, "uc_busy_fraction", r.ucBusyFraction());
    addRate(out, "gops_ops", r.gopsOps);
    // Bottleneck waterfall + energy breakdown.
    addBottleneckSection(out, r);
    addEnergySection(out, r);
    return out;
}

std::vector<std::string>
counterNames()
{
    std::vector<std::string> names;
    for (const CounterValue &cv : counterValues(sim::SimResult{}))
        names.push_back(cv.name);
    return names;
}

void
beginCountersCsv(CsvWriter &w, std::vector<std::string> key_columns)
{
    for (const std::string &name : counterNames())
        key_columns.push_back(name);
    w.header(std::move(key_columns));
}

void
appendCountersRow(CsvWriter &w, std::vector<std::string> key_cells,
                  const sim::SimResult &r)
{
    for (const CounterValue &cv : counterValues(r))
        key_cells.push_back(cv.toCell());
    w.row(std::move(key_cells));
}

std::vector<CounterValue>
energyValues(const sim::SimResult &r)
{
    std::vector<CounterValue> out;
    out.reserve(24);
    addExact(out, "schema_version", kCountersSchemaVersion);
    addBottleneckSection(out, r);
    addEnergySection(out, r);
    return out;
}

std::vector<std::string>
energyNames()
{
    std::vector<std::string> names;
    for (const CounterValue &cv : energyValues(sim::SimResult{}))
        names.push_back(cv.name);
    return names;
}

void
beginEnergyCsv(CsvWriter &w, std::vector<std::string> key_columns)
{
    for (const std::string &name : energyNames())
        key_columns.push_back(name);
    w.header(std::move(key_columns));
}

void
appendEnergyRow(CsvWriter &w, std::vector<std::string> key_cells,
                const sim::SimResult &r)
{
    for (const CounterValue &cv : energyValues(r))
        key_cells.push_back(cv.toCell());
    w.row(std::move(key_cells));
}

} // namespace sps::trace
