/**
 * @file
 * Chrome trace_event JSON exporter: turns a recorded trace::Tracer (or
 * a bare SimResult timeline) into a file loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing. Simulated cycles are
 * exported as microseconds, so one trace "us" is one machine cycle.
 */
#ifndef SPS_TRACE_CHROME_TRACE_H
#define SPS_TRACE_CHROME_TRACE_H

#include <string>

#include "sim/stats.h"
#include "trace/tracer.h"

namespace sps::trace {

/** Render a recorded tracer as Chrome trace_event JSON. */
std::string toChromeJson(const Tracer &tracer);

/** Write a recorded tracer as JSON; returns false on I/O failure. */
bool writeChromeTrace(const Tracer &tracer, const std::string &path);

/**
 * Convert a finished simulation's op timeline into tracer events:
 * one async span per op (id = the program-order op id, so overlapping
 * intervals -- e.g. double-buffered loads with identical labels --
 * stay distinguishable), on one track per op class.
 */
void timelineToTracer(const sim::SimResult &result, Tracer &tracer);

/** Shorthand: export just a result's timeline as a Chrome trace. */
bool writeTimelineTrace(const sim::SimResult &result,
                        const std::string &path);

} // namespace sps::trace

#endif // SPS_TRACE_CHROME_TRACE_H
