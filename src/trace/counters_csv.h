/**
 * @file
 * The canonical hardware-counter table of one simulation run: a named,
 * ordered list of counter values extracted from a SimResult. This is
 * the single source of truth shared by the per-run counters CSV the
 * benches export and the golden-counter regression tests (exact
 * comparison for event counts, tolerance for derived rates).
 */
#ifndef SPS_TRACE_COUNTERS_CSV_H
#define SPS_TRACE_COUNTERS_CSV_H

#include <string>
#include <vector>

#include "common/csv.h"
#include "sim/stats.h"

namespace sps::trace {

/** One named counter extracted from a run. */
struct CounterValue
{
    std::string name;
    double value = 0.0;
    /** True for event counts (integers, compared exactly); false for
     *  derived rates (compared with a small tolerance). */
    bool exact = true;

    /** Canonical cell rendering (integers for exact counters). */
    std::string toCell() const;
};

/** All counters of one run, in canonical order. */
std::vector<CounterValue> counterValues(const sim::SimResult &r);

/** The canonical column names (order matches counterValues()). */
std::vector<std::string> counterNames();

/**
 * Start a per-run counters CSV: header is `key_columns` (e.g. app, C,
 * N) followed by the canonical counter columns.
 */
void beginCountersCsv(CsvWriter &w,
                      std::vector<std::string> key_columns);

/** Append one run: key cells followed by the counter cells. */
void appendCountersRow(CsvWriter &w, std::vector<std::string> key_cells,
                       const sim::SimResult &r);

} // namespace sps::trace

#endif // SPS_TRACE_COUNTERS_CSV_H
