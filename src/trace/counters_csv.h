/**
 * @file
 * The canonical hardware-counter table of one simulation run: a named,
 * ordered list of counter values extracted from a SimResult. This is
 * the single source of truth shared by the per-run counters CSV the
 * benches export and the golden-counter regression tests (exact
 * comparison for event counts, tolerance for derived rates).
 */
#ifndef SPS_TRACE_COUNTERS_CSV_H
#define SPS_TRACE_COUNTERS_CSV_H

#include <string>
#include <vector>

#include "common/csv.h"
#include "sim/stats.h"

namespace sps::trace {

/**
 * Version of the canonical counter schema. Bumped whenever a column
 * is added, removed, renamed, or reordered, and emitted as the first
 * column of every counters CSV so downstream readers can detect
 * mismatched files. tests/trace/counters_schema_test.cpp pins the
 * exact column list for the current version.
 *
 * History: 1 = original counter set; 2 = schema_version column,
 * cluster activity census (FU/SP ops, COMM words, store words), and
 * the energy + bottleneck sections.
 */
inline constexpr int kCountersSchemaVersion = 2;

/** One named counter extracted from a run. */
struct CounterValue
{
    std::string name;
    double value = 0.0;
    /** True for event counts (integers, compared exactly); false for
     *  derived rates (compared with a small tolerance). */
    bool exact = true;

    /** Canonical cell rendering (integers for exact counters). */
    std::string toCell() const;
};

/** All counters of one run, in canonical order. */
std::vector<CounterValue> counterValues(const sim::SimResult &r);

/** The canonical column names (order matches counterValues()). */
std::vector<std::string> counterNames();

/**
 * Start a per-run counters CSV: header is `key_columns` (e.g. app, C,
 * N) followed by the canonical counter columns.
 */
void beginCountersCsv(CsvWriter &w,
                      std::vector<std::string> key_columns);

/** Append one run: key cells followed by the counter cells. */
void appendCountersRow(CsvWriter &w, std::vector<std::string> key_cells,
                       const sim::SimResult &r);

/**
 * The energy + bottleneck subset of the canonical counters (same
 * cells that counterValues() ends with): the per-component energy
 * breakdown of SimResult::energy and the stall waterfall of
 * SimResult::bottleneck. This is the column set of the per-app energy
 * CSV exports and the golden energy regression file.
 */
std::vector<CounterValue> energyValues(const sim::SimResult &r);

/** Column names of energyValues(), in order. */
std::vector<std::string> energyNames();

/** Start a per-run energy CSV (schema_version + keys + energy
 *  columns). */
void beginEnergyCsv(CsvWriter &w, std::vector<std::string> key_columns);

/** Append one run's energy row. */
void appendEnergyRow(CsvWriter &w, std::vector<std::string> key_cells,
                     const sim::SimResult &r);

} // namespace sps::trace

#endif // SPS_TRACE_COUNTERS_CSV_H
