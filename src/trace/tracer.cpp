#include "trace/tracer.h"

namespace sps::trace {

void
Tracer::complete(std::string cat, std::string name, int64_t start,
                 int64_t end, int tid, std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.phase = 'X';
    ev.ts = start;
    ev.dur = end - start;
    ev.tid = tid;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

void
Tracer::instant(std::string cat, std::string name, int64_t ts, int tid,
                std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.phase = 'i';
    ev.ts = ts;
    ev.tid = tid;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

void
Tracer::span(std::string cat, std::string name, int64_t start,
             int64_t end, int64_t id, int tid,
             std::vector<TraceArg> args)
{
    TraceEvent begin;
    begin.name = name;
    begin.cat = cat;
    begin.phase = 'b';
    begin.ts = start;
    begin.tid = tid;
    begin.id = id;
    begin.args = std::move(args);
    TraceEvent finish;
    finish.name = std::move(name);
    finish.cat = std::move(cat);
    finish.phase = 'e';
    finish.ts = end;
    finish.tid = tid;
    finish.id = id;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(begin));
    events_.push_back(std::move(finish));
}

void
Tracer::counter(std::string name, int64_t ts, int64_t value)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = "counter";
    ev.phase = 'C';
    ev.ts = ts;
    ev.tid = kTrackSrf;
    ev.args.emplace_back("value", value);
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

void
Tracer::setTrackName(int tid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    trackNames_[tid] = std::move(name);
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::map<int, std::string>
Tracer::trackNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return trackNames_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
}

} // namespace sps::trace
