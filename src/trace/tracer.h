/**
 * @file
 * Structured event tracer for the simulator. Components record
 * begin/end ("complete") events, instants, and counter samples in
 * *simulated* cycles; the Chrome trace_event exporter
 * (trace/chrome_trace.h) turns a recorded run into a JSON file
 * viewable in Perfetto / chrome://tracing.
 *
 * Cost model: tracing is off by default -- every hook site guards on a
 * nullable Tracer pointer (see SPS_TRACE_ENABLED), so a disabled run
 * pays one pointer test per would-be event and allocates nothing. An
 * enabled Tracer is internally mutex-protected, so one instance may be
 * shared by concurrent simulations running on the evaluation engine's
 * thread pool (the TSan CI job asserts this).
 */
#ifndef SPS_TRACE_TRACER_H
#define SPS_TRACE_TRACER_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sps::trace {

/** Well-known track (Chrome "thread") ids for simulator events. */
enum Track : int {
    kTrackHost = 0,    ///< host interface / stream-controller issue
    kTrackMem = 1,     ///< streaming memory system
    kTrackClusters = 2,///< microcontroller + cluster array
    kTrackSrf = 3,     ///< SRF occupancy counters
    kTrackPower = 4,   ///< power-over-time counter tracks (mW)
};

/** One event-argument key/value pair (numeric payloads only). */
using TraceArg = std::pair<std::string, int64_t>;

/** One recorded event. Timestamps are simulated cycles. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    /** Chrome phase: 'X' complete, 'i' instant, 'C' counter,
     *  'b'/'e' async begin/end (distinguished by `id`). */
    char phase = 'X';
    int64_t ts = 0;
    int64_t dur = 0;
    int tid = 0;
    /** Async-event id ('b'/'e' phases): keeps overlapping spans with
     *  the same name apart (e.g. double-buffered loads). */
    int64_t id = 0;
    std::vector<TraceArg> args;
};

/**
 * Collects events from one or more simulations. All mutating entry
 * points are thread-safe; a single Tracer may be attached to many
 * concurrent runs (events interleave, distinguished by `pid`-style
 * run labels passed in event names or args by the caller).
 */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record a complete (begin/end) event. */
    void complete(std::string cat, std::string name, int64_t start,
                  int64_t end, int tid, std::vector<TraceArg> args = {});

    /** Record an instantaneous event. */
    void instant(std::string cat, std::string name, int64_t ts, int tid,
                 std::vector<TraceArg> args = {});

    /**
     * Record an async span (begin/end pair keyed by `id`). Unlike
     * complete events, spans with the same name may overlap in time on
     * one track; viewers separate them by id.
     */
    void span(std::string cat, std::string name, int64_t start,
              int64_t end, int64_t id, int tid,
              std::vector<TraceArg> args = {});

    /** Record a counter sample (rendered as a track in Perfetto). */
    void counter(std::string name, int64_t ts, int64_t value);

    /** Name a track (exported as thread_name metadata). */
    void setTrackName(int tid, std::string name);

    /** Snapshot of all recorded events (copy, in recording order). */
    std::vector<TraceEvent> events() const;

    /** Number of recorded events. */
    size_t size() const;

    /** Track-name metadata (tid -> name). */
    std::map<int, std::string> trackNames() const;

    /** Discard all recorded events (track names survive). */
    void clear();

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::map<int, std::string> trackNames_;
};

/**
 * Hook-site guard: evaluates to false (skipping argument construction
 * for the event call) when no tracer is attached.
 */
#define SPS_TRACE_ENABLED(tracer_ptr) ((tracer_ptr) != nullptr)

} // namespace sps::trace

#endif // SPS_TRACE_TRACER_H
