#include "sim/processor.h"

#include "common/log.h"
#include "sim/stream_controller.h"

namespace sps::sim {

StreamProcessor::StreamProcessor(SimConfig cfg)
    : cfg_(cfg),
      costModel_(cfg.params),
      machine_(cfg.size, costModel_),
      srf_(srf::SrfModel::forMachine(cfg.size, cfg.params)),
      memSys_(cfg.memConfig),
      accountant_(costModel_, cfg.size, cfg.tech, cfg.energyConfig)
{}

StreamProcessor::~StreamProcessor() = default;

const sched::CompiledKernel &
StreamProcessor::compile(const kernel::Kernel &k)
{
    return sched::ScheduleCache::global().get(k, machine_);
}

SimResult
StreamProcessor::run(const stream::StreamProgram &prog)
{
    return run(prog, RunOptions{});
}

SimResult
StreamProcessor::run(const stream::StreamProgram &prog,
                     const RunOptions &opts)
{
    ControllerConfig ctrl;
    ctrl.clusters = cfg_.size.clusters;
    ctrl.alusPerCluster = cfg_.size.alusPerCluster;
    ctrl.hostIssueCycles = cfg_.hostIssueCycles;
    ctrl.scoreboardDepth = cfg_.scoreboardDepth;
    ctrl.srfPeakWordsPerCycle = srf_.peakWordsPerCycle;

    Microcontroller uc(cfg_.ucConfig, cfg_.size.clusters);
    srf::Allocator alloc(srf_.capacityWords);
    SimResult res = executeProgram(
        prog, ctrl, memSys_, uc, alloc,
        [this](const kernel::Kernel &k) -> const sched::CompiledKernel & {
            return compile(k);
        },
        opts);
    res.energy = accountant_.account(res);
    if (SPS_TRACE_ENABLED(opts.tracer)) {
        opts.tracer->setTrackName(trace::kTrackPower, "power");
        energy::emitPowerCounters(res, *opts.tracer);
    }
    return res;
}

} // namespace sps::sim
