/**
 * @file
 * Execution statistics of one simulated stream program: the headline
 * aggregates (cycles, ops, words), the per-op timeline, and the
 * hardware counter set (SimCounters) the observability layer fills in
 * -- cycle breakdown, issue stalls, SRF traffic, and DRAM behaviour.
 */
#ifndef SPS_SIM_STATS_H
#define SPS_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bottleneck_report.h"
#include "energy/energy_report.h"

namespace sps::sim {

/** Coarse class of one stream-level op (for timeline/trace export). */
enum class OpClass { Load, Store, Kernel, Other };

/** Start/end cycle of one stream-level operation. */
struct OpInterval
{
    int64_t start = 0;
    int64_t end = 0;
    std::string label;
    /**
     * Program-order op id (index into StreamProgram::ops). Labels
     * repeat across strip-mined batches; the id keeps overlapping
     * intervals from double-buffered loads distinguishable in trace
     * exports.
     */
    int opId = -1;
    OpClass kind = OpClass::Other;

    // --- Issue metadata (for bottleneck attribution). ---
    /** Cycle issue began waiting on a full scoreboard (== issueStart
     *  when it never waited). */
    int64_t sbWaitStart = 0;
    /** Cycle the host channel started serializing this instruction. */
    int64_t issueStart = 0;
    /** Cycle host issue finished (issueStart + host issue cycles). */
    int64_t issueEnd = 0;
    /** Cycle all dependences had completed (>= issueEnd). */
    int64_t readyCycle = 0;
};

/**
 * Hardware counters of one simulation. Event counts are exact
 * (deterministic for a given program and configuration); derived rates
 * live on SimResult as accessors.
 */
struct SimCounters
{
    // --- Cycle breakdown: sums exactly to SimResult::cycles. ---
    /** Cycles only kernel execution (microcontroller) was busy. */
    int64_t kernelOnlyCycles = 0;
    /** Cycles only the memory system's pins were busy. */
    int64_t memOnlyCycles = 0;
    /** Cycles both were busy (load/store overlapped with a kernel). */
    int64_t overlapCycles = 0;
    /** Cycles neither was busy (dependence / issue / latency gaps). */
    int64_t idleCycles = 0;

    // --- Stream controller / host interface. ---
    int64_t kernelCalls = 0;
    int64_t loads = 0;
    int64_t stores = 0;
    /** Host channel occupancy issuing stream instructions. */
    int64_t hostIssueBusyCycles = 0;
    /** Issue stalled because the scoreboard was full. */
    int64_t scoreboardStallCycles = 0;
    /** Op issued but waiting on dependences (sum over ops). */
    int64_t depStallCycles = 0;
    /** Load/store ready but the memory pipe was still busy. */
    int64_t memPipeStallCycles = 0;
    /** Kernel ready but the microcontroller was still busy. */
    int64_t ucPipeStallCycles = 0;

    // --- Microcontroller. ---
    /** Per-call overhead: pipeline fill plus microcode loads. */
    int64_t ucOverheadCycles = 0;

    // --- Cluster ALUs. ---
    /** Total ALU issue slots: cycles * clusters * ALUs per cluster. */
    int64_t aluIssueSlots = 0;
    /** Slots during kernel execution only: ucBusy * C * N. */
    int64_t kernelAluSlots = 0;

    // --- Cluster activity (per executed record, from the compiled
    //     kernel's census; drives the energy accountant). ---
    /** Functional-unit results crossing the intracluster switch
     *  (ALU + COMM + scratchpad ops; each also reads its LRFs). */
    int64_t clusterFuOps = 0;
    /** Scratchpad accesses executed. */
    int64_t clusterSpOps = 0;
    /** Intercluster COMM words sent across the intercluster switch. */
    int64_t interCommWords = 0;

    // --- SRF / streambuffers. ---
    /** Words read out of the SRF (kernel inputs + stores). */
    int64_t srfReadWords = 0;
    /** Words written into the SRF (kernel outputs + loads). */
    int64_t srfWriteWords = 0;
    /** Words the program stored back to memory (application output,
     *  unpacked; the denominator of energy-per-output-word). */
    int64_t memStoreWords = 0;
    /** Extra kernel cycles implied by SRF bandwidth saturation. */
    int64_t srfBwStallCycles = 0;

    // --- DRAM (accumulated over all stream transfers). ---
    int64_t dramAccesses = 0;
    int64_t dramRowHits = 0;
    int64_t dramRowMisses = 0;
    /** Row misses that had to precharge an open row first. */
    int64_t dramBankConflicts = 0;
    /** Sum of access-scheduler reorder distances (requests bypassed). */
    int64_t dramReorderSum = 0;
    /** Largest single reorder distance observed. */
    int64_t dramReorderMax = 0;
    /** Idle channel-cycles caused by address aliasing (channels *
     *  critical-channel busy minus total busy, per transfer). */
    int64_t memAliasStallCycles = 0;
    /** Pin-busy cycles per memory channel over the run. */
    std::vector<int64_t> dramChannelBusyCycles;
};

/** Results of one simulation. */
struct SimResult
{
    /** Total execution time (cycles). */
    int64_t cycles = 0;
    /** ALU operations executed (per-instruction count). */
    int64_t aluOps = 0;
    /** GOPS-counted operations (subword-aware). */
    double gopsOps = 0.0;
    /** Words moved to/from external memory. */
    int64_t memWords = 0;
    /** Cycles the memory system was busy. */
    int64_t memBusy = 0;
    /** Cycles the microcontroller (kernel execution) was busy. */
    int64_t ucBusy = 0;
    /** Peak SRF occupancy (words). */
    int64_t srfHighWater = 0;
    /** Per-op execution intervals, in program order. */
    std::vector<OpInterval> timeline;
    /** Hardware counters (see SimCounters). */
    SimCounters counters;
    /** Activity-driven energy breakdown. Filled by
     *  sim::StreamProcessor::run (which owns the cost model); a raw
     *  executeProgram() result carries an empty (valid == false)
     *  report. */
    energy::EnergyReport energy;
    /** Stall-attribution waterfall; filled on every run. */
    analysis::BottleneckReport bottleneck;

    /** Sustained GOPS at a clock frequency in GHz. */
    double
    gops(double clock_ghz) const
    {
        return cycles > 0 ? gopsOps / cycles * clock_ghz : 0.0;
    }

    double
    memBusyFraction() const
    {
        return cycles > 0 ? static_cast<double>(memBusy) / cycles : 0.0;
    }

    double
    ucBusyFraction() const
    {
        return cycles > 0 ? static_cast<double>(ucBusy) / cycles : 0.0;
    }

    // --- Derived counter rates. ---

    /** ALU occupancy over the whole run (ops / issue slots). */
    double
    aluOccupancy() const
    {
        return counters.aluIssueSlots > 0
                   ? static_cast<double>(aluOps) / counters.aluIssueSlots
                   : 0.0;
    }

    /** ALU occupancy while kernels were running. */
    double
    kernelAluOccupancy() const
    {
        return counters.kernelAluSlots > 0
                   ? static_cast<double>(aluOps) /
                         counters.kernelAluSlots
                   : 0.0;
    }

    /** SRF read bandwidth over the run (words per cycle). */
    double
    srfReadBandwidth() const
    {
        return cycles > 0
                   ? static_cast<double>(counters.srfReadWords) / cycles
                   : 0.0;
    }

    /** SRF write bandwidth over the run (words per cycle). */
    double
    srfWriteBandwidth() const
    {
        return cycles > 0
                   ? static_cast<double>(counters.srfWriteWords) / cycles
                   : 0.0;
    }

    /** Fraction of DRAM accesses that hit an open row. */
    double
    dramRowHitRate() const
    {
        return counters.dramAccesses > 0
                   ? static_cast<double>(counters.dramRowHits) /
                         counters.dramAccesses
                   : 0.0;
    }

    /** Busiest memory channel's pin-busy cycles (0 with no mem ops). */
    int64_t
    dramChannelBusyMax() const
    {
        int64_t m = 0;
        for (int64_t v : counters.dramChannelBusyCycles)
            m = std::max(m, v);
        return m;
    }

    /** Least-busy memory channel's pin-busy cycles. */
    int64_t
    dramChannelBusyMin() const
    {
        if (counters.dramChannelBusyCycles.empty())
            return 0;
        int64_t m = counters.dramChannelBusyCycles.front();
        for (int64_t v : counters.dramChannelBusyCycles)
            m = std::min(m, v);
        return m;
    }

    /** Mean access-scheduler reorder distance per DRAM access. */
    double
    dramAvgReorderDistance() const
    {
        return counters.dramAccesses > 0
                   ? static_cast<double>(counters.dramReorderSum) /
                         counters.dramAccesses
                   : 0.0;
    }
};

} // namespace sps::sim

#endif // SPS_SIM_STATS_H
