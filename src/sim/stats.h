/**
 * @file
 * Execution statistics of one simulated stream program.
 */
#ifndef SPS_SIM_STATS_H
#define SPS_SIM_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sps::sim {

/** Start/end cycle of one stream-level operation. */
struct OpInterval
{
    int64_t start = 0;
    int64_t end = 0;
    std::string label;
};

/** Results of one simulation. */
struct SimResult
{
    /** Total execution time (cycles). */
    int64_t cycles = 0;
    /** ALU operations executed (per-instruction count). */
    int64_t aluOps = 0;
    /** GOPS-counted operations (subword-aware). */
    double gopsOps = 0.0;
    /** Words moved to/from external memory. */
    int64_t memWords = 0;
    /** Cycles the memory system was busy. */
    int64_t memBusy = 0;
    /** Cycles the microcontroller (kernel execution) was busy. */
    int64_t ucBusy = 0;
    /** Peak SRF occupancy (words). */
    int64_t srfHighWater = 0;
    /** Per-op execution intervals, in program order. */
    std::vector<OpInterval> timeline;

    /** Sustained GOPS at a clock frequency in GHz. */
    double
    gops(double clock_ghz) const
    {
        return cycles > 0 ? gopsOps / cycles * clock_ghz : 0.0;
    }

    double
    memBusyFraction() const
    {
        return cycles > 0 ? static_cast<double>(memBusy) / cycles : 0.0;
    }

    double
    ucBusyFraction() const
    {
        return cycles > 0 ? static_cast<double>(ucBusy) / cycles : 0.0;
    }
};

} // namespace sps::sim

#endif // SPS_SIM_STATS_H
