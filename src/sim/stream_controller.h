/**
 * @file
 * The stream controller: issues stream-level operations in program
 * order through a finite scoreboard, resolving dependences and
 * resource conflicts (memory system, microcontroller), and tracking
 * SRF residency. This is the engine behind StreamProcessor::run().
 */
#ifndef SPS_SIM_STREAM_CONTROLLER_H
#define SPS_SIM_STREAM_CONTROLLER_H

#include <functional>

#include "mem/stream_mem.h"
#include "sim/microcontroller.h"
#include "sim/stats.h"
#include "srf/allocator.h"
#include "stream/deps.h"
#include "stream/program.h"

namespace sps::sim {

/** Callback type: compiled-kernel lookup provided by the processor. */
using CompileFn =
    std::function<const sched::CompiledKernel &(const kernel::Kernel &)>;

/** Scoreboard execution parameters. */
struct ControllerConfig
{
    int clusters = 8;
    int hostIssueCycles = 16;
    int scoreboardDepth = 16;
};

/**
 * Execute a program against the given memory system, microcontroller
 * model, and SRF allocator. Returns timing and statistics.
 */
SimResult executeProgram(const stream::StreamProgram &prog,
                         const ControllerConfig &cfg,
                         const mem::StreamMemSystem &mem_sys,
                         Microcontroller &uc, srf::Allocator &alloc,
                         const CompileFn &compile);

} // namespace sps::sim

#endif // SPS_SIM_STREAM_CONTROLLER_H
