/**
 * @file
 * The stream controller: issues stream-level operations in program
 * order through a finite scoreboard, resolving dependences and
 * resource conflicts (memory system, microcontroller), and tracking
 * SRF residency. This is the engine behind StreamProcessor::run().
 *
 * Observability: every run fills SimResult::counters (cycle breakdown,
 * issue stalls, SRF traffic, DRAM behaviour); attaching a
 * trace::Tracer through RunOptions additionally records per-component
 * events, and a FunctionalContext makes kernel calls execute
 * functionally through the interpreter.
 */
#ifndef SPS_SIM_STREAM_CONTROLLER_H
#define SPS_SIM_STREAM_CONTROLLER_H

#include <functional>

#include "mem/stream_mem.h"
#include "sim/functional.h"
#include "sim/microcontroller.h"
#include "sim/stats.h"
#include "srf/allocator.h"
#include "stream/deps.h"
#include "stream/program.h"
#include "trace/tracer.h"

namespace sps::sim {

/** Callback type: compiled-kernel lookup provided by the processor. */
using CompileFn =
    std::function<const sched::CompiledKernel &(const kernel::Kernel &)>;

/** Scoreboard execution parameters. */
struct ControllerConfig
{
    int clusters = 8;
    int alusPerCluster = 5;
    int hostIssueCycles = 16;
    int scoreboardDepth = 16;
    /** Peak SRF bandwidth (words/cycle), for saturation accounting;
     *  <= 0 disables the srfBwStallCycles counter. */
    double srfPeakWordsPerCycle = 0.0;
};

/** Optional per-run observability hooks. */
struct RunOptions
{
    /** Event tracer; null (the default) records nothing. */
    trace::Tracer *tracer = nullptr;
    /** Functional stream contents; null runs timing-only. */
    FunctionalContext *functional = nullptr;
    /** Force the scalar interpreter backend for functional kernel
     *  calls (the SPS_INTERP_SCALAR=1 escape hatch as a per-run
     *  flag); false uses interp::defaultSimdBackend(). Results are
     *  bit-identical either way. */
    bool forceScalarInterp = false;
    /** Megastrip-fusion policy for functional kernel calls (the
     *  SPS_INTERP_FUSION escape hatch as a per-run knob). Results are
     *  bit-identical under every policy. */
    interp::FusionPolicy interpFusion = interp::defaultFusionPolicy();
};

/**
 * Execute a program against the given memory system, microcontroller
 * model, and SRF allocator. Returns timing and statistics. The memory
 * system's channel state is reset (beginProgram) and then evolves
 * across the run: transfers are submitted at issue and resolved
 * jointly when a dependent op or the scoreboard needs a completion
 * time, so overlapping transfers contend for channels and row buffers.
 */
SimResult executeProgram(const stream::StreamProgram &prog,
                         const ControllerConfig &cfg,
                         mem::StreamMemSystem &mem_sys,
                         Microcontroller &uc, srf::Allocator &alloc,
                         const CompileFn &compile,
                         const RunOptions &opts = {});

} // namespace sps::sim

#endif // SPS_SIM_STREAM_CONTROLLER_H
