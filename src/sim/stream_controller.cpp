#include "sim/stream_controller.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "analysis/bottleneck.h"
#include "common/log.h"

namespace sps::sim {

using stream::OpKind;
using stream::StreamOp;

namespace {

/**
 * Merge possibly-overlapping busy intervals (different resolve
 * batches can interleave on the shared channels) into a sorted
 * disjoint set.
 */
std::vector<mem::BusyInterval>
mergeIntervals(std::vector<mem::BusyInterval> ivs)
{
    std::sort(ivs.begin(), ivs.end(),
              [](const mem::BusyInterval &a, const mem::BusyInterval &b) {
                  return a.start < b.start;
              });
    std::vector<mem::BusyInterval> out;
    for (const auto &iv : ivs) {
        if (!out.empty() && iv.start <= out.back().end)
            out.back().end = std::max(out.back().end, iv.end);
        else
            out.push_back(iv);
    }
    return out;
}

/**
 * Exact cycle breakdown from the (disjoint, sorted) busy intervals of
 * the memory pins and the microcontroller: kernel-only / mem-only /
 * overlapped / idle, summing to `cycles`.
 */
void
fillCycleBreakdown(const std::vector<mem::BusyInterval> &mem,
                   const std::vector<mem::BusyInterval> &uc,
                   int64_t cycles, SimCounters &c)
{
    int64_t mem_total = 0, uc_total = 0, overlap = 0;
    for (const auto &iv : mem)
        mem_total += iv.end - iv.start;
    for (const auto &iv : uc)
        uc_total += iv.end - iv.start;
    size_t i = 0, j = 0;
    while (i < mem.size() && j < uc.size()) {
        int64_t lo = std::max(mem[i].start, uc[j].start);
        int64_t hi = std::min(mem[i].end, uc[j].end);
        if (lo < hi)
            overlap += hi - lo;
        if (mem[i].end < uc[j].end)
            ++i;
        else
            ++j;
    }
    c.overlapCycles = overlap;
    c.memOnlyCycles = mem_total - overlap;
    c.kernelOnlyCycles = uc_total - overlap;
    c.idleCycles =
        cycles - c.memOnlyCycles - c.kernelOnlyCycles - c.overlapCycles;
}

/**
 * Execute one kernel call functionally: gather bound input streams
 * from the context, run the interpreter, write outputs back.
 */
void
runKernelFunctionally(const StreamOp &op, int clusters,
                      FunctionalContext &ctx,
                      const stream::StreamProgram &prog,
                      bool force_scalar, interp::FusionPolicy fusion)
{
    const kernel::Kernel &k = *op.k;
    std::vector<interp::StreamData> inputs;
    std::vector<int> out_streams;
    for (size_t p = 0; p < k.streams.size(); ++p) {
        int bound = op.args[p];
        if (k.streams[p].dir == kernel::PortDir::In) {
            if (!ctx.has(bound))
                fatal("program %s: functional run of kernel %s needs "
                      "data for stream %s",
                      prog.name().c_str(), k.name.c_str(),
                      prog.streams()[static_cast<size_t>(bound)]
                          .name.c_str());
            inputs.push_back(ctx.get(bound));
        } else {
            out_streams.push_back(bound);
        }
    }
    interp::ExecResult exec = interp::runKernel(
        k, clusters, inputs,
        force_scalar ? interp::SimdBackend::Scalar
                     : interp::defaultSimdBackend(),
        fusion);
    SPS_ASSERT(exec.outputs.size() == out_streams.size(),
               "kernel %s: output count mismatch", k.name.c_str());
    for (size_t o = 0; o < out_streams.size(); ++o)
        ctx.streams[out_streams[o]] = std::move(exec.outputs[o]);
}

} // namespace

SimResult
executeProgram(const stream::StreamProgram &prog,
               const ControllerConfig &cfg,
               mem::StreamMemSystem &mem_sys, Microcontroller &uc,
               srf::Allocator &alloc, const CompileFn &compile,
               const RunOptions &opts)
{
    stream::ProgramDeps deps = stream::analyzeDeps(prog);
    const auto &ops = prog.ops();
    const auto &streams = prog.streams();
    trace::Tracer *tracer = opts.tracer;

    SimResult result;
    SimCounters &ctr = result.counters;
    result.timeline.resize(ops.size());
    std::vector<int64_t> complete(ops.size(), 0);
    // Memory ops are submitted at issue and resolved lazily in
    // batches, so overlapping transfers contend for channels.
    std::vector<bool> unresolved(ops.size(), false);
    struct PendingMemOp
    {
        size_t opIndex = 0;
        int ticket = 0;
    };
    std::vector<PendingMemOp> pending_mem;
    std::vector<mem::BusyInterval> uc_busy_ivs;

    int64_t issue_time = 0;
    int64_t uc_free = 0;
    bool warned_overflow = false;

    mem_sys.beginProgram();

    if (SPS_TRACE_ENABLED(tracer)) {
        tracer->setTrackName(trace::kTrackHost,
                             "host / stream controller");
        tracer->setTrackName(trace::kTrackMem, "streaming memory");
        tracer->setTrackName(trace::kTrackClusters,
                             "microcontroller + clusters");
        tracer->setTrackName(trace::kTrackSrf, "SRF");
    }

    // Completion times of in-flight ops, for the finite scoreboard.
    std::priority_queue<int64_t, std::vector<int64_t>,
                        std::greater<int64_t>>
        in_flight;

    // Resolve the pending transfer batch jointly and retire its ops:
    // completion times, timeline intervals, and DRAM counters all
    // become known here.
    auto resolve_mem = [&]() {
        if (pending_mem.empty())
            return;
        mem_sys.resolveAll();
        for (const PendingMemOp &p : pending_mem) {
            const mem::TransferResult &tr = mem_sys.result(p.ticket);
            complete[p.opIndex] = tr.doneCycle;
            unresolved[p.opIndex] = false;
            in_flight.push(tr.doneCycle);
            OpInterval &iv = result.timeline[p.opIndex];
            iv.start = tr.serviceStart;
            iv.end = tr.doneCycle;
            result.cycles = std::max(result.cycles, tr.doneCycle);
            ctr.memPipeStallCycles += tr.serviceStart - tr.startCycle;
            ctr.dramAccesses += tr.dramAccesses;
            ctr.dramRowHits += tr.dramRowHits;
            ctr.dramRowMisses += tr.dramRowMisses;
            ctr.dramBankConflicts += tr.bankConflicts;
            ctr.dramReorderSum += tr.dramReorderSum;
            ctr.dramReorderMax =
                std::max(ctr.dramReorderMax, tr.dramReorderMax);
            ctr.memAliasStallCycles += tr.aliasStallCycles;
        }
        pending_mem.clear();
    };

    auto srf_counter_sample = [&](int64_t when) {
        if (SPS_TRACE_ENABLED(tracer))
            tracer->counter("srf_used_words", when, alloc.used());
    };

    auto ensure_resident = [&](int s, int64_t when) {
        if (alloc.resident(s))
            return;
        int64_t words = streams[static_cast<size_t>(s)].words();
        if (!alloc.allocate(s, words)) {
            if (!warned_overflow) {
                warn("program %s: SRF overflow allocating %s "
                     "(%lld words, %lld used / %lld capacity); "
                     "forcing allocation",
                     prog.name().c_str(),
                     streams[static_cast<size_t>(s)].name.c_str(),
                     static_cast<long long>(words),
                     static_cast<long long>(alloc.used()),
                     static_cast<long long>(alloc.capacity()));
                warned_overflow = true;
            }
            alloc.forceAllocate(s, words);
        }
        srf_counter_sample(when);
    };

    for (size_t i = 0; i < ops.size(); ++i) {
        const StreamOp &op = ops[i];
        const int op_id = static_cast<int>(i);

        // Host issue: serialized stream instructions over the finite
        // host channel, stalling when the scoreboard is full. Pending
        // (unresolved) transfers occupy scoreboard slots too.
        int64_t sb_wait_start = issue_time;
        while (static_cast<int>(in_flight.size() +
                                pending_mem.size()) >=
               cfg.scoreboardDepth) {
            resolve_mem();
            if (static_cast<int>(in_flight.size()) <
                cfg.scoreboardDepth)
                continue;
            int64_t retire = in_flight.top();
            in_flight.pop();
            if (retire > issue_time) {
                ctr.scoreboardStallCycles += retire - issue_time;
                if (SPS_TRACE_ENABLED(tracer))
                    tracer->complete("host", "scoreboard stall",
                                     issue_time, retire,
                                     trace::kTrackHost);
                issue_time = retire;
            }
        }
        int64_t issue_start = issue_time;
        issue_time += cfg.hostIssueCycles;
        ctr.hostIssueBusyCycles += cfg.hostIssueCycles;
        if (SPS_TRACE_ENABLED(tracer))
            tracer->complete("host", "issue " + op.label, issue_start,
                             issue_time, trace::kTrackHost,
                             {{"op_id", op_id}});

        // A dependence on a still-unresolved transfer forces the
        // batch to resolve: its completion time is needed now.
        for (int d : deps.deps[i]) {
            if (unresolved[static_cast<size_t>(d)]) {
                resolve_mem();
                break;
            }
        }
        int64_t ready = issue_time;
        for (int d : deps.deps[i])
            ready = std::max(ready, complete[static_cast<size_t>(d)]);
        ctr.depStallCycles += ready - issue_time;

        OpInterval &iv = result.timeline[i];
        iv.label = op.label;
        iv.opId = op_id;
        iv.sbWaitStart = sb_wait_start;
        iv.issueStart = issue_start;
        iv.issueEnd = issue_time;
        iv.readyCycle = ready;
        switch (op.kind) {
          case OpKind::Load:
          case OpKind::Store: {
            bool is_load = op.kind == OpKind::Load;
            iv.kind = is_load ? OpClass::Load : OpClass::Store;
            const auto &info = streams[static_cast<size_t>(op.stream)];
            int64_t words = info.memWords();
            if (is_load) {
                ++ctr.loads;
                ensure_resident(op.stream, ready);
                // The SRF receives the unpacked stream.
                ctr.srfWriteWords += info.words();
            } else {
                ++ctr.stores;
                ctr.srfReadWords += info.words();
                ctr.memStoreWords += info.words();
            }
            result.memWords += words;
            mem::TransferDesc desc;
            desc.words = words;
            desc.baseWord = op.memBase;
            desc.strideWords = op.memStride;
            desc.recordWords = op.memRecordWords;
            desc.startCycle = ready;
            desc.write = !is_load;
            mem::TransferTrace ttr{tracer, ready, op.label, op_id};
            int ticket =
                mem_sys.submit(desc, tracer ? &ttr : nullptr);
            pending_mem.push_back(PendingMemOp{i, ticket});
            unresolved[i] = true;
            // Timeline/completion filled in by resolve_mem; until
            // then the op conservatively completes at `ready`.
            iv.start = ready;
            iv.end = ready;
            complete[i] = ready;
            break;
          }
          case OpKind::Kernel: {
            iv.kind = OpClass::Kernel;
            ++ctr.kernelCalls;
            // Outputs materialize in the SRF.
            for (int s : deps.writes[i])
                ensure_resident(s, ready);
            for (int s : deps.reads[i])
                ensure_resident(s, ready);
            const sched::CompiledKernel &ck = compile(*op.k);
            int64_t start = std::max(ready, uc_free);
            ctr.ucPipeStallCycles += start - ready;
            Microcontroller::CallTiming t = uc.call(
                op.k->name, ck, op.records, start, tracer, op_id);
            int64_t end = start + t.cycles;
            uc_free = end;
            if (t.cycles > 0)
                uc_busy_ivs.push_back({start, end});
            result.ucBusy += t.cycles;
            ctr.ucOverheadCycles += t.overheadCycles;
            result.aluOps += ck.aluOpsPerIteration * op.records;
            result.gopsOps += ck.gopsOpsPerIteration *
                              static_cast<double>(op.records);
            // Cluster activity census (drives the energy accountant):
            // every executed op is an FU result; COMM ops also cross
            // the intercluster switch.
            ctr.clusterFuOps += (ck.aluOpsPerIteration +
                                 ck.commOpsPerIteration +
                                 ck.spOpsPerIteration) *
                                op.records;
            ctr.clusterSpOps += ck.spOpsPerIteration * op.records;
            ctr.interCommWords += ck.commOpsPerIteration * op.records;
            // SRF traffic: every bound input is read, every bound
            // output written, through the streambuffers.
            int64_t srf_words = 0;
            for (int s : deps.reads[i]) {
                int64_t w = streams[static_cast<size_t>(s)].words();
                ctr.srfReadWords += w;
                srf_words += w;
            }
            for (int s : deps.writes[i]) {
                int64_t w = streams[static_cast<size_t>(s)].words();
                ctr.srfWriteWords += w;
                srf_words += w;
            }
            // Saturation accounting: cycles this call's stream demand
            // would need beyond its duration at peak SRF bandwidth.
            if (cfg.srfPeakWordsPerCycle > 0 && t.cycles > 0) {
                auto needed = static_cast<int64_t>(
                    static_cast<double>(srf_words) /
                    cfg.srfPeakWordsPerCycle);
                if (needed > t.cycles)
                    ctr.srfBwStallCycles += needed - t.cycles;
            }
            if (opts.functional)
                runKernelFunctionally(op, cfg.clusters,
                                      *opts.functional, prog,
                                      opts.forceScalarInterp,
                                      opts.interpFusion);
            complete[i] = end;
            in_flight.push(end);
            iv.start = start;
            iv.end = end;
            result.cycles = std::max(result.cycles, end);
            break;
          }
        }

        result.srfHighWater =
            std::max(result.srfHighWater, alloc.highWater());

        // Streams dead after this op release their SRF space.
        for (int s : deps.lastUseOf[i]) {
            alloc.release(s);
            srf_counter_sample(complete[i]);
        }
    }

    resolve_mem();

    // Memory pin occupancy: the union of per-channel busy intervals
    // accumulated across all resolve batches. Merging keeps the
    // breakdown identity memOnly + overlap == memBusy exact even when
    // batches interleave on the shared channels.
    std::vector<mem::BusyInterval> mem_busy_ivs =
        mergeIntervals(mem_sys.takeBusyIntervals());
    for (const auto &ivb : mem_busy_ivs)
        result.memBusy += ivb.end - ivb.start;

    fillCycleBreakdown(mem_busy_ivs, uc_busy_ivs, result.cycles, ctr);
    ctr.dramChannelBusyCycles.clear();
    for (const mem::ChannelStats &cs : mem_sys.channelStats())
        ctr.dramChannelBusyCycles.push_back(cs.busyCycles);
    ctr.aluIssueSlots =
        result.cycles * cfg.clusters * cfg.alusPerCluster;
    ctr.kernelAluSlots =
        result.ucBusy * cfg.clusters * cfg.alusPerCluster;

    // Stall-attribution waterfall from the same exact busy-interval
    // sets that produced the cycle breakdown.
    std::vector<analysis::CycleInterval> mem_ci, uc_ci;
    mem_ci.reserve(mem_busy_ivs.size());
    for (const auto &ivb : mem_busy_ivs)
        mem_ci.push_back({ivb.start, ivb.end});
    uc_ci.reserve(uc_busy_ivs.size());
    for (const auto &ivb : uc_busy_ivs)
        uc_ci.push_back({ivb.start, ivb.end});
    result.bottleneck = analysis::attributeBottleneck(
        result.timeline, std::move(mem_ci), std::move(uc_ci),
        result.cycles);
    return result;
}

} // namespace sps::sim
