#include "sim/stream_controller.h"

#include <algorithm>
#include <queue>

#include "common/log.h"

namespace sps::sim {

using stream::OpKind;
using stream::StreamOp;

SimResult
executeProgram(const stream::StreamProgram &prog,
               const ControllerConfig &cfg,
               const mem::StreamMemSystem &mem_sys, Microcontroller &uc,
               srf::Allocator &alloc, const CompileFn &compile)
{
    stream::ProgramDeps deps = stream::analyzeDeps(prog);
    const auto &ops = prog.ops();
    const auto &streams = prog.streams();

    SimResult result;
    result.timeline.reserve(ops.size());
    std::vector<int64_t> complete(ops.size(), 0);

    int64_t issue_time = 0;
    int64_t mem_free = 0;
    int64_t uc_free = 0;
    bool warned_overflow = false;

    // Completion times of in-flight ops, for the finite scoreboard.
    std::priority_queue<int64_t, std::vector<int64_t>,
                        std::greater<int64_t>>
        in_flight;

    auto ensure_resident = [&](int s) {
        if (alloc.resident(s))
            return;
        int64_t words = streams[static_cast<size_t>(s)].words();
        if (!alloc.allocate(s, words)) {
            if (!warned_overflow) {
                warn("program %s: SRF overflow allocating %s "
                     "(%lld words, %lld used / %lld capacity); "
                     "forcing allocation",
                     prog.name().c_str(),
                     streams[static_cast<size_t>(s)].name.c_str(),
                     static_cast<long long>(words),
                     static_cast<long long>(alloc.used()),
                     static_cast<long long>(alloc.capacity()));
                warned_overflow = true;
            }
            alloc.forceAllocate(s, words);
        }
    };

    for (size_t i = 0; i < ops.size(); ++i) {
        const StreamOp &op = ops[i];

        // Host issue: serialized stream instructions over the finite
        // host channel, stalling when the scoreboard is full.
        while (static_cast<int>(in_flight.size()) >=
               cfg.scoreboardDepth) {
            issue_time = std::max(issue_time, in_flight.top());
            in_flight.pop();
        }
        issue_time += cfg.hostIssueCycles;

        int64_t ready = issue_time;
        for (int d : deps.deps[i])
            ready = std::max(ready, complete[static_cast<size_t>(d)]);

        int64_t start = 0, end = 0;
        switch (op.kind) {
          case OpKind::Load: {
            ensure_resident(op.stream);
            int64_t words =
                streams[static_cast<size_t>(op.stream)].memWords();
            mem::TransferResult tr = mem_sys.transfer(words);
            start = std::max(ready, mem_free);
            end = start + tr.cycles;
            // Pins busy for the bandwidth-limited portion; the fixed
            // latency of the next transfer can overlap.
            mem_free = start + tr.busyCycles;
            result.memBusy += tr.busyCycles;
            result.memWords += words;
            break;
          }
          case OpKind::Store: {
            int64_t words =
                streams[static_cast<size_t>(op.stream)].memWords();
            mem::TransferResult tr = mem_sys.transfer(words);
            start = std::max(ready, mem_free);
            end = start + tr.cycles;
            mem_free = start + tr.busyCycles;
            result.memBusy += tr.busyCycles;
            result.memWords += words;
            break;
          }
          case OpKind::Kernel: {
            // Outputs materialize in the SRF.
            for (int s : deps.writes[i])
                ensure_resident(s);
            for (int s : deps.reads[i])
                ensure_resident(s);
            const sched::CompiledKernel &ck = compile(*op.k);
            int64_t dur = uc.callCycles(op.k->name, ck, op.records);
            start = std::max(ready, uc_free);
            end = start + dur;
            uc_free = end;
            result.ucBusy += dur;
            result.aluOps += ck.aluOpsPerIteration * op.records;
            result.gopsOps += ck.gopsOpsPerIteration *
                              static_cast<double>(op.records);
            break;
          }
        }

        complete[i] = end;
        in_flight.push(end);
        result.timeline.push_back(OpInterval{start, end, op.label});
        result.cycles = std::max(result.cycles, end);
        result.srfHighWater =
            std::max(result.srfHighWater, alloc.highWater());

        // Streams dead after this op release their SRF space.
        for (int s : deps.lastUseOf[i])
            alloc.release(s);
    }
    return result;
}

} // namespace sps::sim
