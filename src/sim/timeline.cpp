#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace sps::sim {

std::string
renderTimeline(const SimResult &result, int width, int max_rows)
{
    SPS_ASSERT(width >= 8, "timeline too narrow");
    std::ostringstream os;
    if (result.timeline.empty() || result.cycles <= 0) {
        os << "(empty timeline)\n";
        return os.str();
    }
    double scale =
        static_cast<double>(width) / static_cast<double>(result.cycles);

    size_t rows = result.timeline.size();
    size_t head = rows, skip_from = rows, skip_to = rows;
    if (static_cast<int>(rows) > max_rows) {
        head = static_cast<size_t>(max_rows) / 2;
        skip_from = head;
        skip_to = rows - head;
    }

    size_t label_w = 0;
    for (const auto &iv : result.timeline)
        label_w = std::max(label_w, iv.label.size());
    label_w = std::min<size_t>(label_w, 24);

    for (size_t i = 0; i < rows; ++i) {
        if (i == skip_from) {
            os << "  ... " << (skip_to - skip_from)
               << " ops elided ...\n";
        }
        if (i >= skip_from && i < skip_to)
            continue;
        const OpInterval &iv = result.timeline[i];
        std::string label = iv.label.substr(0, label_w);
        os << label << std::string(label_w - label.size() + 1, ' ')
           << '|';
        int start =
            static_cast<int>(static_cast<double>(iv.start) * scale);
        int end =
            static_cast<int>(static_cast<double>(iv.end) * scale);
        end = std::max(end, start + 1);
        start = std::min(start, width);
        end = std::min(end, width);
        os << std::string(static_cast<size_t>(start), ' ')
           << std::string(static_cast<size_t>(end - start), '#')
           << std::string(static_cast<size_t>(width - end), ' ')
           << "|\n";
    }
    os << std::string(label_w + 1, ' ') << "0"
       << std::string(static_cast<size_t>(width - 1), ' ')
       << result.cycles << " cycles\n";
    return os.str();
}

} // namespace sps::sim
