/**
 * @file
 * Functional execution context for the stream-level simulator. The
 * simulator's timing model is data-oblivious; attaching a
 * FunctionalContext to a run (sim::RunOptions) makes every kernel call
 * also execute functionally through the SIMD interpreter
 * (interp::runKernel), with stream contents keyed by program stream
 * id. This is what lets the differential tests assert that a program
 * pushed through the cycle-accurate simulator produces exactly the
 * streams the functional interpreter produces.
 *
 * Kernel calls execute through the lowered engine (interp/lowered.h):
 * each kernel is lowered once into the process-wide LoweredCache and
 * every strip-mined call replays the flat form, so functional runs
 * inside design-space sweeps pay the interpretive overhead once per
 * kernel instead of once per op per iteration.
 */
#ifndef SPS_SIM_FUNCTIONAL_H
#define SPS_SIM_FUNCTIONAL_H

#include <map>

#include "interp/interpreter.h"

namespace sps::sim {

/** Stream contents for a functional simulation run. */
struct FunctionalContext
{
    /** Stream data by program stream id. Callers seed the inputs
     *  (memory-backed streams hold their data here from the start);
     *  kernel calls write their outputs back into the map. */
    std::map<int, interp::StreamData> streams;

    bool has(int stream_id) const
    {
        return streams.count(stream_id) != 0;
    }

    const interp::StreamData &
    get(int stream_id) const
    {
        return streams.at(stream_id);
    }
};

} // namespace sps::sim

#endif // SPS_SIM_FUNCTIONAL_H
