/**
 * @file
 * Text Gantt rendering of a simulation's stream-operation timeline:
 * one row per stream-level op, bars scaled to the run length,
 * annotated with the op kind. Makes load/kernel overlap (and the lack
 * of it) visible at a glance.
 */
#ifndef SPS_SIM_TIMELINE_H
#define SPS_SIM_TIMELINE_H

#include <string>

#include "sim/stats.h"

namespace sps::sim {

/**
 * Render the result's timeline as text.
 *
 * @param result a finished simulation
 * @param width bar area width in characters
 * @param max_rows rows rendered before eliding the middle
 */
std::string renderTimeline(const SimResult &result, int width = 64,
                           int max_rows = 40);

} // namespace sps::sim

#endif // SPS_SIM_TIMELINE_H
