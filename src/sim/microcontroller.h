/**
 * @file
 * Microcontroller timing model: cycles charged for one kernel call.
 * Covers the per-call overheads the paper attributes short-stream
 * slowdowns to (Section 5.3): microcontroller and cluster pipeline
 * fill, software-pipelining priming, and loop prologue/epilogue, plus
 * a one-time microcode load per kernel.
 */
#ifndef SPS_SIM_MICROCONTROLLER_H
#define SPS_SIM_MICROCONTROLLER_H

#include <cstdint>
#include <map>
#include <string>

#include "sched/kernel_perf.h"
#include "trace/tracer.h"

namespace sps::sim {

/** Fixed per-call overheads. */
struct UcConfig
{
    /** Microcontroller + cluster pipeline fill per kernel call. */
    int pipeFillCycles = 8;
    /**
     * Cycles per VLIW instruction when loading microcode. Zero by
     * default: kernels are loaded before they are used (Section
     * 3.1.2), overlapping earlier execution. Set nonzero to study
     * cold-start behaviour.
     */
    int loadCyclesPerInstruction = 0;
};

/**
 * Kernel-call timing: tracks which kernels are already resident in
 * microcode storage.
 */
class Microcontroller
{
  public:
    explicit Microcontroller(UcConfig cfg, int clusters)
        : cfg_(cfg), clusters_(clusters)
    {}

    /** Timing of one kernel call, split into overhead and loop time. */
    struct CallTiming
    {
        /** Total cycles charged for the call. */
        int64_t cycles = 0;
        /** Fixed overhead: pipeline fill plus any microcode load. */
        int64_t overheadCycles = 0;
        /** Inner-loop iterations executed. */
        int64_t iterations = 0;
        /** True if this call paid the first-use microcode load. */
        bool microcodeLoaded = false;
    };

    /**
     * Cycles for one call of a compiled kernel over `records` stream
     * records. Includes the first-use microcode load.
     */
    int64_t callCycles(const std::string &kernel_name,
                       const sched::CompiledKernel &ck, int64_t records);

    /**
     * Like callCycles() but reports the timing breakdown, and (when a
     * tracer is attached) records the call as a "kernel" event on the
     * clusters track starting at `start`.
     */
    CallTiming call(const std::string &kernel_name,
                    const sched::CompiledKernel &ck, int64_t records,
                    int64_t start = 0,
                    trace::Tracer *tracer = nullptr, int op_id = -1);

    /** Forget resident kernels (new program). */
    void reset() { resident_.clear(); }

  private:
    UcConfig cfg_;
    int clusters_;
    std::map<std::string, bool> resident_;
};

} // namespace sps::sim

#endif // SPS_SIM_MICROCONTROLLER_H
