#include "sim/microcontroller.h"

namespace sps::sim {

int64_t
Microcontroller::callCycles(const std::string &kernel_name,
                            const sched::CompiledKernel &ck,
                            int64_t records)
{
    int64_t cycles = cfg_.pipeFillCycles;
    if (!resident_[kernel_name]) {
        // First use: load the kernel's VLIW instructions. The schedule
        // occupies roughly ii * stages instruction slots (the unrolled
        // software-pipelined body) plus prologue/epilogue of similar
        // size.
        int64_t instructions =
            2LL * ck.ii * ck.stages + ck.listLength;
        cycles += instructions * cfg_.loadCyclesPerInstruction;
        resident_[kernel_name] = true;
    }
    int64_t iterations = (records + clusters_ - 1) / clusters_;
    cycles += ck.loopCycles(iterations);
    return cycles;
}

} // namespace sps::sim
