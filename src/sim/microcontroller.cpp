#include "sim/microcontroller.h"

namespace sps::sim {

Microcontroller::CallTiming
Microcontroller::call(const std::string &kernel_name,
                      const sched::CompiledKernel &ck, int64_t records,
                      int64_t start, trace::Tracer *tracer, int op_id)
{
    CallTiming t;
    t.overheadCycles = cfg_.pipeFillCycles;
    if (!resident_[kernel_name]) {
        // First use: load the kernel's VLIW instructions. The schedule
        // occupies roughly ii * stages instruction slots (the unrolled
        // software-pipelined body) plus prologue/epilogue of similar
        // size.
        int64_t instructions =
            2LL * ck.ii * ck.stages + ck.listLength;
        t.overheadCycles += instructions * cfg_.loadCyclesPerInstruction;
        t.microcodeLoaded = true;
        resident_[kernel_name] = true;
    }
    t.iterations = (records + clusters_ - 1) / clusters_;
    t.cycles = t.overheadCycles + ck.loopCycles(t.iterations);

    if (SPS_TRACE_ENABLED(tracer)) {
        tracer->span("kernel", kernel_name, start, start + t.cycles,
                     op_id, trace::kTrackClusters,
                     {{"records", records},
                      {"iterations", t.iterations},
                      {"overhead_cycles", t.overheadCycles},
                      {"microcode_loaded", t.microcodeLoaded ? 1 : 0},
                      {"ii", ck.ii},
                      {"unroll", ck.unroll}});
    }
    return t;
}

int64_t
Microcontroller::callCycles(const std::string &kernel_name,
                            const sched::CompiledKernel &ck,
                            int64_t records)
{
    return call(kernel_name, ck, records).cycles;
}

} // namespace sps::sim
