#include "sim/stats.h"

// SimResult is a plain aggregate with inline accessors; this file
// anchors the header in the sps_sim library.
