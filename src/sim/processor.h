/**
 * @file
 * The stream processor simulator facade: configuration plus the run()
 * entry point. Mirrors the paper's methodology: kernel inner-loop
 * timing comes from static analysis of compiled kernels
 * (sched::compileKernel) and application time from cycle-accurate
 * stream-level execution with a scoreboard, a streaming memory
 * system, a finite-bandwidth host interface, and SRF capacity
 * accounting.
 */
#ifndef SPS_SIM_PROCESSOR_H
#define SPS_SIM_PROCESSOR_H

#include <memory>

#include "energy/accountant.h"
#include "mem/stream_mem.h"
#include "sched/kernel_perf.h"
#include "sched/schedule_cache.h"
#include "sim/microcontroller.h"
#include "sim/stats.h"
#include "sim/stream_controller.h"
#include "srf/srf.h"
#include "stream/program.h"
#include "vlsi/cost_model.h"
#include "vlsi/tech.h"

namespace sps::sim {

/** Full simulator configuration. */
struct SimConfig
{
    vlsi::MachineSize size{8, 5};
    vlsi::Params params = vlsi::Params::imagine();
    vlsi::Technology tech = vlsi::Technology::fortyFiveNm();
    mem::StreamMemConfig memConfig = mem::StreamMemConfig::fortyFiveNm();
    UcConfig ucConfig;
    /** Cycles the host channel needs per stream instruction. */
    int hostIssueCycles = 8;
    /** Stream controller scoreboard entries. */
    int scoreboardDepth = 16;
    /** Energy accounting knobs (idle fraction, DRAM extension). */
    energy::AccountantConfig energyConfig;
};

/**
 * A configured stream processor: compiles kernels on first use
 * (through the shared schedule cache, so the simulator and the
 * static-analysis path always see the same schedule for a given
 * (kernel, machine) pair) and executes stream programs.
 */
class StreamProcessor
{
  public:
    explicit StreamProcessor(SimConfig cfg);
    ~StreamProcessor();

    const SimConfig &config() const { return cfg_; }
    const srf::SrfModel &srf() const { return srf_; }
    const sched::MachineModel &machine() const { return machine_; }
    /** The accountant that fills SimResult::energy on every run. */
    const energy::EnergyAccountant &accountant() const
    {
        return accountant_;
    }

    /** Compile a kernel for this machine via the shared cache. */
    const sched::CompiledKernel &compile(const kernel::Kernel &k);

    /** Execute a stream program; returns timing and statistics. */
    SimResult run(const stream::StreamProgram &prog);

    /**
     * Execute with observability hooks: an attached tracer records
     * per-component events, an attached FunctionalContext executes
     * kernels functionally through the interpreter.
     */
    SimResult run(const stream::StreamProgram &prog,
                  const RunOptions &opts);

  private:
    SimConfig cfg_;
    vlsi::CostModel costModel_;
    sched::MachineModel machine_;
    srf::SrfModel srf_;
    mem::StreamMemSystem memSys_;
    energy::EnergyAccountant accountant_;
};

} // namespace sps::sim

#endif // SPS_SIM_PROCESSOR_H
