#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/log.h"

namespace sps {

void
CsvWriter::header(std::vector<std::string> cells)
{
    SPS_ASSERT(!cells.empty(), "empty CSV header");
    header_ = std::move(cells);
}

void
CsvWriter::row(std::vector<std::string> cells)
{
    SPS_ASSERT(cells.size() == header_.size(),
               "CSV row width %zu != header width %zu", cells.size(),
               header_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::toString() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << escape(cells[i]);
            if (i + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << toString();
    return static_cast<bool>(f);
}

} // namespace sps
