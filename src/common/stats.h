/**
 * @file
 * Small statistics helpers used by the performance evaluation: the paper
 * reports harmonic means over kernel and application suites, and several
 * normalized ratios.
 */
#ifndef SPS_COMMON_STATS_H
#define SPS_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace sps {

/** Harmonic mean of a series of positive values. */
double harmonicMean(const std::vector<double> &values);

/** Geometric mean of a series of positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &values);

/**
 * Streaming accumulator for min/max/mean over an online series.
 */
class Summary
{
  public:
    void add(double v);

    size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Element-wise divide a series by its value at a reference index. */
std::vector<double> normalizeTo(const std::vector<double> &values,
                                size_t ref_index);

} // namespace sps

#endif // SPS_COMMON_STATS_H
