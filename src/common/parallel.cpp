#include "common/parallel.h"

namespace sps {

namespace {

/** True while this thread is executing indices of some pool job. */
thread_local bool tl_in_pool_job = false;

struct InJobScope
{
    bool saved;
    InJobScope() : saved(tl_in_pool_job) { tl_in_pool_job = true; }
    ~InJobScope() { tl_in_pool_job = saved; }
};

} // namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(static_cast<size_t>(threads - 1));
    for (int i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::drain(const std::function<void(size_t)> &fn, size_t n)
{
    InJobScope scope;
    for (;;) {
        size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMu_);
            if (!error_)
                error_ = std::current_exception();
        }
        if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            n) {
            std::lock_guard<std::mutex> lock(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
            n = jobSize_;
            ++active_;
        }
        drain(*fn, n);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    // Inline paths: a serial pool, a nested call from inside a job
    // (parallelizing it could deadlock on jobMu_), or a single index.
    if (workers_.empty() || tl_in_pool_job || n == 1) {
        InJobScope scope;
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> job(jobMu_);
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Wait out stragglers of the previous job: a worker that woke
        // late may still be inside drain() with the old job pointer.
        done_.wait(lock, [&] { return active_ == 0; });
        fn_ = &fn;
        jobSize_ = n;
        next_.store(0, std::memory_order_relaxed);
        completed_.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> elock(errorMu_);
            error_ = nullptr;
        }
        ++generation_;
    }
    wake_.notify_all();
    drain(fn, n);
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] {
            return completed_.load(std::memory_order_acquire) >= n;
        });
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> elock(errorMu_);
        err = error_;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace sps
