#include "common/stats.h"

#include <cmath>

#include "common/log.h"

namespace sps {

double
harmonicMean(const std::vector<double> &values)
{
    SPS_ASSERT(!values.empty(), "harmonic mean of empty series");
    double denom = 0.0;
    for (double v : values) {
        SPS_ASSERT(v > 0.0, "harmonic mean requires positive values");
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
geometricMean(const std::vector<double> &values)
{
    SPS_ASSERT(!values.empty(), "geometric mean of empty series");
    double acc = 0.0;
    for (double v : values) {
        SPS_ASSERT(v > 0.0, "geometric mean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    SPS_ASSERT(!values.empty(), "mean of empty series");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
}

double
Summary::min() const
{
    SPS_ASSERT(count_ > 0, "min of empty summary");
    return min_;
}

double
Summary::max() const
{
    SPS_ASSERT(count_ > 0, "max of empty summary");
    return max_;
}

double
Summary::mean() const
{
    SPS_ASSERT(count_ > 0, "mean of empty summary");
    return sum_ / static_cast<double>(count_);
}

std::vector<double>
normalizeTo(const std::vector<double> &values, size_t ref_index)
{
    SPS_ASSERT(ref_index < values.size(), "reference index out of range");
    SPS_ASSERT(values[ref_index] != 0.0, "normalizing to zero");
    std::vector<double> out;
    out.reserve(values.size());
    for (double v : values)
        out.push_back(v / values[ref_index]);
    return out;
}

} // namespace sps
