/**
 * @file
 * FNV-1a incremental hasher shared by the structural caches (the
 * schedule cache and the lowered-kernel cache). 64-bit, byte-at-a-time,
 * deterministic across platforms.
 */
#ifndef SPS_COMMON_FNV_H
#define SPS_COMMON_FNV_H

#include <cstdint>
#include <string>

namespace sps {

/** Incremental FNV-1a over 64-bit words and strings. */
struct Fnv
{
    static constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    static constexpr uint64_t kPrime = 0x100000001b3ull;

    uint64_t h = kOffset;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= kPrime;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<uint64_t>(s.size()));
        for (char c : s) {
            h ^= static_cast<uint8_t>(c);
            h *= kPrime;
        }
    }
};

} // namespace sps

#endif // SPS_COMMON_FNV_H
