#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace sps {

namespace {
LogLevel gLevel = LogLevel::Info;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}
} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "debug: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace sps
