/**
 * @file
 * A persistent pool of worker threads executing index-space jobs
 * (forEach over [0, n)). This is the concurrency substrate of the
 * design-space evaluation engine (core::EvalEngine) and the VLSI
 * sweeps: results stay deterministic regardless of the worker count
 * because each index owns its output slot -- the pool only changes
 * *when* an index runs, never *what* it computes.
 */
#ifndef SPS_COMMON_PARALLEL_H
#define SPS_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sps {

class ThreadPool
{
  public:
    /**
     * threads == 0 picks the hardware concurrency; threads == 1 runs
     * every job inline on the calling thread (the serial reference
     * configuration the equivalence tests compare against).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads applied to a job: workers plus the calling thread. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n), blocking until all indices
     * complete. The calling thread participates in the work. Calls
     * made from inside a running job (nested parallelism) execute
     * inline to avoid deadlock. The first exception thrown by fn is
     * rethrown here after the job drains.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /** The process-wide pool, sized to the hardware. */
    static ThreadPool &shared();

  private:
    void workerLoop();
    void drain(const std::function<void(size_t)> &fn, size_t n);

    std::vector<std::thread> workers_;

    /** Guards the job hand-off state below. */
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0;
    int active_ = 0; ///< workers currently inside drain()
    bool stop_ = false;
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t jobSize_ = 0;

    std::atomic<size_t> next_{0};
    std::atomic<size_t> completed_{0};

    std::mutex errorMu_;
    std::exception_ptr error_;

    /** Serializes concurrent forEach() callers. */
    std::mutex jobMu_;
};

} // namespace sps

#endif // SPS_COMMON_PARALLEL_H
