/**
 * @file
 * Plain-text table formatting used by the benchmark harnesses to print
 * paper-style rows and series.
 */
#ifndef SPS_COMMON_TABLE_H
#define SPS_COMMON_TABLE_H

#include <string>
#include <vector>

namespace sps {

/**
 * A simple column-aligned text table. Add a header once, then rows of the
 * same width; toString() renders with column alignment and a rule under
 * the header.
 */
class TextTable
{
  public:
    /** Set the header row; also fixes the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render the table. */
    std::string toString() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sps

#endif // SPS_COMMON_TABLE_H
