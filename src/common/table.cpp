#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace sps {

void
TextTable::header(std::vector<std::string> cells)
{
    SPS_ASSERT(!cells.empty(), "empty table header");
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    SPS_ASSERT(cells.size() == header_.size(),
               "row width %zu != header width %zu", cells.size(),
               header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

std::string
TextTable::toString() const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i)
        width[i] = header_[i].size();
    for (const auto &r : rows_)
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

} // namespace sps
