/**
 * @file
 * Deterministic pseudo-random number generator used by the synthetic
 * workload data generators. xoshiro-style; identical streams across
 * platforms for reproducible tests.
 */
#ifndef SPS_COMMON_PRNG_H
#define SPS_COMMON_PRNG_H

#include <cstdint>

namespace sps {

/** SplitMix64/xorshift-based deterministic PRNG. */
class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed)
    {
        // Avoid the all-zero state.
        if (state_ == 0)
            state_ = 1;
    }

    /** Next 64 random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /**
     * Uniform integer in [0, bound). Rejection sampling: a plain
     * `next() % bound` favours small residues whenever 2^64 is not a
     * multiple of bound. Values below `2^64 mod bound` are redrawn,
     * leaving an exact multiple of bound equally likely outcomes (at
     * most one redraw expected; for bounds far below 2^64 a redraw is
     * vanishingly rare, so existing deterministic streams are
     * unaffected in practice).
     */
    uint32_t
    below(uint32_t bound)
    {
        if (bound == 0)
            return 0;
        uint64_t b = bound;
        uint64_t threshold = (0 - b) % b; // == 2^64 mod bound
        uint64_t r = next();
        while (r < threshold)
            r = next();
        return static_cast<uint32_t>(r % b);
    }

  private:
    uint64_t state_;
};

} // namespace sps

#endif // SPS_COMMON_PRNG_H
