/**
 * @file
 * Minimal CSV writer used to export the experiment data series behind
 * each figure for external plotting.
 */
#ifndef SPS_COMMON_CSV_H
#define SPS_COMMON_CSV_H

#include <string>
#include <vector>

namespace sps {

/** Accumulates rows and renders/writes RFC-4180-style CSV. */
class CsvWriter
{
  public:
    /** Set the header row; fixes the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row (must match the header width). */
    void row(std::vector<std::string> cells);

    /** Render the document. */
    std::string toString() const;

    /** Write to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Escape one cell (quotes cells containing , " or newline). */
    static std::string escape(const std::string &cell);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sps

#endif // SPS_COMMON_CSV_H
