/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts.
 */
#ifndef SPS_COMMON_LOG_H
#define SPS_COMMON_LOG_H

#include <cstdarg>
#include <string>

namespace sps {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet = 0, Info = 1, Debug = 2 };

/** Set the global verbosity (default: Info). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Print an informational message (printf-style) when verbosity allows.
 */
void inform(const char *fmt, ...);

/** Print a debug message (printf-style) at Debug verbosity. */
void debug(const char *fmt, ...);

/** Print a warning to stderr; never stops execution. */
void warn(const char *fmt, ...);

/**
 * Report an unrecoverable user-level error and exit(1).
 * Use for bad configurations and invalid arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...);

} // namespace sps

/** Assert an internal invariant; panics with location info on failure. */
#define SPS_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::sps::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                         __FILE__, __LINE__,                               \
                         ::sps::strformat(__VA_ARGS__).c_str());           \
        }                                                                  \
    } while (0)

#endif // SPS_COMMON_LOG_H
