/**
 * @file
 * The socket front end of the evaluation service: a Unix-domain
 * stream server speaking the svc/protocol.h frame protocol over one
 * shared svc::EvalService. Every connection gets a reader thread
 * (decode frame -> submit to the service) and a writer thread that
 * delivers responses strictly in request order, so clients may
 * pipeline; the *evaluation* of pipelined and cross-connection
 * requests is concurrent and deduplicated by the service (two clients
 * asking for the same point share one simulation through the
 * memory -> disk -> compute tiers).
 *
 * Robustness contract: a malformed frame (truncated, bit-flipped,
 * wrong magic/version/kind, checksum mismatch) terminates only that
 * connection -- after a best-effort Error frame -- and never the
 * server; an unknown application or a simulation failure is delivered
 * to the requesting client as an Error frame. The daemon binary
 * around this class is examples/sps_evald.cpp.
 */
#ifndef SPS_SVC_EVAL_SERVER_H
#define SPS_SVC_EVAL_SERVER_H

#ifndef _WIN32

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/span.h"
#include "svc/eval_service.h"

namespace sps::svc {

/**
 * Telemetry wiring for one EvalServer. With a registry the server
 * registers its own metrics (end-to-end request latency, active
 * connections, cumulative counters as collector gauges), attaches the
 * service's metrics (the single wiring point for the request tiers),
 * creates a RequestSpan per EvalRequest, and answers MetricsRequest
 * frames with a live snapshot. Without one, every telemetry path is
 * compiled to a null check and MetricsRequest answers with an Error
 * frame.
 */
struct ServerTelemetry
{
    /** Null disables metrics; must outlive the server. */
    obs::MetricsRegistry *registry = nullptr;
    /** A finished request slower than this (microseconds, end to end)
     *  logs one structured warn() line; 0 disables. */
    uint64_t slowRequestUs = 0;
    /** Completed spans retained for export (bounded ring). */
    size_t spanCapacity = 1024;
};

class EvalServer
{
  public:
    /**
     * Bind and listen on `socketPath` (an existing socket file is
     * replaced) and start accepting. The service must outlive the
     * server. Throws std::runtime_error when the socket cannot be
     * created or bound.
     */
    EvalServer(EvalService *service, std::string socketPath,
               ServerTelemetry telemetry = {});
    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    const std::string &socketPath() const { return socketPath_; }
    EvalService &service() const { return *service_; }

    /** Stop accepting, sever live connections, join every thread,
     *  and remove the socket file. Idempotent. */
    void stop();

    struct Counters
    {
        uint64_t connections = 0;    ///< accepted connections
        uint64_t requests = 0;       ///< well-formed frames handled
        uint64_t protocolErrors = 0; ///< malformed frames/streams
    };
    Counters counters() const;

    /** Live snapshot of the attached registry (empty without one).
     *  The same snapshot a MetricsRequest frame returns. */
    obs::MetricsSnapshot metricsSnapshot() const;

    /** The ring of recently completed request spans (always present;
     *  only populated when telemetry is enabled). */
    const obs::SpanRecorder &spanRecorder() const { return spans_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    std::vector<std::vector<std::string>> statsRows() const;

    EvalService *service_;
    std::string socketPath_;
    ServerTelemetry telemetry_;
    obs::SpanRecorder spans_;
    /** Request-span ids (unique per server lifetime). */
    std::atomic<uint64_t> requestSeq_{0};
    /** Pre-resolved handles (null without a registry). */
    obs::Histogram *e2eUs_ = nullptr;
    obs::Gauge *activeConns_ = nullptr;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};

    std::mutex mu_; ///< guards conns_/connFds_
    std::vector<std::thread> conns_;
    std::unordered_set<int> connFds_;

    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> protocolErrors_{0};

    std::thread acceptor_;
};

} // namespace sps::svc

#endif // !_WIN32

#endif // SPS_SVC_EVAL_SERVER_H
