#ifndef _WIN32

#include "svc/eval_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/log.h"
#include "svc/protocol.h"

namespace sps::svc {

namespace {

/** One queued response: either an immediate frame (stats, errors) or
 *  a pending evaluation whose result frame is produced on delivery. */
struct PendingResponse
{
    bool immediate = false;
    FrameKind kind = FrameKind::Error;
    std::vector<uint8_t> payload;
    std::shared_future<sim::SimResult> future;
    /** Request span to close after delivery (may be null). */
    std::shared_ptr<obs::RequestSpan> span;
};

std::vector<uint8_t>
errorPayload(const std::string &message)
{
    store::ByteWriter w;
    encodeErrorString(message, &w);
    return w.bytes();
}

} // namespace

EvalServer::EvalServer(EvalService *service, std::string socketPath,
                       ServerTelemetry telemetry)
    : service_(service), socketPath_(std::move(socketPath)),
      telemetry_(telemetry),
      spans_(telemetry.spanCapacity ? telemetry.spanCapacity : 1)
{
    if (obs::MetricsRegistry *reg = telemetry_.registry) {
        // One wiring point for the whole request path: the server
        // owns its own metrics and attaches the service's, so a
        // daemon enables request-tier telemetry with one struct.
        service_->attachMetrics(reg);
        e2eUs_ = reg->histogram(
            "sps_server_request_duration_us", "",
            "End-to-end request latency incl. delivery (us)");
        activeConns_ = reg->gauge("sps_server_active_connections", "",
                                  "Connections currently being served");
        reg->addCollector([this, reg] {
            Counters c = counters();
            reg->gauge("sps_server_connections", "",
                       "Connections accepted")
                ->set(static_cast<int64_t>(c.connections));
            reg->gauge("sps_server_requests", "",
                       "Well-formed frames handled")
                ->set(static_cast<int64_t>(c.requests));
            reg->gauge("sps_server_protocol_errors", "",
                       "Malformed frames/streams")
                ->set(static_cast<int64_t>(c.protocolErrors));
        });
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof addr.sun_path)
        throw std::runtime_error("EvalServer: socket path too long: " +
                                 socketPath_);
    std::memcpy(addr.sun_path, socketPath_.c_str(),
                socketPath_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("EvalServer: socket() failed");
    ::unlink(socketPath_.c_str()); // replace a stale socket file
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("EvalServer: cannot bind " +
                                 socketPath_);
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
}

EvalServer::~EvalServer()
{
    stop();
}

void
EvalServer::stop()
{
    if (stopping_.exchange(true))
        return;
    // Closing the listening socket makes the blocked accept() fail,
    // which exits the acceptor; severing live connections wakes their
    // blocked reads.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(mu_);
        conns.swap(conns_);
    }
    for (auto &t : conns)
        t.join();
    ::unlink(socketPath_.c_str());
}

void
EvalServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listening socket closed: shutting down
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        connFds_.insert(fd);
        conns_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

std::vector<std::vector<std::string>>
EvalServer::statsRows() const
{
    return cacheStatsRows(service_->engine().cache().counters(),
                          service_->store(), service_);
}

void
EvalServer::serveConnection(int fd)
{
    if (activeConns_)
        activeConns_->add(1);
    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<PendingResponse> queue;
    bool reader_done = false;

    auto enqueue = [&](PendingResponse r) {
        {
            std::lock_guard<std::mutex> lock(qmu);
            queue.push_back(std::move(r));
        }
        qcv.notify_one();
    };

    // Delivery thread: responses go out strictly in request order, so
    // pipelined clients can match responses to requests positionally.
    std::thread writer([&] {
        for (;;) {
            PendingResponse r;
            {
                std::unique_lock<std::mutex> lock(qmu);
                qcv.wait(lock, [&] {
                    return reader_done || !queue.empty();
                });
                if (queue.empty())
                    return; // reader finished and everything delivered
                r = std::move(queue.front());
                queue.pop_front();
            }
            bool ok;
            if (r.immediate) {
                ok = writeFrame(fd, r.kind, r.payload);
            } else {
                uint64_t tDeliver = obs::monotonicMicros();
                FrameKind kind = FrameKind::Error;
                std::vector<uint8_t> payload;
                try {
                    const sim::SimResult &res = r.future.get();
                    store::ByteWriter w;
                    store::encodeSimResult(res, &w);
                    kind = FrameKind::EvalResult;
                    payload = w.bytes();
                } catch (const std::exception &e) {
                    payload = errorPayload(e.what());
                } catch (...) {
                    payload = errorPayload("evaluation failed");
                }
                if (r.span) {
                    // future.get() synchronized with the worker's
                    // set_value, so the stages it wrote are visible
                    // here; after finish() the span is immutable.
                    // Recorded *before* the frame goes out: a scrape
                    // the client issues after receiving this reply
                    // must already include it.
                    r.span->stage("deliver", tDeliver,
                                  obs::monotonicMicros());
                    r.span->finish(&spans_);
                    if (e2eUs_)
                        e2eUs_->observe(r.span->totalUs());
                    if (telemetry_.slowRequestUs &&
                        r.span->totalUs() >= telemetry_.slowRequestUs)
                        warn("slow request: %s",
                             r.span->describe().c_str());
                }
                ok = writeFrame(fd, kind, payload);
            }
            if (!ok) {
                // Peer vanished mid-delivery: wake the reader too.
                ::shutdown(fd, SHUT_RDWR);
                return;
            }
        }
    });

    for (;;) {
        Frame frame;
        ReadStatus st = readFrame(fd, &frame);
        if (st == ReadStatus::Eof)
            break;
        if (st == ReadStatus::Malformed) {
            // The stream cannot be resynchronized after garbage; tell
            // the peer (best effort) and drop the connection. Only
            // this connection dies -- the listener and every other
            // client keep going.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::Error;
            r.payload = errorPayload("malformed frame");
            enqueue(std::move(r));
            break;
        }
        switch (frame.kind) {
        case FrameKind::EvalRequest: {
            EvalPoint pt;
            if (!decodeEvalRequest(frame.payload, &pt)) {
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                PendingResponse r;
                r.immediate = true;
                r.kind = FrameKind::Error;
                r.payload = errorPayload("malformed eval request");
                enqueue(std::move(r));
                break;
            }
            requests_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            if (telemetry_.registry || telemetry_.slowRequestUs) {
                r.span = std::make_shared<obs::RequestSpan>(
                    requestSeq_.fetch_add(1,
                                          std::memory_order_relaxed) +
                        1,
                    pt.app + "/" + std::to_string(pt.size.clusters) +
                        "x" +
                        std::to_string(pt.size.alusPerCluster));
            }
            r.future = service_->submit(pt, r.span);
            enqueue(std::move(r));
            break;
        }
        case FrameKind::StatsRequest: {
            requests_.fetch_add(1, std::memory_order_relaxed);
            store::ByteWriter w;
            encodeStatsRows(statsRows(), &w);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::StatsReply;
            r.payload = w.bytes();
            enqueue(std::move(r));
            break;
        }
        case FrameKind::MetricsRequest: {
            requests_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.immediate = true;
            if (telemetry_.registry) {
                store::ByteWriter w;
                encodeMetricsSnapshot(telemetry_.registry->snapshot(),
                                      &w);
                r.kind = FrameKind::MetricsReply;
                r.payload = w.bytes();
            } else {
                // Well-formed but unanswerable: the conversation
                // stays synced, the connection stays up.
                r.kind = FrameKind::Error;
                r.payload =
                    errorPayload("metrics not enabled on this server");
            }
            enqueue(std::move(r));
            break;
        }
        default: {
            // A response kind arriving at the server is a confused
            // peer; answer with an error but keep the stream (the
            // frame itself was well-formed).
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::Error;
            r.payload = errorPayload("unexpected frame kind");
            enqueue(std::move(r));
            break;
        }
        }
    }

    {
        std::lock_guard<std::mutex> lock(qmu);
        reader_done = true;
    }
    qcv.notify_all();
    writer.join();
    {
        // Unregister before close: once closed, the fd number can be
        // reused by a fresh accept, and the erase must not hit it.
        std::lock_guard<std::mutex> lock(mu_);
        connFds_.erase(fd);
    }
    ::close(fd);
    if (activeConns_)
        activeConns_->add(-1);
}

obs::MetricsSnapshot
EvalServer::metricsSnapshot() const
{
    return telemetry_.registry ? telemetry_.registry->snapshot()
                               : obs::MetricsSnapshot{};
}

EvalServer::Counters
EvalServer::counters() const
{
    Counters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.requests = requests_.load(std::memory_order_relaxed);
    c.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    return c;
}

} // namespace sps::svc

#endif // !_WIN32
