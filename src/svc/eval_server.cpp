#ifndef _WIN32

#include "svc/eval_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <stdexcept>
#include <utility>

#include "svc/protocol.h"

namespace sps::svc {

namespace {

/** One queued response: either an immediate frame (stats, errors) or
 *  a pending evaluation whose result frame is produced on delivery. */
struct PendingResponse
{
    bool immediate = false;
    FrameKind kind = FrameKind::Error;
    std::vector<uint8_t> payload;
    std::shared_future<sim::SimResult> future;
};

std::vector<uint8_t>
errorPayload(const std::string &message)
{
    store::ByteWriter w;
    encodeErrorString(message, &w);
    return w.bytes();
}

} // namespace

EvalServer::EvalServer(EvalService *service, std::string socketPath)
    : service_(service), socketPath_(std::move(socketPath))
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof addr.sun_path)
        throw std::runtime_error("EvalServer: socket path too long: " +
                                 socketPath_);
    std::memcpy(addr.sun_path, socketPath_.c_str(),
                socketPath_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("EvalServer: socket() failed");
    ::unlink(socketPath_.c_str()); // replace a stale socket file
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("EvalServer: cannot bind " +
                                 socketPath_);
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
}

EvalServer::~EvalServer()
{
    stop();
}

void
EvalServer::stop()
{
    if (stopping_.exchange(true))
        return;
    // Closing the listening socket makes the blocked accept() fail,
    // which exits the acceptor; severing live connections wakes their
    // blocked reads.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(mu_);
        conns.swap(conns_);
    }
    for (auto &t : conns)
        t.join();
    ::unlink(socketPath_.c_str());
}

void
EvalServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listening socket closed: shutting down
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        connFds_.insert(fd);
        conns_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

std::vector<std::vector<std::string>>
EvalServer::statsRows() const
{
    return cacheStatsRows(service_->engine().cache().counters(),
                          service_->store(), service_);
}

void
EvalServer::serveConnection(int fd)
{
    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<PendingResponse> queue;
    bool reader_done = false;

    auto enqueue = [&](PendingResponse r) {
        {
            std::lock_guard<std::mutex> lock(qmu);
            queue.push_back(std::move(r));
        }
        qcv.notify_one();
    };

    // Delivery thread: responses go out strictly in request order, so
    // pipelined clients can match responses to requests positionally.
    std::thread writer([&] {
        for (;;) {
            PendingResponse r;
            {
                std::unique_lock<std::mutex> lock(qmu);
                qcv.wait(lock, [&] {
                    return reader_done || !queue.empty();
                });
                if (queue.empty())
                    return; // reader finished and everything delivered
                r = std::move(queue.front());
                queue.pop_front();
            }
            bool ok;
            if (r.immediate) {
                ok = writeFrame(fd, r.kind, r.payload);
            } else {
                try {
                    const sim::SimResult &res = r.future.get();
                    store::ByteWriter w;
                    store::encodeSimResult(res, &w);
                    ok = writeFrame(fd, FrameKind::EvalResult,
                                    w.bytes());
                } catch (const std::exception &e) {
                    ok = writeFrame(fd, FrameKind::Error,
                                    errorPayload(e.what()));
                } catch (...) {
                    ok = writeFrame(fd, FrameKind::Error,
                                    errorPayload("evaluation failed"));
                }
            }
            if (!ok) {
                // Peer vanished mid-delivery: wake the reader too.
                ::shutdown(fd, SHUT_RDWR);
                return;
            }
        }
    });

    for (;;) {
        Frame frame;
        ReadStatus st = readFrame(fd, &frame);
        if (st == ReadStatus::Eof)
            break;
        if (st == ReadStatus::Malformed) {
            // The stream cannot be resynchronized after garbage; tell
            // the peer (best effort) and drop the connection. Only
            // this connection dies -- the listener and every other
            // client keep going.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::Error;
            r.payload = errorPayload("malformed frame");
            enqueue(std::move(r));
            break;
        }
        switch (frame.kind) {
        case FrameKind::EvalRequest: {
            EvalPoint pt;
            if (!decodeEvalRequest(frame.payload, &pt)) {
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                PendingResponse r;
                r.immediate = true;
                r.kind = FrameKind::Error;
                r.payload = errorPayload("malformed eval request");
                enqueue(std::move(r));
                break;
            }
            requests_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.future = service_->submit(pt);
            enqueue(std::move(r));
            break;
        }
        case FrameKind::StatsRequest: {
            requests_.fetch_add(1, std::memory_order_relaxed);
            store::ByteWriter w;
            encodeStatsRows(statsRows(), &w);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::StatsReply;
            r.payload = w.bytes();
            enqueue(std::move(r));
            break;
        }
        default: {
            // A response kind arriving at the server is a confused
            // peer; answer with an error but keep the stream (the
            // frame itself was well-formed).
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            PendingResponse r;
            r.immediate = true;
            r.kind = FrameKind::Error;
            r.payload = errorPayload("unexpected frame kind");
            enqueue(std::move(r));
            break;
        }
        }
    }

    {
        std::lock_guard<std::mutex> lock(qmu);
        reader_done = true;
    }
    qcv.notify_all();
    writer.join();
    {
        // Unregister before close: once closed, the fd number can be
        // reused by a fresh accept, and the erase must not hit it.
        std::lock_guard<std::mutex> lock(mu_);
        connFds_.erase(fd);
    }
    ::close(fd);
}

EvalServer::Counters
EvalServer::counters() const
{
    Counters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.requests = requests_.load(std::memory_order_relaxed);
    c.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    return c;
}

} // namespace sps::svc

#endif // !_WIN32
