/**
 * @file
 * The persistent evaluation service: an async, dedup'd job queue
 * layered on core::EvalEngine that turns the one-shot evaluation
 * stack into a long-lived sweep server. Clients submit() design
 * points (an application at a machine size) from any thread and get
 * shared futures back; a background dispatcher batches everything
 * submitted since the last batch onto the engine's thread pool.
 *
 * Every request passes through three tiers:
 *  - memory:  a completed identical request resolves immediately, and
 *             an *in-flight* identical request hands the second
 *             requester the first one's future (no duplicate work);
 *  - disk:    with a store::ResultStore attached, a verified entry
 *             keyed by (stream::programFingerprint, machineConfigHash,
 *             simConfigHash) decodes bit-identically instead of
 *             re-simulating -- this is what a warm --cache-dir run
 *             hits, across processes;
 *  - compute: the simulation runs on the engine pool and the result
 *             is written back to the store.
 *
 * Kernel compilations inside the simulations flow through the shared
 * sched::ScheduleCache, which holds the same store as its own disk
 * tier, so a warm run performs zero schedule compiles as well as zero
 * re-simulations.
 */
#ifndef SPS_SVC_EVAL_SERVICE_H
#define SPS_SVC_EVAL_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/csv.h"
#include "core/eval_engine.h"
#include "core/experiments.h"
#include "obs/span.h"
#include "sim/processor.h"
#include "store/result_store.h"

namespace sps::svc {

/**
 * Hash of every sim::SimConfig field that shapes a simulation result
 * (machine size, Table-1 params, technology, memory system, host
 * interface, energy accounting). Part of the sim-result store key, so
 * results computed under different configurations never alias.
 */
uint64_t simConfigHash(const sim::SimConfig &cfg);

/** One design point the service evaluates. */
struct EvalPoint
{
    /** Application name from workloads::appSuite() (e.g. "RENDER"). */
    std::string app;
    vlsi::MachineSize size{8, 5};
    /**
     * Optional explicit simulator configuration. When set, the
     * simulation runs under exactly this configuration (with its size
     * field overridden by `size`); when unset, the default
     * configuration for `size`. The socket protocol carries this
     * field, so remote clients can sweep non-default configurations.
     */
    std::optional<sim::SimConfig> config;
};

/**
 * The configuration `pt` actually simulates under: the override when
 * present (size forced to pt.size), the defaults otherwise. Both the
 * request key and the worker derive from this one function, so the
 * request key can never silently diverge from the store key.
 */
sim::SimConfig effectiveSimConfig(const EvalPoint &pt);

/**
 * The canonical Figure-15 submission order: one baseline point per
 * app, then the app -> n -> c grid. Both EvalService::appPerformance
 * and the socket client submit in exactly this order, which is what
 * keeps their CSVs byte-identical to core::appPerformance.
 */
struct AppSweepPlan
{
    std::vector<EvalPoint> baselines; ///< one per app, suite order
    std::vector<EvalPoint> grid;      ///< app -> n -> c
};
AppSweepPlan appSweepPlan(const std::vector<int> &c_values,
                          const std::vector<int> &n_values);

/**
 * Assemble Figure-15 AppPoints from simulation results gathered in
 * appSweepPlan order: `base_by_app[i]` is the baseline result of app
 * i, `grid_results[j]` the result of `plan.grid[j]`.
 */
std::vector<core::AppPoint>
assembleAppPoints(const AppSweepPlan &plan,
                  const std::vector<sim::SimResult> &base_by_app,
                  std::vector<sim::SimResult> grid_results);

/** Monotonic per-tier counters of one service instance. */
struct ServiceCounters
{
    uint64_t submitted = 0;     ///< distinct requests queued
    uint64_t memHits = 0;       ///< resolved from a completed result
    uint64_t inflightDedup = 0; ///< joined an in-flight identical job
    uint64_t diskHits = 0;      ///< decoded from the attached store
    uint64_t computed = 0;      ///< actually simulated
};

class EvalService
{
  public:
    /**
     * engine == nullptr uses EvalEngine::global(); store == nullptr
     * runs memory-only (no persistent tier). The store must outlive
     * the service.
     */
    explicit EvalService(core::EvalEngine *engine = nullptr,
                         store::ResultStore *store = nullptr);
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Queue a design point for evaluation. Identical points (same
     * app, size, and simulation configuration) are deduplicated: a
     * repeat of a completed point resolves from memory, a repeat of
     * an in-flight point returns the in-flight future.
     */
    std::shared_future<sim::SimResult> submit(const EvalPoint &pt);

    /**
     * submit() carrying a request span: the service records the
     * queue-wait, build, store-read, simulation, and write-back
     * stages onto it and stamps the tier that served the request
     * (mem for both completed-result and in-flight dedup hits).
     * The span must stay alive until the returned future is ready;
     * the service never finish()es it -- the caller does, after
     * delivery. A null span is identical to plain submit().
     */
    std::shared_future<sim::SimResult>
    submit(const EvalPoint &pt, std::shared_ptr<obs::RequestSpan> span);

    /** submit() and wait. */
    sim::SimResult eval(const EvalPoint &pt);

    /**
     * Figure 15 through the service: same output as
     * core::appPerformance (deterministic axis order, identical
     * values), but every (app, size) simulation -- baselines included
     * -- is submitted through the tiered, dedup'd queue. The baseline
     * point dedups against its grid twin when the grid contains
     * core::kBaseline.
     */
    std::vector<core::AppPoint>
    appPerformance(const std::vector<int> &c_values,
                   const std::vector<int> &n_values);

    /**
     * Forget completed in-memory results (the memory tier only; the
     * disk store is untouched). Outstanding futures stay valid. Does
     * not reset the counters.
     */
    void clearMemory();

    ServiceCounters counters() const;
    store::ResultStore *store() const { return store_; }
    core::EvalEngine &engine() const { return *engine_; }

    /**
     * Publish this service's telemetry into `registry`:
     * sps_requests_total, per-tier sps_requests_tier_total counters
     * and sps_request_duration_us histograms (tier = mem / disk /
     * compute / error), sps_queue_wait_us, sps_sim_duration_us, plus
     * a collector exporting ServiceCounters as gauges. Conservation:
     * every submit() increments requests_total and resolves to
     * exactly one tier, so at quiescence requests_total equals the
     * sum of the tier counters and of the per-tier histogram counts.
     * Attach once, at wiring time; the registry must outlive the
     * service. nullptr detaches.
     */
    void attachMetrics(obs::MetricsRegistry *registry);

  private:
    struct Job
    {
        EvalPoint pt;
        std::promise<sim::SimResult> promise;
        /** Request span to record stages on (may be null). */
        std::shared_ptr<obs::RequestSpan> span;
        /** When submit() queued the job (monotonic microseconds). */
        uint64_t enqueueUs = 0;
    };

    /** Pre-resolved metric handles, indexed by obs::Tier where
     *  per-tier. Published via an atomic pointer so the hot path is
     *  one acquire load plus relaxed counter bumps. */
    struct Metrics
    {
        obs::Counter *requests = nullptr;
        obs::Counter *tier[5] = {};
        obs::Histogram *durationTier[5] = {};
        obs::Histogram *queueWait = nullptr;
        obs::Histogram *simDuration = nullptr;
    };

    void dispatchLoop();
    void runJob(Job &job);
    std::string requestKey(const EvalPoint &pt) const;

    core::EvalEngine *engine_;
    store::ResultStore *store_;

    std::mutex mu_;
    std::condition_variable wake_;
    bool stop_ = false;
    std::deque<Job> pending_;
    /** Request key -> future (in-flight or completed): the memory
     *  tier and the in-flight dedup table in one map. */
    std::unordered_map<std::string, std::shared_future<sim::SimResult>>
        results_;

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> memHits_{0};
    std::atomic<uint64_t> inflightDedup_{0};
    std::atomic<uint64_t> diskHits_{0};
    std::atomic<uint64_t> computed_{0};

    std::unique_ptr<Metrics> metricsStorage_;
    std::atomic<Metrics *> metrics_{nullptr};

    std::thread dispatcher_;
};

/**
 * Append the cache-tier observability rows (tier, counter, value) for
 * the schedule cache, the store, and the service to a CSV started
 * with header {"tier", "counter", "value"}. Null store/service are
 * skipped. This is the canonical export behind cache_stats.csv and
 * the bench_headline cache section.
 */
void appendCacheStatsRows(CsvWriter &w,
                          const sched::ScheduleCache::Counters &sched,
                          const store::ResultStore *store,
                          const EvalService *service);

/** The same rows as (tier, counter, value) string triples. */
std::vector<std::vector<std::string>>
cacheStatsRows(const sched::ScheduleCache::Counters &sched,
               const store::ResultStore *store,
               const EvalService *service);

} // namespace sps::svc

#endif // SPS_SVC_EVAL_SERVICE_H
