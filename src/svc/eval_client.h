/**
 * @file
 * Client side of the evaluation-service socket protocol: connects to
 * an sps_evald (svc::EvalServer) Unix-domain socket and evaluates
 * design points remotely. A decoded result is bit-identical to what
 * the server computed (the payload is the store codec's SimResult
 * encoding), so a sweep driven through a client produces CSVs byte
 * for byte equal to the same sweep run in-process.
 *
 * appPerformance() pipelines the whole Figure-15 sweep: every request
 * is written before the first response is read (from a background
 * sender thread, so neither side's socket buffer can deadlock the
 * conversation), which lets the server evaluate the full grid
 * concurrently and dedup it against other clients mid-flight.
 *
 * Failure model: the protocol has no resynchronization, so the client
 * tracks liveness explicitly. A transport or framing failure (severed
 * socket, truncated/undecodable frame, unexpected kind) marks the
 * connection *dead*: the current call throws and every later call
 * throws immediately instead of reading a stale response. An aborted
 * pipelined appPerformance() -- even one aborted by a clean server
 * Error frame -- also goes dead, because responses to the already
 * written requests may still be buffered and a later eval() would
 * otherwise silently consume one of them as its own answer. Only a
 * server Error frame answering a single *unpipelined* request leaves
 * the connection alive: exactly one response was consumed for exactly
 * one request, so the conversation is still in lockstep.
 */
#ifndef SPS_SVC_EVAL_CLIENT_H
#define SPS_SVC_EVAL_CLIENT_H

#ifndef _WIN32

#include <mutex>
#include <string>
#include <vector>

#include "svc/eval_service.h"

namespace sps::svc {

class EvalClient
{
  public:
    /** Connect to the server socket; throws std::runtime_error when
     *  the socket does not exist or refuses the connection. */
    explicit EvalClient(std::string socketPath);
    ~EvalClient();

    EvalClient(const EvalClient &) = delete;
    EvalClient &operator=(const EvalClient &) = delete;

    const std::string &socketPath() const { return socketPath_; }

    /**
     * Evaluate one point on the server (round trip). Throws
     * std::runtime_error carrying the server's message when the
     * server answers with an Error frame (e.g. unknown application),
     * or a transport message when the connection breaks.
     */
    sim::SimResult eval(const EvalPoint &pt);

    /**
     * Figure 15 through the server: same submission order and
     * assembly as EvalService::appPerformance, so the output is
     * byte-identical to the in-process sweep. Requests are pipelined.
     */
    std::vector<core::AppPoint>
    appPerformance(const std::vector<int> &c_values,
                   const std::vector<int> &n_values);

    /** The server's cumulative cache-tier counters
     *  (svc::cacheStatsRows of the daemon's service). */
    std::vector<std::vector<std::string>> stats();

    /**
     * A live metrics snapshot from the server (MetricsRequest round
     * trip). Throws the server's Error message when the daemon runs
     * without telemetry. Render locally with obs::renderPrometheus /
     * obs::renderJson, or assert on the numbers directly.
     */
    obs::MetricsSnapshot metrics();

    /** True once the connection is unusable (every call will throw). */
    bool dead() const;

  private:
    sim::SimResult readResult();
    /** Sever the socket and latch the dead state (idempotent). */
    void markDead(const std::string &reason);
    /** Throw if a previous failure killed the connection. */
    void ensureAlive() const;

    std::string socketPath_;
    int fd_ = -1;
    mutable std::mutex mu_; ///< one conversation at a time per client
    bool dead_ = false;     ///< guarded by mu_
    std::string deadReason_;
};

} // namespace sps::svc

#endif // !_WIN32

#endif // SPS_SVC_EVAL_CLIENT_H
