/**
 * @file
 * Client side of the evaluation-service socket protocol: connects to
 * an sps_evald (svc::EvalServer) Unix-domain socket and evaluates
 * design points remotely. A decoded result is bit-identical to what
 * the server computed (the payload is the store codec's SimResult
 * encoding), so a sweep driven through a client produces CSVs byte
 * for byte equal to the same sweep run in-process.
 *
 * appPerformance() pipelines the whole Figure-15 sweep: every request
 * is written before the first response is read (from a background
 * sender thread, so neither side's socket buffer can deadlock the
 * conversation), which lets the server evaluate the full grid
 * concurrently and dedup it against other clients mid-flight.
 */
#ifndef SPS_SVC_EVAL_CLIENT_H
#define SPS_SVC_EVAL_CLIENT_H

#ifndef _WIN32

#include <mutex>
#include <string>
#include <vector>

#include "svc/eval_service.h"

namespace sps::svc {

class EvalClient
{
  public:
    /** Connect to the server socket; throws std::runtime_error when
     *  the socket does not exist or refuses the connection. */
    explicit EvalClient(std::string socketPath);
    ~EvalClient();

    EvalClient(const EvalClient &) = delete;
    EvalClient &operator=(const EvalClient &) = delete;

    const std::string &socketPath() const { return socketPath_; }

    /**
     * Evaluate one point on the server (round trip). Throws
     * std::runtime_error carrying the server's message when the
     * server answers with an Error frame (e.g. unknown application),
     * or a transport message when the connection breaks.
     */
    sim::SimResult eval(const EvalPoint &pt);

    /**
     * Figure 15 through the server: same submission order and
     * assembly as EvalService::appPerformance, so the output is
     * byte-identical to the in-process sweep. Requests are pipelined.
     */
    std::vector<core::AppPoint>
    appPerformance(const std::vector<int> &c_values,
                   const std::vector<int> &n_values);

    /** The server's cumulative cache-tier counters
     *  (svc::cacheStatsRows of the daemon's service). */
    std::vector<std::vector<std::string>> stats();

  private:
    sim::SimResult readResult();

    std::string socketPath_;
    int fd_ = -1;
    std::mutex mu_; ///< one conversation at a time per client
};

} // namespace sps::svc

#endif // !_WIN32

#endif // SPS_SVC_EVAL_CLIENT_H
