#include "svc/protocol.h"

#include <array>
#include <mutex>
#include <unordered_set>

#ifndef _WIN32
#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace sps::svc {

namespace {

bool
knownKind(uint32_t kind)
{
    switch (static_cast<FrameKind>(kind)) {
    case FrameKind::EvalRequest:
    case FrameKind::EvalResult:
    case FrameKind::Error:
    case FrameKind::StatsRequest:
    case FrameKind::StatsReply:
    case FrameKind::MetricsRequest:
    case FrameKind::MetricsReply:
        return true;
    }
    return false;
}

/**
 * FNV-1a over the header prefix (magic through length, 24 bytes)
 * chained with the payload. Covering the header means a bit flip in
 * the *kind* field breaks the checksum too -- a damaged EvalResult
 * can never decode as a well-formed Error (or vice versa), which a
 * payload-only checksum would allow.
 */
uint64_t
frameChecksum(const uint8_t *prefix, const std::vector<uint8_t> &payload)
{
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const uint8_t *d, size_t n) {
        for (size_t i = 0; i < n; ++i) {
            h ^= d[i];
            h *= 1099511628211ull;
        }
    };
    mix(prefix, kFrameHeaderBytes - 8);
    mix(payload.data(), payload.size());
    return h;
}

void
putFrameHeader(FrameKind kind, const std::vector<uint8_t> &payload,
               store::ByteWriter *w)
{
    size_t base = w->bytes().size();
    w->u32(kProtocolMagic);
    w->u32(kProtocolVersion);
    w->u32(static_cast<uint32_t>(kind));
    w->u32(0); // reserved
    w->u64(payload.size());
    w->u64(frameChecksum(w->bytes().data() + base, payload));
}

/**
 * Validate the six header fields. On success fills kind/length/
 * checksum; the caller still verifies the checksum once the payload
 * is in hand.
 */
bool
parseFrameHeader(const uint8_t *header, FrameKind *kind,
                 uint64_t *length, uint64_t *checksum)
{
    store::ByteReader r(header, kFrameHeaderBytes);
    uint32_t magic = 0, version = 0, kind_raw = 0, reserved = 0;
    if (!r.u32(&magic) || !r.u32(&version) || !r.u32(&kind_raw) ||
        !r.u32(&reserved) || !r.u64(length) || !r.u64(checksum))
        return false;
    if (magic != kProtocolMagic || version != kProtocolVersion ||
        !knownKind(kind_raw) || *length > kMaxFramePayloadBytes)
        return false;
    *kind = static_cast<FrameKind>(kind_raw);
    return true;
}

/** The vlsi::Params fields, in wire order (part of the protocol
 *  version; mirrors svc::simConfigHash's coverage). */
constexpr std::array<double vlsi::Params::*, 32> kParamFields = {
    &vlsi::Params::aSram,        &vlsi::Params::aSb,
    &vlsi::Params::wAlu,         &vlsi::Params::wLrf,
    &vlsi::Params::wSp,          &vlsi::Params::h,
    &vlsi::Params::v0,           &vlsi::Params::tCyc,
    &vlsi::Params::tMux,         &vlsi::Params::eW,
    &vlsi::Params::eAlu,         &vlsi::Params::eSram,
    &vlsi::Params::eSb,          &vlsi::Params::eLrf,
    &vlsi::Params::eSp,          &vlsi::Params::tMem,
    &vlsi::Params::gSrf,         &vlsi::Params::gSb,
    &vlsi::Params::gComm,        &vlsi::Params::gSp,
    &vlsi::Params::i0,           &vlsi::Params::iN,
    &vlsi::Params::lC,           &vlsi::Params::lO,
    &vlsi::Params::lN,           &vlsi::Params::rM,
    &vlsi::Params::rUc,          &vlsi::Params::kCommArea,
    &vlsi::Params::kCommEnergy,  &vlsi::Params::kIntraEnergy,
    &vlsi::Params::kDistEnergy,  &vlsi::Params::xbarConnectivity,
};

/**
 * Technology::name is a `const char *`; a decoded name is interned
 * into process-lifetime storage (node-based set: c_str() pointers
 * stay valid across inserts) so the decoded struct can carry it.
 */
const char *
internTechName(const std::string &name)
{
    static std::mutex mu;
    static std::unordered_set<std::string> names;
    std::lock_guard<std::mutex> lock(mu);
    return names.insert(name).first->c_str();
}

} // namespace

void
encodeFrame(FrameKind kind, const std::vector<uint8_t> &payload,
            std::vector<uint8_t> *out)
{
    store::ByteWriter header;
    putFrameHeader(kind, payload, &header);
    out->insert(out->end(), header.bytes().begin(),
                header.bytes().end());
    out->insert(out->end(), payload.begin(), payload.end());
}

bool
decodeFrame(const std::vector<uint8_t> &bytes, Frame *out)
{
    if (bytes.size() < kFrameHeaderBytes)
        return false;
    FrameKind kind;
    uint64_t length = 0, checksum = 0;
    if (!parseFrameHeader(bytes.data(), &kind, &length, &checksum))
        return false;
    if (bytes.size() != kFrameHeaderBytes + length)
        return false; // truncated payload or trailing bytes
    std::vector<uint8_t> payload(bytes.begin() + kFrameHeaderBytes,
                                 bytes.end());
    if (checksum != frameChecksum(bytes.data(), payload))
        return false;
    out->kind = kind;
    out->payload = std::move(payload);
    return true;
}

void
encodeSimConfig(const sim::SimConfig &cfg, store::ByteWriter *w)
{
    w->i32(cfg.size.clusters);
    w->i32(cfg.size.alusPerCluster);
    for (auto field : kParamFields)
        w->f64(cfg.params.*field);
    w->i32(cfg.params.b);
    w->str(cfg.tech.name);
    w->f64(cfg.tech.trackPitchUm);
    w->f64(cfg.tech.fo4Ps);
    w->f64(cfg.tech.ewFj);
    w->f64(cfg.tech.clockFo4);
    w->f64(cfg.tech.memBwGBs);
    w->f64(cfg.tech.hostBwGBs);
    w->i32(cfg.memConfig.channels);
    w->f64(cfg.memConfig.peakWordsPerCycle);
    w->i32(cfg.memConfig.latencyCycles);
    w->i32(cfg.memConfig.timing.tRas);
    w->i32(cfg.memConfig.timing.tPre);
    w->i32(cfg.memConfig.timing.tCol);
    w->i32(cfg.memConfig.timing.banks);
    w->i32(cfg.memConfig.timing.rowWords);
    w->i32(cfg.memConfig.schedWindow);
    w->i32(cfg.memConfig.schedMaxBypass);
    w->i32(cfg.ucConfig.pipeFillCycles);
    w->i32(cfg.ucConfig.loadCyclesPerInstruction);
    w->i32(cfg.hostIssueCycles);
    w->i32(cfg.scoreboardDepth);
    w->f64(cfg.energyConfig.idleFraction);
    w->f64(cfg.energyConfig.dram.rowHitEnergyEw);
    w->f64(cfg.energyConfig.dram.rowMissEnergyEw);
    w->f64(cfg.energyConfig.dram.channelBusyEnergyEw);
}

bool
decodeSimConfig(store::ByteReader *r, sim::SimConfig *out)
{
    sim::SimConfig cfg;
    if (!r->i32(&cfg.size.clusters) ||
        !r->i32(&cfg.size.alusPerCluster))
        return false;
    for (auto field : kParamFields)
        if (!r->f64(&(cfg.params.*field)))
            return false;
    if (!r->i32(&cfg.params.b))
        return false;
    std::string name;
    if (!r->str(&name))
        return false;
    cfg.tech.name = internTechName(name);
    if (!r->f64(&cfg.tech.trackPitchUm) || !r->f64(&cfg.tech.fo4Ps) ||
        !r->f64(&cfg.tech.ewFj) || !r->f64(&cfg.tech.clockFo4) ||
        !r->f64(&cfg.tech.memBwGBs) || !r->f64(&cfg.tech.hostBwGBs))
        return false;
    if (!r->i32(&cfg.memConfig.channels) ||
        !r->f64(&cfg.memConfig.peakWordsPerCycle) ||
        !r->i32(&cfg.memConfig.latencyCycles) ||
        !r->i32(&cfg.memConfig.timing.tRas) ||
        !r->i32(&cfg.memConfig.timing.tPre) ||
        !r->i32(&cfg.memConfig.timing.tCol) ||
        !r->i32(&cfg.memConfig.timing.banks) ||
        !r->i32(&cfg.memConfig.timing.rowWords) ||
        !r->i32(&cfg.memConfig.schedWindow) ||
        !r->i32(&cfg.memConfig.schedMaxBypass))
        return false;
    if (!r->i32(&cfg.ucConfig.pipeFillCycles) ||
        !r->i32(&cfg.ucConfig.loadCyclesPerInstruction))
        return false;
    if (!r->i32(&cfg.hostIssueCycles) ||
        !r->i32(&cfg.scoreboardDepth))
        return false;
    if (!r->f64(&cfg.energyConfig.idleFraction) ||
        !r->f64(&cfg.energyConfig.dram.rowHitEnergyEw) ||
        !r->f64(&cfg.energyConfig.dram.rowMissEnergyEw) ||
        !r->f64(&cfg.energyConfig.dram.channelBusyEnergyEw))
        return false;
    *out = cfg;
    return true;
}

void
encodeEvalRequest(const EvalPoint &pt, store::ByteWriter *w)
{
    w->str(pt.app);
    w->i32(pt.size.clusters);
    w->i32(pt.size.alusPerCluster);
    w->u8(pt.config ? 1 : 0);
    if (pt.config)
        encodeSimConfig(*pt.config, w);
}

bool
decodeEvalRequest(const std::vector<uint8_t> &bytes, EvalPoint *out)
{
    store::ByteReader r(bytes);
    EvalPoint pt;
    uint8_t has_config = 0;
    if (!r.str(&pt.app) || !r.i32(&pt.size.clusters) ||
        !r.i32(&pt.size.alusPerCluster) || !r.u8(&has_config))
        return false;
    if (has_config > 1)
        return false;
    if (has_config) {
        sim::SimConfig cfg;
        if (!decodeSimConfig(&r, &cfg))
            return false;
        pt.config = cfg;
    }
    if (!r.done())
        return false; // trailing bytes are as bad as missing ones
    *out = std::move(pt);
    return true;
}

void
encodeStatsRows(const std::vector<std::vector<std::string>> &rows,
                store::ByteWriter *w)
{
    w->u64(rows.size());
    for (const auto &row : rows) {
        w->u64(row.size());
        for (const auto &cell : row)
            w->str(cell);
    }
}

bool
decodeStatsRows(const std::vector<uint8_t> &bytes,
                std::vector<std::vector<std::string>> *out)
{
    store::ByteReader r(bytes);
    uint64_t n_rows = 0;
    if (!r.u64(&n_rows) || n_rows > bytes.size())
        return false;
    std::vector<std::vector<std::string>> rows;
    rows.reserve(static_cast<size_t>(n_rows));
    for (uint64_t i = 0; i < n_rows; ++i) {
        uint64_t n_cells = 0;
        if (!r.u64(&n_cells) || n_cells > bytes.size())
            return false;
        std::vector<std::string> row;
        row.reserve(static_cast<size_t>(n_cells));
        for (uint64_t j = 0; j < n_cells; ++j) {
            std::string cell;
            if (!r.str(&cell))
                return false;
            row.push_back(std::move(cell));
        }
        rows.push_back(std::move(row));
    }
    if (!r.done())
        return false;
    *out = std::move(rows);
    return true;
}

void
encodeErrorString(const std::string &message, store::ByteWriter *w)
{
    w->str(message);
}

bool
decodeErrorString(const std::vector<uint8_t> &bytes, std::string *out)
{
    store::ByteReader r(bytes);
    return r.str(out) && r.done();
}

void
encodeMetricsSnapshot(const obs::MetricsSnapshot &snap,
                      store::ByteWriter *w)
{
    w->u64(snap.metrics.size());
    for (const auto &m : snap.metrics) {
        w->str(m.name);
        w->str(m.labels);
        w->str(m.help);
        w->u32(static_cast<uint32_t>(m.kind));
        if (m.kind == obs::MetricKind::Histogram) {
            w->u64(m.buckets.size());
            for (uint64_t b : m.buckets)
                w->u64(b);
            w->u64(m.count);
            w->u64(m.sum);
        } else {
            w->i64(m.value);
        }
    }
}

bool
decodeMetricsSnapshot(const std::vector<uint8_t> &bytes,
                      obs::MetricsSnapshot *out)
{
    store::ByteReader r(bytes);
    uint64_t n = 0;
    if (!r.u64(&n) || n > bytes.size())
        return false;
    obs::MetricsSnapshot snap;
    snap.metrics.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
        obs::MetricSample m;
        uint32_t kind = 0;
        if (!r.str(&m.name) || !r.str(&m.labels) || !r.str(&m.help) ||
            !r.u32(&kind))
            return false;
        switch (static_cast<obs::MetricKind>(kind)) {
        case obs::MetricKind::Counter:
        case obs::MetricKind::Gauge:
            m.kind = static_cast<obs::MetricKind>(kind);
            if (!r.i64(&m.value))
                return false;
            break;
        case obs::MetricKind::Histogram: {
            m.kind = obs::MetricKind::Histogram;
            uint64_t n_buckets = 0;
            if (!r.u64(&n_buckets) || n_buckets > bytes.size())
                return false;
            m.buckets.resize(static_cast<size_t>(n_buckets));
            for (auto &b : m.buckets)
                if (!r.u64(&b))
                    return false;
            if (!r.u64(&m.count) || !r.u64(&m.sum))
                return false;
            break;
        }
        default:
            return false; // unknown metric kind
        }
        snap.metrics.push_back(std::move(m));
    }
    if (!r.done())
        return false;
    out->metrics = std::move(snap.metrics);
    return true;
}

#ifndef _WIN32

namespace {

bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    while (n > 0) {
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not
        // kill the daemon with SIGPIPE.
        ssize_t k = ::send(fd, data, n, MSG_NOSIGNAL);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += k;
        n -= static_cast<size_t>(k);
    }
    return true;
}

/** Read exactly n bytes; returns bytes read (short only at EOF/error). */
size_t
readAll(int fd, uint8_t *data, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t k = ::read(fd, data + got, n - got);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (k == 0)
            break;
        got += static_cast<size_t>(k);
    }
    return got;
}

} // namespace

bool
writeFrame(int fd, FrameKind kind, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    encodeFrame(kind, payload, &frame);
    return writeAll(fd, frame.data(), frame.size());
}

ReadStatus
readFrame(int fd, Frame *out)
{
    uint8_t header[kFrameHeaderBytes];
    size_t got = readAll(fd, header, sizeof header);
    if (got == 0)
        return ReadStatus::Eof;
    if (got != sizeof header)
        return ReadStatus::Malformed;
    FrameKind kind;
    uint64_t length = 0, checksum = 0;
    if (!parseFrameHeader(header, &kind, &length, &checksum))
        return ReadStatus::Malformed;
    std::vector<uint8_t> payload(static_cast<size_t>(length));
    if (readAll(fd, payload.data(), payload.size()) != payload.size())
        return ReadStatus::Malformed;
    if (checksum != frameChecksum(header, payload))
        return ReadStatus::Malformed;
    out->kind = kind;
    out->payload = std::move(payload);
    return ReadStatus::Ok;
}

#endif // !_WIN32

} // namespace sps::svc
