#ifndef _WIN32

#include "svc/eval_client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "svc/protocol.h"

namespace sps::svc {

namespace {

std::vector<uint8_t>
requestPayload(const EvalPoint &pt)
{
    store::ByteWriter w;
    encodeEvalRequest(pt, &w);
    return w.bytes();
}

} // namespace

EvalClient::EvalClient(std::string socketPath)
    : socketPath_(std::move(socketPath))
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof addr.sun_path)
        throw std::runtime_error("EvalClient: socket path too long: " +
                                 socketPath_);
    std::memcpy(addr.sun_path, socketPath_.c_str(),
                socketPath_.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error("EvalClient: socket() failed");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("EvalClient: cannot connect to " +
                                 socketPath_);
    }
}

EvalClient::~EvalClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
EvalClient::markDead(const std::string &reason)
{
    // Latch first, then sever: once dead_ is set no later call will
    // touch the socket, and the shutdown unblocks anything (e.g. a
    // pipelined sender) still inside a syscall on it.
    if (dead_)
        return;
    dead_ = true;
    deadReason_ = reason;
    ::shutdown(fd_, SHUT_RDWR);
}

void
EvalClient::ensureAlive() const
{
    if (dead_)
        throw std::runtime_error("EvalClient: connection to " +
                                 socketPath_ +
                                 " is dead: " + deadReason_);
}

bool
EvalClient::dead() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dead_;
}

sim::SimResult
EvalClient::readResult()
{
    Frame frame;
    if (readFrame(fd_, &frame) != ReadStatus::Ok) {
        markDead("connection lost or malformed frame");
        throw std::runtime_error(
            "EvalClient: connection lost or malformed frame from " +
            socketPath_);
    }
    if (frame.kind == FrameKind::Error) {
        // A clean Error frame consumed exactly one response for
        // exactly one request: the conversation is still in lockstep,
        // so the connection stays alive (a pipelined caller that
        // cannot make that claim marks it dead itself).
        std::string message;
        if (!decodeErrorString(frame.payload, &message))
            message = "unreadable server error";
        throw std::runtime_error("EvalClient: server error: " +
                                 message);
    }
    if (frame.kind != FrameKind::EvalResult) {
        markDead("unexpected response frame kind");
        throw std::runtime_error(
            "EvalClient: unexpected response frame kind");
    }
    sim::SimResult res;
    if (!store::decodeSimResult(frame.payload, &res)) {
        markDead("undecodable result payload");
        throw std::runtime_error(
            "EvalClient: undecodable result payload");
    }
    return res;
}

sim::SimResult
EvalClient::eval(const EvalPoint &pt)
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureAlive();
    if (!writeFrame(fd_, FrameKind::EvalRequest, requestPayload(pt))) {
        markDead("write failed");
        throw std::runtime_error("EvalClient: cannot write to " +
                                 socketPath_);
    }
    return readResult();
}

std::vector<core::AppPoint>
EvalClient::appPerformance(const std::vector<int> &c_values,
                           const std::vector<int> &n_values)
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureAlive();
    AppSweepPlan plan = appSweepPlan(c_values, n_values);

    // Pipeline: a sender thread writes every request while this
    // thread reads responses, so a sweep larger than the socket
    // buffers cannot deadlock on mutual backpressure. Responses come
    // back in request order (the server guarantees it).
    std::thread sender([&] {
        for (const auto &pt : plan.baselines)
            if (!writeFrame(fd_, FrameKind::EvalRequest,
                            requestPayload(pt)))
                return;
        for (const auto &pt : plan.grid)
            if (!writeFrame(fd_, FrameKind::EvalRequest,
                            requestPayload(pt)))
                return;
    });

    std::vector<sim::SimResult> base;
    std::vector<sim::SimResult> grid;
    try {
        base.reserve(plan.baselines.size());
        for (size_t i = 0; i < plan.baselines.size(); ++i)
            base.push_back(readResult());
        grid.reserve(plan.grid.size());
        for (size_t i = 0; i < plan.grid.size(); ++i)
            grid.push_back(readResult());
    } catch (...) {
        // *Any* abort mid-pipeline kills the connection -- even a
        // clean server Error frame. Requests already written may
        // still have responses in flight, and a later call would
        // silently consume one of those stale frames as its own
        // answer. markDead also unblocks the sender's writes.
        markDead("pipelined sweep aborted");
        sender.join();
        throw;
    }
    sender.join();
    return assembleAppPoints(plan, base, std::move(grid));
}

std::vector<std::vector<std::string>>
EvalClient::stats()
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureAlive();
    if (!writeFrame(fd_, FrameKind::StatsRequest, {})) {
        markDead("write failed");
        throw std::runtime_error("EvalClient: cannot write to " +
                                 socketPath_);
    }
    Frame frame;
    if (readFrame(fd_, &frame) != ReadStatus::Ok) {
        markDead("connection lost reading stats");
        throw std::runtime_error(
            "EvalClient: connection lost reading stats");
    }
    if (frame.kind == FrameKind::Error) {
        std::string message;
        decodeErrorString(frame.payload, &message);
        throw std::runtime_error("EvalClient: server error: " +
                                 message);
    }
    std::vector<std::vector<std::string>> rows;
    if (frame.kind != FrameKind::StatsReply ||
        !decodeStatsRows(frame.payload, &rows)) {
        markDead("undecodable stats payload");
        throw std::runtime_error(
            "EvalClient: undecodable stats payload");
    }
    return rows;
}

obs::MetricsSnapshot
EvalClient::metrics()
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureAlive();
    if (!writeFrame(fd_, FrameKind::MetricsRequest, {})) {
        markDead("write failed");
        throw std::runtime_error("EvalClient: cannot write to " +
                                 socketPath_);
    }
    Frame frame;
    if (readFrame(fd_, &frame) != ReadStatus::Ok) {
        markDead("connection lost reading metrics");
        throw std::runtime_error(
            "EvalClient: connection lost reading metrics");
    }
    if (frame.kind == FrameKind::Error) {
        std::string message;
        decodeErrorString(frame.payload, &message);
        throw std::runtime_error("EvalClient: server error: " +
                                 message);
    }
    obs::MetricsSnapshot snap;
    if (frame.kind != FrameKind::MetricsReply ||
        !decodeMetricsSnapshot(frame.payload, &snap)) {
        markDead("undecodable metrics payload");
        throw std::runtime_error(
            "EvalClient: undecodable metrics payload");
    }
    return snap;
}

} // namespace sps::svc

#endif // !_WIN32
