/**
 * @file
 * The evaluation service's wire protocol: length-prefixed, versioned
 * binary frames over a stream socket, reusing the store codec
 * primitives (store::ByteWriter / store::ByteReader) so the same
 * discipline that protects disk entries protects the wire -- every
 * frame carries a magic, the protocol version, its kind, the payload
 * length, and an FNV-1a checksum over header and payload both, and a
 * truncated, bit-flipped,
 * mis-kinded, or version-mismatched frame is rejected outright, never
 * decoded into a wrong result.
 *
 * Conversation shape (client-initiated, ordered per connection):
 *   EvalRequest    -> EvalResult | Error
 *   StatsRequest   -> StatsReply | Error
 *   MetricsRequest -> MetricsReply | Error
 * Responses come back in request order, so a client may pipeline any
 * number of requests before reading the first response; the server
 * evaluates pipelined requests concurrently through the shared
 * svc::EvalService (cross-client dedup included) and only *delivery*
 * is ordered.
 *
 * An EvalRequest carries an EvalPoint -- app name, machine size, and
 * an optional explicit sim::SimConfig override (every field, doubles
 * as raw IEEE-754 bit patterns) -- so a remote client can sweep
 * non-default configurations and the server keys them exactly like
 * local submissions. An EvalResult payload is the store codec's
 * encoded sim::SimResult, bit-identical to what the server computed,
 * which is what keeps client-side CSVs byte-identical to in-process
 * runs.
 */
#ifndef SPS_SVC_PROTOCOL_H
#define SPS_SVC_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/codec.h"
#include "svc/eval_service.h"

namespace sps::svc {

/** "SPSP" little-endian: distinct from the store entry magic. */
inline constexpr uint32_t kProtocolMagic = 0x50535053;

/**
 * Version of the frame format *and* of every payload codec below.
 * History:
 *  1 = initial format (EvalRequest with optional SimConfig override,
 *      EvalResult as store-codec SimResult, Error, stats rows).
 *  2 = adds MetricsRequest/MetricsReply (encoded obs::MetricsSnapshot).
 *      Bumped because an unknown frame kind is Malformed -- a v2
 *      client's MetricsRequest would otherwise kill its connection to
 *      a v1 server mid-conversation instead of failing the version
 *      check up front.
 */
inline constexpr uint32_t kProtocolVersion = 2;

/** Frame header size: magic, version, kind, reserved, payload
 *  length (u64), checksum (u64) -- the same 32-byte shape as a store
 *  entry header. The checksum is FNV-1a over the preceding 24 header
 *  bytes chained with the payload, so a bit flip anywhere in the
 *  frame (the kind field included) is caught. */
inline constexpr size_t kFrameHeaderBytes = 32;

/** Upper bound on a payload a peer may announce; a length beyond it
 *  is malformed (protects the reader from allocating garbage). */
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t(1) << 30;

enum class FrameKind : uint32_t {
    EvalRequest = 1,    ///< payload: encodeEvalRequest
    EvalResult = 2,     ///< payload: store::encodeSimResult
    Error = 3,          ///< payload: one string (the error message)
    StatsRequest = 4,   ///< payload: empty
    StatsReply = 5,     ///< payload: encodeStatsRows
    MetricsRequest = 6, ///< payload: empty
    MetricsReply = 7,   ///< payload: encodeMetricsSnapshot
};

/** One decoded frame. */
struct Frame
{
    FrameKind kind = FrameKind::Error;
    std::vector<uint8_t> payload;
};

// --- Byte-level frame codec (what the property tests exercise). ---

/** Append one complete frame (header + payload) to `out`. */
void encodeFrame(FrameKind kind, const std::vector<uint8_t> &payload,
                 std::vector<uint8_t> *out);

/**
 * Decode exactly one frame from `bytes`. False on truncation (any
 * prefix), trailing bytes, bad magic/version/kind, a length field
 * that disagrees with the buffer, or a checksum mismatch.
 */
bool decodeFrame(const std::vector<uint8_t> &bytes, Frame *out);

// --- Payload codecs (field order is part of kProtocolVersion). ---

/** Every sim::SimConfig field, doubles as raw bit patterns, so
 *  simConfigHash(decoded) == simConfigHash(original) exactly. */
void encodeSimConfig(const sim::SimConfig &cfg, store::ByteWriter *w);
bool decodeSimConfig(store::ByteReader *r, sim::SimConfig *out);

void encodeEvalRequest(const EvalPoint &pt, store::ByteWriter *w);
/** False on truncation, trailing bytes, or malformed fields. */
bool decodeEvalRequest(const std::vector<uint8_t> &bytes,
                       EvalPoint *out);

/** The (tier, counter, value) triples of svc::cacheStatsRows. */
void encodeStatsRows(const std::vector<std::vector<std::string>> &rows,
                     store::ByteWriter *w);
bool decodeStatsRows(const std::vector<uint8_t> &bytes,
                     std::vector<std::vector<std::string>> *out);

void encodeErrorString(const std::string &message,
                       store::ByteWriter *w);
bool decodeErrorString(const std::vector<uint8_t> &bytes,
                       std::string *out);

/**
 * A full obs::MetricsSnapshot -- every sample with its name, labels,
 * help, kind, and (for histograms) the raw per-bucket counts plus
 * count/sum. The *structured* snapshot crosses the wire, not rendered
 * text: the client renders Prometheus/JSON locally with the same
 * obs::render* functions the daemon uses for --metrics-out, and tests
 * assert on the numbers directly.
 */
void encodeMetricsSnapshot(const obs::MetricsSnapshot &snap,
                           store::ByteWriter *w);
bool decodeMetricsSnapshot(const std::vector<uint8_t> &bytes,
                           obs::MetricsSnapshot *out);

#ifndef _WIN32

// --- Socket I/O (POSIX). ---

/** Result of one blocking frame read. */
enum class ReadStatus {
    Ok,        ///< a verified frame was read into *out
    Eof,       ///< clean end of stream at a frame boundary
    Malformed, ///< truncation mid-frame, garbage, or I/O error
};

/** Write one frame; retries partial writes/EINTR. False on error
 *  (the peer vanished); never raises SIGPIPE. */
bool writeFrame(int fd, FrameKind kind,
                const std::vector<uint8_t> &payload);

/** Read and verify one frame; blocks until a full frame or EOF. */
ReadStatus readFrame(int fd, Frame *out);

#endif // !_WIN32

} // namespace sps::svc

#endif // SPS_SVC_PROTOCOL_H
