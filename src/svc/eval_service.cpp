#include "svc/eval_service.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/fnv.h"
#include "stream/program.h"
#include "workloads/suite.h"

namespace sps::svc {

namespace {

void
mixDouble(Fnv &f, double v)
{
    uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    f.mix(bits);
}

void
mixParams(Fnv &f, const vlsi::Params &p)
{
    for (double v :
         {p.aSram, p.aSb, p.wAlu, p.wLrf, p.wSp, p.h, p.v0, p.tCyc,
          p.tMux, p.eW, p.eAlu, p.eSram, p.eSb, p.eLrf, p.eSp, p.tMem,
          p.gSrf, p.gSb, p.gComm, p.gSp, p.i0, p.iN, p.lC, p.lO, p.lN,
          p.rM, p.rUc, p.kCommArea, p.kCommEnergy, p.kIntraEnergy,
          p.kDistEnergy, p.xbarConnectivity})
        mixDouble(f, v);
    f.mix(static_cast<uint64_t>(p.b));
}

void
mixTech(Fnv &f, const vlsi::Technology &t)
{
    f.mix(std::string(t.name));
    for (double v : {t.trackPitchUm, t.fo4Ps, t.ewFj, t.clockFo4,
                     t.memBwGBs, t.hostBwGBs})
        mixDouble(f, v);
}

void
mixMemConfig(Fnv &f, const mem::StreamMemConfig &m)
{
    f.mix(static_cast<uint64_t>(m.channels));
    mixDouble(f, m.peakWordsPerCycle);
    f.mix(static_cast<uint64_t>(m.latencyCycles));
    f.mix(static_cast<uint64_t>(m.timing.tRas));
    f.mix(static_cast<uint64_t>(m.timing.tPre));
    f.mix(static_cast<uint64_t>(m.timing.tCol));
    f.mix(static_cast<uint64_t>(m.timing.banks));
    f.mix(static_cast<uint64_t>(m.timing.rowWords));
    f.mix(static_cast<uint64_t>(m.schedWindow));
    f.mix(static_cast<uint64_t>(m.schedMaxBypass));
}

void
mixEnergyConfig(Fnv &f, const energy::AccountantConfig &e)
{
    mixDouble(f, e.idleFraction);
    mixDouble(f, e.dram.rowHitEnergyEw);
    mixDouble(f, e.dram.rowMissEnergyEw);
    mixDouble(f, e.dram.channelBusyEnergyEw);
}

} // namespace

uint64_t
simConfigHash(const sim::SimConfig &cfg)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(cfg.size.clusters));
    f.mix(static_cast<uint64_t>(cfg.size.alusPerCluster));
    mixParams(f, cfg.params);
    mixTech(f, cfg.tech);
    mixMemConfig(f, cfg.memConfig);
    f.mix(static_cast<uint64_t>(cfg.ucConfig.pipeFillCycles));
    f.mix(static_cast<uint64_t>(cfg.ucConfig.loadCyclesPerInstruction));
    f.mix(static_cast<uint64_t>(cfg.hostIssueCycles));
    f.mix(static_cast<uint64_t>(cfg.scoreboardDepth));
    mixEnergyConfig(f, cfg.energyConfig);
    return f.h;
}

EvalService::EvalService(core::EvalEngine *engine,
                         store::ResultStore *store)
    : engine_(&core::resolveEngine(engine)), store_(store),
      dispatcher_([this] { dispatchLoop(); })
{
}

EvalService::~EvalService()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    dispatcher_.join();
}

sim::SimConfig
effectiveSimConfig(const EvalPoint &pt)
{
    sim::SimConfig cfg = pt.config ? *pt.config : sim::SimConfig{};
    // The point's size always wins: a request is "this app at this
    // machine size", and the override only reshapes the rest of the
    // configuration.
    cfg.size = pt.size;
    return cfg;
}

std::string
EvalService::requestKey(const EvalPoint &pt) const
{
    // The request key dedups *requests*; the content-addressed store
    // key (program x machine x config) is derived in the worker once
    // the program is built. Both must separate the same points: two
    // requests differing only in configuration never share a key
    // because both hash the *effective* configuration -- the same
    // sim::SimConfig the worker instantiates the processor from, so
    // the request key cannot diverge from the store key.
    return pt.app + "|" + std::to_string(pt.size.clusters) + "|" +
           std::to_string(pt.size.alusPerCluster) + "|" +
           std::to_string(simConfigHash(effectiveSimConfig(pt)));
}

std::shared_future<sim::SimResult>
EvalService::submit(const EvalPoint &pt)
{
    return submit(pt, nullptr);
}

std::shared_future<sim::SimResult>
EvalService::submit(const EvalPoint &pt,
                    std::shared_ptr<obs::RequestSpan> span)
{
    Metrics *m = metrics_.load(std::memory_order_acquire);
    uint64_t t0 = m ? obs::monotonicMicros() : 0;
    if (m)
        m->requests->inc();
    std::string key = requestKey(pt);
    std::shared_future<sim::SimResult> future;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = results_.find(key);
        if (it != results_.end()) {
            bool ready = it->second.wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready;
            (ready ? memHits_ : inflightDedup_)
                .fetch_add(1, std::memory_order_relaxed);
            // Both flavors count as the memory tier: the request was
            // served without touching disk or the engine (a dedup'd
            // in-flight twin rides the winner's work).
            constexpr int kMem = static_cast<int>(obs::Tier::Mem);
            if (span)
                span->setTier(obs::Tier::Mem);
            if (m) {
                m->tier[kMem]->inc();
                m->durationTier[kMem]->observe(obs::monotonicMicros() -
                                               t0);
            }
            return it->second;
        }
        Job job;
        job.pt = pt;
        job.span = std::move(span);
        job.enqueueUs = obs::monotonicMicros();
        future = job.promise.get_future().share();
        results_.emplace(std::move(key), future);
        pending_.push_back(std::move(job));
        submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    wake_.notify_one();
    return future;
}

sim::SimResult
EvalService::eval(const EvalPoint &pt)
{
    return submit(pt).get();
}

void
EvalService::dispatchLoop()
{
    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock,
                       [&] { return stop_ || !pending_.empty(); });
            if (pending_.empty() && stop_)
                return;
            // Everything submitted since the last batch dispatches as
            // one engine job set: points evaluate concurrently on the
            // pool while later submissions accumulate for the next
            // batch.
            batch.reserve(pending_.size());
            while (!pending_.empty()) {
                batch.push_back(std::move(pending_.front()));
                pending_.pop_front();
            }
        }
        try {
            engine_->forEach(batch.size(),
                             [&](size_t i) { runJob(batch[i]); });
        } catch (...) {
            // Per-job failures already reached their promises (and
            // jobs whose promise died unfulfilled deliver
            // broken_promise); keep the dispatcher alive.
        }
    }
}

void
EvalService::runJob(Job &job)
{
    Metrics *m = metrics_.load(std::memory_order_acquire);
    obs::RequestSpan *span = job.span.get();
    uint64_t start = obs::monotonicMicros();
    if (span)
        span->stage("queue", job.enqueueUs, start);
    if (m)
        m->queueWait->observe(start - job.enqueueUs);
    obs::Tier tier = obs::Tier::Error;
    sim::SimResult res;
    std::exception_ptr err;
    try {
        const workloads::AppEntry *entry = nullptr;
        auto apps = workloads::appSuite();
        for (const auto &app : apps)
            if (app.name == job.pt.app)
                entry = &app;
        if (!entry)
            // Delivered through the requester's future, not fatal():
            // a bad request must not take the whole service down.
            throw std::runtime_error(
                "EvalService: unknown application " + job.pt.app);

        // The processor is built from the same effective config the
        // request key hashed; StreamProcessor carries it verbatim, so
        // simConfigHash(proc.config()) below keys the store entry
        // under exactly the configuration that was simulated.
        uint64_t tBuild = obs::monotonicMicros();
        sim::StreamProcessor proc(effectiveSimConfig(job.pt));
        stream::StreamProgram prog =
            entry->build(job.pt.size, proc.srf());
        if (span)
            span->stage("build", tBuild, obs::monotonicMicros());

        store::Key key{store::Kind::SimResult,
                       stream::programFingerprint(prog),
                       sched::machineConfigHash(proc.machine()),
                       simConfigHash(proc.config())};
        bool from_disk = false;
        if (store_) {
            obs::StageTimer t(span, "store_get");
            from_disk = store_->loadSimResult(key, &res);
        }
        if (from_disk) {
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            tier = obs::Tier::Disk;
        } else {
            uint64_t tSim = obs::monotonicMicros();
            res = proc.run(prog);
            uint64_t tSimEnd = obs::monotonicMicros();
            if (span)
                span->stage("sim", tSim, tSimEnd);
            if (m)
                m->simDuration->observe(tSimEnd - tSim);
            computed_.fetch_add(1, std::memory_order_relaxed);
            tier = obs::Tier::Compute;
            if (store_) {
                obs::StageTimer t(span, "store_put");
                store_->storeSimResult(key, res);
            }
        }
    } catch (...) {
        err = std::current_exception();
        tier = obs::Tier::Error;
    }
    // One tier outcome per job, success or not: the conservation
    // invariant (requests == mem + disk + compute + error) counts
    // exceptional resolutions too. Recorded *before* the promise
    // resolves: the waiter's get() is the caller's quiescence point,
    // so a snapshot taken after eval() returns must already include
    // this request's outcome.
    if (span)
        span->setTier(tier);
    if (m) {
        int ti = static_cast<int>(tier);
        m->tier[ti]->inc();
        m->durationTier[ti]->observe(obs::monotonicMicros() -
                                     job.enqueueUs);
    }
    if (err)
        job.promise.set_exception(std::move(err));
    else
        job.promise.set_value(std::move(res));
}

AppSweepPlan
appSweepPlan(const std::vector<int> &c_values,
             const std::vector<int> &n_values)
{
    AppSweepPlan plan;
    auto apps = workloads::appSuite();
    plan.baselines.reserve(apps.size());
    for (const auto &app : apps)
        plan.baselines.push_back(
            EvalPoint{app.name, core::kBaseline, {}});
    plan.grid.reserve(apps.size() * n_values.size() * c_values.size());
    for (const auto &app : apps)
        for (int n : n_values)
            for (int c : c_values)
                plan.grid.push_back(
                    EvalPoint{app.name, vlsi::MachineSize{c, n}, {}});
    return plan;
}

std::vector<core::AppPoint>
assembleAppPoints(const AppSweepPlan &plan,
                  const std::vector<sim::SimResult> &base_by_app,
                  std::vector<sim::SimResult> grid_results)
{
    std::vector<core::AppPoint> out;
    out.reserve(grid_results.size());
    const size_t per_app = plan.baselines.empty()
                               ? 1
                               : plan.grid.size() /
                                     plan.baselines.size();
    for (size_t i = 0; i < grid_results.size(); ++i) {
        const sim::SimResult &base = base_by_app[i / per_app];
        sim::SimResult res = std::move(grid_results[i]);
        core::AppPoint pt;
        pt.app = plan.grid[i].app;
        pt.size = plan.grid[i].size;
        pt.cycles = res.cycles;
        pt.speedup = static_cast<double>(base.cycles) /
                     static_cast<double>(res.cycles);
        core::StreamProcessorDesign d(pt.size);
        pt.gops = res.gops(d.tech().clockGHz());
        pt.result = std::move(res);
        out.push_back(std::move(pt));
    }
    return out;
}

std::vector<core::AppPoint>
EvalService::appPerformance(const std::vector<int> &c_values,
                            const std::vector<int> &n_values)
{
    // Submit the whole sweep -- baselines first, then the grid in the
    // canonical app -> n -> c axis order -- and only then collect, so
    // the service batches everything into one engine dispatch and the
    // baseline dedups against its grid twin.
    AppSweepPlan plan = appSweepPlan(c_values, n_values);
    std::vector<std::shared_future<sim::SimResult>> base_futures;
    base_futures.reserve(plan.baselines.size());
    for (const auto &pt : plan.baselines)
        base_futures.push_back(submit(pt));
    std::vector<std::shared_future<sim::SimResult>> grid_futures;
    grid_futures.reserve(plan.grid.size());
    for (const auto &pt : plan.grid)
        grid_futures.push_back(submit(pt));

    std::vector<sim::SimResult> base;
    base.reserve(base_futures.size());
    for (auto &f : base_futures)
        base.push_back(f.get());
    std::vector<sim::SimResult> grid;
    grid.reserve(grid_futures.size());
    for (auto &f : grid_futures)
        grid.push_back(f.get());
    return assembleAppPoints(plan, base, std::move(grid));
}

void
EvalService::clearMemory()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Only completed entries may go: an in-flight future must stay
    // mapped so later identical submissions keep deduplicating onto
    // it instead of double-computing.
    for (auto it = results_.begin(); it != results_.end();) {
        if (it->second.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready)
            it = results_.erase(it);
        else
            ++it;
    }
}

void
EvalService::attachMetrics(obs::MetricsRegistry *registry)
{
    if (!registry) {
        metrics_.store(nullptr, std::memory_order_release);
        return;
    }
    auto m = std::make_unique<Metrics>();
    const char *durationHelp =
        "Submit-to-resolution request latency (us)";
    const char *tierHelp =
        "Requests resolved per tier (mem / disk / compute / error)";
    for (obs::Tier t : {obs::Tier::Mem, obs::Tier::Disk,
                        obs::Tier::Compute, obs::Tier::Error}) {
        int i = static_cast<int>(t);
        std::string label =
            std::string("tier=\"") + obs::tierName(t) + "\"";
        m->tier[i] = registry->counter("sps_requests_tier_total",
                                       label, tierHelp);
        m->durationTier[i] = registry->histogram(
            "sps_request_duration_us", label, durationHelp);
    }
    // Registered (and therefore snapshot-read) *after* the tier
    // counters: a request increments requests_total first and its
    // tier outcome later, so reading outcomes before the total keeps
    // sum(tiers) <= requests_total in every concurrent snapshot.
    m->requests = registry->counter(
        "sps_requests_total", "",
        "Evaluation requests submitted to the service");
    m->queueWait = registry->histogram(
        "sps_queue_wait_us", "",
        "Submit-to-dispatch queue wait (us)");
    m->simDuration = registry->histogram(
        "sps_sim_duration_us", "",
        "Simulation wall time of computed requests (us)");
    registry->addCollector([this, registry] {
        ServiceCounters c = counters();
        auto pub = [&](const char *name, uint64_t v,
                       const char *help = "") {
            registry->gauge(name, "", help)
                ->set(static_cast<int64_t>(v));
        };
        pub("sps_service_submitted", c.submitted,
            "Distinct requests queued (post-dedup)");
        pub("sps_service_mem_hits", c.memHits);
        pub("sps_service_inflight_dedup", c.inflightDedup);
        pub("sps_service_disk_hits", c.diskHits);
        pub("sps_service_sims", c.computed);
    });
    metricsStorage_ = std::move(m);
    metrics_.store(metricsStorage_.get(), std::memory_order_release);
}

ServiceCounters
EvalService::counters() const
{
    ServiceCounters c;
    c.submitted = submitted_.load(std::memory_order_relaxed);
    c.memHits = memHits_.load(std::memory_order_relaxed);
    c.inflightDedup = inflightDedup_.load(std::memory_order_relaxed);
    c.diskHits = diskHits_.load(std::memory_order_relaxed);
    c.computed = computed_.load(std::memory_order_relaxed);
    return c;
}

std::vector<std::vector<std::string>>
cacheStatsRows(const sched::ScheduleCache::Counters &sched,
               const store::ResultStore *store,
               const EvalService *service)
{
    auto n = [](uint64_t v) { return std::to_string(v); };
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"schedule_cache", "mem_hits", n(sched.hits)});
    rows.push_back({"schedule_cache", "disk_hits", n(sched.diskHits)});
    rows.push_back({"schedule_cache", "compiles", n(sched.misses)});
    if (store) {
        store::StoreCounters sc = store->counters();
        rows.push_back({"result_store", "hits", n(sc.hits)});
        rows.push_back({"result_store", "misses", n(sc.misses)});
        rows.push_back({"result_store", "corrupt", n(sc.corrupt)});
        rows.push_back({"result_store", "writes", n(sc.writes)});
        rows.push_back(
            {"result_store", "write_errors", n(sc.writeErrors)});
        rows.push_back({"result_store", "evicted", n(sc.evicted)});
        rows.push_back({"result_store", "reclaimed_bytes",
                        n(sc.reclaimedBytes)});
    }
    if (service) {
        ServiceCounters vc = service->counters();
        rows.push_back({"eval_service", "submitted", n(vc.submitted)});
        rows.push_back({"eval_service", "mem_hits", n(vc.memHits)});
        rows.push_back(
            {"eval_service", "inflight_dedup", n(vc.inflightDedup)});
        rows.push_back({"eval_service", "disk_hits", n(vc.diskHits)});
        rows.push_back({"eval_service", "sims", n(vc.computed)});
    }
    return rows;
}

void
appendCacheStatsRows(CsvWriter &w,
                     const sched::ScheduleCache::Counters &sched,
                     const store::ResultStore *store,
                     const EvalService *service)
{
    for (auto &r : cacheStatsRows(sched, store, service))
        w.row(r);
}

} // namespace sps::svc
