#include "workloads/kernels/kernels.h"

#include <array>

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

// A fixed, well-conditioned W panel (kernel scalar parameters).
const float kUpdateW[2 * kUpdateRank] = {
    0.50f, -0.25f, 0.125f, 0.75f,  -0.375f, 0.0625f, 0.875f, -0.5f,
    0.25f, 0.625f, -0.75f, 0.375f, 0.9375f, -0.125f, 0.3125f, 0.6875f,
};

Kernel
makeUpdate()
{
    KernelBuilder b("update", kernel::DataClass::Word32);
    int as = b.inStream("a", 2);
    int vs = b.inStream("v", kUpdateRank);
    int out = b.outStream("updated", 3);
    b.lengthDriver(as);
    b.scratchpad(kUpdateRank); // partial-dot accumulators

    ValueId a[2], v[kUpdateRank];
    for (int col = 0; col < 2; ++col)
        a[col] = b.sbRead(as, col);
    for (int j = 0; j < kUpdateRank; ++j)
        v[j] = b.sbRead(vs, j);

    // a'[col] = a[col] - sum_j v[j] * W[j][col]
    ValueId aprime[2];
    for (int col = 0; col < 2; ++col) {
        ValueId acc = kernel::kNoValue;
        for (int j = 0; j < kUpdateRank; ++j) {
            ValueId prod =
                b.fmul(v[j], b.constF(kUpdateW[j * 2 + col]));
            acc = (j == 0) ? prod : b.fadd(acc, prod);
        }
        aprime[col] = b.fsub(a[col], acc);
    }

    // Partial dot products for the next panel: acc[j] accumulates
    // v[j]*a'[0] in the scratchpad, pairwise-combined with the
    // neighbor cluster so the final reduction tree is half as deep.
    ValueId buddy = b.ixor(b.clusterId(), b.constI(1));
    ValueId acc0_new = kernel::kNoValue;
    for (int j = 0; j < kUpdateRank; ++j) {
        ValueId t = b.fmul(v[j], aprime[0]);
        ValueId e = b.comm(t, buddy);
        ValueId prev = b.spRead(b.constI(j));
        ValueId sum = b.fadd(prev, b.fadd(t, e));
        b.spWrite(b.constI(j), sum);
        if (j == 0)
            acc0_new = sum;
    }

    b.sbWrite(out, aprime[0], 0);
    b.sbWrite(out, aprime[1], 1);
    b.sbWrite(out, acc0_new, 2);
    return b.build();
}

std::vector<float>
refUpdate(int c, const std::vector<float> &a, const std::vector<float> &v)
{
    SPS_ASSERT(a.size() % 2 == 0 && v.size() % kUpdateRank == 0 &&
                   a.size() / 2 == v.size() / kUpdateRank,
               "refUpdate: bad input sizes");
    auto records = static_cast<int64_t>(a.size()) / 2;
    std::vector<float> out(static_cast<size_t>(records) * 3, 0.0f);

    std::vector<std::vector<float>> acc(
        static_cast<size_t>(c), std::vector<float>(kUpdateRank, 0.0f));

    auto a_at = [&](int64_t rec, int f) -> float {
        if (rec < 0 || rec >= records)
            return 0.0f;
        return a[static_cast<size_t>(rec * 2 + f)];
    };
    auto v_at = [&](int64_t rec, int j) -> float {
        if (rec < 0 || rec >= records)
            return 0.0f;
        return v[static_cast<size_t>(rec * kUpdateRank + j)];
    };

    int64_t iterations = (records + c - 1) / c;
    for (int64_t iter = 0; iter < iterations; ++iter) {
        std::vector<std::array<float, 2>> ap(static_cast<size_t>(c));
        for (int cl = 0; cl < c; ++cl) {
            int64_t rec = iter * c + cl;
            for (int col = 0; col < 2; ++col) {
                float s = 0.0f;
                for (int j = 0; j < kUpdateRank; ++j)
                    s += v_at(rec, j) * kUpdateW[j * 2 + col];
                ap[static_cast<size_t>(cl)][static_cast<size_t>(col)] =
                    a_at(rec, col) - s;
            }
        }
        // COMM exchange per j, lockstep with the interpreter.
        for (int j = 0; j < kUpdateRank; ++j) {
            std::vector<float> t(static_cast<size_t>(c));
            for (int cl = 0; cl < c; ++cl)
                t[static_cast<size_t>(cl)] =
                    v_at(iter * c + cl, j) *
                    ap[static_cast<size_t>(cl)][0];
            for (int cl = 0; cl < c; ++cl) {
                float e = t[static_cast<size_t>((cl ^ 1) % c)];
                acc[static_cast<size_t>(cl)][static_cast<size_t>(j)] +=
                    t[static_cast<size_t>(cl)] + e;
            }
        }
        for (int cl = 0; cl < c; ++cl) {
            int64_t rec = iter * c + cl;
            if (rec >= records)
                continue;
            out[static_cast<size_t>(rec) * 3 + 0] =
                ap[static_cast<size_t>(cl)][0];
            out[static_cast<size_t>(rec) * 3 + 1] =
                ap[static_cast<size_t>(cl)][1];
            out[static_cast<size_t>(rec) * 3 + 2] =
                acc[static_cast<size_t>(cl)][0];
        }
    }
    return out;
}

} // namespace sps::workloads
