#include "workloads/kernels/kernels.h"

#include <cmath>
#include <complex>

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

namespace {

/** Complex value as a pair of ValueIds. */
struct Cplx
{
    ValueId re, im;
};

Cplx
cmul(KernelBuilder &b, Cplx a, Cplx w)
{
    // (ar*wr - ai*wi, ar*wi + ai*wr): 4 multiplies, 2 adds.
    return Cplx{
        b.fsub(b.fmul(a.re, w.re), b.fmul(a.im, w.im)),
        b.fadd(b.fmul(a.re, w.im), b.fmul(a.im, w.re)),
    };
}

Cplx
cadd(KernelBuilder &b, Cplx a, Cplx c)
{
    return Cplx{b.fadd(a.re, c.re), b.fadd(a.im, c.im)};
}

Cplx
csub(KernelBuilder &b, Cplx a, Cplx c)
{
    return Cplx{b.fsub(a.re, c.re), b.fsub(a.im, c.im)};
}

/** Multiply by -i: (re, im) -> (im, -re). */
Cplx
cmulNegI(KernelBuilder &b, Cplx a)
{
    return Cplx{a.im, b.fneg(a.re)};
}

} // namespace

Kernel
makeFftStage()
{
    KernelBuilder b("fft", kernel::DataClass::Word32);
    int in = b.inStream("x", 8);
    int tw = b.inStream("tw", 6);
    int out = b.outStream("y", 8);
    b.lengthDriver(in);

    Cplx x[4], w[3];
    for (int i = 0; i < 4; ++i)
        x[i] = Cplx{b.sbRead(in, 2 * i), b.sbRead(in, 2 * i + 1)};
    for (int i = 0; i < 3; ++i)
        w[i] = Cplx{b.sbRead(tw, 2 * i), b.sbRead(tw, 2 * i + 1)};

    // Radix-4 DIT butterfly: twiddle the three non-trivial inputs,
    // then combine.
    Cplx t1 = cmul(b, x[1], w[0]);
    Cplx t2 = cmul(b, x[2], w[1]);
    Cplx t3 = cmul(b, x[3], w[2]);

    Cplx s0 = cadd(b, x[0], t2); // x0 + t2
    Cplx s1 = csub(b, x[0], t2); // x0 - t2
    Cplx s2 = cadd(b, t1, t3);   // t1 + t3
    Cplx s3 = cmulNegI(b, csub(b, t1, t3)); // -i (t1 - t3)

    Cplx y0 = cadd(b, s0, s2);
    Cplx y1 = cadd(b, s1, s3);
    Cplx y2 = csub(b, s0, s2);
    Cplx y3 = csub(b, s1, s3);

    const Cplx ys[4] = {y0, y1, y2, y3};
    for (int i = 0; i < 4; ++i) {
        b.sbWrite(out, ys[i].re, 2 * i);
        b.sbWrite(out, ys[i].im, 2 * i + 1);
    }
    return b.build();
}

std::vector<float>
refFftStage(const std::vector<float> &x, const std::vector<float> &tw)
{
    SPS_ASSERT(x.size() % 8 == 0, "refFftStage: bad input size");
    SPS_ASSERT(tw.size() * 8 == x.size() * 6,
               "refFftStage: bad twiddles");
    size_t n = x.size() / 8;
    std::vector<float> out(n * 8);
    for (size_t k = 0; k < n; ++k) {
        std::complex<float> x0(x[8 * k + 0], x[8 * k + 1]);
        std::complex<float> x1(x[8 * k + 2], x[8 * k + 3]);
        std::complex<float> x2(x[8 * k + 4], x[8 * k + 5]);
        std::complex<float> x3(x[8 * k + 6], x[8 * k + 7]);
        std::complex<float> w0(tw[6 * k + 0], tw[6 * k + 1]);
        std::complex<float> w1(tw[6 * k + 2], tw[6 * k + 3]);
        std::complex<float> w2(tw[6 * k + 4], tw[6 * k + 5]);
        auto t1 = x1 * w0, t2 = x2 * w1, t3 = x3 * w2;
        auto s0 = x0 + t2, s1 = x0 - t2;
        auto s2 = t1 + t3;
        auto d = t1 - t3;
        std::complex<float> s3(d.imag(), -d.real());
        std::complex<float> y[4] = {s0 + s2, s1 + s3, s0 - s2, s1 - s3};
        for (int i = 0; i < 4; ++i) {
            out[8 * k + 2 * static_cast<size_t>(i)] = y[i].real();
            out[8 * k + 2 * static_cast<size_t>(i) + 1] = y[i].imag();
        }
    }
    return out;
}

std::vector<float>
refFft(const std::vector<float> &data)
{
    // Direct DFT used as the gold model in tests (O(n^2), sizes are
    // small in tests). Interleaved re,im.
    SPS_ASSERT(data.size() % 2 == 0, "refFft: odd data size");
    size_t n = data.size() / 2;
    std::vector<float> out(data.size());
    for (size_t k = 0; k < n; ++k) {
        double re = 0.0, im = 0.0;
        for (size_t j = 0; j < n; ++j) {
            double ang = -2.0 * M_PI * static_cast<double>(k * j % n) /
                         static_cast<double>(n);
            double c = std::cos(ang), s = std::sin(ang);
            double xr = data[2 * j], xi = data[2 * j + 1];
            re += xr * c - xi * s;
            im += xr * s + xi * c;
        }
        out[2 * k] = static_cast<float>(re);
        out[2 * k + 1] = static_cast<float>(im);
    }
    return out;
}

} // namespace sps::workloads
