/**
 * @file
 * The kernel suite of Table 4: factories building each kernel's
 * dataflow graph, plus bit-exact reference implementations used by the
 * test suite to validate the functional interpreter.
 *
 * Kernels exchange halo data with neighbor clusters through the
 * intercluster switch (COMM), so record-boundary semantics depend on
 * the cluster count C; every reference implementation takes C and
 * replicates the exchange exactly.
 */
#ifndef SPS_WORKLOADS_KERNELS_KERNELS_H
#define SPS_WORKLOADS_KERNELS_KERNELS_H

#include <cstdint>
#include <vector>

#include "kernel/ir.h"

namespace sps::workloads {

/** Pixels per record in the image kernels. */
constexpr int kPixelsPerRecord = 8;

// --- blocksad: sum-of-absolute-differences (16-bit) ---------------

/**
 * Block SAD for stereo depth: per record, an 8-pixel reference block
 * row and an 8-pixel candidate row (extended with 6 pixels from the
 * next cluster via COMM) are compared at disparities {0, 3, 6}. The
 * output record is [sad0, sad1, bestSad, accumulated] where
 * `accumulated` is a scratchpad running sum per (iteration mod 16)
 * block column.
 */
kernel::Kernel makeBlocksad();

/** Reference: one output record per input record pair. */
std::vector<int32_t> refBlocksad(int c,
                                 const std::vector<int32_t> &ref_px,
                                 const std::vector<int32_t> &cand_px);

// --- convolve: 7-tap filter (16-bit) ------------------------------

/** The filter taps used by makeConvolve(). */
extern const int32_t kConvTaps[7];

/**
 * 7-tap 1D convolution over 8-pixel records; halo pixels come from
 * the neighboring clusters' records of the same iteration (wrapping
 * within the C-record group).
 */
kernel::Kernel makeConvolve();

std::vector<int32_t> refConvolve(int c, const std::vector<int32_t> &px);

// --- update: QRD block update (floating point) --------------------

/** Householder panel rank of the update kernel. */
constexpr int kUpdateRank = 8;

/** The fixed W coefficient panel baked into makeUpdate() (as Imagine
 *  kernels took scalar parameters: microcode immediates). Layout:
 *  w[j][col] at index j*2 + col. */
extern const float kUpdateW[2 * kUpdateRank];

/**
 * Rank-8 block update of two matrix columns: per row, the `a` stream
 * carries [a0, a1] and the `v` stream [v0..v7];
 * a'[col] = a[col] - sum_j v[j]*W[j][col]. Partial dot products for
 * the next panel accumulate in the scratchpad, pairwise-combined
 * with the neighbor cluster via COMM; the running acc[0] is emitted
 * as the third output word.
 */
kernel::Kernel makeUpdate();

std::vector<float> refUpdate(int c, const std::vector<float> &a,
                             const std::vector<float> &v);

// --- fft: radix-4 stage (floating point) --------------------------

/**
 * One radix-4 decimation-in-time butterfly per iteration: the input
 * record holds the four complex operands (gathered by the SRF address
 * generators between stages), the twiddle record the three complex
 * twiddle factors, and the output record the four complex results.
 */
kernel::Kernel makeFftStage();

/** Reference butterfly over the same stream layout: x records of 8
 *  floats, tw records of 6 floats, output records of 8 floats. */
std::vector<float> refFftStage(const std::vector<float> &x,
                               const std::vector<float> &tw);

/**
 * Direct O(n^2) DFT used as the gold model in tests. Interleaved
 * re,im input and output.
 */
std::vector<float> refFft(const std::vector<float> &data);

/**
 * Execute a full radix-4 FFT through the fft stage kernel on the
 * functional interpreter with C clusters (gather/scatter between
 * stages is SRF reindexing, done in host glue). Input length must be
 * 2 * 4^k floats (interleaved re,im).
 */
std::vector<float> runFftOnInterpreter(int c,
                                       const std::vector<float> &data);

// --- noise: Perlin-style gradient noise (FP / 32-bit) -------------

/**
 * 2D gradient noise: input record [x, y] floats, output one float.
 * Lattice hashing is arithmetic (no tables), so the kernel is
 * perfectly data parallel.
 */
kernel::Kernel makeNoise();

std::vector<float> refNoise(const std::vector<float> &xy);

// --- irast: span rasterizer (16-bit, conditional streams) ---------

/**
 * Span rasterizer: input record [width, z0, dz, c0, dc] (integers;
 * width in [0,4]); for each of 4 candidate pixels j, emits a fragment
 * record [z0+j*dz, c0+j*dc] through a conditional output stream when
 * j < width.
 */
kernel::Kernel makeIrast();

std::vector<int32_t> refIrast(int c, const std::vector<int32_t> &spans);

// --- dct: 8-point DCT row pass (16-bit) ----------------------------

/**
 * 8-point 1D DCT over 8-pixel records with scratchpad staging,
 * fixed-point arithmetic (scaled by 1 << kDctShift).
 */
kernel::Kernel makeDct();

constexpr int kDctShift = 12;

std::vector<int32_t> refDct(const std::vector<int32_t> &px);

} // namespace sps::workloads

#endif // SPS_WORKLOADS_KERNELS_KERNELS_H
