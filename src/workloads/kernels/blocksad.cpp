#include "workloads/kernels/kernels.h"

#include <algorithm>

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

namespace {
constexpr int kDisparities[3] = {0, 3, 6};
} // namespace

Kernel
makeBlocksad()
{
    KernelBuilder b("blocksad", kernel::DataClass::Half16);
    int ref = b.inStream("ref", kPixelsPerRecord);
    int cand = b.inStream("cand", kPixelsPerRecord);
    int out = b.outStream("sad", 4);
    b.lengthDriver(ref);
    b.scratchpad(16);

    ValueId r[8], c[14];
    for (int i = 0; i < 8; ++i)
        r[i] = b.sbRead(ref, i);
    for (int i = 0; i < 8; ++i)
        c[i] = b.sbRead(cand, i);
    // Extend the candidate window with 6 pixels from the next
    // cluster's record (sliding search window across the boundary).
    ValueId next = b.iadd(b.clusterId(), b.constI(1));
    for (int i = 0; i < 6; ++i)
        c[8 + i] = b.comm(c[i], next);

    ValueId sad[3];
    for (int d = 0; d < 3; ++d) {
        int off = kDisparities[d];
        ValueId acc = kernel::kNoValue;
        for (int i = 0; i < 8; ++i) {
            ValueId diff = b.iabs(b.isub(r[i], c[i + off]));
            acc = (i == 0) ? diff : b.iadd(acc, diff);
        }
        sad[d] = acc;
    }

    ValueId best01 = b.imin(sad[0], sad[1]);
    ValueId best = b.imin(best01, sad[2]);
    // Running block-column accumulator in the scratchpad.
    ValueId addr = b.iand(b.loopIndex(), b.constI(15));
    ValueId prev = b.spRead(addr);
    ValueId accum = b.iadd(prev, best);
    b.spWrite(addr, accum);

    b.sbWrite(out, sad[0], 0);
    b.sbWrite(out, sad[1], 1);
    b.sbWrite(out, best, 2);
    b.sbWrite(out, accum, 3);
    return b.build();
}

std::vector<int32_t>
refBlocksad(int c, const std::vector<int32_t> &ref_px,
            const std::vector<int32_t> &cand_px)
{
    SPS_ASSERT(ref_px.size() == cand_px.size() &&
                   ref_px.size() % kPixelsPerRecord == 0,
               "refBlocksad: bad input sizes");
    auto records =
        static_cast<int64_t>(ref_px.size()) / kPixelsPerRecord;
    std::vector<int32_t> out(static_cast<size_t>(records) * 4, 0);
    std::vector<int64_t> scratch_acc(
        static_cast<size_t>(c) * 16, 0); // per cluster, 16 slots

    int64_t iterations = (records + c - 1) / c;
    for (int64_t iter = 0; iter < iterations; ++iter) {
        for (int cl = 0; cl < c; ++cl) {
            int64_t rec = iter * c + cl;
            auto px_at = [&](const std::vector<int32_t> &v, int64_t rr,
                             int i) -> int32_t {
                int64_t idx = rr * kPixelsPerRecord + i;
                if (rr < 0 || rr >= records)
                    return 0;
                return v[static_cast<size_t>(idx)];
            };
            // Neighbor record: cluster (cl+1) mod c of the SAME
            // iteration, matching the COMM exchange semantics.
            int64_t nrec = iter * c + ((cl + 1) % c);
            int32_t cwin[14];
            for (int i = 0; i < 8; ++i)
                cwin[i] = px_at(cand_px, rec, i);
            for (int i = 0; i < 6; ++i)
                cwin[8 + i] = px_at(cand_px, nrec, i);
            int32_t sad[3];
            for (int d = 0; d < 3; ++d) {
                int64_t acc = 0;
                for (int i = 0; i < 8; ++i)
                    acc += std::abs(
                        static_cast<int64_t>(px_at(ref_px, rec, i)) -
                        cwin[i + kDisparities[d]]);
                sad[d] = static_cast<int32_t>(acc);
            }
            int32_t best = std::min(sad[0], std::min(sad[1], sad[2]));
            auto slot = static_cast<size_t>(cl) * 16 +
                        static_cast<size_t>(iter & 15);
            scratch_acc[slot] += best;
            if (rec < records) {
                out[static_cast<size_t>(rec) * 4 + 0] = sad[0];
                out[static_cast<size_t>(rec) * 4 + 1] = sad[1];
                out[static_cast<size_t>(rec) * 4 + 2] = best;
                out[static_cast<size_t>(rec) * 4 + 3] =
                    static_cast<int32_t>(scratch_acc[slot]);
            }
        }
    }
    return out;
}

} // namespace sps::workloads
