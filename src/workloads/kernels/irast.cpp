#include "workloads/kernels/kernels.h"

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

Kernel
makeIrast()
{
    KernelBuilder b("irast", kernel::DataClass::Half16);
    int in = b.inStream("spans", 5); // width, z0, dz, c0, dc
    int out = b.outStream("frags", 1, /*conditional=*/true);
    b.lengthDriver(in);

    ValueId width = b.sbRead(in, 0);
    ValueId z0 = b.sbRead(in, 1);
    ValueId dz = b.sbRead(in, 2);
    ValueId c0 = b.sbRead(in, 3);
    ValueId dc = b.sbRead(in, 4);

    // Up to four candidate pixels per span; fragments for pixels
    // inside the span are compacted through the conditional stream
    // (z and color packed into one word: (z << 16) | (color & 0xffff)).
    for (int j = 0; j < 4; ++j) {
        ValueId jj = b.constI(j);
        ValueId inside = b.icmpLt(jj, width);
        ValueId z = b.iadd(z0, b.imul(jj, dz));
        ValueId col = b.iadd(c0, b.imul(jj, dc));
        ValueId frag =
            b.ior(b.ishl(z, b.constI(16)),
                  b.iand(col, b.constI(0xffff)));
        b.condWrite(out, frag, inside);
    }
    return b.build();
}

std::vector<int32_t>
refIrast(int c, const std::vector<int32_t> &spans)
{
    SPS_ASSERT(spans.size() % 5 == 0, "refIrast: bad span size");
    auto records = static_cast<int64_t>(spans.size()) / 5;
    std::vector<int32_t> out;
    // The conditional write compacts candidate j of every cluster (in
    // cluster order) before candidate j+1, one SIMD step at a time.
    int64_t iterations = (records + c - 1) / c;
    for (int64_t iter = 0; iter < iterations; ++iter) {
        for (int j = 0; j < 4; ++j) {
            for (int cl = 0; cl < c; ++cl) {
                int64_t rec = iter * c + cl;
                int32_t width = 0, z0 = 0, dz = 0, c0 = 0, dc = 0;
                if (rec < records) {
                    const int32_t *s =
                        &spans[static_cast<size_t>(rec) * 5];
                    width = s[0];
                    z0 = s[1];
                    dz = s[2];
                    c0 = s[3];
                    dc = s[4];
                }
                if (j >= width)
                    continue;
                int32_t z = z0 + j * dz;
                int32_t col = c0 + j * dc;
                out.push_back(static_cast<int32_t>(
                    (static_cast<uint32_t>(z) << 16) |
                    (static_cast<uint32_t>(col) & 0xffffu)));
            }
        }
    }
    return out;
}

} // namespace sps::workloads
