#include "workloads/kernels/kernels.h"

#include <cmath>

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

namespace {

constexpr int32_t kSalt = static_cast<int32_t>(7u * 1442695041u);

int32_t
mul32(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<int64_t>(a) * b);
}

float
fade(float t)
{
    return t * t * t * (t * (t * 6.0f - 15.0f) + 10.0f);
}

} // namespace

Kernel
makeNoise()
{
    KernelBuilder b("noise", kernel::DataClass::Word32);
    int in = b.inStream("xy", 2);
    int out = b.outStream("n", 1);
    b.lengthDriver(in);

    ValueId x = b.sbRead(in, 0);
    ValueId y = b.sbRead(in, 1);
    ValueId xf = b.ffloor(x);
    ValueId yf = b.ffloor(y);
    ValueId xi = b.ftoi(xf);
    ValueId yi = b.ftoi(yf);
    ValueId fx = b.fsub(x, xf);
    ValueId fy = b.fsub(y, yf);

    auto hash = [&](ValueId hx, ValueId hy) {
        ValueId h = b.iadd(
            b.iadd(b.imul(hx, b.constI(374761393)),
                   b.imul(hy, b.constI(668265263))),
            b.constI(kSalt));
        h = b.ixor(h, b.ishr(h, b.constI(13)));
        h = b.imul(h, b.constI(1274126177));
        h = b.ixor(h, b.ishr(h, b.constI(16)));
        return h;
    };
    auto grad_dot = [&](ValueId h, ValueId dx, ValueId dy) {
        ValueId one = b.constF(1.0f);
        ValueId mone = b.constF(-1.0f);
        ValueId gx = b.select(b.iand(h, b.constI(1)), one, mone);
        ValueId gy = b.select(b.iand(h, b.constI(2)), one, mone);
        return b.fadd(b.fmul(gx, dx), b.fmul(gy, dy));
    };
    auto fade_v = [&](ValueId t) {
        // t^3 (t (6t - 15) + 10)
        ValueId inner = b.fadd(
            b.fmul(t, b.fsub(b.fmul(t, b.constF(6.0f)),
                             b.constF(15.0f))),
            b.constF(10.0f));
        return b.fmul(b.fmul(b.fmul(t, t), t), inner);
    };

    ValueId xi1 = b.iadd(xi, b.constI(1));
    ValueId yi1 = b.iadd(yi, b.constI(1));
    ValueId fx1 = b.fsub(fx, b.constF(1.0f));
    ValueId fy1 = b.fsub(fy, b.constF(1.0f));

    ValueId d00 = grad_dot(hash(xi, yi), fx, fy);
    ValueId d10 = grad_dot(hash(xi1, yi), fx1, fy);
    ValueId d01 = grad_dot(hash(xi, yi1), fx, fy1);
    ValueId d11 = grad_dot(hash(xi1, yi1), fx1, fy1);

    ValueId u = fade_v(fx);
    ValueId v = fade_v(fy);
    auto lerp = [&](ValueId a, ValueId c, ValueId t) {
        return b.fadd(a, b.fmul(t, b.fsub(c, a)));
    };
    ValueId nx0 = lerp(d00, d10, u);
    ValueId nx1 = lerp(d01, d11, u);
    b.sbWrite(out, lerp(nx0, nx1, v));
    return b.build();
}

std::vector<float>
refNoise(const std::vector<float> &xy)
{
    SPS_ASSERT(xy.size() % 2 == 0, "refNoise: bad input size");
    size_t n = xy.size() / 2;
    std::vector<float> out(n);
    auto hash = [](int32_t hx, int32_t hy) {
        int32_t v = static_cast<int32_t>(
            static_cast<int64_t>(mul32(hx, 374761393)) +
            mul32(hy, 668265263) + kSalt);
        v ^= v >> 13;
        v = mul32(v, 1274126177);
        v ^= v >> 16;
        return v;
    };
    auto grad_dot = [](int32_t h, float dx, float dy) {
        float gx = (h & 1) ? 1.0f : -1.0f;
        float gy = (h & 2) ? 1.0f : -1.0f;
        return gx * dx + gy * dy;
    };
    for (size_t i = 0; i < n; ++i) {
        float x = xy[2 * i], y = xy[2 * i + 1];
        float xf = std::floor(x), yf = std::floor(y);
        auto xi = static_cast<int32_t>(xf);
        auto yi = static_cast<int32_t>(yf);
        float fx = x - xf, fy = y - yf;
        float d00 = grad_dot(hash(xi, yi), fx, fy);
        float d10 = grad_dot(hash(xi + 1, yi), fx - 1.0f, fy);
        float d01 = grad_dot(hash(xi, yi + 1), fx, fy - 1.0f);
        float d11 = grad_dot(hash(xi + 1, yi + 1), fx - 1.0f, fy - 1.0f);
        float u = fade(fx), v = fade(fy);
        float nx0 = d00 + u * (d10 - d00);
        float nx1 = d01 + u * (d11 - d01);
        out[i] = nx0 + v * (nx1 - nx0);
    }
    return out;
}

} // namespace sps::workloads
