#include "workloads/kernels/kernels.h"

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

const int32_t kConvTaps[7] = {1, 4, 9, 16, 9, 4, 1};

Kernel
makeConvolve()
{
    KernelBuilder b("convolve", kernel::DataClass::Half16);
    int in = b.inStream("px", kPixelsPerRecord);
    int out = b.outStream("py", kPixelsPerRecord);
    b.lengthDriver(in);

    ValueId p[14]; // [0..2]: left halo, [3..10]: record, [11..13]: right
    ValueId x[8];
    for (int i = 0; i < 8; ++i)
        x[i] = b.sbRead(in, i);
    ValueId cid = b.clusterId();
    ValueId left = b.isub(cid, b.constI(1));
    ValueId right = b.iadd(cid, b.constI(1));
    // Halo pixels from the neighboring clusters' records.
    for (int i = 0; i < 3; ++i)
        p[i] = b.comm(x[5 + i], left);
    for (int i = 0; i < 8; ++i)
        p[3 + i] = x[i];
    for (int i = 0; i < 3; ++i)
        p[11 + i] = b.comm(x[i], right);

    ValueId taps[7];
    for (int t = 0; t < 7; ++t)
        taps[t] = b.constI(kConvTaps[t]);
    ValueId four = b.constI(4);
    for (int i = 0; i < 8; ++i) {
        ValueId acc = kernel::kNoValue;
        for (int t = 0; t < 7; ++t) {
            ValueId prod = b.imul(p[i + t], taps[t]);
            acc = (t == 0) ? prod : b.iadd(acc, prod);
        }
        b.sbWrite(out, b.ishr(acc, four), i);
    }
    return b.build();
}

std::vector<int32_t>
refConvolve(int c, const std::vector<int32_t> &px)
{
    SPS_ASSERT(px.size() % kPixelsPerRecord == 0,
               "refConvolve: bad input size");
    auto records = static_cast<int64_t>(px.size()) / kPixelsPerRecord;
    std::vector<int32_t> out(px.size(), 0);
    auto px_at = [&](int64_t rec, int i) -> int32_t {
        if (rec < 0 || rec >= records)
            return 0;
        return px[static_cast<size_t>(rec * kPixelsPerRecord + i)];
    };
    int64_t iterations = (records + c - 1) / c;
    for (int64_t iter = 0; iter < iterations; ++iter) {
        for (int cl = 0; cl < c; ++cl) {
            int64_t rec = iter * c + cl;
            if (rec >= records)
                continue;
            int64_t lrec = iter * c + ((cl - 1 + c) % c);
            int64_t rrec = iter * c + ((cl + 1) % c);
            int32_t p[14];
            for (int i = 0; i < 3; ++i)
                p[i] = px_at(lrec, 5 + i);
            for (int i = 0; i < 8; ++i)
                p[3 + i] = px_at(rec, i);
            for (int i = 0; i < 3; ++i)
                p[11 + i] = px_at(rrec, i);
            for (int i = 0; i < 8; ++i) {
                int64_t acc = 0;
                for (int t = 0; t < 7; ++t)
                    acc += static_cast<int64_t>(p[i + t]) *
                           kConvTaps[t];
                out[static_cast<size_t>(rec * kPixelsPerRecord + i)] =
                    static_cast<int32_t>(acc) >> 4;
            }
        }
    }
    return out;
}

} // namespace sps::workloads
