#include "workloads/kernels/kernels.h"

#include <array>
#include <cmath>

#include "common/log.h"
#include "kernel/builder.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;

namespace {

/** Fixed-point DCT-II basis, cos((2n+1) k pi / 16) << kDctShift. */
const int32_t *
dctTable()
{
    // Magic-static init: safe under the concurrent first use the
    // evaluation engine's thread pool can produce.
    static const std::array<int32_t, 64> table = [] {
        std::array<int32_t, 64> t{};
        for (int k = 0; k < 8; ++k)
            for (int n = 0; n < 8; ++n)
                t[k * 8 + n] = static_cast<int32_t>(std::lround(
                    std::cos((2 * n + 1) * k * M_PI / 16.0) *
                    (1 << kDctShift)));
        return t;
    }();
    return table.data();
}

} // namespace

Kernel
makeDct()
{
    KernelBuilder b("dct", kernel::DataClass::Half16);
    int in = b.inStream("px", kPixelsPerRecord);
    int out = b.outStream("coef", kPixelsPerRecord);
    b.lengthDriver(in);
    b.scratchpad(8);

    const int32_t *tbl = dctTable();
    // Stage the row through the scratchpad (stands in for the 8x8
    // transpose staging of the 2D DCT).
    for (int n = 0; n < 8; ++n)
        b.spWrite(b.constI(n), b.sbRead(in, n));
    ValueId x[8];
    for (int n = 0; n < 8; ++n)
        x[n] = b.spRead(b.constI(n));

    ValueId shift = b.constI(kDctShift);
    for (int k = 0; k < 8; ++k) {
        ValueId acc = kernel::kNoValue;
        for (int n = 0; n < 8; ++n) {
            ValueId prod = b.imul(x[n], b.constI(tbl[k * 8 + n]));
            acc = (n == 0) ? prod : b.iadd(acc, prod);
        }
        b.sbWrite(out, b.ishr(acc, shift), k);
    }
    return b.build();
}

std::vector<int32_t>
refDct(const std::vector<int32_t> &px)
{
    SPS_ASSERT(px.size() % kPixelsPerRecord == 0,
               "refDct: bad input size");
    const int32_t *tbl = dctTable();
    std::vector<int32_t> out(px.size());
    size_t records = px.size() / kPixelsPerRecord;
    for (size_t r = 0; r < records; ++r) {
        for (int k = 0; k < 8; ++k) {
            int64_t acc = 0;
            for (int n = 0; n < 8; ++n)
                acc += static_cast<int64_t>(
                           px[r * kPixelsPerRecord +
                              static_cast<size_t>(n)]) *
                       tbl[k * 8 + n];
            out[r * kPixelsPerRecord + static_cast<size_t>(k)] =
                static_cast<int32_t>(acc) >> kDctShift;
        }
    }
    return out;
}

} // namespace sps::workloads
