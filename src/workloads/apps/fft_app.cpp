#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interp/interpreter.h"
#include "stream/stripmine.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps::workloads {

using stream::StreamProgram;

namespace {

int
log4(int n)
{
    int s = 0;
    while ((1 << (2 * s)) < n)
        ++s;
    SPS_ASSERT((1 << (2 * s)) == n, "FFT size %d is not a power of 4",
               n);
    return s;
}

/** Base-4 digit reversal permutation of 0..n-1. */
int
digitReverse4(int idx, int stages)
{
    int out = 0;
    for (int s = 0; s < stages; ++s) {
        out = (out << 2) | (idx & 3);
        idx >>= 2;
    }
    return out;
}

} // namespace

StreamProgram
buildFftApp(vlsi::MachineSize size, const srf::SrfModel &srf, int points)
{
    StreamProgram prog(points == 1024 ? "FFT1K" : "FFT4K");
    const kernel::Kernel &fft = fftKernel();
    const int stages = log4(points);
    const int64_t bf = points / 4; // butterflies per stage

    // Input data is already in the SRF and bit-reversed stores are
    // not simulated (Section 5.3). When the SRF is large enough, the
    // twiddle factors for all stages are also resident; at middling
    // capacities each stage streams its twiddles from memory, and on
    // the smallest machines even the ping-pong data arrays spill --
    // every stage strip-mines its butterflies through memory. These
    // are the "spilling from the SRF to memory" penalties FFT4K pays
    // on small machines (Section 5.3).
    auto budget = static_cast<int64_t>(
        0.9 * static_cast<double>(srf.capacityWords));
    int64_t data_words = 2LL * 2 * points; // ping + pong
    int64_t tw_words = 6LL * bf * stages;
    bool tw_resident = data_words + tw_words <= budget;
    // Per-stage working set: input + output + twiddles per record.
    bool data_resident = 22 * bf <= budget;

    if (data_resident) {
        std::vector<int> x(static_cast<size_t>(stages) + 1);
        for (int s = 0; s <= stages; ++s)
            x[static_cast<size_t>(s)] = prog.declareStream(
                "x" + std::to_string(s), 8, bf, false);
        for (int s = 0; s < stages; ++s) {
            int tw = prog.declareStream("tw" + std::to_string(s), 6,
                                        bf, !tw_resident);
            if (!tw_resident)
                prog.load(tw);
            prog.callKernel(&fft, {x[static_cast<size_t>(s)], tw,
                                   x[static_cast<size_t>(s) + 1]});
        }
        (void)size;
        return prog;
    }

    // Spill mode: each stage processes its butterflies in batches
    // small enough for the SRF, loading inputs and twiddles and
    // storing outputs every time.
    stream::BatchPlan plan =
        stream::planBatches(bf, 22, srf, size.clusters);
    for (int s = 0; s < stages; ++s) {
        int64_t remaining = bf;
        for (int64_t bch = 0; bch < plan.batches; ++bch) {
            int64_t recs = std::min(remaining, plan.recordsPerBatch);
            remaining -= recs;
            std::string tag = "_s" + std::to_string(s) + "_b" +
                              std::to_string(bch);
            int xin = prog.declareStream("x" + tag, 8, recs, true);
            int tw = prog.declareStream("tw" + tag, 6, recs, true);
            int y = prog.declareStream("y" + tag, 8, recs, true);
            prog.load(xin);
            prog.load(tw);
            prog.callKernel(&fft, {xin, tw, y});
            prog.store(y);
        }
    }
    return prog;
}

std::vector<float>
runFftOnInterpreter(int c, const std::vector<float> &data)
{
    const int n = static_cast<int>(data.size() / 2);
    const int stages = log4(n);
    const kernel::Kernel &fft = fftKernel();

    // Digit-reversed input order (decimation in time).
    std::vector<float> cur(data.size());
    for (int i = 0; i < n; ++i) {
        int r = digitReverse4(i, stages);
        cur[2 * static_cast<size_t>(i)] =
            data[2 * static_cast<size_t>(r)];
        cur[2 * static_cast<size_t>(i) + 1] =
            data[2 * static_cast<size_t>(r) + 1];
    }

    for (int s = 0; s < stages; ++s) {
        const int l = 1 << (2 * s); // butterflies span 4*l
        std::vector<float> xrec, twrec;
        xrec.reserve(static_cast<size_t>(n) * 2);
        twrec.reserve(static_cast<size_t>(n) / 4 * 6);
        std::vector<int> base_of;
        for (int g = 0; g < n / (4 * l); ++g) {
            for (int j = 0; j < l; ++j) {
                int base = g * 4 * l + j;
                base_of.push_back(base);
                for (int q = 0; q < 4; ++q) {
                    int idx = base + q * l;
                    xrec.push_back(cur[2 * static_cast<size_t>(idx)]);
                    xrec.push_back(
                        cur[2 * static_cast<size_t>(idx) + 1]);
                }
                for (int q = 1; q <= 3; ++q) {
                    double ang = -2.0 * M_PI * j * q / (4.0 * l);
                    twrec.push_back(
                        static_cast<float>(std::cos(ang)));
                    twrec.push_back(
                        static_cast<float>(std::sin(ang)));
                }
            }
        }
        interp::StreamData xs = interp::StreamData::fromFloats(xrec, 8);
        interp::StreamData tws =
            interp::StreamData::fromFloats(twrec, 6);
        interp::ExecResult res = interp::runKernel(fft, c, {xs, tws});
        const auto &y = res.outputs[0].words;
        for (size_t b = 0; b < base_of.size(); ++b) {
            for (int q = 0; q < 4; ++q) {
                int idx = base_of[b] + q * l;
                cur[2 * static_cast<size_t>(idx)] =
                    y[8 * b + 2 * static_cast<size_t>(q)].asFloat();
                cur[2 * static_cast<size_t>(idx) + 1] =
                    y[8 * b + 2 * static_cast<size_t>(q) + 1]
                        .asFloat();
            }
        }
    }
    return cur;
}

} // namespace sps::workloads
