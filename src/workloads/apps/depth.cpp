#include <algorithm>

#include "common/log.h"
#include "kernel/builder.h"
#include "stream/stripmine.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps::workloads {

using stream::StreamProgram;

namespace {

/** Elementwise winner-take-all merge of two SAD records. */
kernel::Kernel
makeMinsad()
{
    kernel::KernelBuilder b("minsad", kernel::DataClass::Half16);
    int a = b.inStream("a", 4);
    int c = b.inStream("b", 4);
    int out = b.outStream("m", 4);
    b.lengthDriver(a);
    for (int i = 0; i < 4; ++i)
        b.sbWrite(out, b.imin(b.sbRead(a, i), b.sbRead(c, i)), i);
    return b.build();
}

const kernel::Kernel &
minsadKernel()
{
    static const kernel::Kernel k = makeMinsad();
    return k;
}
constexpr int64_t kImageW = 512;
constexpr int64_t kImageH = 384;
/** 8-pixel records covering one 512x384 image. */
constexpr int64_t kRecords = kImageW * kImageH / kPixelsPerRecord;
/** blocksad passes: each evaluates 3 disparities of the search. */
constexpr int kDisparityPasses = 8;
} // namespace

StreamProgram
buildDepth(vlsi::MachineSize size, const srf::SrfModel &srf)
{
    StreamProgram prog("DEPTH");
    const kernel::Kernel &sad = blocksadKernel();
    const kernel::Kernel &filt = convolveKernel();

    // Per record: both raw images (8+8), both filtered images (8+8),
    // and one 4-word SAD record per disparity pass in flight (the SAD
    // maps are consumed/stored as they are produced, so budget two),
    // double-buffered.
    stream::BatchPlan plan = stream::planBatches(
        kRecords, 2 * (8 + 8 + 8 + 8 + 2 * 4), srf, size.clusters);

    int64_t remaining = kRecords;
    for (int64_t bch = 0; bch < plan.batches; ++bch) {
        int64_t recs = std::min(remaining, plan.recordsPerBatch);
        remaining -= recs;
        std::string tag = "_b" + std::to_string(bch);
        int ref = prog.declareStream("ref" + tag, 8, recs, true, true);
        int cand =
            prog.declareStream("cand" + tag, 8, recs, true, true);
        int refF = prog.declareStream("refF" + tag, 8, recs);
        int candF = prog.declareStream("candF" + tag, 8, recs);

        prog.load(ref);
        prog.load(cand);
        // Pre-filter both images; the filtered images never leave the
        // SRF (producer-consumer locality).
        prog.callKernel(&filt, {ref, refF});
        prog.callKernel(&filt, {cand, candF});
        // Disparity search: each pass matches a 3-disparity window of
        // the candidate image (Kanade's video-rate stereo machine
        // sweeps tens of disparities per pixel); a winner-take-all
        // merge keeps only the running best, so just one disparity
        // map goes back to memory.
        int best = -1;
        for (int d = 0; d < kDisparityPasses; ++d) {
            int sads = prog.declareStream(
                "sad" + tag + "_d" + std::to_string(d), 4, recs, false,
                true);
            prog.callKernel(&sad, {refF, candF, sads});
            if (best < 0) {
                best = sads;
            } else {
                int merged = prog.declareStream(
                    "best" + tag + "_d" + std::to_string(d), 4, recs,
                    false, true);
                prog.callKernel(&minsadKernel(), {best, sads, merged});
                best = merged;
            }
        }
        prog.store(best);
    }
    return prog;
}

} // namespace sps::workloads
