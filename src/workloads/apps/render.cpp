#include <algorithm>

#include "common/log.h"
#include "kernel/builder.h"
#include "stream/stripmine.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;
using stream::StreamProgram;

namespace {

/** Triangles in the bowling-pin scene. */
constexpr int64_t kTriangles = 8192;
/** Average fragments rasterized per triangle. */
constexpr int64_t kFragsPerTri = 16;

/** Fixed modelview matrix of the transform kernel. */
constexpr float kM[9] = {0.80f, 0.10f, 0.00f, -0.10f, 0.75f,
                         0.05f, 0.05f, 0.00f, 0.90f};

Kernel
makeXform()
{
    KernelBuilder b("xform", kernel::DataClass::Word32);
    int in = b.inStream("tris", 9);
    int out = b.outStream("xtris", 9);
    int cent = b.outStream("cent", 2);
    b.lengthDriver(in);

    ValueId m[9];
    for (int i = 0; i < 9; ++i)
        m[i] = b.constF(kM[i]);

    // Transform the three vertices by M.
    ValueId t[9];
    for (int v = 0; v < 3; ++v) {
        ValueId p[3];
        for (int i = 0; i < 3; ++i)
            p[i] = b.sbRead(in, 3 * v + i);
        for (int r = 0; r < 3; ++r) {
            ValueId acc = b.fmul(m[3 * r + 0], p[0]);
            acc = b.fadd(acc, b.fmul(m[3 * r + 1], p[1]));
            acc = b.fadd(acc, b.fmul(m[3 * r + 2], p[2]));
            t[3 * v + r] = acc;
        }
    }
    // Shared perspective scale (one divide per triangle).
    ValueId zsum = b.fadd(b.fadd(t[2], t[5]), t[8]);
    ValueId w = b.fdiv(b.constF(4.0f), b.fadd(zsum, b.constF(8.0f)));
    for (int i = 0; i < 9; ++i)
        b.sbWrite(out, b.fmul(t[i], w), i);
    // Centroid feeds the per-triangle shader coordinate basis.
    ValueId third = b.constF(1.0f / 3.0f);
    ValueId cx = b.fmul(b.fadd(b.fadd(t[0], t[3]), t[6]), third);
    ValueId cy = b.fmul(b.fadd(b.fadd(t[1], t[4]), t[7]), third);
    b.sbWrite(cent, cx, 0);
    b.sbWrite(cent, cy, 1);
    return b.build();
}

Kernel
makeTrirast()
{
    KernelBuilder b("trirast", kernel::DataClass::Half16);
    int in = b.inStream("xtris", 9);
    int shade = b.inStream("shade", 1);
    int out = b.outStream("frags", 1, /*conditional=*/true);
    b.lengthDriver(in);

    ValueId x0 = b.sbRead(in, 0), z0 = b.sbRead(in, 2);
    ValueId x1 = b.sbRead(in, 3), x2 = b.sbRead(in, 6);
    ValueId sh = b.sbRead(shade, 0);

    // Candidate pixel count from the screen-space width.
    ValueId maxx = b.fmax(b.fmax(x0, x1), x2);
    ValueId minx = b.fmin(b.fmin(x0, x1), x2);
    ValueId width =
        b.ftoi(b.fmul(b.fsub(maxx, minx), b.constF(2.0f)));
    width = b.imax(b.imin(width, b.constI(4)), b.constI(0));

    ValueId zbase = b.ftoi(b.fmul(z0, b.constF(256.0f)));
    ValueId shi =
        b.iand(b.ftoi(b.fmul(sh, b.constF(255.0f))), b.constI(0xffff));
    ValueId sixteen = b.constI(16);
    for (int j = 0; j < 4; ++j) {
        ValueId jj = b.constI(j);
        ValueId inside = b.icmpLt(jj, width);
        ValueId frag = b.ior(b.ishl(b.iadd(zbase, jj), sixteen), shi);
        b.condWrite(out, frag, inside);
    }
    return b.build();
}

/** Octave step of the marble shader: scale shader coordinates. */
Kernel
makeScale()
{
    KernelBuilder b("octscale", kernel::DataClass::Word32);
    int in = b.inStream("xy", 2);
    int out = b.outStream("xy2", 2);
    b.lengthDriver(in);
    ValueId two = b.constF(2.17f);
    b.sbWrite(out, b.fmul(b.sbRead(in, 0), two), 0);
    b.sbWrite(out, b.fmul(b.sbRead(in, 1), two), 1);
    return b.build();
}

/** Combine three noise octaves into a marble color (16-bit out). */
Kernel
makeCompose()
{
    KernelBuilder b("marble", kernel::DataClass::Half16);
    int o1 = b.inStream("o1", 1);
    int o2 = b.inStream("o2", 1);
    int o3 = b.inStream("o3", 1);
    int out = b.outStream("color", 1);
    b.lengthDriver(o1);
    ValueId v = b.fadd(
        b.fadd(b.sbRead(o1, 0),
               b.fmul(b.sbRead(o2, 0), b.constF(0.5f))),
        b.fmul(b.sbRead(o3, 0), b.constF(0.25f)));
    // Fold into [0,1) and quantize to a 16-bit marble shade.
    ValueId folded = b.fabsOp(b.fsub(v, b.ffloor(v)));
    ValueId q = b.ftoi(b.fmul(folded, b.constF(65535.0f)));
    b.sbWrite(out, b.iand(q, b.constI(0xffff)));
    return b.build();
}

const Kernel &
scaleKernel()
{
    static const Kernel k = makeScale();
    return k;
}

const Kernel &
composeKernel()
{
    static const Kernel k = makeCompose();
    return k;
}

} // namespace

const Kernel &
xformKernel()
{
    static const Kernel k = makeXform();
    return k;
}

const Kernel &
trirastKernel()
{
    static const Kernel k = makeTrirast();
    return k;
}

StreamProgram
buildRender(vlsi::MachineSize size, const srf::SrfModel &srf)
{
    StreamProgram prog("RENDER");
    const Kernel &xform = xformKernel();
    const Kernel &shadek = noiseKernel();
    const Kernel &rast = trirastKernel();
    const Kernel &scale = scaleKernel();
    const Kernel &compose = composeKernel();

    // Per triangle: 9 in + 9 transformed + 2 centroid + 1 base shade
    // plus kFragsPerTri fragments' worth of shader state (coords at
    // three octaves, three octave values, final color), double
    // buffered.
    const int64_t per_tri =
        9 + 9 + 2 + 1 + 1 + kFragsPerTri * (2 + 2 + 2 + 1 + 1 + 1 + 1);
    stream::BatchPlan plan = stream::planBatches(
        kTriangles, 2 * per_tri, srf, size.clusters);

    int64_t remaining = kTriangles;
    for (int64_t bch = 0; bch < plan.batches; ++bch) {
        int64_t recs = std::min(remaining, plan.recordsPerBatch);
        remaining -= recs;
        int64_t frags = recs * kFragsPerTri;
        std::string tag = "_b" + std::to_string(bch);
        int tris = prog.declareStream("tris" + tag, 9, recs, true);
        int xtris = prog.declareStream("xtris" + tag, 9, recs);
        int cent = prog.declareStream("cent" + tag, 2, recs);
        int shade = prog.declareStream("shade" + tag, 1, recs);
        int fragz = prog.declareStream("fragz" + tag, 1, frags);
        // Rasterized fragment shader coordinates (SRF-resident view
        // produced by the rasterizer's data routing).
        int fxy1 = prog.declareStream("fxy1" + tag, 2, frags);
        int fxy2 = prog.declareStream("fxy2" + tag, 2, frags);
        int fxy3 = prog.declareStream("fxy3" + tag, 2, frags);
        int o1 = prog.declareStream("o1" + tag, 1, frags);
        int o2 = prog.declareStream("o2" + tag, 1, frags);
        int o3 = prog.declareStream("o3" + tag, 1, frags);
        int color =
            prog.declareStream("color" + tag, 1, frags, false, true);

        prog.load(tris);
        prog.callKernel(&xform, {tris, xtris, cent});
        prog.callKernel(&shadek, {cent, shade});
        prog.callKernel(&rast, {xtris, shade, fragz},
                        /*driver_records=*/recs);
        // Per-fragment procedural marble shading: three noise octaves.
        prog.callKernel(&shadek, {fxy1, o1});
        prog.callKernel(&scale, {fxy1, fxy2});
        prog.callKernel(&shadek, {fxy2, o2});
        prog.callKernel(&scale, {fxy2, fxy3});
        prog.callKernel(&shadek, {fxy3, o3});
        prog.callKernel(&compose, {o1, o2, o3, color});
        prog.store(color);
    }
    return prog;
}

} // namespace sps::workloads
