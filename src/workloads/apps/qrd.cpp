#include <algorithm>
#include <map>
#include <mutex>

#include "common/log.h"
#include "kernel/builder.h"
#include "stream/stripmine.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps::workloads {

using kernel::Kernel;
using kernel::KernelBuilder;
using kernel::ValueId;
using stream::StreamProgram;

namespace {

/** Matrix dimension of the QRD application. */
constexpr int64_t kMatrixN = 256;

/**
 * Householder vector generation over one column: running norm
 * accumulation with a per-iteration intercluster reduction tree
 * (log2(C) COMM exchanges) and an iterative reciprocal square root.
 * The column is first nudged by the previous reflector (serializing
 * the panel's columns, as in real blocked QR).
 */
Kernel
makeHousegen(int clusters)
{
    KernelBuilder b("housegen_c" + std::to_string(clusters),
                    kernel::DataClass::Word32);
    int col = b.inStream("col", 1);
    int prev = b.inStream("prev", 1);
    int out = b.outStream("v", 1);
    b.lengthDriver(col);

    ValueId x0 = b.sbRead(col, 0);
    ValueId pv = b.sbRead(prev, 0);
    // Apply the previous reflector's correction.
    ValueId x = b.fsub(x0, b.fmul(pv, b.constF(0.125f)));

    // Running sum of squares (loop-carried accumulator).
    ValueId accPhi = b.phi(isa::Word::fromFloat(0.0f), 1);
    ValueId acc = b.fadd(accPhi, b.fmul(x, x));
    b.setPhiSource(accPhi, acc);

    // Tree-reduce the running partial across clusters.
    ValueId cid = b.clusterId();
    ValueId s = acc;
    for (int level = 1; level < clusters; level <<= 1) {
        ValueId peer = b.ixor(cid, b.constI(level));
        s = b.fadd(s, b.comm(s, peer));
    }
    ValueId inv = b.frsqrt(b.fadd(s, b.constF(1.0f)));
    b.sbWrite(out, b.fmul(x, inv));
    return b.build();
}

} // namespace

const Kernel &
housegenKernel(int clusters)
{
    // Guarded: concurrent design points build QRD for different
    // cluster counts; node-based map keeps returned refs stable.
    static std::mutex mu;
    static std::map<int, Kernel> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(clusters);
    if (it == cache.end())
        it = cache.emplace(clusters, makeHousegen(clusters)).first;
    return it->second;
}

StreamProgram
buildQrd(vlsi::MachineSize size, const srf::SrfModel &srf)
{
    StreamProgram prog("QRD");
    const Kernel &hgen = housegenKernel(size.clusters);
    const Kernel &upd = updateKernel();

    // When the whole matrix plus workspace fits, it stays resident in
    // the SRF for the entire decomposition: one load, one store, and
    // every panel/update touches SRF-resident column views. Small
    // machines strip-mine instead, reloading trailing-matrix chunks
    // from memory every panel.
    const int64_t matrix_words = kMatrixN * kMatrixN;
    const bool resident =
        2 * matrix_words <=
        static_cast<int64_t>(0.9 *
                             static_cast<double>(srf.capacityWords));

    int whole = -1;
    if (resident) {
        whole = prog.declareStream("A", 1, matrix_words, true);
        prog.load(whole);
    }

    const int64_t panels = kMatrixN / kUpdateRank;
    for (int64_t p = 0; p < panels; ++p) {
        int64_t rows = kMatrixN - p * kUpdateRank;
        std::string ptag = "_p" + std::to_string(p);

        // --- Panel factorization: serial chain of 8 short kernels ---
        int prev_v = -1;
        for (int j = 0; j < kUpdateRank; ++j) {
            std::string tag = ptag + "_c" + std::to_string(j);
            int col =
                prog.declareStream("col" + tag, 1, rows, !resident);
            int v = prog.declareStream("v" + tag, 1, rows);
            if (!resident)
                prog.load(col);
            // The previous reflector's output serializes the chain;
            // the first column uses itself as its predecessor.
            int pv = (prev_v >= 0) ? prev_v : col;
            prog.callKernel(&hgen, {col, pv, v});
            prev_v = v;
        }

        // --- Trailing-matrix block update: long data-parallel calls --
        // The panel's v coefficients stream once per panel; each
        // 2-column chunk streams its own a-values.
        int64_t trailing = kMatrixN - (p + 1) * kUpdateRank;
        if (trailing <= 0)
            continue;
        int vpan = prog.declareStream("vpan" + ptag, kUpdateRank, rows,
                                      !resident);
        if (!resident)
            prog.load(vpan);
        for (int64_t chunk = 0; chunk * 2 < trailing; ++chunk) {
            std::string tag = ptag + "_u" + std::to_string(chunk);
            int aS = prog.declareStream("a" + tag, 2, rows, !resident);
            int updS = prog.declareStream("upd" + tag, 3, rows);
            if (!resident)
                prog.load(aS);
            prog.callKernel(&upd, {aS, vpan, updS});
            if (!resident)
                prog.store(updS);
        }
    }

    if (resident) {
        int result = prog.declareStream("R", 1, matrix_words, true);
        prog.store(result);
    }
    return prog;
}

} // namespace sps::workloads
