#include <algorithm>

#include "common/log.h"
#include "stream/stripmine.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps::workloads {

using stream::StreamProgram;

namespace {
constexpr int64_t kImageW = 512;
constexpr int64_t kImageH = 384;
constexpr int64_t kRecords = kImageW * kImageH / kPixelsPerRecord;
/** Filter-bank passes (separable row+column at three scales). */
constexpr int kPasses = 6;
} // namespace

StreamProgram
buildConvApp(vlsi::MachineSize size, const srf::SrfModel &srf)
{
    StreamProgram prog("CONV");
    const kernel::Kernel &conv = convolveKernel();

    // Per record: the input plus the ping/pong intermediates of the
    // filter chain, double-buffered.
    stream::BatchPlan plan = stream::planBatches(
        kRecords, 2 * (8 + 8 + 8), srf, size.clusters);

    int64_t remaining = kRecords;
    for (int64_t bch = 0; bch < plan.batches; ++bch) {
        int64_t recs = std::min(remaining, plan.recordsPerBatch);
        remaining -= recs;
        std::string tag = "_b" + std::to_string(bch);
        int px = prog.declareStream("px" + tag, 8, recs, true, true);
        prog.load(px);
        int cur = px;
        for (int pass = 0; pass < kPasses; ++pass) {
            bool last = pass + 1 == kPasses;
            int nxt = prog.declareStream(
                "f" + std::to_string(pass) + tag, 8, recs, false, last);
            prog.callKernel(&conv, {cur, nxt});
            cur = nxt;
        }
        prog.store(cur);
    }
    return prog;
}

} // namespace sps::workloads
