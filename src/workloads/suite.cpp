#include "workloads/suite.h"

#include "workloads/kernels/kernels.h"

namespace sps::workloads {

const kernel::Kernel &
blocksadKernel()
{
    static const kernel::Kernel k = makeBlocksad();
    return k;
}

const kernel::Kernel &
convolveKernel()
{
    static const kernel::Kernel k = makeConvolve();
    return k;
}

const kernel::Kernel &
updateKernel()
{
    static const kernel::Kernel k = makeUpdate();
    return k;
}

const kernel::Kernel &
fftKernel()
{
    static const kernel::Kernel k = makeFftStage();
    return k;
}

const kernel::Kernel &
noiseKernel()
{
    static const kernel::Kernel k = makeNoise();
    return k;
}

const kernel::Kernel &
irastKernel()
{
    static const kernel::Kernel k = makeIrast();
    return k;
}

const kernel::Kernel &
dctKernel()
{
    static const kernel::Kernel k = makeDct();
    return k;
}

std::vector<KernelEntry>
kernelSuite()
{
    return {
        {"blocksad", &blocksadKernel(), 59, 28, 10, 4},
        {"convolve", &convolveKernel(), 133, 14, 5, 2},
        {"update", &updateKernel(), 61, 4, 16, 32},
        {"fft", &fftKernel(), 145, 64, 40, 72},
        {"noise", &noiseKernel(), -1, -1, -1, -1},
        {"irast", &irastKernel(), -1, -1, -1, -1},
    };
}

std::vector<KernelEntry>
table2Suite()
{
    return {
        {"blocksad", &blocksadKernel(), 59, 28, 10, 4},
        {"convolve", &convolveKernel(), 133, 14, 5, 2},
        {"update", &updateKernel(), 61, 4, 16, 32},
        {"fft", &fftKernel(), 145, 64, 40, 72},
        {"dct", &dctKernel(), 150, 16, 7, 32},
    };
}

std::vector<AppEntry>
appSuite()
{
    return {
        {"RENDER", "polygon rendering with a procedural marble shader",
         buildRender},
        {"DEPTH", "stereo depth extraction on a 512x384 image",
         buildDepth},
        {"CONV", "convolution filter on a 512x384 image", buildConvApp},
        {"QRD", "256x256 matrix QR decomposition", buildQrd},
        {"FFT1K", "1024-point complex FFT (data in SRF)",
         [](vlsi::MachineSize s, const srf::SrfModel &m) {
             return buildFftApp(s, m, 1024);
         }},
        {"FFT4K", "4096-point complex FFT (data in SRF)",
         [](vlsi::MachineSize s, const srf::SrfModel &m) {
             return buildFftApp(s, m, 4096);
         }},
    };
}

} // namespace sps::workloads
