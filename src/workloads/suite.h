/**
 * @file
 * The workload suite of Table 4: the six kernels used in the scaling
 * study (Figures 13-14, Table 5), the Table 2 census suite, and the
 * six applications of Figure 15, each exposed as a builder that
 * strip-mines itself for a concrete machine.
 */
#ifndef SPS_WORKLOADS_SUITE_H
#define SPS_WORKLOADS_SUITE_H

#include <functional>
#include <string>
#include <vector>

#include "kernel/ir.h"
#include "srf/srf.h"
#include "stream/program.h"
#include "vlsi/cost_model.h"

namespace sps::workloads {

/** Cached singleton accessors for the suite kernels. */
const kernel::Kernel &blocksadKernel();
const kernel::Kernel &convolveKernel();
const kernel::Kernel &updateKernel();
const kernel::Kernel &fftKernel();
const kernel::Kernel &noiseKernel();
const kernel::Kernel &irastKernel();
const kernel::Kernel &dctKernel();

/** One kernel-suite entry with its paper-reported Table 2 row. */
struct KernelEntry
{
    std::string name;
    const kernel::Kernel *kernel;
    /** Paper Table 2 values; -1 when the kernel is not in Table 2. */
    int paperAlu = -1;
    int paperSrf = -1;
    int paperComm = -1;
    int paperSp = -1;
};

/** The six kernels of Figures 13-14 (Table 4's kernel rows). */
std::vector<KernelEntry> kernelSuite();

/** The five kernels of Table 2 (includes DCT, excludes noise/irast). */
std::vector<KernelEntry> table2Suite();

/** One application builder. */
struct AppEntry
{
    std::string name;
    std::string description;
    /** Build the strip-mined program for a machine. */
    std::function<stream::StreamProgram(vlsi::MachineSize,
                                        const srf::SrfModel &)>
        build;
};

/** The six applications of Figure 15 (Table 4's application rows). */
std::vector<AppEntry> appSuite();

// Individual application builders (also reachable via appSuite()).
stream::StreamProgram buildRender(vlsi::MachineSize size,
                                  const srf::SrfModel &srf);
stream::StreamProgram buildDepth(vlsi::MachineSize size,
                                 const srf::SrfModel &srf);
stream::StreamProgram buildConvApp(vlsi::MachineSize size,
                                   const srf::SrfModel &srf);
stream::StreamProgram buildQrd(vlsi::MachineSize size,
                               const srf::SrfModel &srf);
stream::StreamProgram buildFftApp(vlsi::MachineSize size,
                                  const srf::SrfModel &srf, int points);

/** Kernels private to RENDER / QRD, exposed for tests. */
const kernel::Kernel &xformKernel();
const kernel::Kernel &trirastKernel();
const kernel::Kernel &housegenKernel(int clusters);

} // namespace sps::workloads

#endif // SPS_WORKLOADS_SUITE_H
