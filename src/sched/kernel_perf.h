/**
 * @file
 * The kernel inner-loop performance model: compile a kernel for a
 * machine (choosing an unroll factor and modulo schedule) and report
 * the static-analysis metrics the paper uses for Figures 13-14 and
 * Table 5, plus the call-time parameters the application simulator
 * charges per kernel invocation.
 */
#ifndef SPS_SCHED_KERNEL_PERF_H
#define SPS_SCHED_KERNEL_PERF_H

#include "kernel/census.h"
#include "kernel/ir.h"
#include "sched/machine.h"
#include "sched/modulo.h"

namespace sps::sched {

/** A compiled kernel: schedule metrics for one machine size. */
struct CompiledKernel
{
    /** Chosen unroll factor. */
    int unroll = 1;
    /** Initiation interval of the unrolled loop (cycles). */
    int ii = 1;
    /** Software pipeline stages. */
    int stages = 1;
    /** Schedule length of one unrolled iteration. */
    int length = 1;
    /** Straight-line schedule length (no software pipelining). */
    int listLength = 1;
    /** Unrolled=1 variant, used for short calls where the unrolled
     *  pipeline's priming overhead dominates. */
    int ii1 = 1;
    int stages1 = 1;
    int length1 = 1;
    /** ALU operations of the *original* body, per original iteration. */
    int aluOpsPerIteration = 0;
    /** GOPS-counted operations per original iteration (subword-aware). */
    double gopsOpsPerIteration = 0.0;
    /** Intercluster COMM words sent per original iteration. */
    int commOpsPerIteration = 0;
    /** Scratchpad accesses per original iteration. */
    int spOpsPerIteration = 0;
    /** SRF (streambuffer) accesses per original iteration. */
    int srfAccessesPerIteration = 0;

    /**
     * Inner-loop throughput in ALU operations per cycle per cluster:
     * unroll * aluOpsPerIteration / ii.
     */
    double
    aluOpsPerCycle() const
    {
        return static_cast<double>(unroll) * aluOpsPerIteration / ii;
    }

    /**
     * Cycles to run `iterations` loop iterations (per cluster element
     * batches) in steady software-pipelined execution, including the
     * pipeline priming and draining overhead. Short calls fall back to
     * the straight-line schedule when that is cheaper.
     */
    int64_t loopCycles(int64_t iterations) const;
};

/** Options for kernel compilation. */
struct CompileOptions
{
    /** Unroll factors to try. */
    std::vector<int> unrollFactors = {1, 2, 4};
    /** Skip unrolls that would exceed this many scheduled ops. */
    int maxOps = 4096;
};

/**
 * Compile `k` for machine `m`: pick the unroll factor with the best
 * per-original-iteration throughput (ties go to the smaller factor).
 */
CompiledKernel compileKernel(const kernel::Kernel &k,
                             const MachineModel &m,
                             const CompileOptions &opts = {});

} // namespace sps::sched

#endif // SPS_SCHED_KERNEL_PERF_H
