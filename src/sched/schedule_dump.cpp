#include "sched/schedule_dump.h"

#include <map>
#include <sstream>

#include "common/log.h"

namespace sps::sched {

using isa::FuClass;

namespace {

const char *
className(FuClass cls)
{
    switch (cls) {
      case FuClass::Adder: return "ADD";
      case FuClass::Multiplier: return "MUL";
      case FuClass::Dsq: return "DSQ";
      case FuClass::Scratchpad: return "SP";
      case FuClass::Comm: return "COMM";
      case FuClass::SbPort: return "SB";
      case FuClass::None: return "-";
    }
    return "?";
}

constexpr FuClass kClasses[] = {FuClass::Adder, FuClass::Multiplier,
                                FuClass::Dsq, FuClass::Scratchpad,
                                FuClass::Comm, FuClass::SbPort};

} // namespace

std::vector<ClassUtilization>
scheduleUtilization(const DepGraph &g, const ModuloSchedule &s,
                    const MachineModel &m)
{
    SPS_ASSERT(s.ok, "utilization of failed schedule");
    std::map<FuClass, int> used;
    for (const DepNode &n : g.nodes)
        used[n.cls] += n.issueInterval;
    std::vector<ClassUtilization> out;
    for (FuClass cls : kClasses) {
        int units = m.unitCount(cls);
        if (units == 0 && used[cls] == 0)
            continue;
        ClassUtilization u;
        u.cls = cls;
        u.slotsUsed = used[cls];
        u.slotsAvailable = units * s.ii;
        out.push_back(u);
    }
    return out;
}

std::string
dumpSchedule(const DepGraph &g, const ModuloSchedule &s,
             const MachineModel &m)
{
    SPS_ASSERT(s.ok, "dump of failed schedule");
    std::ostringstream os;
    os << "II=" << s.ii << " stages=" << s.stages
       << " length=" << s.length << "\n";

    // Issue table: one line per cycle of the kernel body, ops grouped
    // by class.
    int max_cycle = 0;
    for (int t : s.issueCycle)
        max_cycle = std::max(max_cycle, t);
    for (int t = 0; t <= max_cycle; ++t) {
        os << "  c" << t;
        if (t % s.ii == 0 && t > 0)
            os << " (stage " << t / s.ii << ")";
        os << ":";
        bool any = false;
        for (int i = 0; i < g.nodeCount(); ++i) {
            if (s.issueCycle[i] != t)
                continue;
            os << " " << isa::mnemonic(g.nodes[i].code) << "@"
               << className(g.nodes[i].cls);
            any = true;
        }
        if (!any)
            os << " .";
        os << "\n";
    }

    os << "utilization:";
    for (const auto &u : scheduleUtilization(g, s, m)) {
        os << " " << className(u.cls) << "="
           << static_cast<int>(100 * u.fraction() + 0.5) << "%";
    }
    os << "\n";
    return os.str();
}

} // namespace sps::sched
