/**
 * @file
 * Loop unrolling of kernel bodies. The paper notes that "more loop
 * unrolling is often used with higher N to provide more ILP"; the
 * kernel performance model tries several unroll factors and keeps the
 * best initiation interval per original iteration.
 */
#ifndef SPS_SCHED_UNROLL_H
#define SPS_SCHED_UNROLL_H

#include "kernel/ir.h"

namespace sps::sched {

/**
 * Replicate the kernel body `factor` times. Loop-carried values are
 * rewired: a phi of distance d in replica j reads replica (j - d) of
 * its source directly when j >= d, and otherwise becomes a phi of
 * distance ceil((d - j) / factor) on replica ((j - d) mod factor).
 * Side-effect token chains are threaded across replicas.
 *
 * Unrolled kernels are *scheduling artifacts*: stream accesses keep
 * their original record addressing, so they are compiled (to measure
 * resource usage and II) but never functionally interpreted.
 */
kernel::Kernel unrollKernel(const kernel::Kernel &k, int factor);

} // namespace sps::sched

#endif // SPS_SCHED_UNROLL_H
