/**
 * @file
 * Lower bounds on the initiation interval of a modulo schedule:
 * ResMII (resource-constrained) and RecMII (recurrence-constrained).
 */
#ifndef SPS_SCHED_MII_H
#define SPS_SCHED_MII_H

#include "sched/depgraph.h"

namespace sps::sched {

/** Resource-constrained minimum initiation interval. */
int resMii(const DepGraph &g, const MachineModel &m);

/**
 * Recurrence-constrained minimum initiation interval: the smallest II
 * such that no dependence cycle has positive slack deficit, found by
 * binary search over a longest-path feasibility check.
 */
int recMii(const DepGraph &g);

/** max(resMii, recMii). */
int minII(const DepGraph &g, const MachineModel &m);

} // namespace sps::sched

#endif // SPS_SCHED_MII_H
