/**
 * @file
 * Human-readable rendering of a modulo schedule: the kernel's VLIW
 * issue table (cycle x functional unit class), annotated with II,
 * stage count, and per-class utilization. Intended for debugging
 * kernels and for the examples' output.
 */
#ifndef SPS_SCHED_SCHEDULE_DUMP_H
#define SPS_SCHED_SCHEDULE_DUMP_H

#include <string>

#include "sched/depgraph.h"
#include "sched/modulo.h"

namespace sps::sched {

/** Render one iteration's issue table plus summary lines. */
std::string dumpSchedule(const DepGraph &g, const ModuloSchedule &s,
                         const MachineModel &m);

/** Per-class issue-slot utilization of the steady-state loop. */
struct ClassUtilization
{
    isa::FuClass cls;
    int slotsUsed = 0;
    int slotsAvailable = 0;

    double
    fraction() const
    {
        return slotsAvailable > 0
                   ? static_cast<double>(slotsUsed) / slotsAvailable
                   : 0.0;
    }
};

/** Utilization per functional-unit class at the schedule's II. */
std::vector<ClassUtilization>
scheduleUtilization(const DepGraph &g, const ModuloSchedule &s,
                    const MachineModel &m);

} // namespace sps::sched

#endif // SPS_SCHED_SCHEDULE_DUMP_H
