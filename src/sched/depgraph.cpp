#include "sched/depgraph.h"

#include "common/log.h"

namespace sps::sched {

using isa::FuClass;
using isa::Opcode;
using kernel::Kernel;
using kernel::kNoValue;
using kernel::ValueId;

namespace {

/** A resolved dependence source: real node plus accumulated distance. */
struct Source
{
    int node;
    int distance;
};

/**
 * Resolve a value id to its real producing node, walking through phi
 * nodes and accumulating their distances. Constants and other pseudo
 * leaves resolve to nothing (always available).
 */
void
resolve(const Kernel &k, const std::vector<int> &node_of, ValueId v,
        int dist, std::vector<Source> &out, int depth = 0)
{
    SPS_ASSERT(depth < 64, "phi chain too deep (cycle of phis?)");
    const kernel::Op &op = k.op(v);
    if (op.code == Opcode::Phi) {
        SPS_ASSERT(op.args[0] != kNoValue,
                   "kernel %s: phi %d has no source", k.name.c_str(), v);
        resolve(k, node_of, op.args[0], dist + op.distance, out,
                depth + 1);
        return;
    }
    int n = node_of[static_cast<size_t>(v)];
    if (n >= 0)
        out.push_back(Source{n, dist});
    // else: pseudo leaf (constant, loop index, ...), no dependence.
}

} // namespace

DepGraph
buildDepGraph(const Kernel &k, const MachineModel &m)
{
    DepGraph g;
    std::vector<int> node_of(k.ops.size(), -1);

    for (size_t i = 0; i < k.ops.size(); ++i) {
        const kernel::Op &op = k.ops[i];
        FuClass cls = m.issueClass(op.code);
        if (cls == FuClass::None)
            continue;
        SPS_ASSERT(m.unitCount(cls) >= 1,
                   "kernel %s not executable: no unit for %s",
                   k.name.c_str(),
                   std::string(isa::mnemonic(op.code)).c_str());
        isa::OpTiming t = m.timing(op.code);
        DepNode node;
        node.code = op.code;
        node.kernelOp = static_cast<ValueId>(i);
        node.latency = t.latency;
        node.issueInterval = t.issueInterval;
        node.cls = cls;
        node_of[i] = g.nodeCount();
        g.nodes.push_back(node);
    }

    auto add_edge = [&](int from, int to, int lat, int dist) {
        g.edges.push_back(DepEdge{from, to, lat, dist});
    };

    for (size_t i = 0; i < k.ops.size(); ++i) {
        const kernel::Op &op = k.ops[i];
        int to = node_of[i];
        if (to < 0)
            continue;
        std::vector<Source> sources;
        for (ValueId a : op.args)
            resolve(k, node_of, a, 0, sources);
        for (const Source &s : sources)
            add_edge(s.node, to, g.nodes[s.node].latency, s.distance);
        for (ValueId t : op.orderAfter) {
            int from = node_of[static_cast<size_t>(t)];
            if (from < 0)
                continue;
            // Serializing token: a scratchpad read after a write must
            // wait for the write to land; other tokens just force
            // issue order.
            bool wr_rd = k.op(t).code == Opcode::SpWrite &&
                         op.code == Opcode::SpRead;
            add_edge(from, to, wr_rd ? g.nodes[from].latency : 1, 0);
        }
    }

    g.succ.assign(g.nodes.size(), {});
    g.pred.assign(g.nodes.size(), {});
    for (size_t e = 0; e < g.edges.size(); ++e) {
        g.succ[g.edges[e].from].push_back(static_cast<int>(e));
        g.pred[g.edges[e].to].push_back(static_cast<int>(e));
    }
    return g;
}

} // namespace sps::sched
