/**
 * @file
 * The per-cluster machine resource and timing model used by the VLIW
 * scheduler. Built from a (C, N) machine size plus the VLSI cost model:
 * functional-unit counts come from the FU mix policy and the paper's
 * G* ratios, and communication latencies come from the Section 4 delay
 * analysis (extra intracluster pipeline stages once the switch
 * traversal exceeds half a cycle; intercluster COMM latency from the
 * intercluster delay model).
 */
#ifndef SPS_SCHED_MACHINE_H
#define SPS_SCHED_MACHINE_H

#include "isa/fu_mix.h"
#include "isa/latency.h"
#include "isa/opcode.h"
#include "kernel/ir.h"
#include "vlsi/cost_model.h"

namespace sps::sched {

/**
 * Scheduling-visible machine description for one cluster of a (C, N)
 * stream processor.
 */
class MachineModel
{
  public:
    /** Build from a machine size using the given cost model. */
    MachineModel(vlsi::MachineSize size, const vlsi::CostModel &model);

    /** Convenience: build with the default Imagine-parameter model. */
    static MachineModel forSize(vlsi::MachineSize size);

    const vlsi::MachineSize &size() const { return size_; }
    const isa::FuMix &mix() const { return mix_; }

    /** Number of units available for a functional-unit class. */
    int unitCount(isa::FuClass cls) const;

    /**
     * The class whose issue slots an opcode occupies on this machine.
     * Divide/sqrt map to the multipliers when the cluster has no
     * dedicated DSQ unit.
     */
    isa::FuClass issueClass(isa::Opcode op) const;

    /** Adjusted operation timing for this machine size. */
    isa::OpTiming timing(isa::Opcode op) const;

    /** Extra pipeline stages added for intracluster switch traversal. */
    int intraExtraStages() const { return intraExtraStages_; }
    /** Operation latency (cycles) of an intercluster communication. */
    int commLatency() const { return commLatency_; }

    /**
     * True if the kernel's operations can all be issued on this
     * machine (e.g. an N=1 cluster has no multiplier).
     */
    bool canExecute(const kernel::Kernel &k) const;

  private:
    vlsi::MachineSize size_;
    isa::FuMix mix_;
    int spUnits_ = 1;
    int commUnits_ = 1;
    int sbPorts_ = 1;
    int intraExtraStages_ = 0;
    int commLatency_ = 2;
};

} // namespace sps::sched

#endif // SPS_SCHED_MACHINE_H
