/**
 * @file
 * The shared, memoized schedule cache: compileKernel() results keyed by
 * (kernel fingerprint, machine configuration hash, compile options).
 * Every design-space sweep in the evaluation stack revisits the same
 * (kernel, machine) pairs -- across figures, benches, repeated grid
 * points, and the simulator's per-invocation compiles -- so a kernel
 * compiled once for a given MachineSize / FU mix is never recompiled.
 *
 * Thread safety: get() may be called concurrently from any number of
 * threads; a given key is compiled exactly once (concurrent requests
 * for the same key block on the winner). Returned references stay
 * valid until clear(), which must not race in-flight get() calls or
 * outstanding references.
 */
#ifndef SPS_SCHED_SCHEDULE_CACHE_H
#define SPS_SCHED_SCHEDULE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sched/kernel_perf.h"

namespace sps::sched {

/**
 * FNV-1a hash of every machine property the scheduler can observe:
 * C, N, the per-class unit counts, the extra intracluster pipeline
 * stages, and the COMM latency. Two MachineModels with equal hashes
 * schedule any kernel identically (opcode timings derive from these
 * plus static base timings).
 */
uint64_t machineConfigHash(const MachineModel &m);

/**
 * Structural fingerprint of a kernel graph: name, data class, stream
 * signature, and the full op list (opcodes, operands, immediates,
 * ordering edges). Distinguishes same-named kernels with different
 * bodies (e.g. QRD's housegen, specialized per cluster count).
 */
uint64_t kernelFingerprint(const kernel::Kernel &k);

/** Hash of the compile options that shape the schedule. */
uint64_t compileOptionsHash(const CompileOptions &opts);

class ScheduleCache
{
  public:
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    /**
     * The compiled schedule for (k, m, opts), compiling on first use.
     * A call that performs the compilation counts as a miss; every
     * other call (including ones that waited on a concurrent winner)
     * counts as a hit.
     */
    const CompiledKernel &get(const kernel::Kernel &k,
                              const MachineModel &m,
                              const CompileOptions &opts = {});

    Counters counters() const;
    size_t size() const;

    /** Drop all entries and reset the counters (not concurrency-safe
     *  against in-flight get() calls or live references). */
    void clear();

    /** The process-wide cache shared by designs, sims, and engines. */
    static ScheduleCache &global();

  private:
    struct Key
    {
        uint64_t kernelHash = 0;
        uint64_t machineHash = 0;
        uint64_t optionsHash = 0;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        size_t operator()(const Key &k) const
        {
            uint64_t h = k.kernelHash;
            h ^= k.machineHash + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
            h ^= k.optionsHash + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
            return static_cast<size_t>(h);
        }
    };
    struct Entry
    {
        std::once_flag once;
        CompiledKernel ck;
    };

    mutable std::mutex mu_;
    std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> map_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace sps::sched

#endif // SPS_SCHED_SCHEDULE_CACHE_H
