/**
 * @file
 * The shared, memoized schedule cache: compileKernel() results keyed by
 * (kernel fingerprint, machine configuration hash, compile options).
 * Every design-space sweep in the evaluation stack revisits the same
 * (kernel, machine) pairs -- across figures, benches, repeated grid
 * points, and the simulator's per-invocation compiles -- so a kernel
 * compiled once for a given MachineSize / FU mix is never recompiled.
 *
 * With a store::ResultStore attached (attachStore), this cache is the
 * *memory tier* of a three-tier lookup: memory -> disk -> compile. A
 * memory miss first consults the disk store (a verified entry decodes
 * without compiling and counts as a diskHit); a computed schedule is
 * written back so every later process pointed at the same store
 * directory starts warm.
 *
 * Thread safety: get() may be called concurrently from any number of
 * threads; a given key is compiled exactly once (concurrent requests
 * for the same key block on the winner). Returned references stay
 * valid for the cache's whole lifetime: clear() swaps the live map
 * out under the lock and retires it instead of destroying entries, so
 * it never invalidates in-flight get() calls or references obtained
 * before the clear (retired entries are only freed when the cache
 * itself is destroyed).
 */
#ifndef SPS_SCHED_SCHEDULE_CACHE_H
#define SPS_SCHED_SCHEDULE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/kernel_perf.h"

namespace sps::store {
class ResultStore;
}

namespace sps::obs {
class MetricsRegistry;
class Histogram;
}

namespace sps::sched {

/**
 * FNV-1a hash of every machine property the scheduler can observe:
 * C, N, the per-class unit counts, the extra intracluster pipeline
 * stages, and the COMM latency. Two MachineModels with equal hashes
 * schedule any kernel identically (opcode timings derive from these
 * plus static base timings).
 */
uint64_t machineConfigHash(const MachineModel &m);

/**
 * Structural fingerprint of a kernel graph: name, data class, stream
 * signature, and the full op list (opcodes, operands, immediates,
 * ordering edges). Distinguishes same-named kernels with different
 * bodies (e.g. QRD's housegen, specialized per cluster count).
 */
uint64_t kernelFingerprint(const kernel::Kernel &k);

/** Hash of the compile options that shape the schedule. */
uint64_t compileOptionsHash(const CompileOptions &opts);

class ScheduleCache
{
  public:
    struct Counters
    {
        /** Calls served from the in-memory map (including waiters on
         *  a concurrent winner). */
        uint64_t hits = 0;
        /** Calls that actually compiled (the true compile count). */
        uint64_t misses = 0;
        /** Calls served by decoding an attached disk store's entry
         *  (no compilation performed). */
        uint64_t diskHits = 0;
    };

    /**
     * The compiled schedule for (k, m, opts), compiling on first use.
     * A call that performs the compilation counts as a miss; a call
     * whose entry was decoded from the attached store counts as a
     * diskHit; every other call (including ones that waited on a
     * concurrent winner) counts as a hit.
     */
    const CompiledKernel &get(const kernel::Kernel &k,
                              const MachineModel &m,
                              const CompileOptions &opts = {});

    /**
     * Attach (or detach, with nullptr) the persistent disk tier. The
     * store must outlive the cache or a later attachStore(nullptr).
     * Safe to call concurrently with get(); in-flight lookups keep
     * using the pointer they sampled.
     */
    void attachStore(store::ResultStore *s);
    store::ResultStore *attachedStore() const;

    /**
     * Publish this cache's telemetry into `registry`: a compile
     * duration histogram (observed on every true compile from then
     * on) and a snapshot collector exporting the cumulative Counters
     * plus the entry count as gauges. Same lifetime contract as
     * ResultStore::attachMetrics; nullptr detaches the histogram.
     */
    void attachMetrics(obs::MetricsRegistry *registry);

    Counters counters() const;
    size_t size() const;

    /**
     * Forget all entries and reset the counters. Concurrency-safe:
     * the map is swapped out under the lock and retired rather than
     * destroyed, so in-flight get() calls and previously returned
     * references stay valid; retired entries are freed only when the
     * cache is destroyed. The attached store (if any) is unaffected,
     * so a clear() followed by get() re-hits the disk tier.
     */
    void clear();

    /** The process-wide cache shared by designs, sims, and engines. */
    static ScheduleCache &global();

  private:
    struct Key
    {
        uint64_t kernelHash = 0;
        uint64_t machineHash = 0;
        uint64_t optionsHash = 0;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        size_t operator()(const Key &k) const
        {
            uint64_t h = k.kernelHash;
            h ^= k.machineHash + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
            h ^= k.optionsHash + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
            return static_cast<size_t>(h);
        }
    };
    struct Entry
    {
        std::once_flag once;
        CompiledKernel ck;
    };
    using Map = std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash>;

    mutable std::mutex mu_;
    Map map_;
    /** Maps swapped out by clear(): keeps retired entries (and thus
     *  outstanding references) alive until the cache is destroyed. */
    std::vector<Map> retired_;
    /** Optional persistent tier (guarded by mu_ for pointer access). */
    store::ResultStore *store_ = nullptr;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> diskHits_{0};
    /** Compile-duration histogram (null until attachMetrics). */
    std::atomic<obs::Histogram *> compileUs_{nullptr};
};

} // namespace sps::sched

#endif // SPS_SCHED_SCHEDULE_CACHE_H
