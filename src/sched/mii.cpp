#include "sched/mii.h"

#include <algorithm>
#include <array>
#include <map>

#include "common/log.h"

namespace sps::sched {

using isa::FuClass;

int
resMii(const DepGraph &g, const MachineModel &m)
{
    // Sum the issue-slot demand per class (non-pipelined operations
    // occupy issueInterval slots) and divide by the unit count.
    std::map<FuClass, int> demand;
    for (const DepNode &n : g.nodes)
        demand[n.cls] += n.issueInterval;
    int mii = 1;
    for (const auto &[cls, slots] : demand) {
        int units = m.unitCount(cls);
        SPS_ASSERT(units >= 1, "no units for class %d",
                   static_cast<int>(cls));
        mii = std::max(mii, (slots + units - 1) / units);
    }
    return mii;
}

namespace {

/**
 * Feasibility of an II with respect to recurrences: no cycle may have
 * total latency exceeding II * total distance. Checked with a
 * Bellman-Ford-style relaxation on edge weights (lat - II*dist);
 * a positive-weight cycle means infeasible.
 */
bool
recurrenceFeasible(const DepGraph &g, int ii)
{
    int n = g.nodeCount();
    std::vector<int64_t> dist(static_cast<size_t>(n), 0);
    for (int iter = 0; iter <= n; ++iter) {
        bool changed = false;
        for (const DepEdge &e : g.edges) {
            int64_t w = e.latency - static_cast<int64_t>(ii) * e.distance;
            if (dist[e.from] + w > dist[e.to]) {
                dist[e.to] = dist[e.from] + w;
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    // Still relaxing after n iterations: positive cycle.
    return false;
}

} // namespace

int
recMii(const DepGraph &g)
{
    // Only loop-carried edges can close cycles; without any, RecMII=1.
    bool has_back_edge = false;
    int64_t lat_sum = 1;
    for (const DepEdge &e : g.edges) {
        if (e.distance > 0)
            has_back_edge = true;
        lat_sum += e.latency;
    }
    if (!has_back_edge)
        return 1;
    int lo = 1;
    int hi = static_cast<int>(std::min<int64_t>(lat_sum, 1 << 20));
    SPS_ASSERT(recurrenceFeasible(g, hi),
               "recurrence infeasible even at II=%d", hi);
    while (lo < hi) {
        int mid = lo + (hi - lo) / 2;
        if (recurrenceFeasible(g, mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

int
minII(const DepGraph &g, const MachineModel &m)
{
    return std::max(resMii(g, m), recMii(g));
}

} // namespace sps::sched
