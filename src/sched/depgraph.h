/**
 * @file
 * The scheduler's dependence graph. Built from a kernel's dataflow
 * graph: pseudo-operations (constants, indices) are free and elided;
 * phi nodes are eliminated by turning each (source -> phi -> user)
 * chain into a direct loop-carried edge with the phi's distance; token
 * edges serialize side effects.
 */
#ifndef SPS_SCHED_DEPGRAPH_H
#define SPS_SCHED_DEPGRAPH_H

#include <vector>

#include "kernel/ir.h"
#include "sched/machine.h"

namespace sps::sched {

/** One dependence: to must issue >= lat cycles after from, distance
 *  iterations later. */
struct DepEdge
{
    int from = 0;
    int to = 0;
    int latency = 0;
    int distance = 0;
};

/** A schedulable node: one kernel operation that occupies a unit. */
struct DepNode
{
    isa::Opcode code = isa::Opcode::IAdd;
    kernel::ValueId kernelOp = kernel::kNoValue;
    int latency = 1;
    int issueInterval = 1;
    isa::FuClass cls = isa::FuClass::Adder;
};

/** The full graph with forward/backward adjacency. */
struct DepGraph
{
    std::vector<DepNode> nodes;
    std::vector<DepEdge> edges;
    std::vector<std::vector<int>> succ; // edge indices by from-node
    std::vector<std::vector<int>> pred; // edge indices by to-node

    int nodeCount() const { return static_cast<int>(nodes.size()); }
};

/** Build the dependence graph of a kernel for a machine. */
DepGraph buildDepGraph(const kernel::Kernel &k, const MachineModel &m);

} // namespace sps::sched

#endif // SPS_SCHED_DEPGRAPH_H
