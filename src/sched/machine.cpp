#include "sched/machine.h"

#include <algorithm>

#include "common/log.h"

namespace sps::sched {

using isa::FuClass;
using isa::Opcode;
using isa::OpTiming;

MachineModel::MachineModel(vlsi::MachineSize size,
                           const vlsi::CostModel &model)
    : size_(size), mix_(isa::mixFor(size.alusPerCluster))
{
    vlsi::DerivedCounts d = model.derive(size.alusPerCluster);
    spUnits_ = d.nSp;
    commUnits_ = d.nComm;
    sbPorts_ = d.nClSb;
    intraExtraStages_ = model.intraPipeStages(size.alusPerCluster);
    // A sparse crossbar (connectivity < 0.5) occasionally needs a
    // second hop to reach an unconnected input; charge one extra
    // forwarding stage for it.
    if (model.params().xbarConnectivity < 0.5)
        intraExtraStages_ += 1;
    // COMM operation latency: the baseline 2-cycle operation plus the
    // pipelined intercluster traversal beyond the first cycle.
    commLatency_ = std::max(
        isa::baseTiming(Opcode::CommPerm).latency,
        1 + model.interCommCycles(size));
}

MachineModel
MachineModel::forSize(vlsi::MachineSize size)
{
    static const vlsi::CostModel model{vlsi::Params::imagine()};
    return MachineModel(size, model);
}

int
MachineModel::unitCount(FuClass cls) const
{
    switch (cls) {
      case FuClass::Adder:
        return mix_.adders;
      case FuClass::Multiplier:
        return mix_.multipliers;
      case FuClass::Dsq:
        return mix_.dsq;
      case FuClass::Scratchpad:
        return spUnits_;
      case FuClass::Comm:
        return commUnits_;
      case FuClass::SbPort:
        return sbPorts_;
      case FuClass::None:
        return 0;
    }
    return 0;
}

FuClass
MachineModel::issueClass(Opcode op) const
{
    FuClass cls = isa::fuClassOf(op);
    if (cls == FuClass::Dsq && mix_.dsq == 0)
        return FuClass::Multiplier;
    return cls;
}

OpTiming
MachineModel::timing(Opcode op) const
{
    OpTiming t = isa::baseTiming(op);
    FuClass cls = isa::fuClassOf(op);
    if (cls == FuClass::None)
        return t;
    if (cls == FuClass::Comm) {
        t.latency = commLatency_;
    } else if (cls == FuClass::Dsq && mix_.dsq == 0) {
        // Iterative divide/sqrt microcoded on a multiplier: double
        // latency, and the multiplier is blocked for the duration.
        t.latency *= 2;
        t.issueInterval = t.latency;
    }
    // Results of every real unit cross the intracluster switch; when
    // the traversal exceeds the half-cycle budget, every operation
    // gains pipeline stages (Section 5: "an additional pipeline stage
    // was added to ALU operations and streambuffer reads").
    t.latency += intraExtraStages_;
    return t;
}

bool
MachineModel::canExecute(const kernel::Kernel &k) const
{
    for (const auto &op : k.ops) {
        FuClass cls = issueClass(op.code);
        if (cls == FuClass::None)
            continue;
        if (unitCount(cls) < 1)
            return false;
    }
    return true;
}

} // namespace sps::sched
