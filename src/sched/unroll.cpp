#include "sched/unroll.h"

#include "common/log.h"
#include "kernel/validate.h"

namespace sps::sched {

using kernel::Kernel;
using kernel::kNoValue;
using kernel::Op;
using kernel::ValueId;
using isa::Opcode;

Kernel
unrollKernel(const Kernel &k, int factor)
{
    SPS_ASSERT(factor >= 1, "unroll factor must be >= 1");
    if (factor == 1)
        return k;

    Kernel out;
    out.name = k.name + "_x" + std::to_string(factor);
    out.dataClass = k.dataClass;
    out.streams = k.streams;
    out.lengthDriver = k.lengthDriver;
    out.scratchpadWords = k.scratchpadWords;

    const auto nops = static_cast<ValueId>(k.ops.size());
    // map[j][i]: id of replica j of original op i.
    std::vector<std::vector<ValueId>> map(
        static_cast<size_t>(factor),
        std::vector<ValueId>(static_cast<size_t>(nops), kNoValue));

    // Phis whose source must be fixed up after all replicas exist:
    // (new phi id, original source id, source replica).
    struct PhiFixup
    {
        ValueId phi;
        ValueId src;
        int replica;
    };
    std::vector<PhiFixup> fixups;

    for (int j = 0; j < factor; ++j) {
        for (ValueId i = 0; i < nops; ++i) {
            const Op &op = k.op(i);
            Op copy = op;
            copy.args.clear();
            copy.orderAfter.clear();

            if (op.code == Opcode::Phi) {
                SPS_ASSERT(op.args[0] != kNoValue,
                           "unroll: phi without source");
                int d = op.distance;
                if (j - d >= 0) {
                    // Same unrolled iteration: forward directly to the
                    // earlier replica of the source; the phi vanishes.
                    map[static_cast<size_t>(j)][static_cast<size_t>(i)] =
                        map[static_cast<size_t>(j - d)]
                           [static_cast<size_t>(op.args[0])];
                    continue;
                }
                int src_replica =
                    ((j - d) % factor + factor) % factor;
                int new_dist = (d - j + factor - 1) / factor;
                copy.distance = new_dist;
                copy.args.push_back(kNoValue);
                out.ops.push_back(copy);
                ValueId nid = static_cast<ValueId>(out.ops.size()) - 1;
                map[static_cast<size_t>(j)][static_cast<size_t>(i)] = nid;
                fixups.push_back(PhiFixup{nid, op.args[0], src_replica});
                continue;
            }

            for (ValueId a : op.args) {
                ValueId na =
                    map[static_cast<size_t>(j)][static_cast<size_t>(a)];
                SPS_ASSERT(na != kNoValue, "unroll: unmapped operand");
                copy.args.push_back(na);
            }
            for (ValueId t : op.orderAfter) {
                ValueId nt =
                    map[static_cast<size_t>(j)][static_cast<size_t>(t)];
                if (nt != kNoValue)
                    copy.orderAfter.push_back(nt);
            }
            out.ops.push_back(copy);
            map[static_cast<size_t>(j)][static_cast<size_t>(i)] =
                static_cast<ValueId>(out.ops.size()) - 1;
        }

        // Thread side-effect chains from replica j-1 into replica j:
        // the first SP / per-stream op of this replica must follow the
        // last one of the previous replica.
        if (j > 0) {
            ValueId prev_sp = kNoValue, first_sp = kNoValue;
            std::vector<ValueId> prev_stream(k.streams.size(), kNoValue);
            std::vector<ValueId> first_stream(k.streams.size(), kNoValue);
            for (ValueId i = 0; i < nops; ++i) {
                const Op &op = k.op(i);
                ValueId pid =
                    map[static_cast<size_t>(j - 1)][static_cast<size_t>(i)];
                ValueId cid =
                    map[static_cast<size_t>(j)][static_cast<size_t>(i)];
                if (isa::isSpAccess(op.code)) {
                    if (pid != kNoValue)
                        prev_sp = pid;
                    if (cid != kNoValue && first_sp == kNoValue)
                        first_sp = cid;
                }
                if (isa::isSrfAccess(op.code)) {
                    auto s = static_cast<size_t>(op.stream);
                    if (pid != kNoValue)
                        prev_stream[s] = pid;
                    if (cid != kNoValue && first_stream[s] == kNoValue)
                        first_stream[s] = cid;
                }
            }
            if (first_sp != kNoValue && prev_sp != kNoValue)
                out.ops[static_cast<size_t>(first_sp)]
                    .orderAfter.push_back(prev_sp);
            for (size_t s = 0; s < k.streams.size(); ++s) {
                if (first_stream[s] != kNoValue &&
                    prev_stream[s] != kNoValue)
                    out.ops[static_cast<size_t>(first_stream[s])]
                        .orderAfter.push_back(prev_stream[s]);
            }
        }
    }

    for (const PhiFixup &f : fixups) {
        ValueId src = map[static_cast<size_t>(f.replica)]
                         [static_cast<size_t>(f.src)];
        SPS_ASSERT(src != kNoValue, "unroll: unmapped phi source");
        out.ops[static_cast<size_t>(f.phi)].args[0] = src;
    }

    kernel::validateKernel(out);
    return out;
}

} // namespace sps::sched
