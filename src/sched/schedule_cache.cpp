#include "sched/schedule_cache.h"

#include "common/fnv.h"
#include "kernel/fingerprint.h"
#include "obs/metrics.h"
#include "store/result_store.h"

namespace sps::sched {

uint64_t
machineConfigHash(const MachineModel &m)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(m.size().clusters));
    f.mix(static_cast<uint64_t>(m.size().alusPerCluster));
    for (isa::FuClass cls :
         {isa::FuClass::Adder, isa::FuClass::Multiplier,
          isa::FuClass::Dsq, isa::FuClass::Scratchpad,
          isa::FuClass::Comm, isa::FuClass::SbPort})
        f.mix(static_cast<uint64_t>(m.unitCount(cls)));
    f.mix(static_cast<uint64_t>(m.intraExtraStages()));
    f.mix(static_cast<uint64_t>(m.commLatency()));
    return f.h;
}

uint64_t
kernelFingerprint(const kernel::Kernel &k)
{
    return kernel::fingerprint(k);
}

uint64_t
compileOptionsHash(const CompileOptions &opts)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(opts.unrollFactors.size()));
    for (int u : opts.unrollFactors)
        f.mix(static_cast<uint64_t>(u));
    f.mix(static_cast<uint64_t>(opts.maxOps));
    return f.h;
}

const CompiledKernel &
ScheduleCache::get(const kernel::Kernel &k, const MachineModel &m,
                   const CompileOptions &opts)
{
    Key key{kernelFingerprint(k), machineConfigHash(m),
            compileOptionsHash(opts)};
    std::shared_ptr<Entry> entry;
    store::ResultStore *disk = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
        disk = store_;
    }
    // Compile outside the map lock so distinct keys compile in
    // parallel; call_once makes concurrent same-key requests block on
    // the single winner. The winner consults the disk tier first: a
    // verified store entry decodes instead of compiling, and a fresh
    // compilation is written back for future processes.
    enum { kMemory, kCompiled, kDisk } outcome = kMemory;
    std::call_once(entry->once, [&] {
        store::Key skey{store::Kind::Schedule, key.kernelHash,
                        key.machineHash, key.optionsHash};
        if (disk && disk->loadSchedule(skey, &entry->ck)) {
            outcome = kDisk;
            return;
        }
        uint64_t t0 = obs::monotonicMicros();
        entry->ck = compileKernel(k, m, opts);
        if (obs::Histogram *h =
                compileUs_.load(std::memory_order_relaxed))
            h->observe(obs::monotonicMicros() - t0);
        outcome = kCompiled;
        if (disk)
            disk->storeSchedule(skey, entry->ck);
    });
    switch (outcome) {
    case kCompiled:
        misses_.fetch_add(1, std::memory_order_relaxed);
        break;
    case kDisk:
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        break;
    case kMemory:
        hits_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return entry->ck;
}

void
ScheduleCache::attachStore(store::ResultStore *s)
{
    std::lock_guard<std::mutex> lock(mu_);
    store_ = s;
}

store::ResultStore *
ScheduleCache::attachedStore() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return store_;
}

void
ScheduleCache::attachMetrics(obs::MetricsRegistry *registry)
{
    if (!registry) {
        compileUs_.store(nullptr, std::memory_order_relaxed);
        return;
    }
    compileUs_.store(
        registry->histogram("sps_sched_compile_duration_us", "",
                            "Kernel compilation latency (us)"),
        std::memory_order_relaxed);
    registry->addCollector([this, registry] {
        Counters c = counters();
        registry
            ->gauge("sps_sched_cache_hits", "",
                    "Schedule cache in-memory hits")
            ->set(static_cast<int64_t>(c.hits));
        registry->gauge("sps_sched_cache_disk_hits", "")
            ->set(static_cast<int64_t>(c.diskHits));
        registry->gauge("sps_sched_cache_compiles", "")
            ->set(static_cast<int64_t>(c.misses));
        registry->gauge("sps_sched_cache_entries", "")
            ->set(static_cast<int64_t>(size()));
    });
}

ScheduleCache::Counters
ScheduleCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed),
                    diskHits_.load(std::memory_order_relaxed)};
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Retire the map instead of destroying it: entries (and the
    // CompiledKernel references handed out from them) stay alive
    // until the cache itself is destroyed, so clear() cannot race
    // in-flight get() calls or invalidate outstanding references.
    retired_.push_back(std::move(map_));
    map_ = Map{};
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    diskHits_.store(0, std::memory_order_relaxed);
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache cache;
    return cache;
}

} // namespace sps::sched
