#include "sched/schedule_cache.h"

namespace sps::sched {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

struct Fnv
{
    uint64_t h = kFnvOffset;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= kFnvPrime;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(static_cast<uint64_t>(s.size()));
        for (char c : s) {
            h ^= static_cast<uint8_t>(c);
            h *= kFnvPrime;
        }
    }
};

} // namespace

uint64_t
machineConfigHash(const MachineModel &m)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(m.size().clusters));
    f.mix(static_cast<uint64_t>(m.size().alusPerCluster));
    for (isa::FuClass cls :
         {isa::FuClass::Adder, isa::FuClass::Multiplier,
          isa::FuClass::Dsq, isa::FuClass::Scratchpad,
          isa::FuClass::Comm, isa::FuClass::SbPort})
        f.mix(static_cast<uint64_t>(m.unitCount(cls)));
    f.mix(static_cast<uint64_t>(m.intraExtraStages()));
    f.mix(static_cast<uint64_t>(m.commLatency()));
    return f.h;
}

uint64_t
kernelFingerprint(const kernel::Kernel &k)
{
    Fnv f;
    f.mix(k.name);
    f.mix(static_cast<uint64_t>(k.dataClass));
    f.mix(static_cast<uint64_t>(k.lengthDriver));
    f.mix(static_cast<uint64_t>(k.scratchpadWords));
    f.mix(static_cast<uint64_t>(k.streams.size()));
    for (const auto &s : k.streams) {
        f.mix(static_cast<uint64_t>(s.dir));
        f.mix(static_cast<uint64_t>(s.recordWords));
        f.mix(static_cast<uint64_t>(s.conditional));
    }
    f.mix(static_cast<uint64_t>(k.ops.size()));
    for (const auto &op : k.ops) {
        f.mix(static_cast<uint64_t>(op.code));
        f.mix(static_cast<uint64_t>(op.args.size()));
        for (auto a : op.args)
            f.mix(static_cast<uint64_t>(a));
        f.mix(static_cast<uint64_t>(op.imm.bits));
        f.mix(static_cast<uint64_t>(op.stream));
        f.mix(static_cast<uint64_t>(op.field));
        f.mix(static_cast<uint64_t>(op.distance));
        f.mix(static_cast<uint64_t>(op.init.bits));
        f.mix(static_cast<uint64_t>(op.orderAfter.size()));
        for (auto a : op.orderAfter)
            f.mix(static_cast<uint64_t>(a));
    }
    return f.h;
}

uint64_t
compileOptionsHash(const CompileOptions &opts)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(opts.unrollFactors.size()));
    for (int u : opts.unrollFactors)
        f.mix(static_cast<uint64_t>(u));
    f.mix(static_cast<uint64_t>(opts.maxOps));
    return f.h;
}

const CompiledKernel &
ScheduleCache::get(const kernel::Kernel &k, const MachineModel &m,
                   const CompileOptions &opts)
{
    Key key{kernelFingerprint(k), machineConfigHash(m),
            compileOptionsHash(opts)};
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Compile outside the map lock so distinct keys compile in
    // parallel; call_once makes concurrent same-key requests block on
    // the single winner.
    bool compiled = false;
    std::call_once(entry->once, [&] {
        entry->ck = compileKernel(k, m, opts);
        compiled = true;
    });
    if (compiled)
        misses_.fetch_add(1, std::memory_order_relaxed);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->ck;
}

ScheduleCache::Counters
ScheduleCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache cache;
    return cache;
}

} // namespace sps::sched
