#include "sched/schedule_cache.h"

#include "common/fnv.h"
#include "kernel/fingerprint.h"

namespace sps::sched {

uint64_t
machineConfigHash(const MachineModel &m)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(m.size().clusters));
    f.mix(static_cast<uint64_t>(m.size().alusPerCluster));
    for (isa::FuClass cls :
         {isa::FuClass::Adder, isa::FuClass::Multiplier,
          isa::FuClass::Dsq, isa::FuClass::Scratchpad,
          isa::FuClass::Comm, isa::FuClass::SbPort})
        f.mix(static_cast<uint64_t>(m.unitCount(cls)));
    f.mix(static_cast<uint64_t>(m.intraExtraStages()));
    f.mix(static_cast<uint64_t>(m.commLatency()));
    return f.h;
}

uint64_t
kernelFingerprint(const kernel::Kernel &k)
{
    return kernel::fingerprint(k);
}

uint64_t
compileOptionsHash(const CompileOptions &opts)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(opts.unrollFactors.size()));
    for (int u : opts.unrollFactors)
        f.mix(static_cast<uint64_t>(u));
    f.mix(static_cast<uint64_t>(opts.maxOps));
    return f.h;
}

const CompiledKernel &
ScheduleCache::get(const kernel::Kernel &k, const MachineModel &m,
                   const CompileOptions &opts)
{
    Key key{kernelFingerprint(k), machineConfigHash(m),
            compileOptionsHash(opts)};
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = map_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Compile outside the map lock so distinct keys compile in
    // parallel; call_once makes concurrent same-key requests block on
    // the single winner.
    bool compiled = false;
    std::call_once(entry->once, [&] {
        entry->ck = compileKernel(k, m, opts);
        compiled = true;
    });
    if (compiled)
        misses_.fetch_add(1, std::memory_order_relaxed);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->ck;
}

ScheduleCache::Counters
ScheduleCache::counters() const
{
    return Counters{hits_.load(std::memory_order_relaxed),
                    misses_.load(std::memory_order_relaxed)};
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache cache;
    return cache;
}

} // namespace sps::sched
