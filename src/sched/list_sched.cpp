#include "sched/list_sched.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace sps::sched {

using isa::FuClass;

ListSchedule
listSchedule(const DepGraph &g, const MachineModel &m)
{
    const int n = g.nodeCount();
    ListSchedule out;
    out.issueCycle.assign(static_cast<size_t>(n), -1);
    if (n == 0)
        return out;

    // Critical-path priorities over the same-iteration subgraph.
    std::vector<int64_t> height(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i)
        height[i] = g.nodes[i].latency;
    for (int iter = 0; iter < n; ++iter) {
        bool changed = false;
        for (const DepEdge &e : g.edges) {
            if (e.distance != 0)
                continue;
            int64_t cand = height[e.to] + e.latency;
            if (cand > height[e.from]) {
                height[e.from] = cand;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    std::vector<int> remaining_preds(static_cast<size_t>(n), 0);
    for (const DepEdge &e : g.edges)
        if (e.distance == 0)
            ++remaining_preds[e.to];

    // busyUntil[cls][unit]: next free cycle of each unit instance.
    std::map<FuClass, std::vector<int>> busy;
    for (int i = 0; i < n; ++i) {
        FuClass cls = g.nodes[i].cls;
        if (!busy.count(cls))
            busy[cls].assign(
                static_cast<size_t>(m.unitCount(cls)), 0);
    }

    std::vector<int> ready_at(static_cast<size_t>(n), 0);
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (height[a] != height[b])
            return height[a] > height[b];
        return a < b;
    });

    int placed = 0;
    std::vector<bool> done(static_cast<size_t>(n), false);
    while (placed < n) {
        // Pick the highest-priority ready node.
        int v = -1;
        for (int cand : order) {
            if (!done[cand] && remaining_preds[cand] == 0) {
                v = cand;
                break;
            }
        }
        SPS_ASSERT(v >= 0, "list scheduler deadlock (dependence cycle)");
        auto &units = busy[g.nodes[v].cls];
        // Earliest unit whose availability works.
        int best_unit = 0;
        for (size_t u = 1; u < units.size(); ++u)
            if (units[u] < units[best_unit])
                best_unit = static_cast<int>(u);
        int t = std::max(ready_at[v], units[static_cast<size_t>(
                                          best_unit)]);
        out.issueCycle[static_cast<size_t>(v)] = t;
        units[static_cast<size_t>(best_unit)] =
            t + g.nodes[v].issueInterval;
        out.length =
            std::max(out.length, t + g.nodes[v].latency);
        done[v] = true;
        ++placed;
        for (int e : g.succ[v]) {
            const DepEdge &edge = g.edges[static_cast<size_t>(e)];
            if (edge.distance != 0)
                continue;
            ready_at[edge.to] = std::max(ready_at[edge.to],
                                         t + edge.latency);
            --remaining_preds[edge.to];
        }
    }
    return out;
}

} // namespace sps::sched
