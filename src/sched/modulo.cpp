#include "sched/modulo.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.h"
#include "sched/mii.h"

namespace sps::sched {

using isa::FuClass;

namespace {

/** Budget multiplier: operations tried per node before giving up. */
constexpr int kBudgetPerNode = 32;

/**
 * Height-based priority: longest effective-latency path from each node
 * to any sink, with loop-carried edges weighted lat - ii*dist.
 * Computed by relaxation; converges because ii >= RecMII implies no
 * positive cycles.
 */
std::vector<int64_t>
heights(const DepGraph &g, int ii)
{
    std::vector<int64_t> h(g.nodes.size(), 0);
    for (int i = 0; i < g.nodeCount(); ++i)
        h[i] = g.nodes[i].latency;
    for (int iter = 0; iter <= g.nodeCount(); ++iter) {
        bool changed = false;
        for (const DepEdge &e : g.edges) {
            int64_t w = e.latency - static_cast<int64_t>(ii) * e.distance;
            int64_t cand = h[e.to] + w;
            if (cand > h[e.from]) {
                h[e.from] = cand;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return h;
}

/** Modulo reservation table for one candidate II. */
class Mrt
{
  public:
    Mrt(const MachineModel &m, int ii) : ii_(ii)
    {
        for (FuClass cls :
             {FuClass::Adder, FuClass::Multiplier, FuClass::Dsq,
              FuClass::Scratchpad, FuClass::Comm, FuClass::SbPort}) {
            units_[cls] = m.unitCount(cls);
            table_[cls].assign(static_cast<size_t>(ii), {});
        }
    }

    /** Columns a node occupies when issued at cycle t. */
    int
    occupancy(const DepNode &n) const
    {
        return n.issueInterval;
    }

    bool
    fits(const DepNode &n, int t) const
    {
        const auto &rows = table_.at(n.cls);
        int units = units_.at(n.cls);
        std::map<int, int> extra;
        for (int j = 0; j < occupancy(n); ++j)
            ++extra[(t + j) % ii_];
        for (const auto &[col, cnt] : extra) {
            if (static_cast<int>(rows[static_cast<size_t>(col)].size()) +
                    cnt > units)
                return false;
        }
        return true;
    }

    void
    place(int node, const DepNode &n, int t)
    {
        auto &rows = table_[n.cls];
        for (int j = 0; j < occupancy(n); ++j)
            rows[static_cast<size_t>((t + j) % ii_)].push_back(node);
    }

    void
    remove(int node, const DepNode &n, int t)
    {
        auto &rows = table_[n.cls];
        for (int j = 0; j < occupancy(n); ++j) {
            auto &col = rows[static_cast<size_t>((t + j) % ii_)];
            auto it = std::find(col.begin(), col.end(), node);
            SPS_ASSERT(it != col.end(), "MRT remove of absent node");
            col.erase(it);
        }
    }

    /**
     * Nodes that must be evicted so `n` can be placed at t. Lower-
     * priority occupants are preferred.
     */
    std::vector<int>
    conflicts(const DepNode &n, int t,
              const std::vector<int64_t> &prio) const
    {
        std::set<int> out;
        const auto &rows = table_.at(n.cls);
        int units = units_.at(n.cls);
        std::map<int, int> extra;
        for (int j = 0; j < occupancy(n); ++j)
            ++extra[(t + j) % ii_];
        for (const auto &[col, cnt] : extra) {
            const auto &occupants = rows[static_cast<size_t>(col)];
            int over = static_cast<int>(occupants.size()) + cnt - units;
            if (over <= 0)
                continue;
            // Evict the lowest-priority occupants of this column.
            std::vector<int> sorted(occupants.begin(), occupants.end());
            std::sort(sorted.begin(), sorted.end(),
                      [&](int a, int b) { return prio[a] < prio[b]; });
            for (int i = 0; i < over && i < static_cast<int>(
                                              sorted.size()); ++i)
                out.insert(sorted[static_cast<size_t>(i)]);
        }
        return {out.begin(), out.end()};
    }

  private:
    int ii_;
    std::map<FuClass, int> units_;
    std::map<FuClass, std::vector<std::vector<int>>> table_;
};

bool
tryIms(const DepGraph &g, const MachineModel &m, int ii,
       ModuloSchedule &result)
{
    const int n = g.nodeCount();
    // A non-pipelined operation longer than II cannot repeat every II
    // on one unit unless the class has spare units every column; the
    // fits() accounting handles that, but a single op wider than
    // ii*units can never fit.
    for (const DepNode &node : g.nodes) {
        if (node.issueInterval > ii * m.unitCount(node.cls))
            return false;
    }

    std::vector<int64_t> prio = heights(g, ii);
    std::vector<int> time(static_cast<size_t>(n), -1);
    std::vector<int> prev_time(static_cast<size_t>(n), -1);
    std::vector<bool> scheduled(static_cast<size_t>(n), false);
    Mrt mrt(m, ii);

    // Worklist ordered by (priority desc, id asc).
    auto cmp = [&](int a, int b) {
        if (prio[a] != prio[b])
            return prio[a] > prio[b];
        return a < b;
    };
    std::set<int, decltype(cmp)> work(cmp);
    for (int i = 0; i < n; ++i)
        work.insert(i);

    int64_t budget = static_cast<int64_t>(n) * kBudgetPerNode + 64;
    while (!work.empty()) {
        if (budget-- <= 0)
            return false;
        int v = *work.begin();
        work.erase(work.begin());

        int64_t estart = 0;
        for (int e : g.pred[v]) {
            const DepEdge &edge = g.edges[static_cast<size_t>(e)];
            if (!scheduled[edge.from])
                continue;
            estart = std::max<int64_t>(
                estart, time[edge.from] + edge.latency -
                            static_cast<int64_t>(ii) * edge.distance);
        }
        if (prev_time[v] >= 0 && estart <= prev_time[v])
            estart = prev_time[v] + 1;
        if (estart > (1 << 24))
            return false; // runaway: schedule is diverging

        int slot = -1;
        for (int t = static_cast<int>(estart);
             t < static_cast<int>(estart) + ii; ++t) {
            if (mrt.fits(g.nodes[v], t)) {
                slot = t;
                break;
            }
        }
        if (slot < 0)
            slot = static_cast<int>(estart);

        // Evict resource conflicts.
        for (int w : mrt.conflicts(g.nodes[v], slot, prio)) {
            mrt.remove(w, g.nodes[w], time[w]);
            scheduled[w] = false;
            work.insert(w);
        }
        mrt.place(v, g.nodes[v], slot);
        scheduled[v] = true;
        time[v] = slot;
        prev_time[v] = slot;

        // Evict scheduled successors whose dependence is now violated.
        for (int e : g.succ[v]) {
            const DepEdge &edge = g.edges[static_cast<size_t>(e)];
            int w = edge.to;
            if (w == v || !scheduled[w])
                continue;
            int64_t ready = time[v] + edge.latency -
                            static_cast<int64_t>(ii) * edge.distance;
            if (time[w] < ready) {
                mrt.remove(w, g.nodes[w], time[w]);
                scheduled[w] = false;
                work.insert(w);
            }
        }
    }

    result.ok = true;
    result.ii = ii;
    result.issueCycle = time;
    int max_issue = 0;
    int max_finish = 0;
    for (int i = 0; i < n; ++i) {
        max_issue = std::max(max_issue, time[i]);
        max_finish = std::max(max_finish, time[i] + g.nodes[i].latency);
    }
    result.stages = max_issue / ii + 1;
    result.length = max_finish;
    return true;
}

} // namespace

ModuloSchedule
moduloSchedule(const DepGraph &g, const MachineModel &m, int max_ii)
{
    ModuloSchedule result;
    if (g.nodeCount() == 0) {
        result.ok = true;
        result.ii = 1;
        result.stages = 1;
        result.length = 1;
        return result;
    }
    int mii = minII(g, m);
    if (max_ii <= 0)
        max_ii = mii * 3 + 96;
    for (int ii = mii; ii <= max_ii; ++ii) {
        if (tryIms(g, m, ii, result)) {
            verifyModuloSchedule(g, result);
            return result;
        }
    }
    panic("modulo scheduling failed up to II=%d (MII=%d, %d nodes)",
          max_ii, mii, g.nodeCount());
}

void
verifyModuloSchedule(const DepGraph &g, const ModuloSchedule &s)
{
    SPS_ASSERT(s.ok, "verify of failed schedule");
    for (const DepEdge &e : g.edges) {
        int64_t lhs = s.issueCycle[static_cast<size_t>(e.to)];
        int64_t rhs = s.issueCycle[static_cast<size_t>(e.from)] +
                      e.latency -
                      static_cast<int64_t>(s.ii) * e.distance;
        SPS_ASSERT(lhs >= rhs,
                   "dependence %d->%d violated: t=%lld < %lld", e.from,
                   e.to, static_cast<long long>(lhs),
                   static_cast<long long>(rhs));
    }
}

} // namespace sps::sched
