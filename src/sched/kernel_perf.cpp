#include "sched/kernel_perf.h"

#include <algorithm>

#include "common/log.h"
#include "sched/depgraph.h"
#include "sched/list_sched.h"
#include "sched/unroll.h"

namespace sps::sched {

namespace {
int64_t
pipelinedCycles(int64_t iterations, int ii, int stages, int length)
{
    int64_t tail = std::max<int64_t>(
        0, length - static_cast<int64_t>(stages) * ii);
    return (iterations + stages - 1) * static_cast<int64_t>(ii) + tail;
}
} // namespace

int64_t
CompiledKernel::loopCycles(int64_t iterations) const
{
    if (iterations <= 0)
        return 0;
    int64_t unrolled = (iterations + unroll - 1) / unroll;
    // Candidates: the throughput-optimal unrolled pipeline, the
    // no-unroll pipeline (cheaper priming on short calls), and plain
    // straight-line issue.
    int64_t best = pipelinedCycles(unrolled, ii, stages, length);
    best = std::min(best,
                    pipelinedCycles(iterations, ii1, stages1, length1));
    best = std::min(best, iterations * static_cast<int64_t>(listLength));
    return best;
}

CompiledKernel
compileKernel(const kernel::Kernel &k, const MachineModel &m,
              const CompileOptions &opts)
{
    SPS_ASSERT(m.canExecute(k),
               "kernel %s cannot execute on C=%d N=%d", k.name.c_str(),
               m.size().clusters, m.size().alusPerCluster);
    kernel::Census census = kernel::takeCensus(k);

    CompiledKernel best;
    bool have_best = false;
    int ii1 = 1, stages1 = 1, length1 = 1, list_len = 1;
    for (int u : opts.unrollFactors) {
        if (u < 1 ||
            static_cast<int>(k.ops.size()) * u > opts.maxOps)
            continue;
        kernel::Kernel body = unrollKernel(k, u);
        DepGraph g = buildDepGraph(body, m);
        ModuloSchedule s = moduloSchedule(g, m);

        if (u == 1) {
            ii1 = s.ii;
            stages1 = s.stages;
            length1 = s.length;
            ListSchedule ls = listSchedule(g, m);
            list_len = std::max(1, ls.length);
        }

        CompiledKernel c;
        c.unroll = u;
        c.ii = s.ii;
        c.stages = s.stages;
        c.length = s.length;
        c.aluOpsPerIteration = census.aluOps;
        c.gopsOpsPerIteration = kernel::gopsOpsPerIteration(k);
        c.commOpsPerIteration = census.comms;
        c.spOpsPerIteration = census.spAccesses;
        c.srfAccessesPerIteration = census.srfAccesses;
        if (!have_best ||
            c.aluOpsPerCycle() > best.aluOpsPerCycle() + 1e-9) {
            best = c;
            have_best = true;
        }
    }
    SPS_ASSERT(have_best, "no feasible unroll factor for %s",
               k.name.c_str());
    // The u=1 variant backs short calls; unrollFactors always
    // includes 1 in practice, but fall back to the winner if not.
    if (ii1 == 1 && stages1 == 1 && length1 == 1 && list_len == 1 &&
        best.unroll != 1) {
        ii1 = best.ii;
        stages1 = best.stages;
        length1 = best.length;
        list_len = best.length;
    }
    best.ii1 = ii1;
    best.stages1 = stages1;
    best.length1 = length1;
    best.listLength = list_len;
    return best;
}

} // namespace sps::sched
