/**
 * @file
 * Resource-constrained list scheduling of one loop body as straight-
 * line code (loop-carried edges become iteration-sequential). Used to
 * model kernel calls too short to benefit from software pipelining.
 */
#ifndef SPS_SCHED_LIST_SCHED_H
#define SPS_SCHED_LIST_SCHED_H

#include "sched/depgraph.h"

namespace sps::sched {

/** Result of list scheduling: cycle of each node plus total length. */
struct ListSchedule
{
    int length = 0;
    std::vector<int> issueCycle;
};

/**
 * Greedy latency-weighted list schedule of the same-iteration graph
 * (loop-carried edges are dropped; the caller serializes iterations).
 */
ListSchedule listSchedule(const DepGraph &g, const MachineModel &m);

} // namespace sps::sched

#endif // SPS_SCHED_LIST_SCHED_H
