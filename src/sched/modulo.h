/**
 * @file
 * Iterative modulo scheduling (Rau, MICRO-27 1994) of kernel inner
 * loops onto the cluster's VLIW resources. This is what "compiling a
 * kernel" means for the paper's static analysis: the achieved
 * initiation interval II determines inner-loop throughput, and the
 * stage count determines the software-pipelining priming overhead
 * that the application simulator charges per kernel call.
 */
#ifndef SPS_SCHED_MODULO_H
#define SPS_SCHED_MODULO_H

#include <vector>

#include "sched/depgraph.h"

namespace sps::sched {

/** Result of modulo scheduling one loop body. */
struct ModuloSchedule
{
    bool ok = false;
    /** Achieved initiation interval (cycles per iteration). */
    int ii = 0;
    /** Software pipeline depth in stages. */
    int stages = 0;
    /** Schedule length of a single iteration (issue to last result). */
    int length = 0;
    /** Issue cycle per dependence-graph node. */
    std::vector<int> issueCycle;
};

/**
 * Schedule the loop with the smallest feasible II.
 *
 * @param g dependence graph of the loop body
 * @param m machine resource model
 * @param max_ii II search limit; 0 picks a generous default.
 */
ModuloSchedule moduloSchedule(const DepGraph &g, const MachineModel &m,
                              int max_ii = 0);

/** Check every dependence of a claimed schedule; panics on violation. */
void verifyModuloSchedule(const DepGraph &g, const ModuloSchedule &s);

} // namespace sps::sched

#endif // SPS_SCHED_MODULO_H
