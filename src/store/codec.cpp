#include "store/codec.h"

#include "common/fnv.h"

namespace sps::store {

uint64_t
fnv1aBytes(const uint8_t *data, size_t n)
{
    uint64_t h = Fnv::kOffset;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= Fnv::kPrime;
    }
    return h;
}

namespace {

// Guard against decoding a hostile length prefix into an allocation:
// no real timeline or channel list comes close to this.
constexpr uint64_t kMaxVectorElems = 1u << 28;

void
putInterval(const sim::OpInterval &iv, ByteWriter *w)
{
    w->i64(iv.start);
    w->i64(iv.end);
    w->str(iv.label);
    w->i32(iv.opId);
    w->u8(static_cast<uint8_t>(iv.kind));
    w->i64(iv.sbWaitStart);
    w->i64(iv.issueStart);
    w->i64(iv.issueEnd);
    w->i64(iv.readyCycle);
}

bool
getInterval(ByteReader *r, sim::OpInterval *iv)
{
    uint8_t kind = 0;
    bool ok = r->i64(&iv->start) && r->i64(&iv->end) &&
              r->str(&iv->label) && r->i32(&iv->opId) && r->u8(&kind) &&
              r->i64(&iv->sbWaitStart) && r->i64(&iv->issueStart) &&
              r->i64(&iv->issueEnd) && r->i64(&iv->readyCycle);
    if (!ok || kind > static_cast<uint8_t>(sim::OpClass::Other))
        return false;
    iv->kind = static_cast<sim::OpClass>(kind);
    return true;
}

void
putCounters(const sim::SimCounters &c, ByteWriter *w)
{
    w->i64(c.kernelOnlyCycles);
    w->i64(c.memOnlyCycles);
    w->i64(c.overlapCycles);
    w->i64(c.idleCycles);
    w->i64(c.kernelCalls);
    w->i64(c.loads);
    w->i64(c.stores);
    w->i64(c.hostIssueBusyCycles);
    w->i64(c.scoreboardStallCycles);
    w->i64(c.depStallCycles);
    w->i64(c.memPipeStallCycles);
    w->i64(c.ucPipeStallCycles);
    w->i64(c.ucOverheadCycles);
    w->i64(c.aluIssueSlots);
    w->i64(c.kernelAluSlots);
    w->i64(c.clusterFuOps);
    w->i64(c.clusterSpOps);
    w->i64(c.interCommWords);
    w->i64(c.srfReadWords);
    w->i64(c.srfWriteWords);
    w->i64(c.memStoreWords);
    w->i64(c.srfBwStallCycles);
    w->i64(c.dramAccesses);
    w->i64(c.dramRowHits);
    w->i64(c.dramRowMisses);
    w->i64(c.dramBankConflicts);
    w->i64(c.dramReorderSum);
    w->i64(c.dramReorderMax);
    w->i64(c.memAliasStallCycles);
    w->u64(c.dramChannelBusyCycles.size());
    for (int64_t v : c.dramChannelBusyCycles)
        w->i64(v);
}

bool
getCounters(ByteReader *r, sim::SimCounters *c)
{
    bool ok =
        r->i64(&c->kernelOnlyCycles) && r->i64(&c->memOnlyCycles) &&
        r->i64(&c->overlapCycles) && r->i64(&c->idleCycles) &&
        r->i64(&c->kernelCalls) && r->i64(&c->loads) &&
        r->i64(&c->stores) && r->i64(&c->hostIssueBusyCycles) &&
        r->i64(&c->scoreboardStallCycles) && r->i64(&c->depStallCycles) &&
        r->i64(&c->memPipeStallCycles) && r->i64(&c->ucPipeStallCycles) &&
        r->i64(&c->ucOverheadCycles) && r->i64(&c->aluIssueSlots) &&
        r->i64(&c->kernelAluSlots) && r->i64(&c->clusterFuOps) &&
        r->i64(&c->clusterSpOps) && r->i64(&c->interCommWords) &&
        r->i64(&c->srfReadWords) && r->i64(&c->srfWriteWords) &&
        r->i64(&c->memStoreWords) && r->i64(&c->srfBwStallCycles) &&
        r->i64(&c->dramAccesses) && r->i64(&c->dramRowHits) &&
        r->i64(&c->dramRowMisses) && r->i64(&c->dramBankConflicts) &&
        r->i64(&c->dramReorderSum) && r->i64(&c->dramReorderMax) &&
        r->i64(&c->memAliasStallCycles);
    if (!ok)
        return false;
    uint64_t n = 0;
    if (!r->u64(&n) || n > kMaxVectorElems)
        return false;
    c->dramChannelBusyCycles.resize(static_cast<size_t>(n));
    for (auto &v : c->dramChannelBusyCycles)
        if (!r->i64(&v))
            return false;
    return true;
}

void
putComponent(const energy::ComponentEnergy &c, ByteWriter *w)
{
    w->f64(c.dynamicEw);
    w->f64(c.idleEw);
}

bool
getComponent(ByteReader *r, energy::ComponentEnergy *c)
{
    return r->f64(&c->dynamicEw) && r->f64(&c->idleEw);
}

void
putEnergy(const energy::EnergyReport &e, ByteWriter *w)
{
    w->u8(e.valid ? 1 : 0);
    putComponent(e.srf, w);
    putComponent(e.clusters, w);
    putComponent(e.microcontroller, w);
    putComponent(e.interclusterComm, w);
    putComponent(e.dram, w);
    w->i64(e.cycles);
    w->i64(e.aluOps);
    w->i64(e.outputWords);
    w->f64(e.ewToJoules);
    w->f64(e.clockGHz);
}

bool
getEnergy(ByteReader *r, energy::EnergyReport *e)
{
    uint8_t valid = 0;
    bool ok = r->u8(&valid) && valid <= 1 &&
              getComponent(r, &e->srf) && getComponent(r, &e->clusters) &&
              getComponent(r, &e->microcontroller) &&
              getComponent(r, &e->interclusterComm) &&
              getComponent(r, &e->dram) && r->i64(&e->cycles) &&
              r->i64(&e->aluOps) && r->i64(&e->outputWords) &&
              r->f64(&e->ewToJoules) && r->f64(&e->clockGHz);
    e->valid = valid != 0;
    return ok;
}

void
putBottleneck(const analysis::BottleneckReport &b, ByteWriter *w)
{
    w->u8(b.valid ? 1 : 0);
    w->i64(b.kernelBoundCycles);
    w->i64(b.memoryBoundCycles);
    w->i64(b.dependenceCycles);
    w->i64(b.scoreboardCycles);
    w->i64(b.hostIssueCycles);
    w->i64(b.idleCycles);
}

bool
getBottleneck(ByteReader *r, analysis::BottleneckReport *b)
{
    uint8_t valid = 0;
    bool ok = r->u8(&valid) && valid <= 1 &&
              r->i64(&b->kernelBoundCycles) &&
              r->i64(&b->memoryBoundCycles) &&
              r->i64(&b->dependenceCycles) &&
              r->i64(&b->scoreboardCycles) &&
              r->i64(&b->hostIssueCycles) && r->i64(&b->idleCycles);
    b->valid = valid != 0;
    return ok;
}

} // namespace

void
encodeCompiledKernel(const sched::CompiledKernel &ck, ByteWriter *w)
{
    w->i32(ck.unroll);
    w->i32(ck.ii);
    w->i32(ck.stages);
    w->i32(ck.length);
    w->i32(ck.listLength);
    w->i32(ck.ii1);
    w->i32(ck.stages1);
    w->i32(ck.length1);
    w->i32(ck.aluOpsPerIteration);
    w->f64(ck.gopsOpsPerIteration);
    w->i32(ck.commOpsPerIteration);
    w->i32(ck.spOpsPerIteration);
    w->i32(ck.srfAccessesPerIteration);
}

bool
decodeCompiledKernel(const std::vector<uint8_t> &bytes,
                     sched::CompiledKernel *out)
{
    ByteReader r(bytes);
    sched::CompiledKernel ck;
    bool ok = r.i32(&ck.unroll) && r.i32(&ck.ii) && r.i32(&ck.stages) &&
              r.i32(&ck.length) && r.i32(&ck.listLength) &&
              r.i32(&ck.ii1) && r.i32(&ck.stages1) &&
              r.i32(&ck.length1) && r.i32(&ck.aluOpsPerIteration) &&
              r.f64(&ck.gopsOpsPerIteration) &&
              r.i32(&ck.commOpsPerIteration) &&
              r.i32(&ck.spOpsPerIteration) &&
              r.i32(&ck.srfAccessesPerIteration);
    if (!ok || !r.done())
        return false;
    *out = ck;
    return true;
}

void
encodeSimResult(const sim::SimResult &res, ByteWriter *w)
{
    w->i64(res.cycles);
    w->i64(res.aluOps);
    w->f64(res.gopsOps);
    w->i64(res.memWords);
    w->i64(res.memBusy);
    w->i64(res.ucBusy);
    w->i64(res.srfHighWater);
    w->u64(res.timeline.size());
    for (const sim::OpInterval &iv : res.timeline)
        putInterval(iv, w);
    putCounters(res.counters, w);
    putEnergy(res.energy, w);
    putBottleneck(res.bottleneck, w);
}

bool
decodeSimResult(const std::vector<uint8_t> &bytes, sim::SimResult *out)
{
    ByteReader r(bytes);
    sim::SimResult res;
    bool ok = r.i64(&res.cycles) && r.i64(&res.aluOps) &&
              r.f64(&res.gopsOps) && r.i64(&res.memWords) &&
              r.i64(&res.memBusy) && r.i64(&res.ucBusy) &&
              r.i64(&res.srfHighWater);
    if (!ok)
        return false;
    uint64_t n = 0;
    if (!r.u64(&n) || n > kMaxVectorElems)
        return false;
    res.timeline.resize(static_cast<size_t>(n));
    for (auto &iv : res.timeline)
        if (!getInterval(&r, &iv))
            return false;
    if (!getCounters(&r, &res.counters) || !getEnergy(&r, &res.energy) ||
        !getBottleneck(&r, &res.bottleneck) || !r.done())
        return false;
    *out = std::move(res);
    return true;
}

} // namespace sps::store
