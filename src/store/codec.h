/**
 * @file
 * Versioned binary serialization for the persistent result store:
 * encode/decode of sched::CompiledKernel and sim::SimResult. The wire
 * format is little-endian, written byte-at-a-time so encodings are
 * deterministic across platforms, and doubles are carried as raw
 * IEEE-754 bit patterns so a decoded result is *bit-identical* to the
 * computed one (warm runs reproduce cold-run CSVs byte for byte).
 *
 * Every reader is bounds-checked: decoding a truncated or oversized
 * buffer fails cleanly (decode* returns false) instead of returning a
 * partially-filled result, so the store can treat any damaged entry
 * as a miss. kStoreSchemaVersion is stamped into every store entry
 * header; bump it whenever a field is added, removed, reordered, or
 * retyped in any codec below, which silently invalidates (misses) all
 * previously persisted entries.
 */
#ifndef SPS_STORE_CODEC_H
#define SPS_STORE_CODEC_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sched/kernel_perf.h"
#include "sim/stats.h"

namespace sps::store {

/**
 * Schema version of the serialized payloads. History:
 *  1 = initial format (CompiledKernel, SimResult with counters,
 *      energy report, bottleneck report, full timeline).
 */
inline constexpr uint32_t kStoreSchemaVersion = 1;

/** FNV-1a over a raw byte range (per-entry payload checksum). */
uint64_t fnv1aBytes(const uint8_t *data, size_t n);

/** Little-endian byte-at-a-time encoder. */
class ByteWriter
{
  public:
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

    /** Raw IEEE-754 bit pattern (preserves -0.0, NaN payloads). */
    void
    f64(double v)
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Bounds-checked little-endian decoder. Every getter returns false
 * (and stops consuming) once the buffer is exhausted; done() is true
 * only when every byte was consumed without error, so trailing
 * garbage is also rejected.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t n) : data_(data), n_(n) {}
    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : data_(bytes.data()), n_(bytes.size())
    {
    }

    bool ok() const { return ok_; }
    bool done() const { return ok_ && pos_ == n_; }

    bool
    u8(uint8_t *out)
    {
        if (!take(1))
            return false;
        *out = data_[pos_ - 1];
        return true;
    }

    bool
    u32(uint32_t *out)
    {
        if (!take(4))
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ - 4 + i]) << (8 * i);
        *out = v;
        return true;
    }

    bool
    u64(uint64_t *out)
    {
        if (!take(8))
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ - 8 + i]) << (8 * i);
        *out = v;
        return true;
    }

    bool
    i64(int64_t *out)
    {
        uint64_t v = 0;
        if (!u64(&v))
            return false;
        *out = static_cast<int64_t>(v);
        return true;
    }

    bool
    i32(int32_t *out)
    {
        uint32_t v = 0;
        if (!u32(&v))
            return false;
        *out = static_cast<int32_t>(v);
        return true;
    }

    bool
    f64(double *out)
    {
        uint64_t bits = 0;
        if (!u64(&bits))
            return false;
        std::memcpy(out, &bits, sizeof *out);
        return true;
    }

    bool
    str(std::string *out)
    {
        uint64_t len = 0;
        if (!u64(&len) || !take(static_cast<size_t>(len)))
            return false;
        out->assign(reinterpret_cast<const char *>(data_ + pos_ - len),
                    static_cast<size_t>(len));
        return true;
    }

  private:
    bool
    take(size_t k)
    {
        if (!ok_ || n_ - pos_ < k) {
            ok_ = false;
            return false;
        }
        pos_ += k;
        return true;
    }

    const uint8_t *data_;
    size_t n_;
    size_t pos_ = 0;
    bool ok_ = true;
};

// --- Typed codecs (field order is part of the schema version). ---

void encodeCompiledKernel(const sched::CompiledKernel &ck,
                          ByteWriter *w);
/** False on truncation, trailing bytes, or any malformed field. */
bool decodeCompiledKernel(const std::vector<uint8_t> &bytes,
                          sched::CompiledKernel *out);

void encodeSimResult(const sim::SimResult &r, ByteWriter *w);
bool decodeSimResult(const std::vector<uint8_t> &bytes,
                     sim::SimResult *out);

} // namespace sps::store

#endif // SPS_STORE_CODEC_H
