#include "store/result_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#define SPS_GETPID _getpid
#else
#include <unistd.h>
#define SPS_GETPID getpid
#endif

namespace sps::store {

namespace {

constexpr uint32_t kMagic = 0x52535053; // "SPSR" little-endian

// Entry header: magic, schema version, kind, pad, payload length,
// payload checksum -- 32 bytes, followed by the payload.
constexpr size_t kHeaderBytes = 32;

const char *
kindDir(Kind kind)
{
    switch (kind) {
    case Kind::Schedule:
        return "sched";
    case Kind::SimResult:
        return "sim";
    }
    return "other";
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
putHeader(const Key &key, const std::vector<uint8_t> &payload,
          ByteWriter *w)
{
    w->u32(kMagic);
    w->u32(kStoreSchemaVersion);
    w->u32(static_cast<uint32_t>(key.kind));
    w->u32(0); // reserved
    w->u64(payload.size());
    w->u64(fnv1aBytes(payload.data(), payload.size()));
}

} // namespace

ResultStore::ResultStore(std::string root, uint64_t maxCacheBytes)
    : root_(std::move(root)), maxCacheBytes_(maxCacheBytes)
{
    std::error_code ec;
    for (Kind k : {Kind::Schedule, Kind::SimResult})
        std::filesystem::create_directories(
            std::filesystem::path(root_) / kindDir(k), ec);
    // A failed create is deliberately not fatal: get() will miss and
    // put() will count write errors.
}

std::string
ResultStore::entryPath(const Key &key) const
{
    return (std::filesystem::path(root_) / kindDir(key.kind) /
            (hex16(key.content) + "-" + hex16(key.machine) + "-" +
             hex16(key.options) + ".bin"))
        .string();
}

bool
ResultStore::get(const Key &key, std::vector<uint8_t> *payload)
{
    if (!getHitUs_.load(std::memory_order_relaxed))
        return get_(key, payload);
    uint64_t t0 = obs::monotonicMicros();
    bool ok = get_(key, payload);
    obs::Histogram *h =
        (ok ? getHitUs_ : getMissUs_).load(std::memory_order_relaxed);
    if (h)
        h->observe(obs::monotonicMicros() - t0);
    return ok;
}

bool
ResultStore::put(const Key &key, const std::vector<uint8_t> &payload)
{
    obs::Histogram *h = putUs_.load(std::memory_order_relaxed);
    if (!h)
        return put_(key, payload);
    uint64_t t0 = obs::monotonicMicros();
    bool ok = put_(key, payload);
    h->observe(obs::monotonicMicros() - t0);
    return ok;
}

void
ResultStore::attachMetrics(obs::MetricsRegistry *registry)
{
    if (!registry) {
        getHitUs_.store(nullptr, std::memory_order_relaxed);
        getMissUs_.store(nullptr, std::memory_order_relaxed);
        putUs_.store(nullptr, std::memory_order_relaxed);
        return;
    }
    getHitUs_.store(
        registry->histogram("sps_store_get_duration_us",
                            "result=\"hit\"",
                            "Result store get() latency (us)"),
        std::memory_order_relaxed);
    getMissUs_.store(registry->histogram("sps_store_get_duration_us",
                                         "result=\"miss\""),
                     std::memory_order_relaxed);
    putUs_.store(
        registry->histogram("sps_store_put_duration_us", "",
                            "Result store put() latency (us)"),
        std::memory_order_relaxed);
    // Cumulative counters ride as collector-refreshed gauges: zero
    // hot-path cost, always current at snapshot time.
    registry->addCollector([this, registry] {
        StoreCounters c = counters();
        auto pub = [&](const char *name, uint64_t v,
                       const char *help = "") {
            registry->gauge(name, "", help)
                ->set(static_cast<int64_t>(v));
        };
        pub("sps_store_hits", c.hits,
            "Verified result-store entries served");
        pub("sps_store_misses", c.misses);
        pub("sps_store_corrupt", c.corrupt);
        pub("sps_store_writes", c.writes);
        pub("sps_store_write_errors", c.writeErrors);
        pub("sps_store_evicted", c.evicted);
        pub("sps_store_reclaimed_bytes", c.reclaimedBytes);
    });
}

bool
ResultStore::get_(const Key &key, std::vector<uint8_t> *payload)
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    ByteReader r(bytes);
    uint32_t magic = 0, version = 0, kind = 0, reserved = 0;
    uint64_t length = 0, checksum = 0;
    bool header_ok = r.u32(&magic) && r.u32(&version) && r.u32(&kind) &&
                     r.u32(&reserved) && r.u64(&length) &&
                     r.u64(&checksum);
    if (!header_ok || magic != kMagic ||
        version != kStoreSchemaVersion ||
        kind != static_cast<uint32_t>(key.kind) ||
        bytes.size() != kHeaderBytes + length ||
        checksum != fnv1aBytes(bytes.data() + kHeaderBytes, length)) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    payload->assign(bytes.begin() + kHeaderBytes, bytes.end());
    hits_.fetch_add(1, std::memory_order_relaxed);
    // Refresh the entry's file time so the LRU sweep orders entries
    // by *access* recency. Best effort: an entry evicted between the
    // read and the touch was still served correctly.
    std::error_code ec;
    std::filesystem::last_write_time(
        entryPath(key), std::filesystem::file_time_type::clock::now(),
        ec);
    return true;
}

bool
ResultStore::put_(const Key &key, const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    putHeader(key, payload, &w);

    std::string final_path = entryPath(key);
    // Process-unique temp name in the same directory so the final
    // rename is atomic (same filesystem) and concurrent writer
    // processes never collide on the temp file.
    std::string temp_path =
        final_path + ".tmp." + std::to_string(SPS_GETPID()) + "." +
        std::to_string(tempSeq_.fetch_add(1, std::memory_order_relaxed));
    bool wrote;
    {
        std::ofstream out(temp_path, std::ios::binary);
        wrote =
            out &&
            out.write(reinterpret_cast<const char *>(w.bytes().data()),
                      static_cast<std::streamsize>(w.bytes().size())) &&
            out.write(reinterpret_cast<const char *>(payload.data()),
                      static_cast<std::streamsize>(payload.size()));
    }
    std::error_code ec;
    if (!wrote) {
        // A partial write (e.g. disk full) leaves a temp file behind;
        // remove it so failed puts never accumulate `.tmp.*` residue.
        // When the open itself failed the remove is a no-op.
        writeErrors_.fetch_add(1, std::memory_order_relaxed);
        std::filesystem::remove(temp_path, ec);
        return false;
    }
    std::filesystem::rename(temp_path, final_path, ec);
    if (ec) {
        writeErrors_.fetch_add(1, std::memory_order_relaxed);
        std::filesystem::remove(temp_path, ec);
        return false;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (maxCacheBytes_ != 0)
        sweepToBudget();
    return true;
}

bool
ResultStore::loadSchedule(const Key &key, sched::CompiledKernel *out)
{
    std::vector<uint8_t> payload;
    if (!get(key, &payload))
        return false;
    if (decodeCompiledKernel(payload, out))
        return true;
    // Checksum passed but the payload does not parse: a schema drift
    // that forgot the version bump. Still a miss, never a wrong hit.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_sub(1, std::memory_order_relaxed);
    return false;
}

bool
ResultStore::storeSchedule(const Key &key,
                           const sched::CompiledKernel &ck)
{
    ByteWriter w;
    encodeCompiledKernel(ck, &w);
    return put(key, w.bytes());
}

bool
ResultStore::loadSimResult(const Key &key, sim::SimResult *out)
{
    std::vector<uint8_t> payload;
    if (!get(key, &payload))
        return false;
    if (decodeSimResult(payload, out))
        return true;
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_sub(1, std::memory_order_relaxed);
    return false;
}

bool
ResultStore::storeSimResult(const Key &key, const sim::SimResult &res)
{
    ByteWriter w;
    encodeSimResult(res, &w);
    return put(key, w.bytes());
}

namespace {

struct EntryFile
{
    std::filesystem::path path;
    uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
};

bool
isTempFile(const std::filesystem::path &p)
{
    return p.filename().string().find(".tmp.") != std::string::npos;
}

/** Completed entry files (or, with wantTemps, temp files) under the
 *  per-kind directories of `root`. Unreadable files are skipped. */
std::vector<EntryFile>
listFiles(const std::string &root, bool wantTemps)
{
    std::vector<EntryFile> out;
    for (Kind k : {Kind::Schedule, Kind::SimResult}) {
        std::error_code ec;
        std::filesystem::directory_iterator it(
            std::filesystem::path(root) / kindDir(k), ec);
        if (ec)
            continue;
        for (const auto &e : it) {
            std::error_code fec;
            if (!e.is_regular_file(fec) || fec)
                continue;
            if (isTempFile(e.path()) != wantTemps)
                continue;
            EntryFile f;
            f.path = e.path();
            f.bytes = e.file_size(fec);
            if (fec)
                continue;
            f.mtime = e.last_write_time(fec);
            if (fec)
                continue;
            out.push_back(std::move(f));
        }
    }
    return out;
}

} // namespace

uint64_t
ResultStore::totalEntryBytes() const
{
    uint64_t total = 0;
    for (const auto &f : listFiles(root_, /*wantTemps=*/false))
        total += f.bytes;
    return total;
}

uint64_t
ResultStore::sweepToBudget()
{
    if (maxCacheBytes_ == 0)
        return 0;
    std::lock_guard<std::mutex> lock(sweepMu_);
    std::vector<EntryFile> files =
        listFiles(root_, /*wantTemps=*/false);
    uint64_t total = 0;
    for (const auto &f : files)
        total += f.bytes;
    if (total <= maxCacheBytes_)
        return 0;
    // Least recently used first; get() refreshes mtime on every hit.
    std::sort(files.begin(), files.end(),
              [](const EntryFile &a, const EntryFile &b) {
                  return a.mtime < b.mtime;
              });
    uint64_t reclaimed = 0;
    for (const auto &f : files) {
        if (total <= maxCacheBytes_)
            break;
        std::error_code ec;
        if (!std::filesystem::remove(f.path, ec) || ec)
            continue; // already evicted by someone else
        total -= f.bytes;
        reclaimed += f.bytes;
        evicted_.fetch_add(1, std::memory_order_relaxed);
        reclaimedBytes_.fetch_add(f.bytes, std::memory_order_relaxed);
    }
    return reclaimed;
}

uint64_t
ResultStore::reapOrphanTemps(uint64_t minAgeSeconds)
{
    std::lock_guard<std::mutex> lock(sweepMu_);
    auto now = std::filesystem::file_time_type::clock::now();
    uint64_t reaped = 0;
    for (const auto &f : listFiles(root_, /*wantTemps=*/true)) {
        auto age = std::chrono::duration_cast<std::chrono::seconds>(
            now - f.mtime);
        if (age.count() < static_cast<int64_t>(minAgeSeconds))
            continue; // young enough to still have a live writer
        std::error_code ec;
        if (!std::filesystem::remove(f.path, ec) || ec)
            continue;
        ++reaped;
        reclaimedBytes_.fetch_add(f.bytes, std::memory_order_relaxed);
    }
    return reaped;
}

StoreCounters
ResultStore::counters() const
{
    StoreCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.corrupt = corrupt_.load(std::memory_order_relaxed);
    c.writes = writes_.load(std::memory_order_relaxed);
    c.writeErrors = writeErrors_.load(std::memory_order_relaxed);
    c.evicted = evicted_.load(std::memory_order_relaxed);
    c.reclaimedBytes =
        reclaimedBytes_.load(std::memory_order_relaxed);
    return c;
}

} // namespace sps::store
