/**
 * @file
 * Disk-backed content-addressed result store: the persistent tier of
 * the evaluation stack. Entries are keyed by content hashes -- a
 * compiled schedule by (kernel::fingerprint, machineConfigHash,
 * compileOptionsHash), a simulation result by (programFingerprint,
 * machineConfigHash, simConfigHash) -- so any process pointed at the
 * same directory shares one warm cache across runs.
 *
 * Durability/atomicity contract:
 *  - put() writes to a process-unique temp file in the same directory
 *    and atomically renames it into place, so readers (including
 *    concurrent reader *processes*) only ever observe absent or
 *    complete entries, and concurrent writers of the same key are
 *    harmless (last rename wins; same content either way).
 *  - Every entry carries a magic, the store schema version, its kind,
 *    the payload length, and an FNV-1a payload checksum. get()
 *    verifies all of them; a truncated, bit-flipped, mis-kinded, or
 *    version-mismatched entry is treated as a miss (counted in
 *    `corrupt`), never decoded into a wrong result.
 *
 * Thread safety: get()/put() may be called concurrently from any
 * number of threads (and processes); counters are atomics.
 */
#ifndef SPS_STORE_RESULT_STORE_H
#define SPS_STORE_RESULT_STORE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "store/codec.h"

namespace sps::store {

/** What a stored payload decodes to (part of the entry key/path). */
enum class Kind : uint32_t {
    Schedule = 1,  ///< sched::CompiledKernel
    SimResult = 2, ///< sim::SimResult
};

/** Content-addressed entry key: kind plus three content hashes. */
struct Key
{
    Kind kind = Kind::Schedule;
    /** Schedule: kernel fingerprint. Sim: program fingerprint. */
    uint64_t content = 0;
    /** Machine configuration hash (sched::machineConfigHash). */
    uint64_t machine = 0;
    /** Schedule: compile-options hash. Sim: sim-config hash. */
    uint64_t options = 0;
};

/** Monotonic counters of one store instance. */
struct StoreCounters
{
    uint64_t hits = 0;    ///< complete, verified entries served
    uint64_t misses = 0;  ///< absent entries
    uint64_t corrupt = 0; ///< damaged/version-mismatched entries
    uint64_t writes = 0;  ///< entries durably renamed into place
    uint64_t writeErrors = 0;
};

class ResultStore
{
  public:
    /** Open (creating directories as needed) a store rooted at
     *  `root`. An empty/uncreatable root makes every get a miss and
     *  every put a write error rather than an exception. */
    explicit ResultStore(std::string root);

    const std::string &root() const { return root_; }

    /**
     * Fetch the verified payload of `key` into `payload`. False on
     * absent (miss) or damaged (corrupt counter) entries; true only
     * when magic, version, kind, length, and checksum all verified.
     */
    bool get(const Key &key, std::vector<uint8_t> *payload);

    /** Durably store `payload` under `key` (temp + atomic rename). */
    bool put(const Key &key, const std::vector<uint8_t> &payload);

    // --- Typed wrappers over the codecs. ---

    bool loadSchedule(const Key &key, sched::CompiledKernel *out);
    bool storeSchedule(const Key &key, const sched::CompiledKernel &ck);
    bool loadSimResult(const Key &key, sim::SimResult *out);
    bool storeSimResult(const Key &key, const sim::SimResult &res);

    StoreCounters counters() const;

    /** Entry file path of a key (exposed for corruption tests). */
    std::string entryPath(const Key &key) const;

  private:
    std::string root_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> corrupt_{0};
    std::atomic<uint64_t> writes_{0};
    std::atomic<uint64_t> writeErrors_{0};
    std::atomic<uint64_t> tempSeq_{0};
};

} // namespace sps::store

#endif // SPS_STORE_RESULT_STORE_H
