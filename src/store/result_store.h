/**
 * @file
 * Disk-backed content-addressed result store: the persistent tier of
 * the evaluation stack. Entries are keyed by content hashes -- a
 * compiled schedule by (kernel::fingerprint, machineConfigHash,
 * compileOptionsHash), a simulation result by (programFingerprint,
 * machineConfigHash, simConfigHash) -- so any process pointed at the
 * same directory shares one warm cache across runs.
 *
 * Durability/atomicity contract:
 *  - put() writes to a process-unique temp file in the same directory
 *    and atomically renames it into place, so readers (including
 *    concurrent reader *processes*) only ever observe absent or
 *    complete entries, and concurrent writers of the same key are
 *    harmless (last rename wins; same content either way).
 *  - Every entry carries a magic, the store schema version, its kind,
 *    the payload length, and an FNV-1a payload checksum. get()
 *    verifies all of them; a truncated, bit-flipped, mis-kinded, or
 *    version-mismatched entry is treated as a miss (counted in
 *    `corrupt`), never decoded into a wrong result.
 *
 * Thread safety: get()/put() may be called concurrently from any
 * number of threads (and processes); counters are atomics.
 *
 * Eviction/GC: a nonzero byte budget turns the store into a bounded
 * LRU cache. Every put() that leaves the entry files over budget
 * sweeps the least-recently-used entries (get() refreshes an entry's
 * file time on every verified hit, so recency is access recency, not
 * write recency) until the directory fits again; reapOrphanTemps()
 * removes `.tmp.*` files abandoned by crashed writers once they are
 * old enough that no live writer can still own them. A get() racing
 * an eviction stays miss-or-truth: the reader either opened the file
 * before the unlink (and serves the verified entry) or misses.
 */
#ifndef SPS_STORE_RESULT_STORE_H
#define SPS_STORE_RESULT_STORE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "store/codec.h"

namespace sps::obs {
class MetricsRegistry;
class Histogram;
}

namespace sps::store {

/** What a stored payload decodes to (part of the entry key/path). */
enum class Kind : uint32_t {
    Schedule = 1,  ///< sched::CompiledKernel
    SimResult = 2, ///< sim::SimResult
};

/** Content-addressed entry key: kind plus three content hashes. */
struct Key
{
    Kind kind = Kind::Schedule;
    /** Schedule: kernel fingerprint. Sim: program fingerprint. */
    uint64_t content = 0;
    /** Machine configuration hash (sched::machineConfigHash). */
    uint64_t machine = 0;
    /** Schedule: compile-options hash. Sim: sim-config hash. */
    uint64_t options = 0;
};

/** Monotonic counters of one store instance. */
struct StoreCounters
{
    uint64_t hits = 0;    ///< complete, verified entries served
    uint64_t misses = 0;  ///< absent entries
    uint64_t corrupt = 0; ///< damaged/version-mismatched entries
    uint64_t writes = 0;  ///< entries durably renamed into place
    uint64_t writeErrors = 0;
    uint64_t evicted = 0;        ///< entries removed by the LRU sweep
    uint64_t reclaimedBytes = 0; ///< bytes freed by sweeps + reaps
};

class ResultStore
{
  public:
    /** Open (creating directories as needed) a store rooted at
     *  `root`. An empty/uncreatable root makes every get a miss and
     *  every put a write error rather than an exception.
     *  maxCacheBytes == 0 means unbounded; a nonzero budget caps the
     *  total entry bytes on disk, enforced by an LRU sweep after
     *  every put that crosses the budget. */
    explicit ResultStore(std::string root, uint64_t maxCacheBytes = 0);

    const std::string &root() const { return root_; }
    uint64_t maxCacheBytes() const { return maxCacheBytes_; }

    /**
     * Fetch the verified payload of `key` into `payload`. False on
     * absent (miss) or damaged (corrupt counter) entries; true only
     * when magic, version, kind, length, and checksum all verified.
     */
    bool get(const Key &key, std::vector<uint8_t> *payload);

    /** Durably store `payload` under `key` (temp + atomic rename). */
    bool put(const Key &key, const std::vector<uint8_t> &payload);

    // --- Typed wrappers over the codecs. ---

    bool loadSchedule(const Key &key, sched::CompiledKernel *out);
    bool storeSchedule(const Key &key, const sched::CompiledKernel &ck);
    bool loadSimResult(const Key &key, sim::SimResult *out);
    bool storeSimResult(const Key &key, const sim::SimResult &res);

    StoreCounters counters() const;

    /**
     * Publish this store's telemetry into `registry`: get/put latency
     * histograms (observed on every call from then on) and a snapshot
     * collector exporting the cumulative StoreCounters as gauges.
     * Attach once, at wiring time, before concurrent traffic; the
     * registry must outlive the store's last get()/put(), and this
     * store must outlive the registry's last snapshot(). nullptr
     * detaches the histograms (the collector stays registered).
     */
    void attachMetrics(obs::MetricsRegistry *registry);

    /** Entry file path of a key (exposed for corruption tests). */
    std::string entryPath(const Key &key) const;

    /** Total bytes of completed entry files (temps excluded). */
    uint64_t totalEntryBytes() const;

    /**
     * Evict least-recently-used entries until the store fits the byte
     * budget (no-op when unbounded or already under budget). put()
     * calls this automatically; exposed for tests and for sweeping a
     * directory that grew under a different (or no) budget. Returns
     * bytes reclaimed.
     */
    uint64_t sweepToBudget();

    /**
     * Remove `.tmp.*` files older than `minAge` seconds -- the debris
     * of writers that died between temp write and rename. The age
     * threshold is what keeps live writers safe: a temp file younger
     * than minAge may still be in flight and is never touched.
     * Returns the number of files reaped.
     */
    uint64_t reapOrphanTemps(uint64_t minAgeSeconds);

  private:
    std::string root_;
    uint64_t maxCacheBytes_ = 0;
    std::mutex sweepMu_; ///< one sweep/reap at a time
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> corrupt_{0};
    std::atomic<uint64_t> writes_{0};
    std::atomic<uint64_t> writeErrors_{0};
    std::atomic<uint64_t> evicted_{0};
    std::atomic<uint64_t> reclaimedBytes_{0};
    std::atomic<uint64_t> tempSeq_{0};

    bool get_(const Key &key, std::vector<uint8_t> *payload);
    bool put_(const Key &key, const std::vector<uint8_t> &payload);

    /** Latency histograms (null until attachMetrics): get is split by
     *  result so a cold directory's misses don't skew hit latency. */
    std::atomic<obs::Histogram *> getHitUs_{nullptr};
    std::atomic<obs::Histogram *> getMissUs_{nullptr};
    std::atomic<obs::Histogram *> putUs_{nullptr};
};

} // namespace sps::store

#endif // SPS_STORE_RESULT_STORE_H
