/**
 * @file
 * Public facade: a StreamProcessorDesign ties together a machine size
 * (C clusters, N ALUs per cluster), the VLSI cost models, the kernel
 * compiler, and the stream-level simulator. This is the one-stop API
 * the examples and benchmarks use.
 */
#ifndef SPS_CORE_DESIGN_H
#define SPS_CORE_DESIGN_H

#include "sched/kernel_perf.h"
#include "sim/processor.h"
#include "vlsi/cost_model.h"
#include "vlsi/sweep.h"
#include "vlsi/tech.h"

namespace sps::core {

/** A fully-specified stream processor design point. */
class StreamProcessorDesign
{
  public:
    explicit StreamProcessorDesign(
        vlsi::MachineSize size,
        vlsi::Params params = vlsi::Params::imagine(),
        vlsi::Technology tech = vlsi::Technology::fortyFiveNm());

    const vlsi::MachineSize &size() const { return size_; }
    const vlsi::CostModel &costModel() const { return model_; }
    const vlsi::Technology &tech() const { return tech_; }
    const sched::MachineModel &machine() const { return machine_; }

    // --- VLSI costs ---

    vlsi::AreaBreakdown area() const { return model_.area(size_); }
    vlsi::EnergyBreakdown energy() const
    {
        return model_.energy(size_);
    }
    vlsi::DelayResult delay() const { return model_.delay(size_); }
    double areaPerAlu() const { return model_.areaPerAlu(size_); }
    double energyPerAluOp() const
    {
        return model_.energyPerAluOp(size_);
    }
    /** Absolute die area of the scaled components (mm^2). */
    double areaMm2() const;
    /** Power at full issue (watts). */
    double powerWatts() const;
    /** Peak arithmetic rate (GOPS at the technology's clock). */
    double peakGops() const;

    // --- Compilation and simulation ---

    /** Compile a kernel for this machine (memoized in the shared
     *  schedule cache; repeated calls never recompile). */
    sched::CompiledKernel compile(const kernel::Kernel &k) const;

    /**
     * Machine-wide kernel inner-loop throughput (ALU operations per
     * cycle across all clusters) from static analysis.
     */
    double kernelOpsPerCycle(const kernel::Kernel &k) const;

    /** A simulator instance configured for this design. */
    sim::StreamProcessor makeProcessor() const;

    /** Build and run a stream program on a fresh processor. */
    sim::SimResult simulate(const stream::StreamProgram &prog) const;

  private:
    vlsi::MachineSize size_;
    vlsi::Params params_;
    vlsi::Technology tech_;
    vlsi::CostModel model_;
    sched::MachineModel machine_;
};

} // namespace sps::core

#endif // SPS_CORE_DESIGN_H
