#include "core/experiments.h"

#include "common/log.h"
#include "common/stats.h"
#include "workloads/suite.h"

namespace sps::core {

namespace {

/** Machine-wide inner-loop ALU throughput of a kernel. */
double
kernelPerf(const workloads::KernelEntry &entry, vlsi::MachineSize size)
{
    // QRD's housegen aside, the suite kernels are machine-independent
    // graphs; compile for this size and scale by the cluster count.
    StreamProcessorDesign d(size);
    return d.kernelOpsPerCycle(*entry.kernel);
}

KernelSpeedupData
kernelSpeedups(const std::vector<vlsi::MachineSize> &sizes,
               const std::vector<int> &axis)
{
    KernelSpeedupData out;
    out.axis = axis;
    auto suite = workloads::kernelSuite();
    std::vector<std::vector<double>> speedups(
        suite.size(), std::vector<double>(sizes.size(), 0.0));
    for (size_t k = 0; k < suite.size(); ++k) {
        double base = kernelPerf(suite[k], kBaseline);
        for (size_t i = 0; i < sizes.size(); ++i)
            speedups[k][i] = kernelPerf(suite[k], sizes[i]) / base;
    }
    for (size_t k = 0; k < suite.size(); ++k)
        out.series.push_back(SpeedupSeries{suite[k].name, speedups[k]});
    std::vector<double> hm(sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
        std::vector<double> col;
        col.reserve(suite.size());
        for (size_t k = 0; k < suite.size(); ++k)
            col.push_back(speedups[k][i]);
        hm[i] = harmonicMean(col);
    }
    out.series.push_back(SpeedupSeries{"harmonic mean", hm});
    return out;
}

} // namespace

KernelSpeedupData
kernelIntraSpeedups(const std::vector<int> &n_values, int c)
{
    std::vector<vlsi::MachineSize> sizes;
    for (int n : n_values)
        sizes.push_back(vlsi::MachineSize{c, n});
    return kernelSpeedups(sizes, n_values);
}

KernelSpeedupData
kernelInterSpeedups(const std::vector<int> &c_values, int n)
{
    std::vector<vlsi::MachineSize> sizes;
    for (int c : c_values)
        sizes.push_back(vlsi::MachineSize{c, n});
    return kernelSpeedups(sizes, c_values);
}

PerfPerAreaData
table5PerfPerArea(const std::vector<int> &n_values,
                  const std::vector<int> &c_values)
{
    PerfPerAreaData out;
    out.nValues = n_values;
    out.cValues = c_values;
    auto suite = workloads::kernelSuite();
    vlsi::Params p = vlsi::Params::imagine();
    const double alu_area = p.wAlu * p.h;
    for (int n : n_values) {
        std::vector<double> row;
        for (int c : c_values) {
            vlsi::MachineSize size{c, n};
            StreamProcessorDesign d(size);
            double area_alus = d.area().total() / alu_area;
            std::vector<double> per_kernel;
            for (const auto &entry : suite) {
                double ops = d.kernelOpsPerCycle(*entry.kernel);
                per_kernel.push_back(ops / area_alus);
            }
            row.push_back(harmonicMean(per_kernel));
        }
        out.value.push_back(std::move(row));
    }
    return out;
}

AppPoint
runApp(const std::string &app_name, vlsi::MachineSize size)
{
    for (const auto &app : workloads::appSuite()) {
        if (app.name != app_name)
            continue;
        StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        sim::SimResult res = proc.run(prog);

        StreamProcessorDesign base(kBaseline);
        sim::StreamProcessor bproc = base.makeProcessor();
        stream::StreamProgram bprog = app.build(kBaseline, bproc.srf());
        sim::SimResult bres = bproc.run(bprog);

        AppPoint pt;
        pt.app = app_name;
        pt.size = size;
        pt.cycles = res.cycles;
        pt.speedup = static_cast<double>(bres.cycles) /
                     static_cast<double>(res.cycles);
        pt.gops = res.gops(d.tech().clockGHz());
        return pt;
    }
    fatal("unknown application %s", app_name.c_str());
}

std::vector<AppPoint>
appPerformance(const std::vector<int> &c_values,
               const std::vector<int> &n_values)
{
    std::vector<AppPoint> out;
    auto apps = workloads::appSuite();

    for (const auto &app : apps) {
        // Baseline run once per app.
        StreamProcessorDesign base(kBaseline);
        sim::StreamProcessor bproc = base.makeProcessor();
        stream::StreamProgram bprog =
            app.build(kBaseline, bproc.srf());
        sim::SimResult bres = bproc.run(bprog);

        for (int n : n_values) {
            for (int c : c_values) {
                vlsi::MachineSize size{c, n};
                StreamProcessorDesign d(size);
                sim::StreamProcessor proc = d.makeProcessor();
                stream::StreamProgram prog = app.build(size, proc.srf());
                sim::SimResult res = proc.run(prog);
                AppPoint pt;
                pt.app = app.name;
                pt.size = size;
                pt.cycles = res.cycles;
                pt.speedup = static_cast<double>(bres.cycles) /
                             static_cast<double>(res.cycles);
                pt.gops = res.gops(d.tech().clockGHz());
                out.push_back(pt);
            }
        }
    }
    return out;
}

Headline
headlineNumbers(bool include_apps)
{
    Headline h;
    vlsi::MachineSize big640{128, 5};
    vlsi::MachineSize big1280{128, 10};
    vlsi::CostModel model;

    h.areaPerAluDegradation640 =
        model.areaPerAlu(big640) / model.areaPerAlu(kBaseline) - 1.0;
    h.energyPerOpDegradation640 =
        model.energyPerAluOp(big640) / model.energyPerAluOp(kBaseline) -
        1.0;

    auto suite = workloads::kernelSuite();
    std::vector<double> sp640, sp1280, gops640;
    StreamProcessorDesign d640(big640);
    for (const auto &entry : suite) {
        double base = kernelPerf(entry, kBaseline);
        sp640.push_back(kernelPerf(entry, big640) / base);
        sp1280.push_back(kernelPerf(entry, big1280) / base);
        sched::CompiledKernel ck = d640.compile(*entry.kernel);
        double subword = ck.aluOpsPerIteration > 0
                             ? ck.gopsOpsPerIteration /
                                   ck.aluOpsPerIteration
                             : 1.0;
        gops640.push_back(ck.aluOpsPerCycle() * subword *
                          big640.clusters * d640.tech().clockGHz());
    }
    h.kernelSpeedup640 = harmonicMean(sp640);
    h.kernelSpeedup1280 = harmonicMean(sp1280);
    h.kernelGops640 = arithmeticMean(gops640);

    if (include_apps) {
        std::vector<double> a640, a1280;
        for (const auto &app : workloads::appSuite()) {
            a640.push_back(runApp(app.name, big640).speedup);
            a1280.push_back(runApp(app.name, big1280).speedup);
        }
        h.appSpeedup640 = harmonicMean(a640);
        h.appSpeedup1280 = harmonicMean(a1280);
    }
    return h;
}

} // namespace sps::core
