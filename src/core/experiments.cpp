#include "core/experiments.h"

#include "common/log.h"
#include "common/stats.h"
#include "core/eval_engine.h"
#include "workloads/suite.h"

namespace sps::core {

namespace {

/** Machine-wide inner-loop ALU throughput of a kernel. */
double
kernelPerf(const workloads::KernelEntry &entry, vlsi::MachineSize size)
{
    // QRD's housegen aside, the suite kernels are machine-independent
    // graphs; compile for this size and scale by the cluster count.
    StreamProcessorDesign d(size);
    return d.kernelOpsPerCycle(*entry.kernel);
}

KernelSpeedupData
kernelSpeedups(const std::vector<vlsi::MachineSize> &sizes,
               const std::vector<int> &axis, EvalEngine &eng)
{
    KernelSpeedupData out;
    out.axis = axis;
    auto suite = workloads::kernelSuite();
    const size_t cols = sizes.size();
    // One engine job per (kernel, size) pair; baselines are their own
    // jobs. Slot indexing keeps the series order deterministic.
    std::vector<double> base = eng.map(suite.size(), [&](size_t k) {
        return kernelPerf(suite[k], kBaseline);
    });
    std::vector<double> perf =
        eng.map(suite.size() * cols, [&](size_t idx) {
            return kernelPerf(suite[idx / cols], sizes[idx % cols]);
        });
    std::vector<std::vector<double>> speedups(
        suite.size(), std::vector<double>(cols, 0.0));
    for (size_t k = 0; k < suite.size(); ++k)
        for (size_t i = 0; i < cols; ++i)
            speedups[k][i] = perf[k * cols + i] / base[k];
    for (size_t k = 0; k < suite.size(); ++k)
        out.series.push_back(SpeedupSeries{suite[k].name, speedups[k]});
    std::vector<double> hm(cols);
    for (size_t i = 0; i < cols; ++i) {
        std::vector<double> col;
        col.reserve(suite.size());
        for (size_t k = 0; k < suite.size(); ++k)
            col.push_back(speedups[k][i]);
        hm[i] = harmonicMean(col);
    }
    out.series.push_back(SpeedupSeries{"harmonic mean", hm});
    return out;
}

} // namespace

KernelSpeedupData
kernelIntraSpeedups(const std::vector<int> &n_values, int c,
                    EvalEngine *engine)
{
    std::vector<vlsi::MachineSize> sizes;
    for (int n : n_values)
        sizes.push_back(vlsi::MachineSize{c, n});
    return kernelSpeedups(sizes, n_values, resolveEngine(engine));
}

KernelSpeedupData
kernelInterSpeedups(const std::vector<int> &c_values, int n,
                    EvalEngine *engine)
{
    std::vector<vlsi::MachineSize> sizes;
    for (int c : c_values)
        sizes.push_back(vlsi::MachineSize{c, n});
    return kernelSpeedups(sizes, c_values, resolveEngine(engine));
}

PerfPerAreaData
table5PerfPerArea(const std::vector<int> &n_values,
                  const std::vector<int> &c_values, EvalEngine *engine)
{
    EvalEngine &eng = resolveEngine(engine);
    PerfPerAreaData out;
    out.nValues = n_values;
    out.cValues = c_values;
    auto suite = workloads::kernelSuite();
    vlsi::Params p = vlsi::Params::imagine();
    const double alu_area = p.wAlu * p.h;
    const size_t cols = c_values.size();
    std::vector<double> cells =
        eng.map(n_values.size() * cols, [&](size_t idx) {
            vlsi::MachineSize size{c_values[idx % cols],
                                   n_values[idx / cols]};
            StreamProcessorDesign d(size);
            double area_alus = d.area().total() / alu_area;
            std::vector<double> per_kernel;
            for (const auto &entry : suite) {
                double ops = d.kernelOpsPerCycle(*entry.kernel);
                per_kernel.push_back(ops / area_alus);
            }
            return harmonicMean(per_kernel);
        });
    for (size_t i = 0; i < n_values.size(); ++i)
        out.value.emplace_back(cells.begin() + i * cols,
                               cells.begin() + (i + 1) * cols);
    return out;
}

AppPoint
runApp(const std::string &app_name, vlsi::MachineSize size)
{
    for (const auto &app : workloads::appSuite()) {
        if (app.name != app_name)
            continue;
        StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        sim::SimResult res = proc.run(prog);

        StreamProcessorDesign base(kBaseline);
        sim::StreamProcessor bproc = base.makeProcessor();
        stream::StreamProgram bprog = app.build(kBaseline, bproc.srf());
        sim::SimResult bres = bproc.run(bprog);

        AppPoint pt;
        pt.app = app_name;
        pt.size = size;
        pt.cycles = res.cycles;
        pt.speedup = static_cast<double>(bres.cycles) /
                     static_cast<double>(res.cycles);
        pt.gops = res.gops(d.tech().clockGHz());
        pt.result = std::move(res);
        return pt;
    }
    fatal("unknown application %s", app_name.c_str());
}

std::vector<AppPoint>
appPerformance(const std::vector<int> &c_values,
               const std::vector<int> &n_values, EvalEngine *engine)
{
    EvalEngine &eng = resolveEngine(engine);
    auto apps = workloads::appSuite();

    // Baseline simulation once per app, then one job per grid point;
    // index order matches the old nested app -> n -> c loops.
    std::vector<int64_t> base_cycles =
        eng.map(apps.size(), [&](size_t a) {
            StreamProcessorDesign base(kBaseline);
            sim::StreamProcessor bproc = base.makeProcessor();
            stream::StreamProgram bprog =
                apps[a].build(kBaseline, bproc.srf());
            return bproc.run(bprog).cycles;
        });

    const size_t per_app = n_values.size() * c_values.size();
    return eng.map(apps.size() * per_app, [&](size_t idx) {
        const auto &app = apps[idx / per_app];
        size_t rem = idx % per_app;
        int n = n_values[rem / c_values.size()];
        int c = c_values[rem % c_values.size()];
        vlsi::MachineSize size{c, n};
        StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        sim::SimResult res = proc.run(prog);
        AppPoint pt;
        pt.app = app.name;
        pt.size = size;
        pt.cycles = res.cycles;
        pt.speedup = static_cast<double>(base_cycles[idx / per_app]) /
                     static_cast<double>(res.cycles);
        pt.gops = res.gops(d.tech().clockGHz());
        pt.result = std::move(res);
        return pt;
    });
}

Headline
headlineNumbers(bool include_apps, EvalEngine *engine)
{
    EvalEngine &eng = resolveEngine(engine);
    Headline h;
    vlsi::MachineSize big640{128, 5};
    vlsi::MachineSize big1280{128, 10};
    vlsi::CostModel model;

    h.areaPerAluDegradation640 =
        model.areaPerAlu(big640) / model.areaPerAlu(kBaseline) - 1.0;
    h.energyPerOpDegradation640 =
        model.energyPerAluOp(big640) / model.energyPerAluOp(kBaseline) -
        1.0;

    auto suite = workloads::kernelSuite();
    struct KernelVals
    {
        double sp640 = 0.0;
        double sp1280 = 0.0;
        double gops640 = 0.0;
    };
    StreamProcessorDesign d640(big640);
    std::vector<KernelVals> vals =
        eng.map(suite.size(), [&](size_t k) {
            const auto &entry = suite[k];
            double base = kernelPerf(entry, kBaseline);
            KernelVals v;
            v.sp640 = kernelPerf(entry, big640) / base;
            v.sp1280 = kernelPerf(entry, big1280) / base;
            sched::CompiledKernel ck = d640.compile(*entry.kernel);
            double subword = ck.aluOpsPerIteration > 0
                                 ? ck.gopsOpsPerIteration /
                                       ck.aluOpsPerIteration
                                 : 1.0;
            v.gops640 = ck.aluOpsPerCycle() * subword *
                        big640.clusters * d640.tech().clockGHz();
            return v;
        });
    std::vector<double> sp640, sp1280, gops640;
    for (const auto &v : vals) {
        sp640.push_back(v.sp640);
        sp1280.push_back(v.sp1280);
        gops640.push_back(v.gops640);
    }
    h.kernelSpeedup640 = harmonicMean(sp640);
    h.kernelSpeedup1280 = harmonicMean(sp1280);
    h.kernelGops640 = arithmeticMean(gops640);

    if (include_apps) {
        auto apps = workloads::appSuite();
        std::vector<std::pair<double, double>> sp =
            eng.map(apps.size(), [&](size_t a) {
                return std::pair<double, double>{
                    runApp(apps[a].name, big640).speedup,
                    runApp(apps[a].name, big1280).speedup};
            });
        std::vector<double> a640, a1280;
        for (const auto &[s640, s1280] : sp) {
            a640.push_back(s640);
            a1280.push_back(s1280);
        }
        h.appSpeedup640 = harmonicMean(a640);
        h.appSpeedup1280 = harmonicMean(a1280);
    }
    return h;
}

} // namespace sps::core
