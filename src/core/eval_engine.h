/**
 * @file
 * The design-space evaluation engine: every figure/table in the
 * paper's evaluation is a sweep over (C, N) design points, and this
 * layer gives all of them one fast path. An EvalEngine owns a thread
 * pool that evaluates independent design points concurrently and
 * exposes the shared memoized schedule cache (sched::ScheduleCache)
 * so a kernel compiled once for a machine configuration is never
 * recompiled across experiments, benches, or repeated grid points.
 *
 * Determinism guarantee: map()/mapItems() write the result of index i
 * into slot i of the output vector, so a series produced with N
 * threads is byte-identical to the 1-thread (serial) series -- the
 * pool changes when a point is evaluated, never what it computes.
 */
#ifndef SPS_CORE_EVAL_ENGINE_H
#define SPS_CORE_EVAL_ENGINE_H

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/parallel.h"
#include "sched/schedule_cache.h"

namespace sps::core {

class EvalEngine
{
  public:
    /** threads == 0 sizes the pool to the hardware; threads == 1 is
     *  the serial reference configuration. */
    explicit EvalEngine(int threads = 0) : pool_(threads) {}

    int threadCount() const { return pool_.threadCount(); }

    /** The underlying pool (for the vlsi sweep helpers). */
    ThreadPool &pool() { return pool_; }

    /** The shared schedule cache all engines memoize through. */
    sched::ScheduleCache &cache() const
    {
        return sched::ScheduleCache::global();
    }

    /** Run fn(i) for i in [0, n) on the pool; blocks until done. */
    void forEach(size_t n, const std::function<void(size_t)> &fn)
    {
        pool_.forEach(n, fn);
    }

    /** out[i] = fn(i), evaluated concurrently, deterministic order. */
    template <typename Fn>
    auto map(size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(size_t{0}))>>
    {
        using R = std::decay_t<decltype(fn(size_t{0}))>;
        std::vector<R> out(n);
        pool_.forEach(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /** out[i] = fn(items[i]), evaluated concurrently. */
    template <typename Item, typename Fn>
    auto mapItems(const std::vector<Item> &items, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(items[size_t{0}]))>>
    {
        using R = std::decay_t<decltype(fn(items[size_t{0}]))>;
        std::vector<R> out(items.size());
        pool_.forEach(items.size(),
                      [&](size_t i) { out[i] = fn(items[i]); });
        return out;
    }

    /** The process-wide default engine, sized to the hardware. */
    static EvalEngine &global();

  private:
    ThreadPool pool_;
};

/** Resolve the optional engine argument the experiment drivers take. */
inline EvalEngine &
resolveEngine(EvalEngine *engine)
{
    return engine ? *engine : EvalEngine::global();
}

} // namespace sps::core

#endif // SPS_CORE_EVAL_ENGINE_H
