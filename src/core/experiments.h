/**
 * @file
 * Experiment runners: the data series behind every performance table
 * and figure in the paper's evaluation (Figures 13-15, Table 5, plus
 * the headline comparisons). The bench binaries format these; the
 * integration tests assert their shapes.
 *
 * Every runner routes through an EvalEngine: design points evaluate
 * concurrently on its thread pool and kernel compilations memoize in
 * the shared schedule cache, while results are collected in the same
 * deterministic axis order the old serial loops produced. Passing
 * nullptr (the default) uses EvalEngine::global().
 */
#ifndef SPS_CORE_EXPERIMENTS_H
#define SPS_CORE_EXPERIMENTS_H

#include <map>
#include <string>
#include <vector>

#include "core/design.h"
#include "sim/stats.h"

namespace sps::core {

class EvalEngine;

/** The reference machine all speedups are measured against. */
constexpr vlsi::MachineSize kBaseline{8, 5};

/** One kernel's speedup series over an axis of machine sizes. */
struct SpeedupSeries
{
    std::string name;
    std::vector<double> values;
};

/** Kernel inner-loop speedups along one scaling axis. */
struct KernelSpeedupData
{
    /** Axis values (N for intracluster, C for intercluster). */
    std::vector<int> axis;
    /** Per-kernel series plus a final "harmonic mean" series. */
    std::vector<SpeedupSeries> series;
};

/** Figure 13: intracluster kernel speedups (C fixed). */
KernelSpeedupData kernelIntraSpeedups(
    const std::vector<int> &n_values = {2, 5, 10, 14}, int c = 8,
    EvalEngine *engine = nullptr);

/** Figure 14: intercluster kernel speedups (N fixed). */
KernelSpeedupData kernelInterSpeedups(
    const std::vector<int> &c_values = {8, 16, 32, 64, 128}, int n = 5,
    EvalEngine *engine = nullptr);

/** Table 5: kernel performance per unit area. */
struct PerfPerAreaData
{
    std::vector<int> nValues;
    std::vector<int> cValues;
    /** value[n][c]: harmonic-mean GOPS per ALU-equivalent of area. */
    std::vector<std::vector<double>> value;
};

PerfPerAreaData
table5PerfPerArea(const std::vector<int> &n_values = {2, 5, 10, 14},
                  const std::vector<int> &c_values = {8, 16, 32, 64,
                                                      128},
                  EvalEngine *engine = nullptr);

/** One application measurement at one machine size. */
struct AppPoint
{
    std::string app;
    vlsi::MachineSize size;
    int64_t cycles = 0;
    double speedup = 0.0; ///< vs the C=8 N=5 baseline
    double gops = 0.0;    ///< sustained at the 45nm 1 GHz clock
    /** Full simulation result (hardware counters, timeline). */
    sim::SimResult result;
};

/** Figure 15: application performance across the (C, N) grid. */
std::vector<AppPoint>
appPerformance(const std::vector<int> &c_values = {8, 16, 32, 64, 128},
               const std::vector<int> &n_values = {2, 5, 10, 14},
               EvalEngine *engine = nullptr);

/** Run one app at one size (helper for tests and examples). */
AppPoint runApp(const std::string &app_name, vlsi::MachineSize size);

/** The paper's headline comparison (Abstract / Section 6). */
struct Headline
{
    /** C=128 N=5 (640 ALUs) vs C=8 N=5 (40 ALUs). */
    double kernelSpeedup640 = 0.0;
    double appSpeedup640 = 0.0;
    double areaPerAluDegradation640 = 0.0;   // fraction, e.g. 0.02
    double energyPerOpDegradation640 = 0.0;  // fraction, e.g. 0.07
    double kernelGops640 = 0.0;
    /** C=128 N=10 (1280 ALUs) vs C=8 N=5. */
    double kernelSpeedup1280 = 0.0;
    double appSpeedup1280 = 0.0;
};

/**
 * Compute the headline numbers; pass false to skip the (slower)
 * application simulations.
 */
Headline headlineNumbers(bool include_apps = true,
                         EvalEngine *engine = nullptr);

} // namespace sps::core

#endif // SPS_CORE_EXPERIMENTS_H
