#include "core/scaling_study.h"

#include "core/eval_engine.h"

namespace sps::core {

std::vector<DesignPoint>
evaluateDesigns(const std::vector<vlsi::MachineSize> &sizes,
                vlsi::Params params, vlsi::Technology tech,
                EvalEngine *engine)
{
    return resolveEngine(engine).mapItems(
        sizes, [&](const vlsi::MachineSize &size) {
            StreamProcessorDesign d(size, params, tech);
            DesignPoint pt;
            pt.size = size;
            pt.areaMm2 = d.areaMm2();
            pt.powerWatts = d.powerWatts();
            pt.peakGops = d.peakGops();
            pt.areaPerAlu = d.areaPerAlu();
            pt.energyPerAluOp = d.energyPerAluOp();
            pt.commLatencyCycles = d.costModel().interCommCycles(size);
            return pt;
        });
}

std::vector<vlsi::MachineSize>
designGrid(const std::vector<int> &c_values,
           const std::vector<int> &n_values)
{
    std::vector<vlsi::MachineSize> out;
    for (int c : c_values)
        for (int n : n_values)
            out.push_back(vlsi::MachineSize{c, n});
    return out;
}

DesignPoint
bestUnderBudget(const std::vector<DesignPoint> &points, double area_mm2,
                double power_watts, bool &found)
{
    found = false;
    DesignPoint best;
    for (const auto &pt : points) {
        if (pt.areaMm2 > area_mm2 || pt.powerWatts > power_watts)
            continue;
        if (!found || pt.peakGops > best.peakGops) {
            best = pt;
            found = true;
        }
    }
    return best;
}

} // namespace sps::core
