/**
 * @file
 * The paper's second future-work question (Section 6): how do the two
 * scaling techniques compare against "multiple stream processors on a
 * single chip simultaneously executing different kernels of one
 * stream program"?
 *
 * This study models a chip of M independent stream processors, each
 * with C/M clusters and its own microcontroller, SRF banks, and
 * (smaller) intercluster switch. VLSI costs come straight from the
 * cost model; performance uses a task-pipeline model where an
 * application's kernels are spread across processors, limited by
 * pipeline balance and inter-processor transfers through memory.
 */
#ifndef SPS_CORE_MULTIPROC_H
#define SPS_CORE_MULTIPROC_H

#include <vector>

#include "vlsi/cost_model.h"

namespace sps::core {

class EvalEngine;

/** One multiprocessor partitioning of a fixed ALU budget. */
struct MultiprocPoint
{
    /** Processors on the chip. */
    int processors = 1;
    /** Size of each processor. */
    vlsi::MachineSize each;
    /** Chip-wide area per ALU (grids). */
    double areaPerAlu = 0.0;
    /** Chip-wide energy per ALU operation (Ew). */
    double energyPerAluOp = 0.0;
    /** Intercluster COMM latency inside one processor (cycles). */
    int commLatency = 0;
    /**
     * Throughput of a kernel pipeline with `kernels` balanced stages
     * mapped onto the processors, relative to the single-processor
     * machine running the stages back to back (1.0 = equal).
     */
    double pipelineThroughput = 0.0;
};

/**
 * Evaluate splitting a C-cluster, N-ALU machine into M = 1, 2, 4, ...
 * processors (M divides C), for an application with `kernels`
 * balanced kernel stages.
 *
 * The single processor runs all stages time-multiplexed at full SIMD
 * width. M processors each run kernels/M stages on C/M clusters;
 * producer-consumer streams between processors lose the SRF and move
 * at `interproc_efficiency` of on-chip rate, modeled as a throughput
 * factor.
 */
std::vector<MultiprocPoint>
multiprocStudy(vlsi::MachineSize total, int kernels,
               const vlsi::CostModel &model,
               double interproc_efficiency = 0.85,
               EvalEngine *engine = nullptr);

} // namespace sps::core

#endif // SPS_CORE_MULTIPROC_H
