/**
 * @file
 * Design-space exploration over (C, N): absolute area, power, and
 * peak/sustained rate per design point, plus a helper that picks the
 * best design under area and power budgets. Used by the design_space
 * example and the combined-scaling bench (Figure 12).
 */
#ifndef SPS_CORE_SCALING_STUDY_H
#define SPS_CORE_SCALING_STUDY_H

#include <vector>

#include "core/design.h"

namespace sps::core {

class EvalEngine;

/** One evaluated design point. */
struct DesignPoint
{
    vlsi::MachineSize size;
    double areaMm2 = 0.0;
    double powerWatts = 0.0;
    double peakGops = 0.0;
    double areaPerAlu = 0.0;
    double energyPerAluOp = 0.0;
    int commLatencyCycles = 0;
};

/** Evaluate a list of sizes (points run concurrently on the engine,
 *  results in input order). */
std::vector<DesignPoint>
evaluateDesigns(const std::vector<vlsi::MachineSize> &sizes,
                vlsi::Params params = vlsi::Params::imagine(),
                vlsi::Technology tech = vlsi::Technology::fortyFiveNm(),
                EvalEngine *engine = nullptr);

/** The cross product of C and N ranges. */
std::vector<vlsi::MachineSize>
designGrid(const std::vector<int> &c_values,
           const std::vector<int> &n_values);

/**
 * Highest peak-GOPS design meeting the area and power budgets;
 * returns an empty optional-style flag via `found`.
 */
DesignPoint bestUnderBudget(const std::vector<DesignPoint> &points,
                            double area_mm2, double power_watts,
                            bool &found);

} // namespace sps::core

#endif // SPS_CORE_SCALING_STUDY_H
