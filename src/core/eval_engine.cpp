#include "core/eval_engine.h"

namespace sps::core {

EvalEngine &
EvalEngine::global()
{
    static EvalEngine engine;
    return engine;
}

} // namespace sps::core
