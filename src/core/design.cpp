#include "core/design.h"

#include "sched/schedule_cache.h"

namespace sps::core {

StreamProcessorDesign::StreamProcessorDesign(vlsi::MachineSize size,
                                             vlsi::Params params,
                                             vlsi::Technology tech)
    : size_(size),
      params_(params),
      tech_(tech),
      model_(params),
      machine_(size, model_)
{}

double
StreamProcessorDesign::areaMm2() const
{
    return tech_.gridsToMm2(area().total());
}

double
StreamProcessorDesign::powerWatts() const
{
    return tech_.powerWatts(energy().total());
}

double
StreamProcessorDesign::peakGops() const
{
    return size_.totalAlus() * tech_.clockGHz();
}

sched::CompiledKernel
StreamProcessorDesign::compile(const kernel::Kernel &k) const
{
    return sched::ScheduleCache::global().get(k, machine_);
}

double
StreamProcessorDesign::kernelOpsPerCycle(const kernel::Kernel &k) const
{
    return compile(k).aluOpsPerCycle() * size_.clusters;
}

sim::StreamProcessor
StreamProcessorDesign::makeProcessor() const
{
    sim::SimConfig cfg;
    cfg.size = size_;
    cfg.params = params_;
    cfg.tech = tech_;
    return sim::StreamProcessor(cfg);
}

sim::SimResult
StreamProcessorDesign::simulate(const stream::StreamProgram &prog) const
{
    sim::StreamProcessor proc = makeProcessor();
    return proc.run(prog);
}

} // namespace sps::core
