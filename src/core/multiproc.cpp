#include "core/multiproc.h"

#include <algorithm>

#include "common/log.h"
#include "core/eval_engine.h"

namespace sps::core {

std::vector<MultiprocPoint>
multiprocStudy(vlsi::MachineSize total, int kernels,
               const vlsi::CostModel &model,
               double interproc_efficiency, EvalEngine *engine)
{
    SPS_ASSERT(kernels >= 1, "need at least one kernel stage");
    std::vector<int> ms;
    for (int m = 1; m <= total.clusters; m *= 2) {
        if (total.clusters % m != 0)
            break;
        ms.push_back(m);
    }
    return resolveEngine(engine).mapItems(ms, [&](int m) {
        vlsi::MachineSize each{total.clusters / m,
                               total.alusPerCluster};
        MultiprocPoint pt;
        pt.processors = m;
        pt.each = each;
        // Chip cost: M copies of the smaller machine. The shared
        // stream controller / memory system stay constant factors, as
        // in the paper's accounting.
        pt.areaPerAlu = m * model.area(each).total() /
                        (total.clusters * total.alusPerCluster);
        pt.energyPerAluOp = m * model.energy(each).total() /
                            (total.clusters * total.alusPerCluster);
        pt.commLatency = model.interCommCycles(each);

        // Task pipeline: each processor owns ceil(kernels/M) stages.
        // With fewer stages than processors, the extra processors
        // idle; inter-processor producer-consumer traffic pays the
        // efficiency factor once per processor boundary crossed.
        int used = std::min(m, kernels);
        int stages_per_proc = (kernels + used - 1) / used;
        // Relative throughput: the single machine performs `kernels`
        // stages serially at full width (throughput 1/kernels per
        // dataset); the multiprocessor performs stages_per_proc
        // serially at 1/m width.
        double single = 1.0 / kernels;
        double multi = 1.0 / (stages_per_proc * m);
        if (m > 1)
            multi *= interproc_efficiency;
        pt.pipelineThroughput = multi / single;
        return pt;
    });
}

} // namespace sps::core
