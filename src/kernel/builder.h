/**
 * @file
 * KernelC-like embedded builder API for constructing kernel dataflow
 * graphs. Mirrors how Imagine kernels were written: stream reads,
 * arithmetic on values, intercluster communication, scratchpad access,
 * conditional stream I/O, and loop-carried accumulators.
 *
 * Example (sum of absolute differences of two word streams):
 * @code
 *   KernelBuilder b("sad");
 *   int a = b.inStream("a");
 *   int c = b.inStream("b");
 *   int out = b.outStream("sad");
 *   auto x = b.sbRead(a);
 *   auto y = b.sbRead(c);
 *   b.sbWrite(out, b.iabs(b.isub(x, y)));
 *   Kernel k = b.build();
 * @endcode
 */
#ifndef SPS_KERNEL_BUILDER_H
#define SPS_KERNEL_BUILDER_H

#include <string>

#include "kernel/ir.h"

namespace sps::kernel {

/** Fluent builder for Kernel graphs; see file comment for an example. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name,
                           DataClass dc = DataClass::Word32);

    // --- Signature ---

    /** Declare an input stream; returns its stream index. */
    int inStream(const std::string &name, int record_words = 1,
                 bool conditional = false);
    /** Declare an output stream; returns its stream index. */
    int outStream(const std::string &name, int record_words = 1,
                  bool conditional = false);
    /** Choose which input stream drives the iteration count. */
    void lengthDriver(int stream);
    /** Reserve per-cluster scratchpad capacity (words). */
    void scratchpad(int words);

    // --- Leaf values ---

    ValueId constI(int32_t v);
    ValueId constF(float v);
    ValueId loopIndex();
    ValueId clusterId();
    ValueId numClusters();

    // --- Integer arithmetic ---

    ValueId iadd(ValueId a, ValueId b);
    ValueId isub(ValueId a, ValueId b);
    ValueId imul(ValueId a, ValueId b);
    ValueId iand(ValueId a, ValueId b);
    ValueId ior(ValueId a, ValueId b);
    ValueId ixor(ValueId a, ValueId b);
    ValueId ishl(ValueId a, ValueId b);
    ValueId ishr(ValueId a, ValueId b);
    ValueId iabs(ValueId a);
    ValueId imin(ValueId a, ValueId b);
    ValueId imax(ValueId a, ValueId b);
    ValueId icmpEq(ValueId a, ValueId b);
    ValueId icmpLt(ValueId a, ValueId b);
    ValueId icmpLe(ValueId a, ValueId b);
    /** c ? a : b (c is an integer predicate). */
    ValueId select(ValueId c, ValueId a, ValueId b);

    // --- Floating point ---

    ValueId fadd(ValueId a, ValueId b);
    ValueId fsub(ValueId a, ValueId b);
    ValueId fmul(ValueId a, ValueId b);
    ValueId fdiv(ValueId a, ValueId b);
    ValueId fsqrt(ValueId a);
    ValueId frsqrt(ValueId a);
    ValueId fabsOp(ValueId a);
    ValueId fneg(ValueId a);
    ValueId fmin(ValueId a, ValueId b);
    ValueId fmax(ValueId a, ValueId b);
    ValueId fcmpEq(ValueId a, ValueId b);
    ValueId fcmpLt(ValueId a, ValueId b);
    ValueId fcmpLe(ValueId a, ValueId b);
    ValueId ftoi(ValueId a);
    ValueId itof(ValueId a);
    ValueId ffloor(ValueId a);

    // --- Streams ---

    /** Read word `field` of this iteration's record from a stream. */
    ValueId sbRead(int stream, int field = 0);
    /** Append/overwrite word `field` of this iteration's output record. */
    void sbWrite(int stream, ValueId value, int field = 0);
    /** Conditional read: clusters with pred != 0 consume an element. */
    ValueId condRead(int stream, ValueId pred);
    /** Conditional write: clusters with pred != 0 append their value. */
    void condWrite(int stream, ValueId value, ValueId pred);

    // --- Scratchpad / COMM ---

    ValueId spRead(ValueId addr);
    void spWrite(ValueId addr, ValueId value);
    /**
     * Intercluster communication: each cluster receives `value` as
     * computed by the cluster whose index is `src_cluster` (evaluated
     * locally, wrapped modulo C).
     */
    ValueId comm(ValueId value, ValueId src_cluster);

    // --- Recurrences ---

    /**
     * Create a loop-carried value. Reads `init` for the first
     * `distance` iterations, then the value its source had `distance`
     * iterations ago. The source must be set with setPhiSource before
     * build().
     */
    ValueId phi(isa::Word init, int distance = 1);
    void setPhiSource(ValueId phi_id, ValueId src);

    /** Finalize: validates the graph and returns the kernel. */
    Kernel build();

  private:
    ValueId emit(isa::Opcode code, std::vector<ValueId> args);
    void orderSideEffect(ValueId id, int stream_or_sp);

    Kernel k_;
    ValueId lastSpOp_ = kNoValue;
    std::vector<ValueId> lastStreamOp_; // per stream
    bool built_ = false;
};

} // namespace sps::kernel

#endif // SPS_KERNEL_BUILDER_H
