/**
 * @file
 * Kernel inner-loop characteristics (the paper's Table 2): operations
 * per loop iteration broken down into ALU operations, SRF accesses,
 * intercluster communications, and scratchpad accesses, with the
 * per-ALU-op ratios the paper prints in parentheses.
 */
#ifndef SPS_KERNEL_CENSUS_H
#define SPS_KERNEL_CENSUS_H

#include "kernel/ir.h"

namespace sps::kernel {

/** Inner-loop operation counts for one kernel. */
struct Census
{
    int aluOps = 0;
    int srfAccesses = 0;
    int comms = 0;
    int spAccesses = 0;

    double srfPerAlu() const { return ratio(srfAccesses); }
    double commPerAlu() const { return ratio(comms); }
    double spPerAlu() const { return ratio(spAccesses); }

  private:
    double
    ratio(int n) const
    {
        return aluOps > 0 ? static_cast<double>(n) / aluOps : 0.0;
    }
};

/** Count one iteration's operations by the paper's categories. */
Census takeCensus(const Kernel &k);

/**
 * Operations counted for GOPS reporting: ALU operations, doubled for
 * 16-bit kernels which execute two subword operations per instruction
 * (as on Imagine).
 */
double gopsOpsPerIteration(const Kernel &k);

} // namespace sps::kernel

#endif // SPS_KERNEL_CENSUS_H
