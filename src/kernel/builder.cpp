#include "kernel/builder.h"

#include "common/log.h"
#include "kernel/validate.h"

namespace sps::kernel {

using isa::Opcode;
using isa::Word;

KernelBuilder::KernelBuilder(std::string name, DataClass dc)
{
    k_.name = std::move(name);
    k_.dataClass = dc;
}

int
KernelBuilder::inStream(const std::string &name, int record_words,
                        bool conditional)
{
    SPS_ASSERT(record_words >= 1, "record must have at least one word");
    k_.streams.push_back(
        StreamPort{name, PortDir::In, record_words, conditional});
    lastStreamOp_.push_back(kNoValue);
    return static_cast<int>(k_.streams.size()) - 1;
}

int
KernelBuilder::outStream(const std::string &name, int record_words,
                         bool conditional)
{
    SPS_ASSERT(record_words >= 1, "record must have at least one word");
    k_.streams.push_back(
        StreamPort{name, PortDir::Out, record_words, conditional});
    lastStreamOp_.push_back(kNoValue);
    return static_cast<int>(k_.streams.size()) - 1;
}

void
KernelBuilder::lengthDriver(int stream)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(k_.streams.size()),
               "bad stream index %d", stream);
    SPS_ASSERT(k_.streams[stream].dir == PortDir::In,
               "length driver must be an input stream");
    k_.lengthDriver = stream;
}

void
KernelBuilder::scratchpad(int words)
{
    SPS_ASSERT(words >= 0, "negative scratchpad size");
    k_.scratchpadWords = words;
}

ValueId
KernelBuilder::emit(Opcode code, std::vector<ValueId> args)
{
    SPS_ASSERT(!built_, "builder already finalized");
    SPS_ASSERT(static_cast<int>(args.size()) == isa::arity(code),
               "%s expects %d args, got %zu",
               std::string(isa::mnemonic(code)).c_str(),
               isa::arity(code), args.size());
    for (ValueId a : args)
        SPS_ASSERT(a >= 0 && a < static_cast<ValueId>(k_.ops.size()),
                   "operand %d not yet defined", a);
    Op op;
    op.code = code;
    op.args = std::move(args);
    k_.ops.push_back(std::move(op));
    return static_cast<ValueId>(k_.ops.size()) - 1;
}

void
KernelBuilder::orderSideEffect(ValueId id, int stream_or_sp)
{
    Op &op = k_.ops[static_cast<size_t>(id)];
    if (stream_or_sp < 0) {
        // Scratchpad: serialize against the previous SP access.
        if (lastSpOp_ != kNoValue)
            op.orderAfter.push_back(lastSpOp_);
        lastSpOp_ = id;
    } else {
        if (lastStreamOp_[static_cast<size_t>(stream_or_sp)] != kNoValue)
            op.orderAfter.push_back(
                lastStreamOp_[static_cast<size_t>(stream_or_sp)]);
        lastStreamOp_[static_cast<size_t>(stream_or_sp)] = id;
    }
}

ValueId
KernelBuilder::constI(int32_t v)
{
    ValueId id = emit(Opcode::ConstInt, {});
    k_.ops.back().imm = Word::fromInt(v);
    return id;
}

ValueId
KernelBuilder::constF(float v)
{
    ValueId id = emit(Opcode::ConstFloat, {});
    k_.ops.back().imm = Word::fromFloat(v);
    return id;
}

ValueId KernelBuilder::loopIndex() { return emit(Opcode::LoopIndex, {}); }
ValueId KernelBuilder::clusterId() { return emit(Opcode::ClusterId, {}); }
ValueId
KernelBuilder::numClusters()
{
    return emit(Opcode::NumClusters, {});
}

ValueId KernelBuilder::iadd(ValueId a, ValueId b)
{ return emit(Opcode::IAdd, {a, b}); }
ValueId KernelBuilder::isub(ValueId a, ValueId b)
{ return emit(Opcode::ISub, {a, b}); }
ValueId KernelBuilder::imul(ValueId a, ValueId b)
{ return emit(Opcode::IMul, {a, b}); }
ValueId KernelBuilder::iand(ValueId a, ValueId b)
{ return emit(Opcode::IAnd, {a, b}); }
ValueId KernelBuilder::ior(ValueId a, ValueId b)
{ return emit(Opcode::IOr, {a, b}); }
ValueId KernelBuilder::ixor(ValueId a, ValueId b)
{ return emit(Opcode::IXor, {a, b}); }
ValueId KernelBuilder::ishl(ValueId a, ValueId b)
{ return emit(Opcode::IShl, {a, b}); }
ValueId KernelBuilder::ishr(ValueId a, ValueId b)
{ return emit(Opcode::IShr, {a, b}); }
ValueId KernelBuilder::iabs(ValueId a) { return emit(Opcode::IAbs, {a}); }
ValueId KernelBuilder::imin(ValueId a, ValueId b)
{ return emit(Opcode::IMin, {a, b}); }
ValueId KernelBuilder::imax(ValueId a, ValueId b)
{ return emit(Opcode::IMax, {a, b}); }
ValueId KernelBuilder::icmpEq(ValueId a, ValueId b)
{ return emit(Opcode::ICmpEq, {a, b}); }
ValueId KernelBuilder::icmpLt(ValueId a, ValueId b)
{ return emit(Opcode::ICmpLt, {a, b}); }
ValueId KernelBuilder::icmpLe(ValueId a, ValueId b)
{ return emit(Opcode::ICmpLe, {a, b}); }
ValueId KernelBuilder::select(ValueId c, ValueId a, ValueId b)
{ return emit(Opcode::Select, {c, a, b}); }

ValueId KernelBuilder::fadd(ValueId a, ValueId b)
{ return emit(Opcode::FAdd, {a, b}); }
ValueId KernelBuilder::fsub(ValueId a, ValueId b)
{ return emit(Opcode::FSub, {a, b}); }
ValueId KernelBuilder::fmul(ValueId a, ValueId b)
{ return emit(Opcode::FMul, {a, b}); }
ValueId KernelBuilder::fdiv(ValueId a, ValueId b)
{ return emit(Opcode::FDiv, {a, b}); }
ValueId KernelBuilder::fsqrt(ValueId a)
{ return emit(Opcode::FSqrt, {a}); }
ValueId KernelBuilder::frsqrt(ValueId a)
{ return emit(Opcode::FRsqrt, {a}); }
ValueId KernelBuilder::fabsOp(ValueId a)
{ return emit(Opcode::FAbs, {a}); }
ValueId KernelBuilder::fneg(ValueId a) { return emit(Opcode::FNeg, {a}); }
ValueId KernelBuilder::fmin(ValueId a, ValueId b)
{ return emit(Opcode::FMin, {a, b}); }
ValueId KernelBuilder::fmax(ValueId a, ValueId b)
{ return emit(Opcode::FMax, {a, b}); }
ValueId KernelBuilder::fcmpEq(ValueId a, ValueId b)
{ return emit(Opcode::FCmpEq, {a, b}); }
ValueId KernelBuilder::fcmpLt(ValueId a, ValueId b)
{ return emit(Opcode::FCmpLt, {a, b}); }
ValueId KernelBuilder::fcmpLe(ValueId a, ValueId b)
{ return emit(Opcode::FCmpLe, {a, b}); }
ValueId KernelBuilder::ftoi(ValueId a) { return emit(Opcode::FToI, {a}); }
ValueId KernelBuilder::itof(ValueId a) { return emit(Opcode::IToF, {a}); }
ValueId KernelBuilder::ffloor(ValueId a)
{ return emit(Opcode::FFloor, {a}); }

ValueId
KernelBuilder::sbRead(int stream, int field)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(k_.streams.size()),
               "bad stream index %d", stream);
    SPS_ASSERT(k_.streams[stream].dir == PortDir::In,
               "sbRead of output stream %s",
               k_.streams[stream].name.c_str());
    SPS_ASSERT(field >= 0 && field < k_.streams[stream].recordWords,
               "field %d out of record (%d words)", field,
               k_.streams[stream].recordWords);
    ValueId id = emit(Opcode::SbRead, {});
    k_.ops.back().stream = stream;
    k_.ops.back().field = field;
    orderSideEffect(id, stream);
    return id;
}

void
KernelBuilder::sbWrite(int stream, ValueId value, int field)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(k_.streams.size()),
               "bad stream index %d", stream);
    SPS_ASSERT(k_.streams[stream].dir == PortDir::Out,
               "sbWrite of input stream %s",
               k_.streams[stream].name.c_str());
    SPS_ASSERT(field >= 0 && field < k_.streams[stream].recordWords,
               "field %d out of record (%d words)", field,
               k_.streams[stream].recordWords);
    ValueId id = emit(Opcode::SbWrite, {value});
    k_.ops.back().stream = stream;
    k_.ops.back().field = field;
    orderSideEffect(id, stream);
}

ValueId
KernelBuilder::condRead(int stream, ValueId pred)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(k_.streams.size()),
               "bad stream index %d", stream);
    SPS_ASSERT(k_.streams[stream].dir == PortDir::In &&
                   k_.streams[stream].conditional,
               "condRead needs a conditional input stream");
    ValueId id = emit(Opcode::SbCondRead, {pred});
    k_.ops.back().stream = stream;
    orderSideEffect(id, stream);
    return id;
}

void
KernelBuilder::condWrite(int stream, ValueId value, ValueId pred)
{
    SPS_ASSERT(stream >= 0 &&
                   stream < static_cast<int>(k_.streams.size()),
               "bad stream index %d", stream);
    SPS_ASSERT(k_.streams[stream].dir == PortDir::Out &&
                   k_.streams[stream].conditional,
               "condWrite needs a conditional output stream");
    ValueId id = emit(Opcode::SbCondWrite, {value, pred});
    k_.ops.back().stream = stream;
    orderSideEffect(id, stream);
}

ValueId
KernelBuilder::spRead(ValueId addr)
{
    ValueId id = emit(Opcode::SpRead, {addr});
    orderSideEffect(id, -1);
    return id;
}

void
KernelBuilder::spWrite(ValueId addr, ValueId value)
{
    ValueId id = emit(Opcode::SpWrite, {addr, value});
    orderSideEffect(id, -1);
}

ValueId
KernelBuilder::comm(ValueId value, ValueId src_cluster)
{
    return emit(Opcode::CommPerm, {value, src_cluster});
}

ValueId
KernelBuilder::phi(Word init, int distance)
{
    SPS_ASSERT(!built_, "builder already finalized");
    SPS_ASSERT(distance >= 1, "phi distance must be >= 1");
    // Bypass emit(): the source operand is a placeholder until
    // setPhiSource() fills it in.
    Op op;
    op.code = Opcode::Phi;
    op.args = {kNoValue};
    op.distance = distance;
    op.init = init;
    k_.ops.push_back(std::move(op));
    return static_cast<ValueId>(k_.ops.size()) - 1;
}

void
KernelBuilder::setPhiSource(ValueId phi_id, ValueId src)
{
    SPS_ASSERT(phi_id >= 0 &&
                   phi_id < static_cast<ValueId>(k_.ops.size()),
               "bad phi id");
    Op &op = k_.ops[static_cast<size_t>(phi_id)];
    SPS_ASSERT(op.code == Opcode::Phi, "setPhiSource on non-phi");
    SPS_ASSERT(op.args[0] == kNoValue, "phi source already set");
    SPS_ASSERT(src >= 0 && src < static_cast<ValueId>(k_.ops.size()),
               "bad phi source");
    op.args[0] = src;
}

Kernel
KernelBuilder::build()
{
    SPS_ASSERT(!built_, "build() called twice");
    built_ = true;
    validateKernel(k_);
    return std::move(k_);
}

} // namespace sps::kernel
