/**
 * @file
 * Structural fingerprint of a kernel graph: name, data class, stream
 * signature, and the full op list (opcodes, operands, immediates,
 * ordering edges). Two kernels with equal fingerprints compute the
 * same function and schedule identically, so the fingerprint keys
 * every structural cache in the stack (sched::ScheduleCache,
 * interp::LoweredCache). Distinguishes same-named kernels with
 * different bodies (e.g. QRD's housegen, specialized per cluster
 * count).
 */
#ifndef SPS_KERNEL_FINGERPRINT_H
#define SPS_KERNEL_FINGERPRINT_H

#include <cstdint>

#include "kernel/ir.h"

namespace sps::kernel {

/** FNV-1a hash of the kernel's complete structure. */
uint64_t fingerprint(const Kernel &k);

} // namespace sps::kernel

#endif // SPS_KERNEL_FINGERPRINT_H
