#include "kernel/validate.h"

#include "common/log.h"

namespace sps::kernel {

using isa::Opcode;

void
validateKernel(const Kernel &k)
{
    SPS_ASSERT(!k.name.empty(), "kernel has no name");
    SPS_ASSERT(!k.streams.empty(), "kernel %s has no streams",
               k.name.c_str());
    SPS_ASSERT(k.inputCount() >= 1, "kernel %s has no input streams",
               k.name.c_str());
    SPS_ASSERT(k.lengthDriver >= 0 &&
                   k.lengthDriver < static_cast<int>(k.streams.size()) &&
                   k.streams[k.lengthDriver].dir == PortDir::In,
               "kernel %s: bad length driver", k.name.c_str());

    const auto nops = static_cast<ValueId>(k.ops.size());
    for (ValueId i = 0; i < nops; ++i) {
        const Op &op = k.op(i);
        SPS_ASSERT(static_cast<int>(op.args.size()) ==
                       isa::arity(op.code),
                   "kernel %s op %d (%s): bad arity", k.name.c_str(), i,
                   std::string(isa::mnemonic(op.code)).c_str());
        for (ValueId a : op.args) {
            SPS_ASSERT(a >= 0 && a < nops,
                       "kernel %s op %d: undefined operand %d",
                       k.name.c_str(), i, a);
            if (op.code != Opcode::Phi) {
                SPS_ASSERT(a < i || k.op(a).code == Opcode::Phi,
                           "kernel %s op %d: forward use of %d",
                           k.name.c_str(), i, a);
            }
        }
        if (op.code == Opcode::Phi) {
            SPS_ASSERT(op.distance >= 1,
                       "kernel %s op %d: phi distance < 1",
                       k.name.c_str(), i);
        }
        if (isa::isSrfAccess(op.code)) {
            SPS_ASSERT(op.stream >= 0 &&
                           op.stream <
                               static_cast<int>(k.streams.size()),
                       "kernel %s op %d: bad stream", k.name.c_str(), i);
            const StreamPort &port = k.streams[op.stream];
            SPS_ASSERT(op.field >= 0 && op.field < port.recordWords,
                       "kernel %s op %d: field out of record",
                       k.name.c_str(), i);
        }
        for (ValueId t : op.orderAfter)
            SPS_ASSERT(t >= 0 && t < i,
                       "kernel %s op %d: bad token edge %d",
                       k.name.c_str(), i, t);
    }

    // Same-iteration acyclicity (phi back edges excluded).
    topoOrder(k);
}

std::vector<ValueId>
topoOrder(const Kernel &k)
{
    // Ops are created in def-before-use order for everything except phi
    // back edges, so creation order is already topological for the
    // same-iteration graph. Verify that invariant instead of sorting.
    const auto nops = static_cast<ValueId>(k.ops.size());
    std::vector<ValueId> order;
    order.reserve(static_cast<size_t>(nops));
    for (ValueId i = 0; i < nops; ++i) {
        const Op &op = k.op(i);
        if (op.code != Opcode::Phi) {
            for (ValueId a : op.args) {
                SPS_ASSERT(a < i || k.op(a).code == Opcode::Phi,
                           "kernel %s: op %d breaks topological order",
                           k.name.c_str(), i);
            }
        }
        order.push_back(i);
    }
    return order;
}

} // namespace sps::kernel
