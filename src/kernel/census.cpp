#include "kernel/census.h"

namespace sps::kernel {

Census
takeCensus(const Kernel &k)
{
    Census c;
    for (const Op &op : k.ops) {
        if (isa::isAluOp(op.code))
            ++c.aluOps;
        if (isa::isSrfAccess(op.code))
            ++c.srfAccesses;
        if (isa::isCommOp(op.code))
            ++c.comms;
        if (isa::isSpAccess(op.code))
            ++c.spAccesses;
    }
    return c;
}

double
gopsOpsPerIteration(const Kernel &k)
{
    Census c = takeCensus(k);
    double factor = (k.dataClass == DataClass::Half16) ? 2.0 : 1.0;
    return factor * c.aluOps;
}

} // namespace sps::kernel
