/**
 * @file
 * Structural validation of kernel graphs: SSA well-formedness, phi
 * completeness, stream/field bounds, and acyclicity of the
 * same-iteration dependence graph (cycles may only pass through phi
 * back edges).
 */
#ifndef SPS_KERNEL_VALIDATE_H
#define SPS_KERNEL_VALIDATE_H

#include "kernel/ir.h"

namespace sps::kernel {

/** Panics with a diagnostic if the kernel is malformed. */
void validateKernel(const Kernel &k);

/**
 * Topological order of the same-iteration dependence graph (phi ops
 * have no same-iteration inputs). Panics on a same-iteration cycle.
 */
std::vector<ValueId> topoOrder(const Kernel &k);

} // namespace sps::kernel

#endif // SPS_KERNEL_VALIDATE_H
