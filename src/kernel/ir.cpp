#include "kernel/ir.h"

namespace sps::kernel {

int
Kernel::inputCount() const
{
    int n = 0;
    for (const auto &s : streams)
        if (s.dir == PortDir::In)
            ++n;
    return n;
}

int
Kernel::outputCount() const
{
    int n = 0;
    for (const auto &s : streams)
        if (s.dir == PortDir::Out)
            ++n;
    return n;
}

} // namespace sps::kernel
