/**
 * @file
 * Kernel intermediate representation: the dataflow graph of one kernel
 * inner loop. A kernel reads records from input streams, performs the
 * same computation for every record (SIMD across clusters), and appends
 * records to output streams. Loop-carried values (accumulators and
 * other recurrences) are expressed with Phi operations.
 *
 * The IR is SSA: each operation defines exactly one value, identified
 * by its index in Kernel::ops. Program-order side effects (scratchpad,
 * conditional streams, same-stream accesses) are serialized with
 * explicit token edges recorded in Op::orderAfter.
 */
#ifndef SPS_KERNEL_IR_H
#define SPS_KERNEL_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.h"
#include "isa/value.h"

namespace sps::kernel {

/** Index of an operation (and of the value it defines). */
using ValueId = int32_t;

/** Marker for "no value". */
constexpr ValueId kNoValue = -1;

/** Data type tag, used for GOPS accounting (16-bit kernels execute two
 *  subword operations per ALU instruction, as on Imagine). */
enum class DataClass { Word32, Half16 };

/** One operation in the kernel dataflow graph. */
struct Op
{
    isa::Opcode code = isa::Opcode::ConstInt;
    /** Value operands (indices of defining ops). */
    std::vector<ValueId> args;
    /** Immediate payload for constants. */
    isa::Word imm;
    /** Stream index for Sb* operations; scratchpad ops ignore it. */
    int stream = -1;
    /** Record field (word offset within the record) for SbRead/SbWrite. */
    int field = 0;
    /**
     * For Phi: dependence distance in iterations (>= 1) of args[0];
     * the value produced at iteration i is args[0]'s value from
     * iteration i - distance, or `init` for the first `distance`
     * iterations.
     */
    int distance = 0;
    isa::Word init;
    /** Token predecessors: ops that must execute before this one. */
    std::vector<ValueId> orderAfter;
};

/** Direction of a kernel stream port. */
enum class PortDir { In, Out };

/** One stream port of a kernel. */
struct StreamPort
{
    std::string name;
    PortDir dir = PortDir::In;
    /** Words per record. */
    int recordWords = 1;
    /** True for conditional (data-dependent rate) streams. */
    bool conditional = false;
};

/**
 * A complete kernel: its stream signature and inner-loop body.
 */
struct Kernel
{
    std::string name;
    DataClass dataClass = DataClass::Word32;
    std::vector<StreamPort> streams;
    std::vector<Op> ops;
    /**
     * Index of the input stream whose length determines the iteration
     * count (the kernel's primary input).
     */
    int lengthDriver = 0;
    /** Scratchpad words needed per cluster. */
    int scratchpadWords = 0;

    /** Number of input / output ports. */
    int inputCount() const;
    int outputCount() const;

    /** Operations per inner-loop iteration counted as the paper counts
     *  them (ALU, SRF access, COMM, SP); see census.h for the struct. */
    const Op &op(ValueId id) const { return ops[static_cast<size_t>(id)]; }
};

} // namespace sps::kernel

#endif // SPS_KERNEL_IR_H
