#include "kernel/fingerprint.h"

#include "common/fnv.h"

namespace sps::kernel {

uint64_t
fingerprint(const Kernel &k)
{
    Fnv f;
    f.mix(k.name);
    f.mix(static_cast<uint64_t>(k.dataClass));
    f.mix(static_cast<uint64_t>(k.lengthDriver));
    f.mix(static_cast<uint64_t>(k.scratchpadWords));
    f.mix(static_cast<uint64_t>(k.streams.size()));
    for (const auto &s : k.streams) {
        f.mix(static_cast<uint64_t>(s.dir));
        f.mix(static_cast<uint64_t>(s.recordWords));
        f.mix(static_cast<uint64_t>(s.conditional));
    }
    f.mix(static_cast<uint64_t>(k.ops.size()));
    for (const auto &op : k.ops) {
        f.mix(static_cast<uint64_t>(op.code));
        f.mix(static_cast<uint64_t>(op.args.size()));
        for (auto a : op.args)
            f.mix(static_cast<uint64_t>(a));
        f.mix(static_cast<uint64_t>(op.imm.bits));
        f.mix(static_cast<uint64_t>(op.stream));
        f.mix(static_cast<uint64_t>(op.field));
        f.mix(static_cast<uint64_t>(op.distance));
        f.mix(static_cast<uint64_t>(op.init.bits));
        f.mix(static_cast<uint64_t>(op.orderAfter.size()));
        for (auto a : op.orderAfter)
            f.mix(static_cast<uint64_t>(a));
    }
    return f.h;
}

} // namespace sps::kernel
