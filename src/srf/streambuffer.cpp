#include "srf/streambuffer.h"

namespace sps::srf {

bool
sbBandwidthOk(const SrfModel &srf, int active_sbs,
              double words_per_cycle_per_bank)
{
    if (active_sbs <= 0)
        return true;
    // The bank port delivers blockWords per cycle, shared round-robin.
    double port_rate = static_cast<double>(srf.blockWords);
    return words_per_cycle_per_bank <= port_rate + 1e-9;
}

} // namespace sps::srf
