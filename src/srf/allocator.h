/**
 * @file
 * SRF space allocator: tracks which streams are resident in the SRF
 * during application execution. The strip-miner sizes batches so that
 * the working set fits; the allocator enforces that invariant at
 * simulation time and reports high-water occupancy.
 */
#ifndef SPS_SRF_ALLOCATOR_H
#define SPS_SRF_ALLOCATOR_H

#include <cstdint>
#include <map>

#include "srf/srf.h"

namespace sps::srf {

/** First-fit-free bump allocator over SRF capacity. */
class Allocator
{
  public:
    explicit Allocator(int64_t capacity_words)
        : capacity_(capacity_words)
    {}

    int64_t capacity() const { return capacity_; }
    int64_t used() const { return used_; }
    int64_t highWater() const { return highWater_; }

    /** True if `words` more would fit right now. */
    bool fits(int64_t words) const { return used_ + words <= capacity_; }

    /**
     * Reserve space for a stream; returns false (without side effects)
     * when the stream does not fit.
     */
    bool allocate(int64_t stream_id, int64_t words);

    /**
     * Reserve space even when over capacity (the simulator uses this
     * to keep running after warning about an overflow; highWater()
     * then exceeds capacity()).
     */
    void forceAllocate(int64_t stream_id, int64_t words);

    /** Release a stream's space. No-op if it was never allocated. */
    void release(int64_t stream_id);

    /** True if the stream currently holds SRF space. */
    bool resident(int64_t stream_id) const;

  private:
    int64_t capacity_;
    int64_t used_ = 0;
    int64_t highWater_ = 0;
    std::map<int64_t, int64_t> live_;
};

} // namespace sps::srf

#endif // SPS_SRF_ALLOCATOR_H
