/**
 * @file
 * Stream register file capacity and bandwidth model. The SRF is a
 * banked, single-ported SRAM of rm * T * N * C words (Table 3); its
 * many logical ports are realized by the streambuffers.
 */
#ifndef SPS_SRF_SRF_H
#define SPS_SRF_SRF_H

#include <cstdint>

#include "vlsi/cost_model.h"

namespace sps::srf {

/** Static description of one machine's SRF. */
struct SrfModel
{
    /** Total capacity (words). */
    int64_t capacityWords = 0;
    /** Words per bank (one bank per cluster). */
    int64_t bankWords = 0;
    /** Block size of one streambuffer fetch (words, per bank). */
    int blockWords = 0;
    /** Peak SRF bandwidth, words per cycle (one block port per bank). */
    double peakWordsPerCycle = 0.0;

    /** Build from a machine size and the cost-model parameters. */
    static SrfModel forMachine(vlsi::MachineSize size,
                               const vlsi::Params &p);
};

} // namespace sps::srf

#endif // SPS_SRF_SRF_H
