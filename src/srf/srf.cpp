#include "srf/srf.h"

#include <cmath>

#include "common/log.h"

namespace sps::srf {

SrfModel
SrfModel::forMachine(vlsi::MachineSize size, const vlsi::Params &p)
{
    SrfModel m;
    int n = size.alusPerCluster;
    m.bankWords = static_cast<int64_t>(
        std::llround(p.rM * p.tMem * n));
    m.capacityWords = m.bankWords * size.clusters;
    m.blockWords = std::max(
        1, static_cast<int>(std::lround(p.gSrf * n)));
    // Each bank's block port supplies GSRF*N words per cycle.
    m.peakWordsPerCycle =
        static_cast<double>(m.blockWords) * size.clusters;
    SPS_ASSERT(m.capacityWords > 0, "empty SRF");
    return m;
}

} // namespace sps::srf
