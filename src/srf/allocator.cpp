#include "srf/allocator.h"

#include <algorithm>

#include "common/log.h"

namespace sps::srf {

bool
Allocator::allocate(int64_t stream_id, int64_t words)
{
    SPS_ASSERT(words >= 0, "negative allocation");
    SPS_ASSERT(!live_.count(stream_id), "stream %lld already resident",
               static_cast<long long>(stream_id));
    if (used_ + words > capacity_)
        return false;
    live_[stream_id] = words;
    used_ += words;
    highWater_ = std::max(highWater_, used_);
    return true;
}

void
Allocator::forceAllocate(int64_t stream_id, int64_t words)
{
    SPS_ASSERT(words >= 0, "negative allocation");
    SPS_ASSERT(!live_.count(stream_id), "stream %lld already resident",
               static_cast<long long>(stream_id));
    live_[stream_id] = words;
    used_ += words;
    highWater_ = std::max(highWater_, used_);
}

void
Allocator::release(int64_t stream_id)
{
    auto it = live_.find(stream_id);
    if (it == live_.end())
        return;
    used_ -= it->second;
    live_.erase(it);
}

bool
Allocator::resident(int64_t stream_id) const
{
    return live_.count(stream_id) > 0;
}

} // namespace sps::srf
