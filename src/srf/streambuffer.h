/**
 * @file
 * Streambuffer model: each SB double-buffers two SRF blocks per bank
 * and converts the SRF's single wide port into many sequential logical
 * ports. Exposes the bandwidth / occupancy arithmetic used by tests
 * and by the stream-level simulator's sanity checks.
 */
#ifndef SPS_SRF_STREAMBUFFER_H
#define SPS_SRF_STREAMBUFFER_H

#include "srf/srf.h"

namespace sps::srf {

/** One streambuffer's static configuration. */
struct StreamBuffer
{
    /** Block width per bank (words). */
    int blockWords = 1;
    /** Double-buffered capacity per bank (words). */
    int capacityWords() const { return 2 * blockWords; }

    /**
     * Peak sustainable rate of this SB in words per cycle per bank,
     * given that a block refill occupies the SRF port for one cycle
     * out of every `active_sbs` port grants.
     */
    double
    sustainableRate(int active_sbs) const
    {
        if (active_sbs <= 0)
            return static_cast<double>(blockWords);
        return static_cast<double>(blockWords) / active_sbs;
    }
};

/**
 * Whether a kernel's per-iteration stream demand is sustainable: the
 * single SRF port round-robins among `active_sbs` buffers, each
 * delivering blockWords per grant.
 */
bool sbBandwidthOk(const SrfModel &srf, int active_sbs,
                   double words_per_cycle_per_bank);

} // namespace sps::srf

#endif // SPS_SRF_STREAMBUFFER_H
