/**
 * @file
 * Service-layer telemetry: a low-overhead registry of named metrics
 * for the long-lived serving stack (svc::EvalServer / EvalService /
 * store::ResultStore / sched::ScheduleCache). Where trace::Tracer and
 * sim::SimCounters observe the *simulated machine*, this registry
 * observes the *daemon itself* while it serves traffic.
 *
 * Three metric kinds:
 *  - Counter:   monotonically increasing u64 (requests, hits, errors);
 *  - Gauge:     last-write-wins i64 (active connections, queue depth),
 *               also settable at snapshot time by collector callbacks
 *               so cheap cumulative counters owned by other subsystems
 *               (store tiers, schedule cache) appear in every scrape
 *               without paying anything on their hot paths;
 *  - Histogram: log2-bucketed latency/size distribution with exact
 *               count and sum, and p50/p95/p99 extraction from the
 *               bucket boundaries.
 *
 * Cost model: the hot path is one relaxed atomic fetch_add (Counter,
 * Histogram bucket+count+sum) or store (Gauge) on a pre-resolved
 * handle -- registration resolves the name once, recording never
 * touches the registry lock, a map, or a string. snapshot() is the
 * only reader and pays the whole cost of consistency: it runs the
 * collectors, then copies every metric under the registration lock.
 *
 * Because recording is lock-free, a snapshot taken under concurrent
 * load is a *near-point-in-time* view: each individual atomic is read
 * once, so per-metric values are exact, and cross-metric invariants
 * that hold monotonically (e.g. requests_total >= sum of per-tier
 * outcomes, histogram count >= completed observations) hold in every
 * snapshot; exact conservation holds in any quiescent snapshot.
 *
 * Exposition: renderPrometheus() emits the Prometheus text format
 * (counters/gauges as plain samples, histograms as cumulative
 * `_bucket{le=...}` series plus `_sum`/`_count`); renderJson() emits
 * one self-describing JSON object. Both render from the same
 * MetricsSnapshot, so a scrape is internally consistent across
 * formats.
 */
#ifndef SPS_OBS_METRICS_H
#define SPS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sps::obs {

/** Monotonic counter. Obtain from MetricsRegistry::counter(); the
 *  handle stays valid for the registry's lifetime. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins gauge (signed: depths and deltas may dip). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

    void
    add(int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Log2-bucketed histogram over non-negative integer observations
 * (canonically microseconds). Bucket i counts observations v with
 * upperBound(i-1) < v <= upperBound(i), where upperBound(i) =
 * 2^(i+1) - 2 for i < kBuckets-1 (bucket 0 is exactly {0}) and +inf
 * for the last bucket; count and sum are exact. observe() is three
 * relaxed fetch_adds.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 40;

    void
    observe(uint64_t v)
    {
        buckets_[bucketIndex(v)].fetch_add(1,
                                           std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /** Index of the bucket v falls into: floor(log2(v+1)) capped. */
    static int
    bucketIndex(uint64_t v)
    {
        if (v == UINT64_MAX)
            return kBuckets - 1; // v+1 would make clzll(0) UB
        int bit = 64 - __builtin_clzll(v + 1) - 1; // v+1 >= 1
        return bit < kBuckets - 1 ? bit : kBuckets - 1;
    }

    /** Inclusive upper bound of bucket i (UINT64_MAX on the last):
     *  the largest v with bucketIndex(v) == i, which is what the
     *  Prometheus `le` contract requires of a bucket boundary. */
    static uint64_t
    upperBound(int i)
    {
        if (i >= kBuckets - 1)
            return UINT64_MAX;
        return (uint64_t(1) << (i + 1)) - 2;
    }

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** What a snapshot entry describes. */
enum class MetricKind : uint32_t {
    Counter = 1,
    Gauge = 2,
    Histogram = 3,
};

/** One metric frozen at snapshot time. */
struct MetricSample
{
    std::string name;   ///< Prometheus-legal metric name
    std::string labels; ///< preformatted `key="value",...` or empty
    std::string help;   ///< one-line description
    MetricKind kind = MetricKind::Counter;
    /** Counter/Gauge value (counters nonnegative by construction). */
    int64_t value = 0;
    /** Histogram per-bucket counts (size kBuckets) -- empty for
     *  counters/gauges. */
    std::vector<uint64_t> buckets;
    uint64_t count = 0; ///< histogram observation count
    uint64_t sum = 0;   ///< histogram observation sum

    /**
     * Smallest bucket upper bound covering quantile q in [0,1] --
     * e.g. quantile(0.99) -- computed by rank walk over the bucket
     * counts. 0 when the histogram is empty. Log-bucketed, so the
     * value is the bucket ceiling (within 2x of the true quantile).
     */
    uint64_t quantile(double q) const;
};

/** A point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::vector<MetricSample> metrics;

    /** First metric matching (name, labels), or nullptr. */
    const MetricSample *find(const std::string &name,
                             const std::string &labels = "") const;
    /** Counter/gauge value of (name, labels), or 0 when absent. */
    int64_t value(const std::string &name,
                  const std::string &labels = "") const;
};

/**
 * Registry of named metrics. counter()/gauge()/histogram() register
 * on first use and return the existing handle on repeated calls with
 * the same (name, labels) -- handles are stable for the registry's
 * lifetime. Registration takes a mutex; recording through a handle
 * never does.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter *counter(const std::string &name,
                     const std::string &labels = "",
                     const std::string &help = "");
    Gauge *gauge(const std::string &name,
                 const std::string &labels = "",
                 const std::string &help = "");
    Histogram *histogram(const std::string &name,
                         const std::string &labels = "",
                         const std::string &help = "");

    /**
     * Register a callback run at the start of every snapshot(),
     * before metric values are read -- the hook by which subsystems
     * with their own cheap atomic counters (result store, schedule
     * cache, server) publish them as gauges without any hot-path
     * cost. The objects a collector touches must outlive the
     * registry's last snapshot().
     */
    void addCollector(std::function<void()> fn);

    /** Point-in-time copy of every metric (runs collectors first). */
    MetricsSnapshot snapshot() const;

    size_t size() const;

  private:
    struct Entry
    {
        std::string name;
        std::string labels;
        std::string help;
        MetricKind kind;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Gauge> g;
        std::unique_ptr<Histogram> h;
    };

    Entry *findOrNull(const std::string &name,
                      const std::string &labels, MetricKind kind);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Entry>> entries_;
    std::vector<std::function<void()>> collectors_;
};

/** Render a snapshot in the Prometheus text exposition format. */
std::string renderPrometheus(const MetricsSnapshot &snap);

/** Render a snapshot as a JSON object keyed by metric name. */
std::string renderJson(const MetricsSnapshot &snap);

/** Monotonic now() in microseconds (steady clock), the canonical
 *  unit for every duration histogram in this subsystem. */
uint64_t monotonicMicros();

} // namespace sps::obs

#endif // SPS_OBS_METRICS_H
