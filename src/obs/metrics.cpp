#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace sps::obs {

uint64_t
MetricSample::quantile(double q) const
{
    if (count == 0 || buckets.empty())
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target observation (1-based, ceil): the smallest
    // bucket whose cumulative count reaches it bounds the quantile.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank == 0)
        rank = 1;
    uint64_t cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum >= rank)
            return Histogram::upperBound(static_cast<int>(i));
    }
    return Histogram::upperBound(static_cast<int>(buckets.size()) - 1);
}

const MetricSample *
MetricsSnapshot::find(const std::string &name,
                      const std::string &labels) const
{
    for (const auto &m : metrics)
        if (m.name == name && m.labels == labels)
            return &m;
    return nullptr;
}

int64_t
MetricsSnapshot::value(const std::string &name,
                       const std::string &labels) const
{
    const MetricSample *m = find(name, labels);
    return m ? m->value : 0;
}

MetricsRegistry::Entry *
MetricsRegistry::findOrNull(const std::string &name,
                            const std::string &labels, MetricKind kind)
{
    for (auto &e : entries_)
        if (e->name == name && e->labels == labels) {
            SPS_ASSERT(e->kind == kind,
                       "metric %s re-registered with a different kind",
                       name.c_str());
            return e.get();
        }
    return nullptr;
}

Counter *
MetricsRegistry::counter(const std::string &name,
                         const std::string &labels,
                         const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = findOrNull(name, labels, MetricKind::Counter))
        return e->c.get();
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->labels = labels;
    e->help = help;
    e->kind = MetricKind::Counter;
    e->c = std::make_unique<Counter>();
    Counter *out = e->c.get();
    entries_.push_back(std::move(e));
    return out;
}

Gauge *
MetricsRegistry::gauge(const std::string &name,
                       const std::string &labels,
                       const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = findOrNull(name, labels, MetricKind::Gauge))
        return e->g.get();
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->labels = labels;
    e->help = help;
    e->kind = MetricKind::Gauge;
    e->g = std::make_unique<Gauge>();
    Gauge *out = e->g.get();
    entries_.push_back(std::move(e));
    return out;
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &labels,
                           const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = findOrNull(name, labels, MetricKind::Histogram))
        return e->h.get();
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->labels = labels;
    e->help = help;
    e->kind = MetricKind::Histogram;
    e->h = std::make_unique<Histogram>();
    Histogram *out = e->h.get();
    entries_.push_back(std::move(e));
    return out;
}

void
MetricsRegistry::addCollector(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    collectors_.push_back(std::move(fn));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Collectors may register new gauges and set values; run them
    // outside the lock so they can call gauge() themselves.
    std::vector<std::function<void()>> collectors;
    {
        std::lock_guard<std::mutex> lock(mu_);
        collectors = collectors_;
    }
    for (const auto &fn : collectors)
        fn();

    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.metrics.reserve(entries_.size());
    for (const auto &e : entries_) {
        MetricSample m;
        m.name = e->name;
        m.labels = e->labels;
        m.help = e->help;
        m.kind = e->kind;
        switch (e->kind) {
        case MetricKind::Counter:
            m.value = static_cast<int64_t>(e->c->value());
            break;
        case MetricKind::Gauge:
            m.value = e->g->value();
            break;
        case MetricKind::Histogram: {
            // Buckets first, then count/sum: each atomic is read
            // once, and a racing observe() can only make count/sum
            // run *ahead* of the bucket total, never behind, so
            // sum-of-buckets <= count holds in every snapshot.
            m.buckets.resize(Histogram::kBuckets);
            for (int i = 0; i < Histogram::kBuckets; ++i)
                m.buckets[static_cast<size_t>(i)] =
                    e->h->buckets_[i].load(std::memory_order_relaxed);
            m.count = e->h->count();
            m.sum = e->h->sum();
            break;
        }
        }
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

namespace {

void
appendSampleLine(std::string *out, const std::string &name,
                 const std::string &labels, const char *suffix,
                 const std::string &extraLabel, int64_t value)
{
    *out += name;
    *out += suffix;
    if (!labels.empty() || !extraLabel.empty()) {
        *out += '{';
        *out += labels;
        if (!labels.empty() && !extraLabel.empty())
            *out += ',';
        *out += extraLabel;
        *out += '}';
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " %" PRId64 "\n", value);
    *out += buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snap)
{
    std::string out;
    std::string lastTyped; // emit HELP/TYPE once per metric family
    for (const auto &m : snap.metrics) {
        const char *type = m.kind == MetricKind::Counter ? "counter"
                           : m.kind == MetricKind::Gauge ? "gauge"
                                                         : "histogram";
        if (m.name != lastTyped) {
            if (!m.help.empty())
                out += "# HELP " + m.name + " " + m.help + "\n";
            out += "# TYPE " + m.name + " " + type + "\n";
            lastTyped = m.name;
        }
        if (m.kind != MetricKind::Histogram) {
            appendSampleLine(&out, m.name, m.labels, "", "", m.value);
            continue;
        }
        // Cumulative le-buckets; every histogram ends in +Inf whose
        // value equals _count (what the CI line-format check parses).
        uint64_t cum = 0;
        for (size_t i = 0; i < m.buckets.size(); ++i) {
            if (m.buckets[i] == 0 && i + 1 != m.buckets.size())
                continue; // sparse: zero buckets add nothing
            cum += m.buckets[i];
            std::string le;
            if (i + 1 == m.buckets.size()) {
                le = "le=\"+Inf\"";
                cum = m.count; // fold any in-flight count drift
            } else {
                char buf[40];
                std::snprintf(
                    buf, sizeof buf, "le=\"%" PRIu64 "\"",
                    Histogram::upperBound(static_cast<int>(i)));
                le = buf;
            }
            appendSampleLine(&out, m.name, m.labels, "_bucket", le,
                             static_cast<int64_t>(cum));
        }
        appendSampleLine(&out, m.name, m.labels, "_sum", "",
                         static_cast<int64_t>(m.sum));
        appendSampleLine(&out, m.name, m.labels, "_count", "",
                         static_cast<int64_t>(m.count));
    }
    return out;
}

std::string
renderJson(const MetricsSnapshot &snap)
{
    std::string out = "{\n  \"metrics\": [";
    bool first = true;
    for (const auto &m : snap.metrics) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + jsonEscape(m.name) + "\"";
        if (!m.labels.empty())
            out += ", \"labels\": \"" + jsonEscape(m.labels) + "\"";
        char buf[64];
        switch (m.kind) {
        case MetricKind::Counter:
        case MetricKind::Gauge:
            std::snprintf(buf, sizeof buf,
                          ", \"type\": \"%s\", \"value\": %" PRId64,
                          m.kind == MetricKind::Counter ? "counter"
                                                        : "gauge",
                          m.value);
            out += buf;
            break;
        case MetricKind::Histogram: {
            std::snprintf(buf, sizeof buf,
                          ", \"type\": \"histogram\", \"count\": %" PRIu64
                          ", \"sum\": %" PRIu64,
                          m.count, m.sum);
            out += buf;
            std::snprintf(buf, sizeof buf,
                          ", \"p50\": %" PRIu64 ", \"p95\": %" PRIu64
                          ", \"p99\": %" PRIu64,
                          m.quantile(0.50), m.quantile(0.95),
                          m.quantile(0.99));
            out += buf;
            out += ", \"buckets\": [";
            // Sparse pairs [upper_bound, count]; +Inf rides as -1.
            bool bfirst = true;
            for (size_t i = 0; i < m.buckets.size(); ++i) {
                if (m.buckets[i] == 0)
                    continue;
                if (!bfirst)
                    out += ", ";
                bfirst = false;
                if (i + 1 == m.buckets.size())
                    std::snprintf(buf, sizeof buf, "[-1, %" PRIu64 "]",
                                  m.buckets[i]);
                else
                    std::snprintf(
                        buf, sizeof buf, "[%" PRIu64 ", %" PRIu64 "]",
                        Histogram::upperBound(static_cast<int>(i)),
                        m.buckets[i]);
                out += buf;
            }
            out += "]";
            break;
        }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

uint64_t
monotonicMicros()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace sps::obs
