#include "obs/span.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/log.h"
#include "trace/tracer.h"

namespace sps::obs {

const char *
tierName(Tier t)
{
    switch (t) {
    case Tier::Unknown:
        return "unknown";
    case Tier::Mem:
        return "mem";
    case Tier::Disk:
        return "disk";
    case Tier::Compute:
        return "compute";
    case Tier::Error:
        return "error";
    }
    return "unknown";
}

RequestSpan::RequestSpan(uint64_t id, std::string label)
    : id_(id), label_(std::move(label)), beginUs_(monotonicMicros())
{
}

void
RequestSpan::stage(const char *name, uint64_t beginUs, uint64_t endUs)
{
    stages_.push_back(SpanStage{name, beginUs, endUs});
}

uint64_t
RequestSpan::stageUs(const char *name) const
{
    for (const auto &s : stages_)
        if (std::string_view(s.name) == name)
            return s.durationUs();
    return 0;
}

uint64_t
RequestSpan::totalUs() const
{
    return (finished_ ? endUs_ : monotonicMicros()) - beginUs_;
}

void
RequestSpan::finish(SpanRecorder *recorder)
{
    if (finished_)
        return;
    endUs_ = monotonicMicros();
    finished_ = true;
    if (recorder)
        recorder->retire(
            std::shared_ptr<const RequestSpan>(new RequestSpan(*this)));
}

std::string
RequestSpan::describe() const
{
    std::string out = strformat(
        "id=%llu label=%s tier=%s total_us=%llu",
        static_cast<unsigned long long>(id_), label_.c_str(),
        tierName(tier_), static_cast<unsigned long long>(totalUs()));
    for (const auto &s : stages_)
        out += strformat(
            " %s_us=%llu", s.name,
            static_cast<unsigned long long>(s.durationUs()));
    return out;
}

void
SpanRecorder::retire(std::shared_ptr<const RequestSpan> span)
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(std::move(span));
    ++retired_;
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        ++dropped_;
    }
}

std::vector<std::shared_ptr<const RequestSpan>>
SpanRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {ring_.begin(), ring_.end()};
}

size_t
SpanRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

uint64_t
SpanRecorder::retiredCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return retired_;
}

uint64_t
SpanRecorder::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
SpanRecorder::toTracer(trace::Tracer *tracer) const
{
    auto spans = this->spans();
    if (spans.empty() || !tracer)
        return;
    uint64_t base = UINT64_MAX;
    for (const auto &s : spans)
        base = std::min(base, s->beginUs());

    // Track 0 carries the whole-request async spans; each distinct
    // stage name gets its own track above it, in first-seen order, so
    // the daemon trace reads top-down like the request pipeline.
    tracer->setTrackName(0, "request");
    std::map<std::string, int> stageTrack;
    auto trackOf = [&](const char *name) {
        auto [it, inserted] = stageTrack.emplace(
            name, static_cast<int>(stageTrack.size()) + 1);
        if (inserted)
            tracer->setTrackName(it->second, name);
        return it->second;
    };

    for (const auto &s : spans) {
        int64_t b = static_cast<int64_t>(s->beginUs() - base);
        int64_t e = static_cast<int64_t>(s->endUs() - base);
        tracer->span("daemon", s->label(), b, e,
                     static_cast<int64_t>(s->id()), 0,
                     {{"tier", static_cast<int64_t>(s->tier())},
                      {"total_us", e - b}});
        for (const auto &st : s->stages())
            tracer->complete(
                "daemon", st.name,
                static_cast<int64_t>(st.beginUs - base),
                static_cast<int64_t>(st.endUs - base),
                trackOf(st.name),
                {{"req", static_cast<int64_t>(s->id())}});
    }
}

} // namespace sps::obs
