/**
 * @file
 * Per-request spans for the evaluation daemon: one RequestSpan is
 * created per EvalRequest frame in svc::EvalServer and threaded
 * through svc::EvalService's submit -> dispatch -> tier resolution ->
 * delivery pipeline. Each stage the request passes (queue wait, store
 * read, simulation, store write-back, delivery) records a named
 * [begin, end) interval in monotonic microseconds, plus the tier that
 * ultimately served the request (memory / disk / compute / error), so
 * a slow request decomposes into exactly where its time went.
 *
 * Synchronization contract: a span has no locks of its own. Writers
 * are sequenced by the request lifecycle itself -- the server's
 * reader thread writes at creation/submit, a service worker writes
 * while it owns the job (publication via the job's promise), and the
 * server's writer thread records delivery after future.get() (which
 * synchronizes with set_value). finish()ing hands the span to a
 * SpanRecorder, after which it is immutable.
 *
 * Completed spans land in a SpanRecorder (bounded ring of the most
 * recent spans) and export as Chrome trace events through the same
 * trace::Tracer used for simulator timelines -- daemon-side request
 * spans open in exactly the same Perfetto viewer, one track per
 * stage, async-span ids keeping concurrent requests apart.
 */
#ifndef SPS_OBS_SPAN_H
#define SPS_OBS_SPAN_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sps::trace {
class Tracer;
}

namespace sps::obs {

/** Which tier ultimately served a request. */
enum class Tier : uint8_t {
    Unknown = 0, ///< still in flight (or dropped before resolution)
    Mem = 1,     ///< completed result or joined in-flight twin
    Disk = 2,    ///< decoded from the result store
    Compute = 3, ///< simulated
    Error = 4,   ///< resolved to an exception
};

const char *tierName(Tier t);

/** One named stage interval inside a request (microseconds). */
struct SpanStage
{
    const char *name; ///< static string (e.g. "queue", "sim")
    uint64_t beginUs = 0;
    uint64_t endUs = 0;

    uint64_t durationUs() const { return endUs - beginUs; }
};

class SpanRecorder;

class RequestSpan
{
  public:
    /** Begin a span now. `id` must be unique per recorder (the
     *  server uses its request counter). */
    RequestSpan(uint64_t id, std::string label);

    uint64_t id() const { return id_; }
    const std::string &label() const { return label_; }
    uint64_t beginUs() const { return beginUs_; }
    uint64_t endUs() const { return endUs_; }
    Tier tier() const { return tier_; }
    const std::vector<SpanStage> &stages() const { return stages_; }

    void setTier(Tier t) { tier_ = t; }

    /** Record a completed stage interval. */
    void stage(const char *name, uint64_t beginUs, uint64_t endUs);

    /** Duration of the first stage named `name`, or 0. */
    uint64_t stageUs(const char *name) const;

    /** Total wall time so far (or final, once finished). */
    uint64_t totalUs() const;

    /**
     * Close the span (records end time) and, when a recorder is
     * given, retire it there. After finish() the span is immutable;
     * finish() is idempotent.
     */
    void finish(SpanRecorder *recorder);

    /** One structured line for the slow-request log:
     *  "id=.. label=.. tier=.. total_us=.. queue_us=.. ..." */
    std::string describe() const;

  private:
    uint64_t id_;
    std::string label_;
    uint64_t beginUs_;
    uint64_t endUs_ = 0;
    bool finished_ = false;
    Tier tier_ = Tier::Unknown;
    std::vector<SpanStage> stages_;
};

/**
 * Bounded ring of the most recently completed request spans. Spans
 * are retired here by RequestSpan::finish(); once capacity is
 * exceeded the oldest span is dropped (droppedCount() says how
 * many). Thread-safe.
 */
class SpanRecorder
{
  public:
    explicit SpanRecorder(size_t capacity = 1024)
        : capacity_(capacity ? capacity : 1)
    {
    }

    void retire(std::shared_ptr<const RequestSpan> span);

    /** Completed spans, oldest first (copy). */
    std::vector<std::shared_ptr<const RequestSpan>> spans() const;

    size_t size() const;
    uint64_t retiredCount() const;
    uint64_t droppedCount() const;

    /**
     * Export every retained span as Chrome trace events on `tracer`:
     * one async span per request on a "request" track plus one
     * complete event per stage on that stage's own track, timestamps
     * rebased to the earliest retained span so the trace starts near
     * zero. Compose with trace::writeChromeTrace to hit disk.
     */
    void toTracer(trace::Tracer *tracer) const;

  private:
    size_t capacity_;
    mutable std::mutex mu_;
    std::deque<std::shared_ptr<const RequestSpan>> ring_;
    uint64_t retired_ = 0;
    uint64_t dropped_ = 0;
};

/** Scoped stage timer: records [construction, destruction) onto the
 *  span (no-op for a null span). */
class StageTimer
{
  public:
    StageTimer(RequestSpan *span, const char *name)
        : span_(span), name_(name),
          begin_(span ? monotonicMicros() : 0)
    {
    }

    ~StageTimer()
    {
        if (span_)
            span_->stage(name_, begin_, monotonicMicros());
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    RequestSpan *span_;
    const char *name_;
    uint64_t begin_;
};

} // namespace sps::obs

#endif // SPS_OBS_SPAN_H
