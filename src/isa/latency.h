/**
 * @file
 * Baseline operation latencies, taken from the Imagine stream processor
 * (Section 5: "Functional unit latencies were taken from latencies in
 * the Imagine stream processor"). Machine-size-dependent adjustments
 * (extra intracluster pipeline stages, intercluster COMM latency) are
 * applied by sched::MachineModel on top of these baselines.
 */
#ifndef SPS_ISA_LATENCY_H
#define SPS_ISA_LATENCY_H

#include "isa/opcode.h"

namespace sps::isa {

/** Latency / occupancy of one operation. */
struct OpTiming
{
    /** Cycles from issue until the result may be consumed. */
    int latency = 1;
    /**
     * Cycles the functional unit is occupied before accepting another
     * operation. 1 for fully-pipelined units; the iterative DSQ unit
     * is not fully pipelined.
     */
    int issueInterval = 1;
};

/** Baseline (Imagine) timing of an opcode. */
OpTiming baseTiming(Opcode op);

} // namespace sps::isa

#endif // SPS_ISA_LATENCY_H
