#include "isa/fu_mix.h"

#include <algorithm>

#include "common/log.h"

namespace sps::isa {

FuMix
mixFor(int n)
{
    SPS_ASSERT(n >= 1, "cluster needs at least 1 ALU, got %d", n);
    FuMix m;
    if (n == 1) {
        // Degenerate single-ALU cluster: the lone unit serves as the
        // adder; multiply-capable kernels are not schedulable at N=1
        // and the machine model reports that explicitly.
        m.adders = 1;
        return m;
    }
    // Imagine's 3:2:1 adder:multiplier:DSQ ratio for N=6, generalized:
    // a DSQ unit per six ALUs (none below six -- small clusters run
    // divide/sqrt iteratively on a multiplier), and a 3:2 adder to
    // multiplier split of the remainder with at least one of each.
    m.dsq = (n >= 6) ? std::max(1, n / 6) : 0;
    int rest = n - m.dsq;
    m.adders = (rest * 3 + 2) / 5;
    m.multipliers = rest - m.adders;
    if (m.multipliers < 1) {
        m.multipliers = 1;
        m.adders = rest - 1;
    }
    SPS_ASSERT(m.adders >= 1 && m.multipliers >= 1 && m.total() == n,
               "FU mix %d+%d+%d != N=%d", m.adders, m.multipliers, m.dsq,
               n);
    return m;
}

} // namespace sps::isa
