#include "isa/latency.h"

namespace sps::isa {

OpTiming
baseTiming(Opcode op)
{
    // Imagine-derived latencies at the 45 FO4 cycle: simple integer
    // operations 2 cycles, pipelined FP add/multiply 4 cycles, the
    // iterative divide/square-root unit 16 cycles with an issue slot
    // every 8, scratchpad 2, streambuffer read 3 (including half a
    // cycle of intracluster switch traversal), write 1 (fire and
    // forget), COMM 2 baseline (grown by the delay model).
    switch (fuClassOf(op)) {
      case FuClass::Adder:
        switch (op) {
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMin:
          case Opcode::FMax:
          case Opcode::FCmpEq:
          case Opcode::FCmpLt:
          case Opcode::FCmpLe:
          case Opcode::FToI:
          case Opcode::IToF:
          case Opcode::FFloor:
            return {4, 1};
          default:
            return {2, 1};
        }
      case FuClass::Multiplier:
        return {4, 1};
      case FuClass::Dsq:
        return {16, 8};
      case FuClass::Scratchpad:
        return {2, 1};
      case FuClass::Comm:
        return {2, 1};
      case FuClass::SbPort:
        return (op == Opcode::SbWrite) ? OpTiming{1, 1} : OpTiming{3, 1};
      case FuClass::None:
        return {0, 0};
    }
    return {1, 1};
}

} // namespace sps::isa
