/**
 * @file
 * Deterministic floating-point semantics for the NaN-sensitive
 * opcodes. These small functions ARE the architectural definition of
 * FAdd/FMul NaN propagation and of FMin/FMax/FFloor: every execution
 * engine (reference interpreter, scalar span executor, SIMD lane
 * patch-ups) must compute through them so results are bit-identical
 * by construction.
 *
 * Why not std::fmax / std::floor: GCC resolves those per call site —
 * sometimes a glibc libcall, sometimes an inline expansion, and
 * inside a target("avx2") function an AVX sequence. The variants
 * disagree on signed-zero ties (fmaxf(-0,+0) is -0 from glibc but +0
 * inlined) and on signaling-NaN quieting (roundps quiets, floorf
 * does not). Pinning the semantics here makes bit-exactness a source
 * property instead of a codegen accident.
 *
 * The chosen rules:
 *   - FAdd/FMul: a NaN operand propagates quieted, first operand
 *     preferred (the x86 first-source rule). Needed because both ops
 *     are commutative, so the compiler may swap scalar and vector
 *     operand orders independently and the surviving payload would
 *     otherwise depend on register allocation.
 *   - FMin/FMax: a NaN operand yields the other operand (C fmax
 *     rule); two NaNs yield the first, quieted. Ordered ties prefer
 *     the first operand, so fmax(-0,+0) = -0 and fmin(-0,+0) = -0.
 *   - FFloor: NaNs (payload and signaling bit included) pass through
 *     unchanged; everything else is exact, so std::floor is safe.
 */
#ifndef SPS_ISA_FP_H
#define SPS_ISA_FP_H

#include <bit>
#include <cmath>
#include <cstdint>

namespace sps::isa {

inline bool
fpIsNan(float x)
{
    return x != x;
}

/** Set the quiet bit, keeping sign and payload. */
inline float
fpQuiet(float x)
{
    return std::bit_cast<float>(std::bit_cast<uint32_t>(x) |
                                0x00400000u);
}

inline float
fpAdd(float x, float y)
{
    if (fpIsNan(x))
        return fpQuiet(x);
    if (fpIsNan(y))
        return fpQuiet(y);
    return x + y;
}

inline float
fpMul(float x, float y)
{
    if (fpIsNan(x))
        return fpQuiet(x);
    if (fpIsNan(y))
        return fpQuiet(y);
    return x * y;
}

inline float
fpMin(float x, float y)
{
    if (fpIsNan(x))
        return fpIsNan(y) ? fpQuiet(x) : y;
    if (fpIsNan(y))
        return x;
    return x <= y ? x : y;
}

inline float
fpMax(float x, float y)
{
    if (fpIsNan(x))
        return fpIsNan(y) ? fpQuiet(x) : y;
    if (fpIsNan(y))
        return x;
    return x >= y ? x : y;
}

inline float
fpFloor(float x)
{
    return fpIsNan(x) ? x : std::floor(x);
}

} // namespace sps::isa

#endif // SPS_ISA_FP_H
