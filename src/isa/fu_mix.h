/**
 * @file
 * Functional-unit mix policy: how the N ALUs of a cluster are divided
 * among adders, multipliers, and divide/square-root units. Imagine's
 * N = 6 cluster used 3 adders, 2 multipliers, and 1 DSQ unit; the
 * policy generalizes that ratio to any N.
 */
#ifndef SPS_ISA_FU_MIX_H
#define SPS_ISA_FU_MIX_H

namespace sps::isa {

/** The ALU composition of a cluster. */
struct FuMix
{
    int adders = 0;
    int multipliers = 0;
    int dsq = 0;

    int total() const { return adders + multipliers + dsq; }
};

/**
 * The mix used for N ALUs per cluster. Always provides at least one
 * adder and one multiplier; clusters with fewer than six ALUs have no
 * dedicated DSQ unit and execute divide/square-root iteratively on a
 * multiplier (at an issue-interval penalty; see sched::MachineModel).
 */
FuMix mixFor(int n);

} // namespace sps::isa

#endif // SPS_ISA_FU_MIX_H
