/**
 * @file
 * The architecture's 32-bit data word. Kernels operate on words that are
 * reinterpreted as signed integers or IEEE floats depending on the
 * opcode, exactly like a real register file.
 */
#ifndef SPS_ISA_VALUE_H
#define SPS_ISA_VALUE_H

#include <bit>
#include <cstdint>

namespace sps::isa {

/** One 32-bit machine word. */
struct Word
{
    uint32_t bits = 0;

    Word() = default;

    static Word
    fromInt(int32_t v)
    {
        Word w;
        w.bits = static_cast<uint32_t>(v);
        return w;
    }

    static Word
    fromFloat(float v)
    {
        Word w;
        w.bits = std::bit_cast<uint32_t>(v);
        return w;
    }

    int32_t asInt() const { return static_cast<int32_t>(bits); }
    float asFloat() const { return std::bit_cast<float>(bits); }

    bool operator==(const Word &o) const { return bits == o.bits; }
};

} // namespace sps::isa

#endif // SPS_ISA_VALUE_H
