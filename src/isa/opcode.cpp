#include "isa/opcode.h"

#include "common/log.h"

namespace sps::isa {

FuClass
fuClassOf(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IAbs:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::ICmpEq:
      case Opcode::ICmpLt:
      case Opcode::ICmpLe:
      case Opcode::Select:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FAbs:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FNeg:
      case Opcode::FCmpEq:
      case Opcode::FCmpLt:
      case Opcode::FCmpLe:
      case Opcode::FToI:
      case Opcode::IToF:
      case Opcode::FFloor:
        return FuClass::Adder;
      case Opcode::IMul:
      case Opcode::FMul:
        return FuClass::Multiplier;
      case Opcode::FDiv:
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
        return FuClass::Dsq;
      case Opcode::SpRead:
      case Opcode::SpWrite:
        return FuClass::Scratchpad;
      case Opcode::CommPerm:
      case Opcode::SbCondRead:
      case Opcode::SbCondWrite:
        // Conditional streams route data through the intercluster
        // switch, so they occupy COMM issue slots (Kapasi et al.).
        return FuClass::Comm;
      case Opcode::SbRead:
      case Opcode::SbWrite:
        return FuClass::SbPort;
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::LoopIndex:
      case Opcode::ClusterId:
      case Opcode::NumClusters:
      case Opcode::Phi:
        return FuClass::None;
      case Opcode::NumOpcodes:
        break;
    }
    panic("fuClassOf: bad opcode %d", static_cast<int>(op));
}

bool
isAluOp(Opcode op)
{
    switch (fuClassOf(op)) {
      case FuClass::Adder:
      case FuClass::Multiplier:
      case FuClass::Dsq:
        return true;
      default:
        return false;
    }
}

bool
isSrfAccess(Opcode op)
{
    return op == Opcode::SbRead || op == Opcode::SbWrite ||
           op == Opcode::SbCondRead || op == Opcode::SbCondWrite;
}

bool
isSpAccess(Opcode op)
{
    return op == Opcode::SpRead || op == Opcode::SpWrite;
}

bool
isCommOp(Opcode op)
{
    return op == Opcode::CommPerm || op == Opcode::SbCondRead ||
           op == Opcode::SbCondWrite;
}

int
arity(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::LoopIndex:
      case Opcode::ClusterId:
      case Opcode::NumClusters:
      case Opcode::SbRead:
        return 0;
      case Opcode::IAbs:
      case Opcode::FAbs:
      case Opcode::FNeg:
      case Opcode::FToI:
      case Opcode::IToF:
      case Opcode::FFloor:
      case Opcode::FSqrt:
      case Opcode::FRsqrt:
      case Opcode::SpRead:
      case Opcode::SbWrite:
      case Opcode::SbCondRead:
      case Opcode::Phi:
        return 1;
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IAnd:
      case Opcode::IOr:
      case Opcode::IXor:
      case Opcode::IShl:
      case Opcode::IShr:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::ICmpEq:
      case Opcode::ICmpLt:
      case Opcode::ICmpLe:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FCmpEq:
      case Opcode::FCmpLt:
      case Opcode::FCmpLe:
      case Opcode::IMul:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::SpWrite:
      case Opcode::CommPerm:
      case Opcode::SbCondWrite:
        return 2;
      case Opcode::Select:
        return 3;
      case Opcode::NumOpcodes:
        break;
    }
    panic("arity: bad opcode %d", static_cast<int>(op));
}

std::string_view
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IAnd: return "iand";
      case Opcode::IOr: return "ior";
      case Opcode::IXor: return "ixor";
      case Opcode::IShl: return "ishl";
      case Opcode::IShr: return "ishr";
      case Opcode::IAbs: return "iabs";
      case Opcode::IMin: return "imin";
      case Opcode::IMax: return "imax";
      case Opcode::ICmpEq: return "icmpeq";
      case Opcode::ICmpLt: return "icmplt";
      case Opcode::ICmpLe: return "icmple";
      case Opcode::Select: return "select";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FAbs: return "fabs";
      case Opcode::FMin: return "fmin";
      case Opcode::FMax: return "fmax";
      case Opcode::FNeg: return "fneg";
      case Opcode::FCmpEq: return "fcmpeq";
      case Opcode::FCmpLt: return "fcmplt";
      case Opcode::FCmpLe: return "fcmple";
      case Opcode::FToI: return "ftoi";
      case Opcode::IToF: return "itof";
      case Opcode::FFloor: return "ffloor";
      case Opcode::IMul: return "imul";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FSqrt: return "fsqrt";
      case Opcode::FRsqrt: return "frsqrt";
      case Opcode::SpRead: return "sprd";
      case Opcode::SpWrite: return "spwr";
      case Opcode::CommPerm: return "comm";
      case Opcode::SbRead: return "sbrd";
      case Opcode::SbWrite: return "sbwr";
      case Opcode::SbCondRead: return "condrd";
      case Opcode::SbCondWrite: return "condwr";
      case Opcode::ConstInt: return "consti";
      case Opcode::ConstFloat: return "constf";
      case Opcode::LoopIndex: return "loopidx";
      case Opcode::ClusterId: return "cid";
      case Opcode::NumClusters: return "nclust";
      case Opcode::Phi: return "phi";
      case Opcode::NumOpcodes: break;
    }
    return "<bad>";
}

} // namespace sps::isa
