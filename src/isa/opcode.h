/**
 * @file
 * The kernel operation set. Kernels (the paper's KernelC programs) are
 * dataflow graphs of these operations, executed in SIMD across C
 * clusters and scheduled as VLIW across the functional units of one
 * cluster.
 */
#ifndef SPS_ISA_OPCODE_H
#define SPS_ISA_OPCODE_H

#include <cstdint>
#include <string_view>

namespace sps::isa {

/**
 * Operation codes. Grouped by the functional-unit class that executes
 * them (see FuClass / fuClassOf()).
 */
enum class Opcode : uint8_t {
    // Adder-class ALU operations (integer).
    IAdd, ISub, IAnd, IOr, IXor, IShl, IShr, IAbs, IMin, IMax,
    ICmpEq, ICmpLt, ICmpLe, Select,
    // Adder-class ALU operations (floating point / conversion).
    FAdd, FSub, FAbs, FMin, FMax, FNeg, FCmpEq, FCmpLt, FCmpLe,
    FToI, IToF, FFloor,
    // Multiplier-class operations.
    IMul, FMul,
    // Divide/square-root class operations.
    FDiv, FSqrt, FRsqrt,
    // Scratchpad operations (small per-cluster indexed memory).
    SpRead, SpWrite,
    // Intercluster communication: value from another cluster.
    CommPerm,
    // Streambuffer (SRF) accesses, one word each.
    SbRead, SbWrite,
    // Conditional stream accesses (routed through the COMM units).
    SbCondRead, SbCondWrite,
    // Pseudo-operations that consume no functional unit.
    ConstInt, ConstFloat, LoopIndex, ClusterId, NumClusters, Phi,

    NumOpcodes,
};

/** Functional-unit classes present in an arithmetic cluster. */
enum class FuClass : uint8_t {
    Adder,      ///< integer/FP add, logic, compare, select
    Multiplier, ///< integer/FP multiply
    Dsq,        ///< divide / square root
    Scratchpad, ///< SP indexed access
    Comm,       ///< intercluster switch port
    SbPort,     ///< streambuffer (SRF) port
    None,       ///< pseudo-ops: consume no issue slot
};

/** The functional-unit class that executes an opcode. */
FuClass fuClassOf(Opcode op);

/** True for operations counted as "ALU operations" in the paper. */
bool isAluOp(Opcode op);

/** True for SRF (streambuffer) accesses, conditional or not. */
bool isSrfAccess(Opcode op);

/** True for scratchpad accesses. */
bool isSpAccess(Opcode op);

/** True for intercluster communications (COMM or conditional stream). */
bool isCommOp(Opcode op);

/** Number of value operands the opcode consumes. */
int arity(Opcode op);

/** Mnemonic for debug printing. */
std::string_view mnemonic(Opcode op);

} // namespace sps::isa

#endif // SPS_ISA_OPCODE_H
