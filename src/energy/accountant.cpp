#include "energy/accountant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/bottleneck.h"

namespace sps::energy {

EnergyAccountant::EnergyAccountant(const vlsi::CostModel &model,
                                   vlsi::MachineSize size,
                                   vlsi::Technology tech,
                                   AccountantConfig cfg)
    : size_(size), tech_(tech), cfg_(cfg)
{
    const vlsi::Params &p = model.params();
    const int n = size.alusPerCluster;
    const double intraE = model.intraCommEnergyPerBit(n);

    // Per-activity rates, factored out of the Table 3 per-cycle
    // component energies so that full-rate activity reproduces them
    // exactly (see accountant_test.cpp):
    //   clusterEnergy(n)      == n*aluOp + nFu*fuOp + nSp*spOp  per cycle
    //   C * srfBankEnergy(n)  == gSb*N*C words * srfWord        per cycle
    //   inter-COMM per cycle  == gComm*N*C words * interCommWord
    rates_.aluOp = p.eAlu;
    rates_.fuOp = p.eLrf + p.kIntraEnergy * p.b * intraE;
    rates_.spOp = p.eSp;
    rates_.srfWord = p.rM * p.tMem * p.b * p.eSram / p.gSrf +
                     p.b * (p.eSb + intraE / 2.0);
    rates_.interCommWord =
        p.kCommEnergy * p.b * model.interCommEnergyPerBit(size);
    rates_.ucBusyCycle = model.microcontrollerEnergy(size);

    const double c = size.clusters;
    rates_.aluSlotsPerCycle = c * n;
    rates_.srfPeakWordsPerCycle = p.gSb * n * c;
    rates_.interPeakWordsPerCycle = p.gComm * n * c;
    rates_.clusterSlotFullRate = model.clusterEnergy(n) / n;
}

EnergyReport
EnergyAccountant::account(const sim::SimResult &r) const
{
    const sim::SimCounters &ctr = r.counters;
    EnergyReport e;
    e.valid = true;
    e.cycles = r.cycles;
    e.aluOps = r.aluOps;
    e.outputWords = ctr.memStoreWords;
    e.ewToJoules = tech_.ewFj * 1e-15;
    e.clockGHz = tech_.clockGHz();

    const double f = cfg_.idleFraction;
    auto idleOf = [f](double capacity, double used, double rate) {
        return f * std::max(0.0, capacity - used) * rate;
    };

    // Clusters: each executed op carries its own energy; each FU
    // result additionally reads LRFs and crosses the intracluster
    // switch. Unused issue slots are charged a fraction of the
    // full-rate per-slot cluster energy (clock trees, control).
    e.clusters.dynamicEw =
        static_cast<double>(r.aluOps) * rates_.aluOp +
        static_cast<double>(ctr.clusterFuOps) * rates_.fuOp +
        static_cast<double>(ctr.clusterSpOps) * rates_.spOp;
    e.clusters.idleEw = idleOf(
        static_cast<double>(ctr.aluIssueSlots),
        static_cast<double>(r.aluOps), rates_.clusterSlotFullRate);

    // SRF: every word in or out (kernel streams and memory transfers
    // alike) pays the storage + streambuffer + half-traversal rate.
    const double srfWords = static_cast<double>(ctr.srfReadWords) +
                            static_cast<double>(ctr.srfWriteWords);
    e.srf.dynamicEw = srfWords * rates_.srfWord;
    e.srf.idleEw =
        idleOf(rates_.srfPeakWordsPerCycle *
                   static_cast<double>(r.cycles),
               srfWords, rates_.srfWord);

    // Microcontroller: busy cycles (including per-call overhead, which
    // is real fetch work) at the fetch+distribution rate; parked
    // cycles at the idle fraction of it.
    e.microcontroller.dynamicEw =
        static_cast<double>(r.ucBusy) * rates_.ucBusyCycle;
    e.microcontroller.idleEw =
        idleOf(static_cast<double>(r.cycles),
               static_cast<double>(r.ucBusy), rates_.ucBusyCycle);

    // Intercluster switch: per COMM word actually sent.
    e.interclusterComm.dynamicEw =
        static_cast<double>(ctr.interCommWords) * rates_.interCommWord;
    e.interclusterComm.idleEw =
        idleOf(rates_.interPeakWordsPerCycle *
                   static_cast<double>(r.cycles),
               static_cast<double>(ctr.interCommWords),
               rates_.interCommWord);

    // DRAM extension: per-access energy split by row behaviour, plus
    // channel pin activity; idle channels are charged the idle
    // fraction of the pin-busy rate.
    const DramEnergyParams &d = cfg_.dram;
    double chanBusy = 0.0;
    for (int64_t v : ctr.dramChannelBusyCycles)
        chanBusy += static_cast<double>(v);
    const double chanCapacity =
        static_cast<double>(ctr.dramChannelBusyCycles.size()) *
        static_cast<double>(r.cycles);
    e.dram.dynamicEw =
        static_cast<double>(ctr.dramRowHits) * d.rowHitEnergyEw +
        static_cast<double>(ctr.dramRowMisses) * d.rowMissEnergyEw +
        chanBusy * d.channelBusyEnergyEw;
    e.dram.idleEw =
        idleOf(chanCapacity, chanBusy, d.channelBusyEnergyEw);

    return e;
}

namespace {

/** Disjoint sorted busy intervals of one op class in the timeline. */
std::vector<analysis::CycleInterval>
classIntervals(const std::vector<sim::OpInterval> &timeline,
               bool wantKernel)
{
    std::vector<analysis::CycleInterval> v;
    for (const sim::OpInterval &op : timeline) {
        const bool isKernel = op.kind == sim::OpClass::Kernel;
        const bool isMem = op.kind == sim::OpClass::Load ||
                           op.kind == sim::OpClass::Store;
        if ((wantKernel && isKernel) || (!wantKernel && isMem))
            v.push_back({op.start, op.end});
    }
    return analysis::mergeIntervals(std::move(v));
}

/** Step-function samples (ts, on?) at each interval boundary. */
void
emitTrack(trace::Tracer &tracer, const char *name,
          const std::vector<analysis::CycleInterval> &busy,
          double activeMw, double baselineMw, int64_t cycles)
{
    tracer.counter(name, 0,
                   static_cast<int64_t>(std::llround(baselineMw)));
    for (const analysis::CycleInterval &iv : busy) {
        tracer.counter(name, iv.start,
                       static_cast<int64_t>(
                           std::llround(baselineMw + activeMw)));
        tracer.counter(name, iv.end,
                       static_cast<int64_t>(std::llround(baselineMw)));
    }
    if (cycles > 0 && (busy.empty() || busy.back().end < cycles))
        tracer.counter(name, cycles,
                       static_cast<int64_t>(std::llround(baselineMw)));
}

} // namespace

void
emitPowerCounters(const sim::SimResult &r, trace::Tracer &tracer)
{
    const EnergyReport &e = r.energy;
    if (!e.valid || r.cycles <= 0 || e.ewToJoules <= 0.0)
        return;

    // Ew-per-cycle -> milliwatts at the report's clock.
    const double ewPerCycleToMw =
        e.ewToJoules * e.clockGHz * 1e9 * 1e3;

    std::vector<analysis::CycleInterval> kBusy =
        classIntervals(r.timeline, /*wantKernel=*/true);
    std::vector<analysis::CycleInterval> mBusy =
        classIntervals(r.timeline, /*wantKernel=*/false);
    const int64_t kCycles = analysis::intervalLength(kBusy);
    const int64_t mCycles = analysis::intervalLength(mBusy);

    // Dynamic energy of the compute-side components is spread over
    // the kernel-busy intervals (kernels dominate SRF traffic: they
    // touch every stream word at least once on each side); DRAM
    // dynamic energy over the memory-transfer intervals. Idle/clock
    // energy is a uniform baseline across the whole run.
    const double kernelDynEw =
        e.clusters.dynamicEw + e.microcontroller.dynamicEw +
        e.srf.dynamicEw + e.interclusterComm.dynamicEw;
    const double memDynEw = e.dram.dynamicEw;
    const double idleEw = e.totalEw() - kernelDynEw - memDynEw;

    const double kernelMw =
        kCycles > 0 ? kernelDynEw / kCycles * ewPerCycleToMw : 0.0;
    const double memMw =
        mCycles > 0 ? memDynEw / mCycles * ewPerCycleToMw : 0.0;
    const double baseMw = idleEw / r.cycles * ewPerCycleToMw;

    emitTrack(tracer, "power_kernel_mw", kBusy, kernelMw, 0.0,
              r.cycles);
    emitTrack(tracer, "power_mem_mw", mBusy, memMw, 0.0, r.cycles);

    // Total: sample at every boundary of the union of both sets.
    std::vector<int64_t> edges{0, r.cycles};
    for (const analysis::CycleInterval &iv : kBusy) {
        edges.push_back(iv.start);
        edges.push_back(iv.end);
    }
    for (const analysis::CycleInterval &iv : mBusy) {
        edges.push_back(iv.start);
        edges.push_back(iv.end);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    auto active = [](const std::vector<analysis::CycleInterval> &v,
                     int64_t t) {
        auto it = std::upper_bound(
            v.begin(), v.end(), t,
            [](int64_t x, const analysis::CycleInterval &iv) {
                return x < iv.start;
            });
        return it != v.begin() && t < std::prev(it)->end;
    };
    for (int64_t t : edges) {
        double mw = baseMw + (active(kBusy, t) ? kernelMw : 0.0) +
                    (active(mBusy, t) ? memMw : 0.0);
        tracer.counter("power_total_mw", t,
                       static_cast<int64_t>(std::llround(mw)));
    }
}

} // namespace sps::energy
