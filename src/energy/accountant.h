/**
 * @file
 * The energy accountant: bridges the analytical VLSI energy model
 * (vlsi::CostModel, Table 3) and the measured activity of a simulated
 * run (sim::SimCounters) into a per-component energy::EnergyReport --
 * the same activity-counter energy accounting SCALE-Sim style cost
 * models use for accelerators.
 *
 * Method: the cost model's per-cycle component energies are stated at
 * full issue rate (every ALU issues, gSb*N words/cycle per SRF bank,
 * gComm*N COMM words/cycle per cluster). The accountant decomposes
 * them into per-activity rates (Ew per ALU op, per FU result, per SRF
 * word, per COMM word, per microcontroller fetch cycle) and charges
 * each run for the activity its counters actually recorded. At
 * exactly full issue the dynamic terms reproduce the analytical
 * breakdown identically (asserted by tests/energy/accountant_test.cpp);
 * below full issue the difference shows up explicitly as idle/clock
 * energy: unused capacity (idle issue slots, quiet SRF/COMM
 * bandwidth, a parked microcontroller) is charged `idleFraction` of
 * its active rate, modeling clock and control power that does not
 * gate off.
 *
 * DRAM is a reproduction extension (the paper's model excludes the
 * memory system): accesses are charged per word split by row
 * hit/miss, channels per pin-busy cycle, with order-of-magnitude
 * defaults documented on DramEnergyParams. The report keeps DRAM
 * separate so the paper-scope sum stays comparable to Figures 7/10.
 *
 * An accountant is immutable after construction; one instance may be
 * shared by concurrent simulations on the evaluation engine (the TSan
 * CI job covers this).
 */
#ifndef SPS_ENERGY_ACCOUNTANT_H
#define SPS_ENERGY_ACCOUNTANT_H

#include "energy/energy_report.h"
#include "sim/stats.h"
#include "trace/tracer.h"
#include "vlsi/cost_model.h"
#include "vlsi/tech.h"

namespace sps::energy {

/**
 * DRAM energy extension parameters, in Ew like every other energy in
 * the model. Defaults are order-of-magnitude values chosen relative
 * to the Table-1 building blocks (an ALU op is 2e6 Ew): a row-hit
 * column access per 32-bit word ~5x an ALU op, a row miss ~4x a hit
 * (activate + precharge + column), channel I/O ~1e6 Ew per busy
 * cycle. They are deliberately visible knobs, not calibrated claims.
 */
struct DramEnergyParams
{
    /** Ew per word access that hits an open row. */
    double rowHitEnergyEw = 1.0e7;
    /** Ew per word access that misses (activate + column). */
    double rowMissEnergyEw = 4.0e7;
    /** Ew per channel pin-busy cycle (I/O + control). */
    double channelBusyEnergyEw = 1.0e6;
};

/** Accountant configuration. */
struct AccountantConfig
{
    /**
     * Idle/clock energy of unused provisioned capacity, as a fraction
     * of the capacity's active rate (clock trees and control that do
     * not gate off). 0 makes the report purely activity-proportional.
     */
    double idleFraction = 0.05;
    DramEnergyParams dram;
};

/** Per-activity energy rates derived from the cost model (Ew). */
struct EnergyRates
{
    /** Per executed ALU operation (EALU). */
    double aluOp = 0.0;
    /** Per FU result: two-LRF read plus one intracluster switch
     *  traversal of b bits. */
    double fuOp = 0.0;
    /** Per scratchpad access. */
    double spOp = 0.0;
    /** Per word into or out of the SRF (storage array share plus
     *  streambuffer access plus half an intracluster traversal). */
    double srfWord = 0.0;
    /** Per intercluster COMM word (b bits across the switch). */
    double interCommWord = 0.0;
    /** Per microcontroller busy cycle (fetch + distribution). */
    double ucBusyCycle = 0.0;

    // --- Provisioned capacity per machine cycle (idle accounting). ---
    double aluSlotsPerCycle = 0.0;      ///< C * N
    double srfPeakWordsPerCycle = 0.0;  ///< gSb * N * C
    double interPeakWordsPerCycle = 0.0;///< gComm * N * C
    /** Full-rate cluster energy per ALU issue slot (idle basis). */
    double clusterSlotFullRate = 0.0;
};

class EnergyAccountant
{
  public:
    EnergyAccountant(const vlsi::CostModel &model,
                     vlsi::MachineSize size, vlsi::Technology tech,
                     AccountantConfig cfg = {});

    /** Map one run's counters into a per-component energy report. */
    EnergyReport account(const sim::SimResult &r) const;

    const EnergyRates &rates() const { return rates_; }
    const AccountantConfig &config() const { return cfg_; }
    vlsi::MachineSize size() const { return size_; }

  private:
    vlsi::MachineSize size_;
    vlsi::Technology tech_;
    AccountantConfig cfg_;
    EnergyRates rates_;
};

/**
 * Emit Chrome counter-phase power tracks for a finished run onto a
 * tracer: `power_kernel_mw` (clusters + microcontroller + SRF +
 * intercluster COMM, spread over the run's kernel intervals),
 * `power_mem_mw` (DRAM, spread over the memory-transfer intervals),
 * and `power_total_mw` (their sum plus the uniform idle/clock
 * baseline), sampled at every interval boundary of the op timeline.
 * Requires a filled (valid) energy report; no-ops otherwise.
 */
void emitPowerCounters(const sim::SimResult &r, trace::Tracer &tracer);

} // namespace sps::energy

#endif // SPS_ENERGY_ACCOUNTANT_H
