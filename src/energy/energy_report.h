/**
 * @file
 * Per-run energy report: the measured counterpart of the analytical
 * vlsi::EnergyBreakdown. An energy::EnergyAccountant (energy/
 * accountant.h) maps the hardware-counter activity of one simulation
 * (sim::SimCounters) through the cost model's per-op / per-bit /
 * per-cycle energies into this per-component breakdown.
 *
 * Units: all energies are in Ew (the paper's normalized wire-track
 * propagation energy, Table 1); `ewToJoules` carries the process
 * conversion factor so every field can also be read in joules.
 *
 * Every component separates a *dynamic* term (energy proportional to
 * performed work: ALU ops, words moved, fetch cycles, DRAM accesses)
 * from an *idle/clock* term (energy charged for provisioned capacity
 * that went unused: idle issue slots, quiet SRF/COMM bandwidth, idle
 * channels). The components sum exactly to total() by construction;
 * the energy test suite enforces this at every swept design point.
 *
 * This header is pure data so sim/stats.h can embed a report on every
 * SimResult without a library dependency.
 */
#ifndef SPS_ENERGY_ENERGY_REPORT_H
#define SPS_ENERGY_ENERGY_REPORT_H

#include <cstdint>

namespace sps::energy {

/** One component's energy split into dynamic and idle/clock terms. */
struct ComponentEnergy
{
    /** Energy of performed work (Ew). */
    double dynamicEw = 0.0;
    /** Idle/clock energy of unused provisioned capacity (Ew). */
    double idleEw = 0.0;

    double totalEw() const { return dynamicEw + idleEw; }
};

/** Per-component energy breakdown of one simulated run. */
struct EnergyReport
{
    /** False until an EnergyAccountant filled the report (a raw
     *  executeProgram() result carries an empty report). */
    bool valid = false;

    // --- Components (mirror vlsi::EnergyBreakdown, plus DRAM). ---
    /** SRF storage arrays + streambuffers, per word moved. */
    ComponentEnergy srf;
    /** Cluster datapaths: ALUs, LRFs, scratchpads, intracluster
     *  switch traversals. */
    ComponentEnergy clusters;
    /** Microcode fetch + VLIW distribution, per busy cycle. */
    ComponentEnergy microcontroller;
    /** Intercluster switch traversals, per COMM word. */
    ComponentEnergy interclusterComm;
    /** External DRAM accesses + channel pins. The analytical model
     *  excludes the memory system; this term is a reproduction
     *  extension and is reported separately so the paper-scope sum
     *  (scaledTotalEw) stays comparable to Figures 7/10. */
    ComponentEnergy dram;

    // --- Denominators for the summary rates. ---
    int64_t cycles = 0;
    int64_t aluOps = 0;
    /** Words the application stored back to memory (its outputs). */
    int64_t outputWords = 0;

    // --- Process conversion (vlsi::Technology). ---
    /** Joules per Ew (ewFj * 1e-15). */
    double ewToJoules = 0.0;
    /** Clock frequency used for average-power conversion (GHz). */
    double clockGHz = 0.0;

    /** Total over all components; equals the exact component sum. */
    double
    totalEw() const
    {
        return srf.totalEw() + clusters.totalEw() +
               microcontroller.totalEw() + interclusterComm.totalEw() +
               dram.totalEw();
    }

    /** Total over the components the paper's model scales (no DRAM):
     *  the measured quantity comparable to Figures 7/10/12. */
    double
    scaledTotalEw() const
    {
        return srf.totalEw() + clusters.totalEw() +
               microcontroller.totalEw() + interclusterComm.totalEw();
    }

    double totalJoules() const { return totalEw() * ewToJoules; }

    /** Measured energy per executed ALU operation (Ew). */
    double
    energyPerAluOpEw() const
    {
        return aluOps > 0 ? totalEw() / static_cast<double>(aluOps)
                          : 0.0;
    }

    /** Paper-scope (no DRAM) energy per executed ALU operation. */
    double
    scaledEnergyPerAluOpEw() const
    {
        return aluOps > 0
                   ? scaledTotalEw() / static_cast<double>(aluOps)
                   : 0.0;
    }

    /** Energy per application output word stored to memory (Ew). */
    double
    energyPerOutputWordEw() const
    {
        return outputWords > 0
                   ? totalEw() / static_cast<double>(outputWords)
                   : 0.0;
    }

    /** Average power over the run (watts) at clockGHz. */
    double
    averagePowerWatts() const
    {
        if (cycles <= 0 || clockGHz <= 0.0)
            return 0.0;
        double seconds =
            static_cast<double>(cycles) / (clockGHz * 1e9);
        return totalJoules() / seconds;
    }
};

} // namespace sps::energy

#endif // SPS_ENERGY_ENERGY_REPORT_H
