#include "mem/access_sched.h"

#include <algorithm>
#include <cstddef>

namespace sps::mem {

using std::size_t;

SchedRunStats
AccessScheduler::runStats(const std::vector<MemRequest> &requests)
{
    SchedRunStats stats;
    size_t next = 0;
    std::deque<MemRequest> window;
    auto fill = [&] {
        while (static_cast<int>(window.size()) < window_ &&
               next < requests.size())
            window.push_back(requests[next++]);
    };
    fill();
    while (!window.empty()) {
        // First-ready: oldest row hit, else oldest request. The window
        // is in arrival order, so the pick's index is the number of
        // older requests it bypasses.
        size_t pick = 0;
        for (size_t i = 0; i < window.size(); ++i) {
            if (channel_.isRowHit(window[i])) {
                pick = i;
                break;
            }
        }
        stats.busyCycles += channel_.service(window[pick]);
        stats.reorderSum += static_cast<int64_t>(pick);
        stats.reorderMax =
            std::max(stats.reorderMax, static_cast<int64_t>(pick));
        window.erase(window.begin() +
                     static_cast<std::deque<MemRequest>::difference_type>(
                         pick));
        fill();
    }
    return stats;
}

int64_t
AccessScheduler::run(const std::vector<MemRequest> &requests)
{
    return runStats(requests).busyCycles;
}

} // namespace sps::mem
