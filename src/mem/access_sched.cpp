#include "mem/access_sched.h"

#include <cstddef>

namespace sps::mem {

using std::size_t;

int64_t
AccessScheduler::run(const std::vector<MemRequest> &requests)
{
    int64_t cycles = 0;
    size_t next = 0;
    std::deque<MemRequest> window;
    auto fill = [&] {
        while (static_cast<int>(window.size()) < window_ &&
               next < requests.size())
            window.push_back(requests[next++]);
    };
    fill();
    while (!window.empty()) {
        // First-ready: oldest row hit, else oldest request.
        size_t pick = 0;
        for (size_t i = 0; i < window.size(); ++i) {
            if (channel_.isRowHit(window[i])) {
                pick = i;
                break;
            }
        }
        cycles += channel_.service(window[pick]);
        window.erase(window.begin() +
                     static_cast<std::deque<MemRequest>::difference_type>(
                         pick));
        fill();
    }
    return cycles;
}

} // namespace sps::mem
