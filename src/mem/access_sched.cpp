#include "mem/access_sched.h"

#include <algorithm>
#include <cstddef>

namespace sps::mem {

using std::size_t;

WindowService
AccessWindow::serviceNext()
{
    // First-ready: oldest row hit, else oldest request. The window is
    // in arrival order, so the pick's index is the number of older
    // requests it bypasses. The age cap overrides first-ready: once
    // the oldest request has been bypassed maxBypass_ times it goes
    // next, bounding starvation under a row-hit flood (the oldest
    // entry always has the largest bypass count, so checking the head
    // suffices).
    size_t pick = 0;
    if (win_.front().bypassed < maxBypass_) {
        for (size_t i = 0; i < win_.size(); ++i) {
            if (channel_.isRowHit(win_[i].req)) {
                pick = i;
                break;
            }
        }
    }
    for (size_t i = 0; i < pick; ++i)
        ++win_[i].bypassed;

    Entry e = win_[pick];
    WindowService s;
    s.tag = e.tag;
    s.pickIndex = static_cast<int64_t>(pick);
    s.bypassed = e.bypassed;
    s.rowHit = channel_.isRowHit(e.req);
    s.bankConflict = !s.rowHit && channel_.isBankOpen(e.req);
    s.cycles = channel_.service(e.req);
    win_.erase(win_.begin() +
               static_cast<std::deque<Entry>::difference_type>(pick));
    return s;
}

SchedRunStats
AccessScheduler::runStats(const std::vector<MemRequest> &requests)
{
    SchedRunStats stats;
    size_t next = 0;
    AccessWindow window(channel_, window_, maxBypass_);
    auto fill = [&] {
        while (window.wantsMore() && next < requests.size())
            window.push(requests[next++], 0);
    };
    fill();
    while (!window.empty()) {
        WindowService s = window.serviceNext();
        stats.busyCycles += s.cycles;
        stats.reorderSum += s.pickIndex;
        stats.reorderMax = std::max(stats.reorderMax, s.pickIndex);
        stats.maxBypassed = std::max(stats.maxBypassed, s.bypassed);
        stats.bankConflicts += s.bankConflict ? 1 : 0;
        fill();
    }
    return stats;
}

int64_t
AccessScheduler::run(const std::vector<MemRequest> &requests)
{
    return runStats(requests).busyCycles;
}

} // namespace sps::mem
