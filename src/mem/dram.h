/**
 * @file
 * A small DRAM channel model in the spirit of the Rambus channels the
 * paper assumes (Section 5: eight channels, 16 GB/s total): per-bank
 * row buffers with activate/precharge/column timing. Used by the
 * access scheduler to derive sustained bandwidth for stream transfers.
 */
#ifndef SPS_MEM_DRAM_H
#define SPS_MEM_DRAM_H

#include <cstdint>
#include <vector>

namespace sps::mem {

/** Timing parameters of one DRAM channel (cycles at the core clock). */
struct DramTiming
{
    /** Cycles to activate a row (RAS). */
    int tRas = 8;
    /** Cycles to precharge a bank. */
    int tPre = 6;
    /** Cycles per column (word) access once the row is open. */
    int tCol = 1;
    /** Banks per channel. */
    int banks = 8;
    /** Words per row. */
    int rowWords = 512;
};

/** One memory request: a word address (word granularity). */
struct MemRequest
{
    int64_t wordAddr = 0;
    bool write = false;
};

/**
 * One DRAM channel: tracks open rows per bank and charges timing for
 * a request stream presented in service order. Counts row hits and
 * misses so the memory system can report row-hit rate.
 */
class DramChannel
{
  public:
    explicit DramChannel(DramTiming timing = DramTiming{});

    const DramTiming &timing() const { return timing_; }

    int bankOf(int64_t word_addr) const;
    int64_t rowOf(int64_t word_addr) const;

    /** True if the request hits the currently open row of its bank. */
    bool isRowHit(const MemRequest &req) const;

    /** True if the request's bank has any row open (a miss here is a
     *  bank conflict: the open row must be precharged first). */
    bool isBankOpen(const MemRequest &req) const;

    /**
     * Service one request now; returns the cycles the channel's data
     * pins are busy (row hits cost tCol; misses add precharge and
     * activate time).
     */
    int service(const MemRequest &req);

    /** Requests serviced that hit an open row. */
    int64_t rowHits() const { return rowHits_; }

    /** Requests serviced that missed (activate, maybe precharge). */
    int64_t rowMisses() const { return rowMisses_; }

    /** Close all rows (e.g. between independent transfers); the
     *  hit/miss counters keep accumulating across resets. */
    void reset();

  private:
    DramTiming timing_;
    std::vector<int64_t> openRow_; // -1 = closed
    int64_t rowHits_ = 0;
    int64_t rowMisses_ = 0;
};

} // namespace sps::mem

#endif // SPS_MEM_DRAM_H
