#include "mem/stream_mem.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace sps::mem {

namespace {
/** Words beyond which a transfer is extrapolated from a prefix. */
constexpr int64_t kSimCap = 8192;

/** Round-to-nearest scaling used by the extrapolation path. */
int64_t
scaleCount(int64_t sim_value, double factor)
{
    return std::llround(static_cast<double>(sim_value) * factor);
}
} // namespace

StreamMemSystem::StreamMemSystem(StreamMemConfig cfg) : cfg_(cfg)
{
    SPS_ASSERT(cfg_.channels >= 1, "need at least one channel");
    SPS_ASSERT(cfg_.peakWordsPerCycle > 0, "bad peak bandwidth");
    SPS_ASSERT(cfg_.schedWindow >= 1 && cfg_.schedMaxBypass >= 1,
               "bad scheduler window");
    // Column access time so that all channels together sustain the
    // configured aggregate peak on row hits.
    double tcol = cfg_.channels / cfg_.peakWordsPerCycle;
    cfg_.timing.tCol = std::max(1, static_cast<int>(tcol + 0.5));
    beginProgram();
}

void
StreamMemSystem::beginProgram()
{
    SPS_ASSERT(pending_.empty(),
               "beginProgram with unresolved transfers");
    ch_.clear();
    chStats_.clear();
    for (int c = 0; c < cfg_.channels; ++c) {
        ch_.push_back(Channel{DramChannel(cfg_.timing), 0});
        chStats_.push_back(ChannelStats{});
    }
    results_.clear();
    busyIvs_.clear();
}

int
StreamMemSystem::submit(const TransferDesc &desc,
                        const TransferTrace *tr)
{
    SPS_ASSERT(desc.words >= 0, "bad transfer size %lld",
               static_cast<long long>(desc.words));
    SPS_ASSERT(desc.baseWord >= 0 && desc.recordWords >= 1 &&
                   desc.strideWords >= 0,
               "bad transfer addressing (base %lld stride %lld rec %lld)",
               static_cast<long long>(desc.baseWord),
               static_cast<long long>(desc.strideWords),
               static_cast<long long>(desc.recordWords));
    int ticket = static_cast<int>(results_.size());
    results_.push_back(TransferResult{});
    results_[static_cast<size_t>(ticket)].startCycle = desc.startCycle;
    Pending p;
    p.desc = desc;
    if (tr != nullptr && SPS_TRACE_ENABLED(tr->tracer)) {
        p.trace = *tr;
        p.traced = true;
    }
    p.ticket = ticket;
    pending_.push_back(std::move(p));
    return ticket;
}

bool
StreamMemSystem::resolved(int ticket) const
{
    for (const Pending &p : pending_)
        if (p.ticket == ticket)
            return false;
    return ticket >= 0 &&
           ticket < static_cast<int>(results_.size());
}

const TransferResult &
StreamMemSystem::result(int ticket)
{
    if (!resolved(ticket))
        resolveAll();
    SPS_ASSERT(ticket >= 0 &&
                   ticket < static_cast<int>(results_.size()),
               "bad transfer ticket %d", ticket);
    return results_[static_cast<size_t>(ticket)];
}

std::vector<BusyInterval>
StreamMemSystem::takeBusyIntervals()
{
    std::vector<BusyInterval> out = std::move(busyIvs_);
    busyIvs_.clear();
    return out;
}

void
StreamMemSystem::resolveAll()
{
    if (pending_.empty())
        return;
    const int C = cfg_.channels;
    const size_t nt = pending_.size();
    constexpr int64_t kFar = std::numeric_limits<int64_t>::max();

    // --- Address generation: expand each transfer (capped at the
    // simulation prefix) and assign requests to channels by word
    // address. Channel-local addresses (wordAddr / channels) are what
    // the per-channel DRAM geometry sees, the classic interleaved
    // decomposition. Requests stay in per-transfer queues so the
    // service loop can interleave concurrent transfers.
    std::vector<std::vector<std::vector<MemRequest>>> chq(
        static_cast<size_t>(C),
        std::vector<std::vector<MemRequest>>(nt));
    std::vector<double> factor(nt, 1.0);
    std::vector<int64_t> simWords(nt, 0);
    for (size_t t = 0; t < nt; ++t) {
        const TransferDesc &d = pending_[t].desc;
        int64_t sim = std::min(d.words, kSimCap);
        simWords[t] = sim;
        factor[t] = sim > 0 ? static_cast<double>(d.words) /
                                  static_cast<double>(sim)
                            : 1.0;
        int64_t rec = std::max<int64_t>(1, d.recordWords);
        int64_t stride = d.strideWords > 0 ? d.strideWords : rec;
        for (int64_t i = 0; i < sim; ++i) {
            int64_t addr = d.baseWord + (i / rec) * stride + i % rec;
            auto ch = static_cast<size_t>(addr % C);
            chq[ch][t].push_back(MemRequest{addr / C, d.write});
        }
    }

    // --- Joint service: one FR-FCFS window per channel over all
    // transfers in the batch.
    std::vector<std::vector<int64_t>> busyTC(
        nt, std::vector<int64_t>(static_cast<size_t>(C), 0));
    std::vector<std::vector<int64_t>> lastEndTC(
        nt, std::vector<int64_t>(static_cast<size_t>(C), -1));
    std::vector<std::vector<int64_t>> doneTC = lastEndTC;
    std::vector<int64_t> svcStart(nt, kFar);
    std::vector<int64_t> simHits(nt, 0), simConflicts(nt, 0),
        simReorderSum(nt, 0);

    for (size_t c = 0; c < static_cast<size_t>(C); ++c) {
        auto &q = chq[c];
        size_t remaining = 0;
        for (const auto &tq : q)
            remaining += tq.size();
        if (remaining == 0)
            continue;
        Channel &chan = ch_[c];
        ChannelStats &cs = chStats_[c];
        AccessWindow window(chan.dram, cfg_.schedWindow,
                            cfg_.schedMaxBypass);
        int64_t now = chan.freeCycle;
        std::vector<size_t> next(nt, 0);
        size_t rr = 0; // round-robin admission cursor
        int64_t runStart = -1;
        auto close_run = [&] {
            if (runStart >= 0 && now > runStart)
                busyIvs_.push_back(BusyInterval{runStart, now});
            runStart = -1;
        };
        while (!window.empty() || remaining > 0) {
            // Admit requests round-robin across transfers that have
            // started, one per sweep, so concurrent transfers
            // interleave through the shared window instead of
            // queueing whole-transfer-at-a-time.
            bool admitted = true;
            while (window.wantsMore() && admitted) {
                admitted = false;
                for (size_t k = 0; k < nt; ++k) {
                    size_t t = (rr + k) % nt;
                    if (next[t] < q[t].size() &&
                        pending_[t].desc.startCycle <= now) {
                        window.push(q[t][next[t]++],
                                    static_cast<int>(t));
                        --remaining;
                        rr = (t + 1) % nt;
                        admitted = true;
                        break;
                    }
                }
            }
            if (window.empty()) {
                // Idle until the next transfer becomes ready.
                int64_t nxt = kFar;
                for (size_t t = 0; t < nt; ++t)
                    if (next[t] < q[t].size())
                        nxt = std::min(nxt,
                                       pending_[t].desc.startCycle);
                close_run();
                now = std::max(now, nxt);
                continue;
            }
            if (runStart < 0)
                runStart = now;
            WindowService s = window.serviceNext();
            auto t = static_cast<size_t>(s.tag);
            svcStart[t] = std::min(svcStart[t], now);
            now += s.cycles;
            busyTC[t][c] += s.cycles;
            lastEndTC[t][c] = now;
            simHits[t] += s.rowHit ? 1 : 0;
            simConflicts[t] += s.bankConflict ? 1 : 0;
            simReorderSum[t] += s.pickIndex;
            TransferResult &r =
                results_[static_cast<size_t>(pending_[t].ticket)];
            r.dramReorderMax =
                std::max(r.dramReorderMax, s.pickIndex);
            cs.busyCycles += s.cycles;
            ++cs.accesses;
            cs.rowHits += s.rowHit ? 1 : 0;
            cs.bankConflicts += s.bankConflict ? 1 : 0;
        }
        close_run();

        // Extrapolation stretch: capped transfers own f-times their
        // simulated pin time, so later service on this channel (and
        // the channel's free cursor) shifts by the accumulated extra,
        // ordered by when each transfer's prefix finished.
        struct Stretch
        {
            size_t t;
            int64_t lastEnd;
            int64_t extra;
        };
        std::vector<Stretch> st;
        int64_t total_extra = 0;
        for (size_t t = 0; t < nt; ++t) {
            if (lastEndTC[t][c] < 0)
                continue;
            int64_t extra =
                scaleCount(busyTC[t][c], factor[t] - 1.0);
            st.push_back(Stretch{t, lastEndTC[t][c], extra});
            total_extra += extra;
        }
        std::stable_sort(st.begin(), st.end(),
                         [](const Stretch &a, const Stretch &b) {
                             return a.lastEnd < b.lastEnd;
                         });
        int64_t prefix = 0;
        for (const Stretch &s : st) {
            prefix += s.extra;
            doneTC[s.t][c] = s.lastEnd + prefix;
        }
        if (total_extra > 0) {
            chan.freeCycle = now + total_extra;
            cs.busyCycles += total_extra;
            if (!busyIvs_.empty())
                busyIvs_.back().end += total_extra;
        } else {
            chan.freeCycle = now;
        }
    }

    // --- Per-transfer results.
    for (size_t t = 0; t < nt; ++t) {
        const Pending &p = pending_[t];
        const TransferDesc &d = p.desc;
        TransferResult &r =
            results_[static_cast<size_t>(p.ticket)];
        r.startCycle = d.startCycle;
        if (d.words <= 0) {
            r.serviceStart = d.startCycle;
            r.doneCycle = d.startCycle;
            continue;
        }
        double f = factor[t];
        int64_t busy_total = 0, busy_max = 0, done = d.startCycle;
        for (size_t c = 0; c < static_cast<size_t>(C); ++c) {
            int64_t true_busy = scaleCount(busyTC[t][c], f);
            busy_total += true_busy;
            busy_max = std::max(busy_max, true_busy);
            if (doneTC[t][c] >= 0)
                done = std::max(done, doneTC[t][c]);
        }
        r.serviceStart = svcStart[t] == kFar ? d.startCycle
                                             : svcStart[t];
        r.doneCycle = done + cfg_.latencyCycles;
        r.cycles = r.doneCycle - r.startCycle;
        r.busyCycles = busy_max;
        r.aliasStallCycles = C * busy_max - busy_total;
        // Counters: exact identities under extrapolation
        // (hits + misses == accesses == words).
        r.dramAccesses = d.words;
        r.dramRowHits = std::clamp<int64_t>(scaleCount(simHits[t], f),
                                            0, d.words);
        r.dramRowMisses = d.words - r.dramRowHits;
        r.bankConflicts = std::clamp<int64_t>(
            scaleCount(simConflicts[t], f), 0, r.dramRowMisses);
        r.dramReorderSum = scaleCount(simReorderSum[t], f);
        r.wordsPerCycle =
            r.cycles > 0 ? static_cast<double>(d.words) /
                               static_cast<double>(r.cycles)
                         : 0.0;
        if (p.traced) {
            p.trace.tracer->span(
                "mem",
                p.trace.label.empty() ? "transfer" : p.trace.label,
                r.serviceStart, r.doneCycle, p.trace.opId,
                trace::kTrackMem,
                {{"words", d.words},
                 {"stride", d.strideWords},
                 {"busy_cycles", r.busyCycles},
                 {"row_hits", r.dramRowHits},
                 {"row_misses", r.dramRowMisses},
                 {"bank_conflicts", r.bankConflicts},
                 {"alias_stall_cycles", r.aliasStallCycles},
                 {"reorder_max", r.dramReorderMax}});
        }
    }
    pending_.clear();
}

TransferResult
StreamMemSystem::transfer(int64_t words, int64_t stride,
                          const TransferTrace *tr)
{
    SPS_ASSERT(stride >= 1, "bad stride %lld",
               static_cast<long long>(stride));
    resolveAll();
    // Standalone semantics: idle channels, closed rows, cycle 0 --
    // results do not depend on earlier standalone calls.
    beginProgram();
    if (words <= 0)
        return TransferResult{};
    TransferDesc d;
    d.words = words;
    d.baseWord = 0;
    d.strideWords = stride;
    d.recordWords = 1;
    d.startCycle = 0;
    int ticket = submit(d, tr);
    resolveAll();
    return results_[static_cast<size_t>(ticket)];
}

int64_t
StreamMemSystem::transferCycles(int64_t words)
{
    return transfer(words, 1).cycles;
}

} // namespace sps::mem
