#include "mem/stream_mem.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace sps::mem {

namespace {
/** Words beyond which a transfer is extrapolated from a prefix. */
constexpr int64_t kSimCap = 8192;
} // namespace

StreamMemSystem::StreamMemSystem(StreamMemConfig cfg) : cfg_(cfg)
{
    SPS_ASSERT(cfg_.channels >= 1, "need at least one channel");
    SPS_ASSERT(cfg_.peakWordsPerCycle > 0, "bad peak bandwidth");
    // Column access time so that all channels together sustain the
    // configured aggregate peak on row hits.
    double tcol = cfg_.channels / cfg_.peakWordsPerCycle;
    cfg_.timing.tCol = std::max(1, static_cast<int>(tcol + 0.5));
}

TransferResult
StreamMemSystem::transfer(int64_t words, int64_t stride,
                          const TransferTrace *tr) const
{
    TransferResult r;
    if (words <= 0)
        return r;
    SPS_ASSERT(stride >= 1, "bad stride %lld",
               static_cast<long long>(stride));

    int64_t sim_words = std::min(words, kSimCap);
    // Word-interleave the transfer across channels.
    std::vector<std::vector<MemRequest>> per_channel(
        static_cast<size_t>(cfg_.channels));
    for (int64_t i = 0; i < sim_words; ++i) {
        MemRequest req;
        req.wordAddr = (i * stride) / cfg_.channels;
        per_channel[static_cast<size_t>(i % cfg_.channels)].push_back(
            req);
    }
    int64_t busy = 0;
    int64_t hits = 0;
    for (auto &reqs : per_channel) {
        DramChannel chan(cfg_.timing);
        AccessScheduler sched(chan);
        SchedRunStats stats = sched.runStats(reqs);
        busy = std::max(busy, stats.busyCycles);
        hits += chan.rowHits();
        r.dramReorderSum += stats.reorderSum;
        r.dramReorderMax = std::max(r.dramReorderMax, stats.reorderMax);
    }
    // Extrapolate if capped, keeping the counter identities exact:
    // accesses == words and hits + misses == accesses.
    if (sim_words < words) {
        busy = busy * words / sim_words;
        hits = hits * words / sim_words;
        r.dramReorderSum = r.dramReorderSum * words / sim_words;
    }
    r.dramAccesses = words;
    r.dramRowHits = hits;
    r.dramRowMisses = words - hits;
    r.busyCycles = busy;
    r.cycles = busy + cfg_.latencyCycles;
    r.wordsPerCycle =
        static_cast<double>(words) / static_cast<double>(r.cycles);

    if (tr && SPS_TRACE_ENABLED(tr->tracer)) {
        tr->tracer->span(
            "mem", tr->label.empty() ? "transfer" : tr->label,
            tr->startCycle, tr->startCycle + r.cycles, tr->opId,
            trace::kTrackMem,
            {{"words", words},
             {"stride", stride},
             {"busy_cycles", r.busyCycles},
             {"row_hits", r.dramRowHits},
             {"row_misses", r.dramRowMisses},
             {"reorder_max", r.dramReorderMax}});
    }
    return r;
}

int64_t
StreamMemSystem::transferCycles(int64_t words) const
{
    return transfer(words, 1).cycles;
}

} // namespace sps::mem
