/**
 * @file
 * Memory access scheduling (after Rixner et al., ISCA 2000, the
 * streaming memory system the paper builds on): requests are reordered
 * within a window to favor open-row accesses (FR-FCFS), which is what
 * lets strided stream accesses approach peak DRAM bandwidth.
 */
#ifndef SPS_MEM_ACCESS_SCHED_H
#define SPS_MEM_ACCESS_SCHED_H

#include <deque>

#include "mem/dram.h"

namespace sps::mem {

/** Statistics of one scheduled request-list run. */
struct SchedRunStats
{
    /** Total busy cycles on the channel's pins. */
    int64_t busyCycles = 0;
    /** Sum over picks of how many older requests each bypassed. */
    int64_t reorderSum = 0;
    /** Largest number of older requests one pick bypassed. */
    int64_t reorderMax = 0;
};

/**
 * FR-FCFS scheduler over one channel: first-ready (row hit) requests
 * are serviced before older row misses, within a bounded window.
 */
class AccessScheduler
{
  public:
    AccessScheduler(DramChannel &channel, int window = 16)
        : channel_(channel), window_(window)
    {}

    /**
     * Run the request list to completion in scheduled order; returns
     * total busy cycles on the channel's pins.
     */
    int64_t run(const std::vector<MemRequest> &requests);

    /**
     * Like run(), but also reports how far the scheduler reordered
     * requests (its pick's index within the in-order window).
     */
    SchedRunStats runStats(const std::vector<MemRequest> &requests);

  private:
    DramChannel &channel_;
    int window_;
};

} // namespace sps::mem

#endif // SPS_MEM_ACCESS_SCHED_H
