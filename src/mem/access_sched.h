/**
 * @file
 * Memory access scheduling (after Rixner et al., ISCA 2000, the
 * streaming memory system the paper builds on): requests are reordered
 * within a window to favor open-row accesses (FR-FCFS), which is what
 * lets strided stream accesses approach peak DRAM bandwidth. An age
 * cap bounds starvation: once the oldest request has been bypassed
 * maxBypass times, it is serviced next regardless of row state.
 *
 * AccessWindow is the reusable scheduling core: callers (the
 * list-based AccessScheduler here, and StreamMemSystem's interleaved
 * per-channel service loop) push requests in arrival order and pop
 * them in scheduled order, so concurrent stream transfers share one
 * window per channel.
 */
#ifndef SPS_MEM_ACCESS_SCHED_H
#define SPS_MEM_ACCESS_SCHED_H

#include <cstddef>
#include <deque>
#include <vector>

#include "mem/dram.h"

namespace sps::mem {

/** Default FR-FCFS reorder window (requests). */
constexpr int kSchedWindow = 16;
/** Default starvation bound: a request is serviced after being
 *  bypassed at most this many times. */
constexpr int kSchedMaxBypass = 64;

/** One serviced request, as reported by AccessWindow::serviceNext. */
struct WindowService
{
    /** Caller-supplied tag of the serviced request (e.g. which
     *  transfer it belongs to). */
    int tag = 0;
    /** Cycles the channel's pins were busy servicing it. */
    int cycles = 0;
    /** Arrival-order index within the window at pick time (how many
     *  older requests this pick bypassed). */
    int64_t pickIndex = 0;
    /** Times this request itself was bypassed before being serviced. */
    int64_t bypassed = 0;
    bool rowHit = false;
    /** Row miss that had to precharge another open row first. */
    bool bankConflict = false;
};

/**
 * FR-FCFS pick window over one channel. Requests enter in arrival
 * order; serviceNext() picks the oldest row hit (oldest request if
 * none), services it on the channel, and reports the reorder
 * bookkeeping. The age cap forces the oldest request once it has been
 * bypassed maxBypass times, so a row-hit flood cannot starve an old
 * miss indefinitely.
 */
class AccessWindow
{
  public:
    AccessWindow(DramChannel &channel, int window = kSchedWindow,
                 int max_bypass = kSchedMaxBypass)
        : channel_(channel), window_(window), maxBypass_(max_bypass)
    {}

    /** True while the window has room for more arrivals. */
    bool wantsMore() const
    {
        return static_cast<int>(win_.size()) < window_;
    }

    bool empty() const { return win_.empty(); }
    size_t size() const { return win_.size(); }

    /** Add a request at the back (arrival order). */
    void push(const MemRequest &req, int tag)
    {
        win_.push_back(Entry{req, tag, 0});
    }

    /** Service the scheduled pick; the window must be non-empty. */
    WindowService serviceNext();

  private:
    struct Entry
    {
        MemRequest req;
        int tag = 0;
        int64_t bypassed = 0;
    };
    DramChannel &channel_;
    std::deque<Entry> win_;
    int window_;
    int maxBypass_;
};

/** Statistics of one scheduled request-list run. */
struct SchedRunStats
{
    /** Total busy cycles on the channel's pins. */
    int64_t busyCycles = 0;
    /** Sum over picks of how many older requests each bypassed. */
    int64_t reorderSum = 0;
    /** Largest number of older requests one pick bypassed. */
    int64_t reorderMax = 0;
    /** Most times any single request was bypassed before service (the
     *  observed starvation bound; <= the scheduler's maxBypass). */
    int64_t maxBypassed = 0;
    /** Row misses that had to precharge an open row first. */
    int64_t bankConflicts = 0;
};

/**
 * FR-FCFS scheduler over one channel: first-ready (row hit) requests
 * are serviced before older row misses, within a bounded window and
 * subject to the starvation age cap.
 */
class AccessScheduler
{
  public:
    AccessScheduler(DramChannel &channel, int window = kSchedWindow,
                    int max_bypass = kSchedMaxBypass)
        : channel_(channel), window_(window), maxBypass_(max_bypass)
    {}

    /**
     * Run the request list to completion in scheduled order; returns
     * total busy cycles on the channel's pins.
     */
    int64_t run(const std::vector<MemRequest> &requests);

    /**
     * Like run(), but also reports how far the scheduler reordered
     * requests (its pick's index within the in-order window).
     */
    SchedRunStats runStats(const std::vector<MemRequest> &requests);

  private:
    DramChannel &channel_;
    int window_;
    int maxBypass_;
};

} // namespace sps::mem

#endif // SPS_MEM_ACCESS_SCHED_H
