/**
 * @file
 * The streaming memory system: stream loads and stores between
 * external DRAM and the SRF.
 *
 * Transfers carry real word addresses: a per-stream address generator
 * expands (base, record stride, record length) into MemRequests, and
 * each request is assigned to channel `wordAddr % channels` (word
 * interleaving by address, so stride-aliased streams collapse onto a
 * subset of the channels instead of being credited full aggregate
 * bandwidth). Channel state -- open rows, bank contents, and the
 * per-channel busy cursor -- is owned by the StreamMemSystem and
 * persists across transfers within one program run.
 *
 * Contention is modelled by batched joint service: transfers submitted
 * between two resolve points are interleaved request-by-request into
 * one FR-FCFS access-scheduler window per channel (mem/access_sched.h),
 * so overlapping transfers share bandwidth and fight for row buffers
 * exactly where they overlap. The stream controller submits a transfer
 * at issue and resolves the batch when a dependent op (or the
 * scoreboard) needs a completion time.
 *
 * Configured for the paper's 2007 technology point (eight channels,
 * 16 GB/s, 55-cycle latency) by default.
 */
#ifndef SPS_MEM_STREAM_MEM_H
#define SPS_MEM_STREAM_MEM_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/access_sched.h"
#include "mem/dram.h"
#include "trace/tracer.h"

namespace sps::mem {

/** Configuration of the streaming memory system. */
struct StreamMemConfig
{
    int channels = 8;
    /** Aggregate peak bandwidth in words per processor cycle. */
    double peakWordsPerCycle = 4.0;
    /** Access latency in cycles (Table 1's T). */
    int latencyCycles = 55;
    /** Per-channel DRAM timing template (tCol derived from peak). */
    DramTiming timing = DramTiming{};
    /** FR-FCFS reorder window per channel. */
    int schedWindow = kSchedWindow;
    /** Starvation bound: max times one request may be bypassed. */
    int schedMaxBypass = kSchedMaxBypass;

    /** The paper's 45nm / 2007 configuration: 16 GB/s at 1 GHz. */
    static StreamMemConfig fortyFiveNm() { return StreamMemConfig{}; }
};

/** One stream transfer, as submitted by the stream controller. */
struct TransferDesc
{
    /** Words moved over the external interface. */
    int64_t words = 0;
    /** Word address of the first record. */
    int64_t baseWord = 0;
    /** Start-to-start distance between consecutive records in words;
     *  0 means dense (== recordWords). */
    int64_t strideWords = 0;
    /** Contiguous words per record. */
    int64_t recordWords = 1;
    /** Earliest cycle any request of this transfer may be serviced. */
    int64_t startCycle = 0;
    bool write = false;
};

/** One closed-open interval during which the memory pins were busy. */
struct BusyInterval
{
    int64_t start = 0;
    int64_t end = 0;
};

/** Result of one stream transfer. */
struct TransferResult
{
    int64_t startCycle = 0;   ///< requested start (TransferDesc)
    int64_t serviceStart = 0; ///< first cycle pins worked for it
    int64_t doneCycle = 0;    ///< last word serviced + access latency
    int64_t cycles = 0;       ///< doneCycle - startCycle
    int64_t busyCycles = 0;   ///< critical-channel pin cycles
    double wordsPerCycle = 0; ///< achieved bandwidth

    // DRAM behaviour over the whole transfer (summed across channels;
    // extrapolated transfers scale these with round-to-nearest so
    // hits + misses always equals accesses and accesses equals the
    // words moved).
    int64_t dramAccesses = 0;
    int64_t dramRowHits = 0;
    int64_t dramRowMisses = 0;
    /** Row misses that had to precharge an open row first. */
    int64_t bankConflicts = 0;
    /** Sum of access-scheduler reorder distances. */
    int64_t dramReorderSum = 0;
    /** Largest single reorder distance. */
    int64_t dramReorderMax = 0;
    /** Idle channel-cycles caused by address aliasing: channels *
     *  critical-channel busy minus total busy across channels. Zero
     *  for a perfectly balanced transfer. */
    int64_t aliasStallCycles = 0;
};

/** Per-channel counters accumulated over one program run. */
struct ChannelStats
{
    int64_t busyCycles = 0;
    int64_t accesses = 0;
    int64_t rowHits = 0;
    int64_t bankConflicts = 0;
};

/** Optional tracing context for one transfer (see trace/tracer.h). */
struct TransferTrace
{
    trace::Tracer *tracer = nullptr;
    /** Simulated cycle the transfer's busy portion starts. */
    int64_t startCycle = 0;
    /** Event name (typically the stream op's label). */
    std::string label;
    /** Program-order op id, recorded as the event's async id. */
    int opId = -1;
};

/**
 * Streaming memory system model with persistent channel state.
 *
 * Program-run usage (the stream controller): beginProgram(), then
 * submit() each transfer at issue and resolveAll() when a completion
 * is needed; transfers submitted between resolves are serviced
 * jointly, sharing the per-channel scheduler window.
 *
 * Standalone usage (tests, quick estimates): transfer() services one
 * transfer against freshly reset channels, so results do not depend
 * on call history.
 */
class StreamMemSystem
{
  public:
    explicit StreamMemSystem(StreamMemConfig cfg = StreamMemConfig{});

    const StreamMemConfig &config() const { return cfg_; }

    /** Reset channel state (rows closed, busy cursors and per-channel
     *  counters to zero) for a new program run at cycle 0. */
    void beginProgram();

    /**
     * Submit a transfer for joint service; returns a ticket valid
     * until the next beginProgram(). When `tr` carries a tracer, the
     * resolved transfer records a "mem" event with its DRAM
     * behaviour. Transfers larger than the simulation cap are
     * extrapolated from a simulated prefix with round-to-nearest
     * scaling (counter identities stay exact).
     */
    int submit(const TransferDesc &desc,
               const TransferTrace *tr = nullptr);

    /** Jointly service all unresolved transfers. */
    void resolveAll();

    /** True once the ticket's transfer has been resolved. */
    bool resolved(int ticket) const;

    /** The resolved result for a ticket (resolves if needed). */
    const TransferResult &result(int ticket);

    /**
     * Busy intervals (union over channels, in service order per
     * resolve batch) accumulated since the last call; cleared on
     * return. Intervals from different batches may overlap -- callers
     * wanting a disjoint set must merge.
     */
    std::vector<BusyInterval> takeBusyIntervals();

    /** Per-channel counters since beginProgram(). */
    const std::vector<ChannelStats> &channelStats() const
    {
        return chStats_;
    }

    /**
     * Standalone transfer of `words` words with the given word stride
     * (1 = dense), starting from idle channels at cycle 0. Kept for
     * estimates and unit tests; program runs use submit()/resolveAll().
     */
    TransferResult transfer(int64_t words, int64_t stride = 1,
                            const TransferTrace *tr = nullptr);

    /** Shorthand: cycles for a standalone dense transfer. */
    int64_t transferCycles(int64_t words);

  private:
    struct Channel
    {
        DramChannel dram;
        /** First cycle the channel's pins are free. */
        int64_t freeCycle = 0;
    };
    struct Pending
    {
        TransferDesc desc;
        TransferTrace trace;
        bool traced = false;
        int ticket = 0;
    };

    StreamMemConfig cfg_;
    std::vector<Channel> ch_;
    std::vector<ChannelStats> chStats_;
    std::vector<Pending> pending_;
    std::vector<TransferResult> results_;
    std::vector<BusyInterval> busyIvs_;
};

} // namespace sps::mem

#endif // SPS_MEM_STREAM_MEM_H
