/**
 * @file
 * The streaming memory system: stream loads and stores between
 * external DRAM and the SRF. Word-interleaves each transfer across the
 * channels, runs the per-channel access scheduler, and reports the
 * transfer's duration and bandwidth. Configured for the paper's 2007
 * technology point (eight channels, 16 GB/s, 55-cycle latency) or the
 * Imagine-era defaults.
 */
#ifndef SPS_MEM_STREAM_MEM_H
#define SPS_MEM_STREAM_MEM_H

#include <cstdint>
#include <string>

#include "mem/access_sched.h"
#include "mem/dram.h"
#include "trace/tracer.h"

namespace sps::mem {

/** Configuration of the streaming memory system. */
struct StreamMemConfig
{
    int channels = 8;
    /** Aggregate peak bandwidth in words per processor cycle. */
    double peakWordsPerCycle = 4.0;
    /** Access latency in cycles (Table 1's T). */
    int latencyCycles = 55;
    /** Per-channel DRAM timing template (tCol derived from peak). */
    DramTiming timing = DramTiming{};

    /** The paper's 45nm / 2007 configuration: 16 GB/s at 1 GHz. */
    static StreamMemConfig fortyFiveNm() { return StreamMemConfig{}; }
};

/** Result of one stream transfer. */
struct TransferResult
{
    int64_t cycles = 0;        ///< total duration including latency
    int64_t busyCycles = 0;    ///< pin-limited portion
    double wordsPerCycle = 0;  ///< achieved bandwidth

    // DRAM behaviour over the whole transfer (summed across channels;
    // extrapolated transfers scale these so hits + misses always
    // equals accesses and accesses equals the words moved).
    int64_t dramAccesses = 0;
    int64_t dramRowHits = 0;
    int64_t dramRowMisses = 0;
    /** Sum of access-scheduler reorder distances. */
    int64_t dramReorderSum = 0;
    /** Largest single reorder distance. */
    int64_t dramReorderMax = 0;
};

/** Optional tracing context for one transfer (see trace/tracer.h). */
struct TransferTrace
{
    trace::Tracer *tracer = nullptr;
    /** Simulated cycle the transfer's busy portion starts. */
    int64_t startCycle = 0;
    /** Event name (typically the stream op's label). */
    std::string label;
    /** Program-order op id, recorded as the event's async id. */
    int opId = -1;
};

/**
 * Streaming memory system model. Stateless between transfers (each
 * stream transfer opens its own rows).
 */
class StreamMemSystem
{
  public:
    explicit StreamMemSystem(StreamMemConfig cfg = StreamMemConfig{});

    const StreamMemConfig &config() const { return cfg_; }

    /**
     * Duration of transferring `words` words with the given word
     * stride (1 = dense). Transfers larger than the simulation cap are
     * extrapolated linearly from a simulated prefix. When `tr` carries
     * a tracer, the transfer records a "mem" event with its DRAM
     * behaviour.
     */
    TransferResult transfer(int64_t words, int64_t stride = 1,
                            const TransferTrace *tr = nullptr) const;

    /** Shorthand: cycles for a dense transfer. */
    int64_t transferCycles(int64_t words) const;

  private:
    StreamMemConfig cfg_;
};

} // namespace sps::mem

#endif // SPS_MEM_STREAM_MEM_H
