#include "mem/dram.h"

#include "common/log.h"

namespace sps::mem {

DramChannel::DramChannel(DramTiming timing) : timing_(timing)
{
    SPS_ASSERT(timing_.banks >= 1 && timing_.rowWords >= 1,
               "bad DRAM geometry");
    openRow_.assign(static_cast<size_t>(timing_.banks), -1);
}

int
DramChannel::bankOf(int64_t word_addr) const
{
    // Banks are interleaved at row granularity so sequential streams
    // walk banks round-robin, letting activates overlap.
    return static_cast<int>((word_addr / timing_.rowWords) %
                            timing_.banks);
}

int64_t
DramChannel::rowOf(int64_t word_addr) const
{
    return word_addr / (static_cast<int64_t>(timing_.rowWords) *
                        timing_.banks);
}

bool
DramChannel::isRowHit(const MemRequest &req) const
{
    int bank = bankOf(req.wordAddr);
    return openRow_[static_cast<size_t>(bank)] == rowOf(req.wordAddr);
}

bool
DramChannel::isBankOpen(const MemRequest &req) const
{
    return openRow_[static_cast<size_t>(bankOf(req.wordAddr))] >= 0;
}

int
DramChannel::service(const MemRequest &req)
{
    int bank = bankOf(req.wordAddr);
    int64_t row = rowOf(req.wordAddr);
    auto &open = openRow_[static_cast<size_t>(bank)];
    int cycles = timing_.tCol;
    if (open != row) {
        cycles += (open >= 0 ? timing_.tPre : 0) + timing_.tRas;
        open = row;
        ++rowMisses_;
    } else {
        ++rowHits_;
    }
    return cycles;
}

void
DramChannel::reset()
{
    openRow_.assign(static_cast<size_t>(timing_.banks), -1);
}

} // namespace sps::mem
