/**
 * @file
 * Cross-module integration: kernels flow from the builder through the
 * compiler and simulator and the numbers stay consistent.
 */
#include <gtest/gtest.h>

#include "core/design.h"
#include "interp/interpreter.h"
#include "kernel/census.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps {
namespace {

TEST(PipelineTest, EverySuiteKernelCompilesOnEveryStudyMachine)
{
    for (const auto &entry : workloads::kernelSuite()) {
        for (int c : {8, 16, 32, 64, 128}) {
            for (int n : {2, 5, 10, 14}) {
                core::StreamProcessorDesign d({c, n});
                sched::CompiledKernel ck = d.compile(*entry.kernel);
                EXPECT_GE(ck.ii, 1) << entry.name;
                EXPECT_LE(ck.aluOpsPerCycle(), n + 1e-9)
                    << entry.name << " C=" << c << " N=" << n;
            }
        }
    }
}

TEST(PipelineTest, SimulatedKernelTimeConsistentWithStaticAnalysis)
{
    // A long single-kernel program's cycle count approaches the
    // static inner-loop estimate.
    core::StreamProcessorDesign d({8, 5});
    sim::StreamProcessor proc = d.makeProcessor();
    const kernel::Kernel &k = workloads::noiseKernel();
    const sched::CompiledKernel &ck = proc.compile(k);

    const int64_t records = 32768;
    stream::StreamProgram prog("one-kernel");
    int in = prog.declareStream("in", 2, records);
    int out = prog.declareStream("out", 1, records);
    prog.callKernel(&k, {in, out});
    sim::SimResult r = proc.run(prog);

    int64_t iters = records / 8;
    double static_cycles = static_cast<double>(ck.loopCycles(iters));
    EXPECT_NEAR(static_cast<double>(r.cycles), static_cycles,
                0.05 * static_cycles + 64);
}

TEST(PipelineTest, SimOpsMatchInterpreterOps)
{
    // The simulator's ALU-op accounting must equal records times the
    // census (the interpreter executes exactly one body per record).
    const kernel::Kernel &k = workloads::convolveKernel();
    kernel::Census census = kernel::takeCensus(k);

    core::StreamProcessorDesign d({8, 5});
    sim::StreamProcessor proc = d.makeProcessor();
    stream::StreamProgram prog("conv-once");
    int in = prog.declareStream("in", 8, 1024);
    int out = prog.declareStream("out", 8, 1024);
    prog.callKernel(&k, {in, out});
    sim::SimResult r = proc.run(prog);
    EXPECT_EQ(r.aluOps, census.aluOps * 1024);
}

TEST(PipelineTest, InterpreterAgreesAcrossMachineSizesWhereExpected)
{
    // Noise is perfectly data parallel: results must be identical for
    // any cluster count.
    std::vector<float> xy;
    for (int i = 0; i < 200; ++i)
        xy.push_back(0.37f * static_cast<float>(i) - 31.0f);
    auto in = interp::StreamData::fromFloats(xy, 2);
    auto r1 =
        interp::runKernel(workloads::noiseKernel(), 1, {in});
    auto r64 =
        interp::runKernel(workloads::noiseKernel(), 64, {in});
    EXPECT_EQ(r1.outputs[0].words.size(),
              r64.outputs[0].words.size());
    for (size_t i = 0; i < r1.outputs[0].words.size(); ++i)
        EXPECT_EQ(r1.outputs[0].words[i].bits,
                  r64.outputs[0].words[i].bits);
}

TEST(PipelineTest, CostAndPerformanceTradeoffVisible)
{
    // Intracluster scaling: N=10 buys throughput at an area premium.
    core::StreamProcessorDesign d5({8, 5});
    core::StreamProcessorDesign d10({8, 10});
    double t5 = d5.kernelOpsPerCycle(workloads::fftKernel());
    double t10 = d10.kernelOpsPerCycle(workloads::fftKernel());
    EXPECT_GT(t10, 1.3 * t5);
    EXPECT_GT(d10.areaPerAlu(), d5.areaPerAlu());
}

} // namespace
} // namespace sps
