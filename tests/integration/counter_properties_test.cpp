/**
 * @file
 * Counter-consistency property tests: the hardware-counter identities
 * must hold at every (application, C, N) design point, and the counter
 * values collected through the parallel evaluation engine must be
 * identical to a serial run.
 */
#include <gtest/gtest.h>

#include "core/design.h"
#include "core/eval_engine.h"
#include "trace/counters_csv.h"
#include "workloads/suite.h"

namespace sps {
namespace {

struct SweepPoint
{
    std::string app;
    vlsi::MachineSize size;
    int64_t srfCapacity = 0;
    sim::SimResult result;
};

const std::vector<vlsi::MachineSize> &
sweepSizes()
{
    static const std::vector<vlsi::MachineSize> sizes{
        {8, 3}, {8, 5}, {16, 5}, {32, 10}, {64, 5}};
    return sizes;
}

std::vector<SweepPoint>
runSweep(core::EvalEngine &eng)
{
    auto apps = workloads::appSuite();
    const auto &sizes = sweepSizes();
    return eng.map(apps.size() * sizes.size(), [&](size_t idx) {
        const auto &app = apps[idx / sizes.size()];
        vlsi::MachineSize size = sizes[idx % sizes.size()];
        core::StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        SweepPoint pt;
        pt.app = app.name;
        pt.size = size;
        pt.srfCapacity = proc.srf().capacityWords;
        pt.result = proc.run(prog);
        return pt;
    });
}

class CounterPropertiesTest : public ::testing::Test
{
  protected:
    static const std::vector<SweepPoint> &
    points()
    {
        static const std::vector<SweepPoint> pts = [] {
            core::EvalEngine eng(0);
            return runSweep(eng);
        }();
        return pts;
    }

    static std::string
    label(const SweepPoint &pt)
    {
        return pt.app + " @ C=" + std::to_string(pt.size.clusters) +
               " N=" + std::to_string(pt.size.alusPerCluster);
    }
};

TEST_F(CounterPropertiesTest, CycleBreakdownSumsToTotalEverywhere)
{
    for (const SweepPoint &pt : points()) {
        const sim::SimCounters &c = pt.result.counters;
        EXPECT_EQ(c.kernelOnlyCycles + c.memOnlyCycles +
                      c.overlapCycles + c.idleCycles,
                  pt.result.cycles)
            << label(pt);
        EXPECT_EQ(c.memOnlyCycles + c.overlapCycles, pt.result.memBusy)
            << label(pt);
        EXPECT_EQ(c.kernelOnlyCycles + c.overlapCycles,
                  pt.result.ucBusy)
            << label(pt);
        for (int64_t v : {c.kernelOnlyCycles, c.memOnlyCycles,
                          c.overlapCycles, c.idleCycles})
            EXPECT_GE(v, 0) << label(pt);
    }
}

TEST_F(CounterPropertiesTest, SrfHighWaterWithinCapacity)
{
    for (const SweepPoint &pt : points()) {
        EXPECT_GT(pt.result.srfHighWater, 0) << label(pt);
        EXPECT_LE(pt.result.srfHighWater, pt.srfCapacity) << label(pt);
    }
}

TEST_F(CounterPropertiesTest, DramAccessesDecomposeIntoHitsAndMisses)
{
    for (const SweepPoint &pt : points()) {
        const sim::SimCounters &c = pt.result.counters;
        EXPECT_EQ(c.dramAccesses, pt.result.memWords) << label(pt);
        EXPECT_EQ(c.dramRowHits + c.dramRowMisses, c.dramAccesses)
            << label(pt);
        EXPECT_GE(c.dramRowHits, 0) << label(pt);
        EXPECT_GE(c.dramRowMisses, 0) << label(pt);
        double rate = pt.result.dramRowHitRate();
        EXPECT_GE(rate, 0.0) << label(pt);
        EXPECT_LE(rate, 1.0) << label(pt);
    }
}

TEST_F(CounterPropertiesTest, DerivedRatesStayInRange)
{
    for (const SweepPoint &pt : points()) {
        EXPECT_GE(pt.result.aluOccupancy(), 0.0) << label(pt);
        EXPECT_LE(pt.result.aluOccupancy(), 1.0) << label(pt);
        EXPECT_GE(pt.result.kernelAluOccupancy(),
                  pt.result.aluOccupancy())
            << label(pt);
        EXPECT_GE(pt.result.dramAvgReorderDistance(), 0.0) << label(pt);
        EXPECT_LE(pt.result.counters.dramReorderMax, 16) << label(pt);
    }
}

TEST_F(CounterPropertiesTest, HostIssueAndStallAccounting)
{
    for (const SweepPoint &pt : points()) {
        const sim::SimCounters &c = pt.result.counters;
        EXPECT_GT(c.loads + c.stores + c.kernelCalls, 0) << label(pt);
        EXPECT_GT(c.hostIssueBusyCycles, 0) << label(pt);
        EXPECT_LE(c.hostIssueBusyCycles +
                      c.scoreboardStallCycles,
                  pt.result.cycles)
            << label(pt);
        EXPECT_GE(c.depStallCycles, 0) << label(pt);
        EXPECT_GE(c.srfBwStallCycles, 0) << label(pt);
    }
}

/**
 * The whole counter set must be deterministic under the parallel
 * engine: serial and parallel sweeps agree cell-for-cell in the CSV
 * rendering (the strictest comparison we export).
 */
TEST_F(CounterPropertiesTest, ParallelSweepMatchesSerial)
{
    core::EvalEngine serial(1);
    std::vector<SweepPoint> serial_pts = runSweep(serial);
    const std::vector<SweepPoint> &par_pts = points();
    ASSERT_EQ(serial_pts.size(), par_pts.size());
    for (size_t i = 0; i < serial_pts.size(); ++i) {
        auto sv = trace::counterValues(serial_pts[i].result);
        auto pv = trace::counterValues(par_pts[i].result);
        ASSERT_EQ(sv.size(), pv.size());
        for (size_t j = 0; j < sv.size(); ++j)
            EXPECT_EQ(sv[j].toCell(), pv[j].toCell())
                << label(par_pts[i]) << " counter " << sv[j].name;
    }
}

} // namespace
} // namespace sps
