/**
 * @file
 * End-to-end checks that overlapping stream transfers contend for the
 * memory system through the stream controller: channels service both
 * transfers, interleaved requests fight for row buffers, and the new
 * contention counters (bank conflicts, per-channel busy, alias stalls)
 * surface it.
 */
#include <gtest/gtest.h>

#include "kernel/builder.h"
#include "sim/processor.h"

namespace sps::sim {
namespace {

SimConfig
config()
{
    SimConfig cfg;
    cfg.size = vlsi::MachineSize{8, 5};
    return cfg;
}

stream::StreamProgram
loadsProgram(int nloads, int64_t records)
{
    stream::StreamProgram p("loads");
    for (int i = 0; i < nloads; ++i) {
        int s = p.declareStream("in" + std::to_string(i), 1, records,
                                true);
        p.load(s);
    }
    return p;
}

TEST(MemContentionTest, OverlappingLoadsShowMeasurableContention)
{
    const int64_t records = 32768;
    SimResult alone =
        StreamProcessor(config()).run(loadsProgram(1, records));
    SimResult both =
        StreamProcessor(config()).run(loadsProgram(2, records));
    // Independent back-to-back loads are submitted into one resolve
    // batch and serviced jointly: the combined pin-busy time exceeds
    // either transfer alone.
    EXPECT_GT(both.memBusy, alone.memBusy);
    // Each load finishes later than it would alone.
    EXPECT_GT(both.timeline[0].end, alone.timeline[0].end);
    EXPECT_GT(both.timeline[1].end, alone.timeline[0].end);
}

TEST(MemContentionTest, InterleavedStreamsFightForRowBuffers)
{
    const int64_t records = 32768;
    SimResult alone =
        StreamProcessor(config()).run(loadsProgram(1, records));
    SimResult both =
        StreamProcessor(config()).run(loadsProgram(2, records));
    // The two dense streams land in the same banks (different rows),
    // so their interleaved requests precharge each other's open rows:
    // bank conflicts appear and the row-hit rate drops.
    EXPECT_GT(both.counters.dramBankConflicts, 0);
    EXPECT_LT(both.dramRowHitRate(), alone.dramRowHitRate());
    // Still far better than a conflict per access: the FR-FCFS window
    // batches each stream's row hits.
    EXPECT_GT(both.dramRowHitRate(), 0.5);
}

TEST(MemContentionTest, PerChannelCountersCoverTheRun)
{
    const int64_t records = 32768;
    SimResult r =
        StreamProcessor(config()).run(loadsProgram(2, records));
    const SimCounters &c = r.counters;
    ASSERT_EQ(c.dramChannelBusyCycles.size(), 8u);
    int64_t sum = 0;
    for (int64_t v : c.dramChannelBusyCycles) {
        EXPECT_GT(v, 0);
        sum += v;
    }
    // Dense streams balance the channels exactly.
    EXPECT_EQ(r.dramChannelBusyMax(), r.dramChannelBusyMin());
    // The busy-interval union (memBusy) cannot exceed total pin work.
    EXPECT_GE(sum, r.memBusy);
    EXPECT_EQ(c.memAliasStallCycles, 0);
}

TEST(MemContentionTest, AliasedStrideStarvesOtherChannels)
{
    const int64_t records = 4096;
    stream::StreamProgram p("aliased");
    int s = p.declareStream("in", 1, records, true);
    // Record stride equal to the channel count: every record start
    // hits the same channel.
    p.setMemLayout(s, 8);
    p.load(s);
    SimResult r = StreamProcessor(config()).run(p);
    EXPECT_GT(r.counters.memAliasStallCycles, 0);
    EXPECT_GT(r.dramChannelBusyMax(), 0);
    EXPECT_EQ(r.dramChannelBusyMin(), 0);
}

TEST(MemContentionTest, ContentionRunsAreDeterministic)
{
    const int64_t records = 16384;
    SimResult a =
        StreamProcessor(config()).run(loadsProgram(3, records));
    SimResult b =
        StreamProcessor(config()).run(loadsProgram(3, records));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memBusy, b.memBusy);
    EXPECT_EQ(a.counters.dramRowHits, b.counters.dramRowHits);
    EXPECT_EQ(a.counters.dramBankConflicts,
              b.counters.dramBankConflicts);
    EXPECT_EQ(a.counters.dramChannelBusyCycles,
              b.counters.dramChannelBusyCycles);
}

} // namespace
} // namespace sps::sim
