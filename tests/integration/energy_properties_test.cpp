/**
 * @file
 * Energy/bottleneck property tests over a design-point sweep: every
 * run must carry a valid report whose components sum to the total and
 * whose cycle attribution matches the counter identities; the report
 * must be byte-identical between serial and parallel EvalEngine
 * collection; and the measured intercluster energy-per-ALU-op scaling
 * must track the analytical Figure 10 curve within 2x at every C.
 */
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/design.h"
#include "core/eval_engine.h"
#include "trace/counters_csv.h"
#include "vlsi/cost_model.h"
#include "workloads/suite.h"

namespace sps {
namespace {

struct SweepPoint
{
    std::string app;
    vlsi::MachineSize size;
    sim::SimResult result;
};

const std::vector<vlsi::MachineSize> &
sweepSizes()
{
    static const std::vector<vlsi::MachineSize> sizes{
        {1, 5}, {2, 5}, {4, 5}, {8, 5}, {16, 5}, {8, 3}};
    return sizes;
}

std::vector<SweepPoint>
runSweep(core::EvalEngine &eng)
{
    auto apps = workloads::appSuite();
    const auto &sizes = sweepSizes();
    return eng.map(apps.size() * sizes.size(), [&](size_t idx) {
        const auto &app = apps[idx / sizes.size()];
        vlsi::MachineSize size = sizes[idx % sizes.size()];
        core::StreamProcessorDesign d(size);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog = app.build(size, proc.srf());
        SweepPoint pt;
        pt.app = app.name;
        pt.size = size;
        pt.result = proc.run(prog);
        return pt;
    });
}

class EnergyPropertiesTest : public ::testing::Test
{
  protected:
    static const std::vector<SweepPoint> &
    points()
    {
        static const std::vector<SweepPoint> pts = [] {
            core::EvalEngine eng(0);
            return runSweep(eng);
        }();
        return pts;
    }

    static std::string
    label(const SweepPoint &pt)
    {
        return pt.app + " @ C=" + std::to_string(pt.size.clusters) +
               " N=" + std::to_string(pt.size.alusPerCluster);
    }
};

TEST_F(EnergyPropertiesTest, ReportsValidAndComponentsSumToTotal)
{
    for (const SweepPoint &pt : points()) {
        const energy::EnergyReport &e = pt.result.energy;
        ASSERT_TRUE(e.valid) << label(pt);
        double sum = e.srf.totalEw() + e.clusters.totalEw() +
                     e.microcontroller.totalEw() +
                     e.interclusterComm.totalEw() + e.dram.totalEw();
        EXPECT_DOUBLE_EQ(e.totalEw(), sum) << label(pt);
        // Every term is finite and non-negative.
        for (double v :
             {e.srf.dynamicEw, e.srf.idleEw, e.clusters.dynamicEw,
              e.clusters.idleEw, e.microcontroller.dynamicEw,
              e.microcontroller.idleEw, e.interclusterComm.dynamicEw,
              e.interclusterComm.idleEw, e.dram.dynamicEw,
              e.dram.idleEw}) {
            EXPECT_TRUE(std::isfinite(v)) << label(pt);
            EXPECT_GE(v, 0.0) << label(pt);
        }
        // A real app does real work everywhere.
        EXPECT_GT(e.clusters.dynamicEw, 0.0) << label(pt);
        EXPECT_GT(e.energyPerAluOpEw(), 0.0) << label(pt);
        // Memory-side terms appear iff the app touched memory (some
        // FFT configurations keep everything resident in the SRF).
        if (pt.result.memWords > 0)
            EXPECT_GT(e.dram.dynamicEw, 0.0) << label(pt);
        if (pt.result.counters.memStoreWords > 0)
            EXPECT_GT(e.energyPerOutputWordEw(), 0.0) << label(pt);
        EXPECT_GT(e.averagePowerWatts(), 0.0) << label(pt);
        EXPECT_EQ(e.cycles, pt.result.cycles) << label(pt);
        EXPECT_EQ(e.aluOps, pt.result.aluOps) << label(pt);
    }
}

TEST_F(EnergyPropertiesTest, BottleneckWaterfallMatchesCycleCounters)
{
    for (const SweepPoint &pt : points()) {
        const analysis::BottleneckReport &b = pt.result.bottleneck;
        const sim::SimCounters &c = pt.result.counters;
        ASSERT_TRUE(b.valid) << label(pt);
        // The waterfall covers the run exactly once.
        EXPECT_EQ(b.totalCycles(), pt.result.cycles) << label(pt);
        // Busy categories agree with the counter cycle breakdown.
        EXPECT_EQ(b.kernelBoundCycles,
                  c.kernelOnlyCycles + c.overlapCycles)
            << label(pt);
        EXPECT_EQ(b.memoryBoundCycles, c.memOnlyCycles) << label(pt);
        // Quiet categories partition the counters' idle cycles.
        EXPECT_EQ(b.dependenceCycles + b.scoreboardCycles +
                      b.hostIssueCycles + b.idleCycles,
                  c.idleCycles)
            << label(pt);
        for (int64_t v : {b.dependenceCycles, b.scoreboardCycles,
                          b.hostIssueCycles, b.idleCycles})
            EXPECT_GE(v, 0) << label(pt);
        EXPECT_STRNE(b.limitingResource(), "") << label(pt);
    }
}

/** Serial vs parallel collection: byte-identical energy rows. */
TEST_F(EnergyPropertiesTest, ParallelSweepMatchesSerialByteForByte)
{
    core::EvalEngine serial(1);
    std::vector<SweepPoint> serial_pts = runSweep(serial);
    const std::vector<SweepPoint> &par_pts = points();
    ASSERT_EQ(serial_pts.size(), par_pts.size());
    for (size_t i = 0; i < serial_pts.size(); ++i) {
        auto sv = trace::energyValues(serial_pts[i].result);
        auto pv = trace::energyValues(par_pts[i].result);
        ASSERT_EQ(sv.size(), pv.size());
        for (size_t j = 0; j < sv.size(); ++j)
            EXPECT_EQ(sv[j].toCell(), pv[j].toCell())
                << label(par_pts[i]) << " column " << sv[j].name;
    }
}

/**
 * Figure 10 cross-check: the measured paper-scope (no DRAM) energy
 * per ALU op, aggregated over the app suite and normalized to C=8,
 * must stay within 2x of the analytical model's energyPerAluOp curve
 * at every C in {1,2,4,8,16} (N=5).
 */
TEST_F(EnergyPropertiesTest, ScaledEnergyPerAluOpTracksAnalyticalCurve)
{
    vlsi::CostModel model;
    const vlsi::MachineSize ref{8, 5};
    double measuredRef = 0.0;
    std::map<int, std::pair<double, double>> byC; // C -> (Ew, ops)
    for (const SweepPoint &pt : points()) {
        if (pt.size.alusPerCluster != 5)
            continue;
        auto &acc = byC[pt.size.clusters];
        acc.first += pt.result.energy.scaledTotalEw();
        acc.second += static_cast<double>(pt.result.energy.aluOps);
    }
    ASSERT_EQ(byC.size(), 5u);
    measuredRef = byC[8].first / byC[8].second;
    const double analyticRef = model.energyPerAluOp(ref);
    for (const auto &[c, acc] : byC) {
        double measured = (acc.first / acc.second) / measuredRef;
        double analytic =
            model.energyPerAluOp({c, 5}) / analyticRef;
        EXPECT_GT(measured, 0.0) << "C=" << c;
        double ratio = measured / analytic;
        EXPECT_GE(ratio, 0.5) << "C=" << c;
        EXPECT_LE(ratio, 2.0) << "C=" << c;
    }
}

} // namespace
} // namespace sps
