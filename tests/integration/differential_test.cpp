/**
 * @file
 * Differential test: every Table-4 kernel runs through both the
 * functional interpreter directly and the cycle-accurate simulator
 * (whose kernel calls execute through the same interpreter via the
 * FunctionalContext plumbing: port binding order, stream routing,
 * COMM exchange, conditional-stream compaction). The output streams
 * must be bit-identical.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "interp/interpreter.h"
#include "sim/functional.h"
#include "sim/processor.h"
#include "workloads/kernels/kernels.h"
#include "workloads/suite.h"

namespace sps {
namespace {

using interp::StreamData;

struct DiffCase
{
    std::string name;
    const kernel::Kernel *k;
    std::vector<StreamData> inputs;
};

std::vector<DiffCase>
buildCases()
{
    Prng rng{0x5EED};
    std::vector<DiffCase> cases;

    {
        std::vector<int32_t> ref_px, cand_px;
        for (int i = 0; i < 37 * workloads::kPixelsPerRecord; ++i) {
            ref_px.push_back(static_cast<int32_t>(rng.below(255)));
            cand_px.push_back(static_cast<int32_t>(rng.below(255)));
        }
        cases.push_back({"blocksad", &workloads::blocksadKernel(),
                         {StreamData::fromInts(ref_px, 8),
                          StreamData::fromInts(cand_px, 8)}});
    }
    {
        std::vector<int32_t> px;
        for (int i = 0; i < 53 * workloads::kPixelsPerRecord; ++i)
            px.push_back(static_cast<int32_t>(rng.below(1024)) - 512);
        cases.push_back({"convolve", &workloads::convolveKernel(),
                         {StreamData::fromInts(px, 8)}});
    }
    {
        // COMM: update broadcasts partial sums across clusters.
        const int records = 41;
        std::vector<float> a, v;
        for (int i = 0; i < records * 2; ++i)
            a.push_back(rng.uniform(-2.0f, 2.0f));
        for (int i = 0; i < records * workloads::kUpdateRank; ++i)
            v.push_back(rng.uniform(-1.0f, 1.0f));
        cases.push_back(
            {"update", &workloads::updateKernel(),
             {StreamData::fromFloats(a, 2),
              StreamData::fromFloats(v, workloads::kUpdateRank)}});
    }
    {
        // COMM: the FFT stage shuffles butterflies between clusters.
        const int records = 32;
        std::vector<float> x, tw;
        for (int i = 0; i < records * 8; ++i)
            x.push_back(rng.uniform(-1.0f, 1.0f));
        for (int i = 0; i < records; ++i) {
            for (int q = 0; q < 3; ++q) {
                float ang = rng.uniform(0.0f, 6.283f);
                tw.push_back(std::cos(ang));
                tw.push_back(std::sin(ang));
            }
        }
        cases.push_back({"fft", &workloads::fftKernel(),
                         {StreamData::fromFloats(x, 8),
                          StreamData::fromFloats(tw, 6)}});
    }
    {
        std::vector<float> xy;
        for (int i = 0; i < 97 * 2; ++i)
            xy.push_back(rng.uniform(-20.0f, 20.0f));
        cases.push_back({"noise", &workloads::noiseKernel(),
                         {StreamData::fromFloats(xy, 2)}});
    }
    {
        // Conditional streams: irast emits a data-dependent number of
        // fragments per span.
        std::vector<int32_t> spans;
        for (int i = 0; i < 61; ++i) {
            spans.push_back(static_cast<int32_t>(rng.below(5)));
            spans.push_back(static_cast<int32_t>(rng.below(200)));
            spans.push_back(static_cast<int32_t>(rng.below(8)));
            spans.push_back(static_cast<int32_t>(rng.below(256)));
            spans.push_back(static_cast<int32_t>(rng.below(16)));
        }
        cases.push_back({"irast", &workloads::irastKernel(),
                         {StreamData::fromInts(spans, 5)}});
    }
    return cases;
}

/**
 * Build a load/call/store program around one kernel, seed the
 * functional context with the inputs, run the simulator, and compare
 * the context's output streams against a direct interpreter run.
 */
void
runDifferential(const DiffCase &dc, int clusters)
{
    SCOPED_TRACE(dc.name + " @ C=" + std::to_string(clusters));
    const kernel::Kernel &k = *dc.k;
    interp::ExecResult want = interp::runKernel(k, clusters, dc.inputs);

    stream::StreamProgram prog("diff_" + dc.name);
    sim::FunctionalContext ctx;
    std::vector<int> args, outs;
    size_t in_idx = 0, out_idx = 0;
    for (const kernel::StreamPort &port : k.streams) {
        if (port.dir == kernel::PortDir::In) {
            const StreamData &data = dc.inputs[in_idx++];
            int id = prog.declareStream(port.name, port.recordWords,
                                        data.records(), true);
            ctx.streams[id] = data;
            prog.load(id);
            args.push_back(id);
        } else {
            // Declared size only shapes timing; the functional data is
            // whatever the interpreter produces (conditional outputs
            // may differ from the declared record count).
            int64_t records =
                std::max<int64_t>(1, want.outputs[out_idx++].records());
            int id = prog.declareStream(port.name, port.recordWords,
                                        records);
            args.push_back(id);
            outs.push_back(id);
        }
    }
    prog.callKernel(&k, args);
    for (int id : outs)
        prog.store(id);

    sim::SimConfig cfg;
    cfg.size = vlsi::MachineSize{clusters, 5};
    sim::StreamProcessor proc(cfg);
    sim::RunOptions opts;
    opts.functional = &ctx;
    sim::SimResult r = proc.run(prog, opts);
    EXPECT_GT(r.cycles, 0);
    EXPECT_EQ(r.counters.kernelCalls, 1);

    ASSERT_EQ(outs.size(), want.outputs.size());
    for (size_t o = 0; o < outs.size(); ++o) {
        ASSERT_TRUE(ctx.has(outs[o])) << "output " << o << " missing";
        const StreamData &got = ctx.get(outs[o]);
        EXPECT_EQ(got.recordWords, want.outputs[o].recordWords);
        EXPECT_EQ(got.words, want.outputs[o].words)
            << "output " << o << " differs";
    }
}

class DifferentialAtC : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialAtC, AllTable4KernelsMatchInterpreter)
{
    for (const DiffCase &dc : buildCases())
        runDifferential(dc, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Clusters, DifferentialAtC,
                         ::testing::Values(3, 8));

} // namespace
} // namespace sps
