/**
 * @file
 * Golden energy-regression test: the six Table-4 applications at the
 * C=8, N=3 machine must reproduce the energy breakdown and bottleneck
 * waterfall recorded in tests/data/golden_energy_c8n3.csv. Cycle
 * attributions are exact; energy values (doubles) carry a small
 * relative tolerance.
 *
 * Regenerate after an intentional model change:
 *   SPS_UPDATE_GOLDEN=1 ./golden_energy_test
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/design.h"
#include "core/eval_engine.h"
#include "trace/counters_csv.h"
#include "workloads/suite.h"

#ifndef SPS_TEST_DATA_DIR
#error "SPS_TEST_DATA_DIR must point at tests/data"
#endif

namespace sps {
namespace {

constexpr vlsi::MachineSize kGoldenSize{8, 3};
constexpr double kRateTolerance = 1e-6;

std::string
goldenPath()
{
    return std::string(SPS_TEST_DATA_DIR) + "/golden_energy_c8n3.csv";
}

struct AppRun
{
    std::string app;
    sim::SimResult result;
};

std::vector<AppRun>
runGoldenApps()
{
    auto apps = workloads::appSuite();
    core::EvalEngine eng(0);
    return eng.map(apps.size(), [&](size_t a) {
        core::StreamProcessorDesign d(kGoldenSize);
        sim::StreamProcessor proc = d.makeProcessor();
        stream::StreamProgram prog =
            apps[a].build(kGoldenSize, proc.srf());
        return AppRun{apps[a].name, proc.run(prog)};
    });
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::stringstream ss(line);
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    return cells;
}

void
writeGolden(const std::vector<AppRun> &runs)
{
    CsvWriter w;
    trace::beginEnergyCsv(w, {"app"});
    for (const AppRun &r : runs)
        trace::appendEnergyRow(w, {r.app}, r.result);
    ASSERT_TRUE(w.writeFile(goldenPath()))
        << "cannot write " << goldenPath();
    std::printf("regenerated %s (%zu apps)\n", goldenPath().c_str(),
                runs.size());
}

TEST(GoldenEnergyTest, Table4AppsMatchGoldenAtC8N3)
{
    std::vector<AppRun> runs = runGoldenApps();
    if (std::getenv("SPS_UPDATE_GOLDEN") != nullptr) {
        writeGolden(runs);
        return;
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing golden file " << goldenPath()
        << " -- regenerate with SPS_UPDATE_GOLDEN=1";

    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    std::vector<std::string> header = splitCsvLine(line);
    std::vector<std::string> names = trace::energyNames();
    ASSERT_EQ(header.size(), names.size() + 1)
        << "golden header is stale -- regenerate with "
           "SPS_UPDATE_GOLDEN=1";
    for (size_t i = 0; i < names.size(); ++i)
        ASSERT_EQ(header[i + 1], names[i]) << "column " << i + 1;

    std::map<std::string, std::vector<std::string>> golden;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells = splitCsvLine(line);
        ASSERT_EQ(cells.size(), names.size() + 1) << line;
        golden[cells[0]] =
            std::vector<std::string>(cells.begin() + 1, cells.end());
    }
    ASSERT_EQ(golden.size(), runs.size());

    for (const AppRun &run : runs) {
        auto it = golden.find(run.app);
        ASSERT_NE(it, golden.end()) << "no golden row for " << run.app;
        std::vector<trace::CounterValue> actual =
            trace::energyValues(run.result);
        std::string diff;
        for (size_t i = 0; i < actual.size(); ++i) {
            const std::string &want = it->second[i];
            bool ok;
            if (actual[i].exact) {
                ok = actual[i].toCell() == want;
            } else {
                double w = std::strtod(want.c_str(), nullptr);
                double a = actual[i].value;
                ok = std::abs(a - w) <=
                     kRateTolerance * std::max(1.0, std::abs(w));
            }
            if (!ok)
                diff += "  " + actual[i].name + ": golden=" + want +
                        " actual=" + actual[i].toCell() + "\n";
        }
        EXPECT_TRUE(diff.empty())
            << run.app << " energy report diverged from golden:\n"
            << diff
            << "(if the model changed intentionally, regenerate with "
               "SPS_UPDATE_GOLDEN=1)";
    }
}

} // namespace
} // namespace sps
