/**
 * @file
 * End-to-end assertions of the paper's headline claims (abstract and
 * Section 5), run against the full reproduction stack. Bands are
 * deliberately loose: the shapes, crossovers, and orderings are what
 * the reproduction must preserve (see EXPERIMENTS.md for the
 * measured-vs-paper table).
 */
#include <map>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/experiments.h"

namespace sps::core {
namespace {

class AppPerformanceFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        points_ = new std::vector<AppPoint>(
            appPerformance({8, 32, 128}, {5, 10}));
    }

    static void
    TearDownTestSuite()
    {
        delete points_;
        points_ = nullptr;
    }

    static double
    speedup(const std::string &app, int c, int n)
    {
        for (const auto &pt : *points_)
            if (pt.app == app && pt.size.clusters == c &&
                pt.size.alusPerCluster == n)
                return pt.speedup;
        ADD_FAILURE() << "missing point " << app;
        return 0.0;
    }

    static double
    gops(const std::string &app, int c, int n)
    {
        for (const auto &pt : *points_)
            if (pt.app == app && pt.size.clusters == c &&
                pt.size.alusPerCluster == n)
                return pt.gops;
        ADD_FAILURE() << "missing point " << app;
        return 0.0;
    }

    static std::vector<AppPoint> *points_;
};

std::vector<AppPoint> *AppPerformanceFixture::points_ = nullptr;

TEST_F(AppPerformanceFixture, EveryAppSpeedsUpWithClusters)
{
    for (const char *app :
         {"RENDER", "DEPTH", "CONV", "QRD", "FFT1K", "FFT4K"}) {
        EXPECT_GT(speedup(app, 32, 5), speedup(app, 8, 5) * 1.2)
            << app;
        EXPECT_GT(speedup(app, 128, 5), speedup(app, 32, 5) * 0.99)
            << app;
    }
}

TEST_F(AppPerformanceFixture, RenderScalesBestAmongMediaApps)
{
    // RENDER's stream lengths are limited only by scene size, so it
    // scales furthest (paper: 20.5x at C=128 N=10).
    double r = speedup("RENDER", 128, 10);
    EXPECT_GT(r, speedup("DEPTH", 128, 10));
    EXPECT_GT(r, speedup("CONV", 128, 10));
    EXPECT_GT(r, speedup("QRD", 128, 10));
    EXPECT_GT(r, 10.0);
}

TEST_F(AppPerformanceFixture, QrdScalesWorstDueToSerialBasis)
{
    // QRD's orthogonal-basis phase and short streams cap its scaling
    // (paper: 5.4x at C=128 N=10, the worst of the suite).
    double q = speedup("QRD", 128, 10);
    for (const char *app :
         {"RENDER", "DEPTH", "CONV", "FFT1K", "FFT4K"})
        EXPECT_LT(q, speedup(app, 128, 10) * 1.3) << app;
    EXPECT_LT(q, 8.0);
    EXPECT_GT(q, 2.5);
}

TEST_F(AppPerformanceFixture, ShortStreamsThrottleFft1kVsFft4k)
{
    // Section 5.3: at C=128 N=10 the raw-performance difference
    // between FFT4K and FFT1K "is due purely to stream length"
    // (211 vs 103 GFLOPS, about 2x).
    double g1 = gops("FFT1K", 128, 10);
    double g4 = gops("FFT4K", 128, 10);
    EXPECT_GT(g4, 1.5 * g1);
    EXPECT_LT(g4, 4.0 * g1);
    EXPECT_GT(speedup("FFT4K", 128, 10), speedup("FFT1K", 128, 10));
}

TEST_F(AppPerformanceFixture, QrdStallsBeyond32Clusters)
{
    // "QRD and FFT1K scale poorly for C > 32".
    double gain = speedup("QRD", 128, 5) / speedup("QRD", 32, 5);
    EXPECT_LT(gain, 2.5); // nowhere near the 4x cluster ratio
}

TEST_F(AppPerformanceFixture, HarmonicMeanNearPaper)
{
    // Paper: 10.4x harmonic-mean app speedup at C=128 N=10 (and 8.0x
    // at C=128 N=5 for the 640-ALU machine).
    std::vector<double> sp;
    for (const char *app :
         {"RENDER", "DEPTH", "CONV", "QRD", "FFT1K", "FFT4K"})
        sp.push_back(speedup(app, 128, 10));
    double hm = harmonicMean(sp);
    EXPECT_GT(hm, 6.0);
    EXPECT_LT(hm, 15.0);

    std::vector<double> sp640;
    for (const char *app :
         {"RENDER", "DEPTH", "CONV", "QRD", "FFT1K", "FFT4K"})
        sp640.push_back(speedup(app, 128, 5));
    double hm640 = harmonicMean(sp640);
    EXPECT_GT(hm640, 4.0);
    EXPECT_LT(hm640, 12.0);
    EXPECT_LT(hm640, hm);
}

TEST_F(AppPerformanceFixture, SustainedGopsInPaperBallpark)
{
    // Baseline C=8 N=5 sustained rates: the paper reports 15-41 GOPS
    // across the suite; allow 2x bands around that range.
    for (const char *app : {"RENDER", "DEPTH", "CONV", "QRD"}) {
        double g = gops(app, 8, 5);
        EXPECT_GT(g, 7.0) << app;
        EXPECT_LT(g, 90.0) << app;
    }
    // C=128 N=10 sustains hundreds of GOPS on the data-parallel apps
    // (paper: 311-469).
    EXPECT_GT(gops("RENDER", 128, 10), 150.0);
    EXPECT_GT(gops("CONV", 128, 10), 150.0);
}

TEST(PaperClaimsTest, Headline640AluMachine)
{
    // Abstract: "A 640-ALU stream processor ... sustaining over 300
    // GOPS on kernels and providing 15.3x of kernel speedup ... with
    // a 2% degradation in area per ALU and a 7% degradation in energy
    // dissipated per ALU operation."
    Headline h = headlineNumbers(/*include_apps=*/false);
    EXPECT_GT(h.kernelGops640, 300.0);
    EXPECT_NEAR(h.kernelSpeedup640, 15.3, 3.0);
    EXPECT_NEAR(h.areaPerAluDegradation640, 0.02, 0.015);
    EXPECT_NEAR(h.energyPerOpDegradation640, 0.07, 0.02);
}

TEST(PaperClaimsTest, KernelSpeedup1280InBand)
{
    // "A C=128 N=10 processor achieves a speedup of 27.9x ... on the
    // harmonic mean of 6 kernels."
    Headline h = headlineNumbers(/*include_apps=*/false);
    EXPECT_GT(h.kernelSpeedup1280, 20.0);
    EXPECT_LT(h.kernelSpeedup1280, 36.0);
}

} // namespace
} // namespace sps::core
