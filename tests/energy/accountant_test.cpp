/**
 * @file
 * Unit tests for the activity-driven energy accountant: the per-run
 * components must sum exactly to the total, full-rate activity must
 * reproduce the analytical Table 3 breakdown, and the DRAM extension
 * must be monotone in accesses.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "energy/accountant.h"
#include "vlsi/cost_model.h"

namespace sps::energy {
namespace {

constexpr vlsi::MachineSize kSize{8, 5};

/** A synthetic run at exactly full issue rate for `cycles` cycles. */
sim::SimResult
fullIssueRun(const vlsi::CostModel &model, vlsi::MachineSize size,
             int64_t cycles)
{
    const vlsi::Params &p = model.params();
    vlsi::DerivedCounts d = model.derive(size.alusPerCluster);
    const int64_t c = size.clusters;
    const int64_t n = size.alusPerCluster;

    sim::SimResult r;
    r.cycles = cycles;
    r.ucBusy = cycles;
    r.aluOps = cycles * c * n;
    r.counters.aluIssueSlots = cycles * c * n;
    r.counters.clusterFuOps = cycles * c * d.nFu;
    r.counters.clusterSpOps = cycles * c * d.nSp;
    // gSb*N words per bank-cycle across C banks, split read/write.
    auto srf_words =
        static_cast<int64_t>(p.gSb * static_cast<double>(n * c) *
                             static_cast<double>(cycles));
    r.counters.srfReadWords = srf_words / 2;
    r.counters.srfWriteWords = srf_words - srf_words / 2;
    r.counters.interCommWords =
        static_cast<int64_t>(p.gComm * static_cast<double>(n * c) *
                             static_cast<double>(cycles));
    return r;
}

TEST(EnergyAccountantTest, FullIssueReproducesAnalyticalBreakdown)
{
    vlsi::CostModel model;
    EnergyAccountant acct(model, kSize,
                          vlsi::Technology::fortyFiveNm());
    const int64_t cycles = 1000;
    EnergyReport e = acct.account(fullIssueRun(model, kSize, cycles));
    ASSERT_TRUE(e.valid);

    vlsi::EnergyBreakdown a = model.energy(kSize);
    const double tol = 1e-9;
    EXPECT_NEAR(e.clusters.totalEw(), a.clusters * cycles,
                tol * a.clusters * cycles);
    EXPECT_NEAR(e.srf.totalEw(), a.srf * cycles,
                tol * a.srf * cycles);
    EXPECT_NEAR(e.microcontroller.totalEw(),
                a.microcontroller * cycles,
                tol * a.microcontroller * cycles);
    EXPECT_NEAR(e.interclusterComm.totalEw(),
                a.interclusterComm * cycles,
                tol * a.interclusterComm * cycles);
    // No slack capacity at full issue: the idle terms vanish.
    EXPECT_DOUBLE_EQ(e.clusters.idleEw, 0.0);
    EXPECT_DOUBLE_EQ(e.srf.idleEw, 0.0);
    EXPECT_DOUBLE_EQ(e.microcontroller.idleEw, 0.0);
    EXPECT_DOUBLE_EQ(e.interclusterComm.idleEw, 0.0);
    // No memory traffic: the DRAM extension is zero.
    EXPECT_DOUBLE_EQ(e.dram.totalEw(), 0.0);
    // The paper-scope total matches the analytical per-cycle total.
    EXPECT_NEAR(e.scaledTotalEw(), a.total() * cycles,
                tol * a.total() * cycles);
    EXPECT_NEAR(e.scaledEnergyPerAluOpEw(),
                model.energyPerAluOp(kSize),
                tol * model.energyPerAluOp(kSize));
}

TEST(EnergyAccountantTest, ComponentsSumExactlyToTotal)
{
    vlsi::CostModel model;
    EnergyAccountant acct(model, kSize,
                          vlsi::Technology::fortyFiveNm());
    sim::SimResult r = fullIssueRun(model, kSize, 733);
    // Perturb into a partially-idle, memory-active run.
    r.ucBusy = 400;
    r.aluOps /= 3;
    r.counters.srfReadWords /= 2;
    r.counters.interCommWords /= 5;
    r.counters.dramAccesses = 1000;
    r.counters.dramRowHits = 800;
    r.counters.dramRowMisses = 200;
    r.counters.dramChannelBusyCycles = {120, 90, 60, 30};
    r.counters.memStoreWords = 256;

    EnergyReport e = acct.account(r);
    ASSERT_TRUE(e.valid);
    double sum = e.srf.dynamicEw + e.srf.idleEw +
                 e.clusters.dynamicEw + e.clusters.idleEw +
                 e.microcontroller.dynamicEw +
                 e.microcontroller.idleEw +
                 e.interclusterComm.dynamicEw +
                 e.interclusterComm.idleEw + e.dram.dynamicEw +
                 e.dram.idleEw;
    EXPECT_DOUBLE_EQ(e.totalEw(), sum);
    EXPECT_DOUBLE_EQ(e.scaledTotalEw(),
                     e.totalEw() - e.dram.totalEw());
    // Below full issue every idle term is strictly positive.
    EXPECT_GT(e.clusters.idleEw, 0.0);
    EXPECT_GT(e.srf.idleEw, 0.0);
    EXPECT_GT(e.microcontroller.idleEw, 0.0);
    EXPECT_GT(e.interclusterComm.idleEw, 0.0);
    EXPECT_GT(e.dram.idleEw, 0.0);
    // Summary denominators came through.
    EXPECT_EQ(e.cycles, r.cycles);
    EXPECT_EQ(e.aluOps, r.aluOps);
    EXPECT_EQ(e.outputWords, 256);
    EXPECT_GT(e.energyPerOutputWordEw(), 0.0);
    EXPECT_GT(e.totalJoules(), 0.0);
    EXPECT_GT(e.averagePowerWatts(), 0.0);
}

TEST(EnergyAccountantTest, DramEnergyMonotoneInAccesses)
{
    vlsi::CostModel model;
    EnergyAccountant acct(model, kSize,
                          vlsi::Technology::fortyFiveNm());
    sim::SimResult r = fullIssueRun(model, kSize, 100);
    double prevDram = -1.0;
    double prevTotal = -1.0;
    for (int64_t hits : {0, 100, 500, 2500}) {
        r.counters.dramAccesses = hits + hits / 4;
        r.counters.dramRowHits = hits;
        r.counters.dramRowMisses = hits / 4;
        EnergyReport e = acct.account(r);
        EXPECT_GT(e.dram.dynamicEw, prevDram);
        EXPECT_GT(e.totalEw(), prevTotal);
        prevDram = e.dram.dynamicEw;
        prevTotal = e.totalEw();
        // A row miss must cost at least as much as a row hit.
        EXPECT_GE(acct.config().dram.rowMissEnergyEw,
                  acct.config().dram.rowHitEnergyEw);
    }
}

TEST(EnergyAccountantTest, EmptyRunYieldsZeroFiniteReport)
{
    vlsi::CostModel model;
    EnergyAccountant acct(model, kSize,
                          vlsi::Technology::fortyFiveNm());
    EnergyReport e = acct.account(sim::SimResult{});
    ASSERT_TRUE(e.valid);
    EXPECT_EQ(e.totalEw(), 0.0);
    EXPECT_EQ(e.energyPerAluOpEw(), 0.0);
    EXPECT_EQ(e.energyPerOutputWordEw(), 0.0);
    EXPECT_EQ(e.averagePowerWatts(), 0.0);
    EXPECT_TRUE(std::isfinite(e.totalJoules()));
}

TEST(EnergyAccountantTest, RatesMatchAnalyticalPerCycleIdentities)
{
    vlsi::CostModel model;
    const vlsi::Params &p = model.params();
    for (int c : {1, 2, 4, 8, 16}) {
        vlsi::MachineSize size{c, 5};
        EnergyAccountant acct(model, size,
                              vlsi::Technology::fortyFiveNm());
        const EnergyRates &rt = acct.rates();
        vlsi::DerivedCounts d = model.derive(size.alusPerCluster);
        const int n = size.alusPerCluster;
        // Cluster identity: full-rate ops reproduce clusterEnergy.
        EXPECT_NEAR(n * rt.aluOp + d.nFu * rt.fuOp + d.nSp * rt.spOp,
                    model.clusterEnergy(n),
                    1e-9 * model.clusterEnergy(n));
        // SRF identity: peak words/cycle at the per-word rate equals
        // the per-cycle energy of all C banks.
        EXPECT_NEAR(rt.srfPeakWordsPerCycle * rt.srfWord,
                    c * model.srfBankEnergy(n),
                    1e-9 * c * model.srfBankEnergy(n));
        // Intercluster identity.
        double analytic = p.kCommEnergy * p.gComm * n * c * p.b *
                          model.interCommEnergyPerBit(size);
        EXPECT_NEAR(rt.interPeakWordsPerCycle * rt.interCommWord,
                    analytic, 1e-9 * analytic);
    }
}

} // namespace
} // namespace sps::energy
