#include "stream/deps.h"

#include <gtest/gtest.h>

#include "kernel/builder.h"

namespace sps::stream {
namespace {

kernel::Kernel
copyKernel()
{
    kernel::KernelBuilder b("copy");
    int in = b.inStream("in");
    int out = b.outStream("out");
    b.sbWrite(out, b.sbRead(in));
    return b.build();
}

TEST(DepsTest, KernelWaitsForItsLoad)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 8, true);
    int out = p.declareStream("out", 1, 8);
    p.load(in);             // op 0
    p.callKernel(&k, {in, out}); // op 1
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.deps[1], (std::vector<int>{0}));
}

TEST(DepsTest, IndependentLoadsHaveNoDeps)
{
    StreamProgram p("app");
    int a = p.declareStream("a", 1, 8, true);
    int b = p.declareStream("b", 1, 8, true);
    p.load(a);
    p.load(b);
    ProgramDeps d = analyzeDeps(p);
    EXPECT_TRUE(d.deps[0].empty());
    EXPECT_TRUE(d.deps[1].empty());
}

TEST(DepsTest, StoreWaitsForProducer)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 8, true);
    int out = p.declareStream("out", 1, 8);
    p.load(in);
    p.callKernel(&k, {in, out});
    p.store(out);
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.deps[2], (std::vector<int>{1}));
}

TEST(DepsTest, WriteAfterReadOrdered)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 8, true);
    int out = p.declareStream("out", 1, 8);
    p.load(in);                  // 0: writes in
    p.callKernel(&k, {in, out}); // 1: reads in
    p.load(in);                  // 2: WAR on 1, WAW on 0
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.deps[2], (std::vector<int>{0, 1}));
}

TEST(DepsTest, ChainOfKernelsSerializedByStreams)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int a = p.declareStream("a", 1, 8, true);
    int b = p.declareStream("b", 1, 8);
    int c = p.declareStream("c", 1, 8);
    p.load(a);
    p.callKernel(&k, {a, b});
    p.callKernel(&k, {b, c});
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.deps[2], (std::vector<int>{1}));
}

TEST(DepsTest, LastUseComputedPerStream)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 8, true);
    int out = p.declareStream("out", 1, 8);
    p.load(in);                  // 0
    p.callKernel(&k, {in, out}); // 1: last use of in
    p.store(out);                // 2: last use of out
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.lastUseOf[1], (std::vector<int>{in}));
    EXPECT_EQ(d.lastUseOf[2], (std::vector<int>{out}));
}

TEST(DepsTest, ReadsAndWritesClassified)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 8, true);
    int out = p.declareStream("out", 1, 8);
    p.callKernel(&k, {in, out});
    ProgramDeps d = analyzeDeps(p);
    EXPECT_EQ(d.reads[0], (std::vector<int>{in}));
    EXPECT_EQ(d.writes[0], (std::vector<int>{out}));
}

} // namespace
} // namespace sps::stream
