#include "stream/program.h"

#include <gtest/gtest.h>

#include "kernel/builder.h"

namespace sps::stream {
namespace {

kernel::Kernel
copyKernel()
{
    kernel::KernelBuilder b("copy");
    int in = b.inStream("in");
    int out = b.outStream("out");
    b.sbWrite(out, b.sbRead(in));
    return b.build();
}

TEST(ProgramTest, DeclareAndLoadStore)
{
    StreamProgram p("app");
    int s = p.declareStream("data", 2, 100, true);
    p.load(s);
    p.store(s);
    ASSERT_EQ(p.ops().size(), 2u);
    EXPECT_EQ(p.ops()[0].kind, OpKind::Load);
    EXPECT_EQ(p.ops()[0].records, 100);
    EXPECT_EQ(p.ops()[1].kind, OpKind::Store);
    EXPECT_EQ(p.streams()[s].words(), 200);
}

TEST(ProgramTest, Packed16HalvesMemoryWords)
{
    StreamProgram p("app");
    int s = p.declareStream("px", 8, 100, true, true);
    EXPECT_EQ(p.streams()[s].words(), 800);
    EXPECT_EQ(p.streams()[s].memWords(), 400);
    int f = p.declareStream("fp", 8, 100, true, false);
    EXPECT_EQ(p.streams()[f].memWords(), 800);
}

TEST(ProgramTest, KernelCallInfersDriverLength)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 64, true);
    int out = p.declareStream("out", 1, 64);
    p.callKernel(&k, {in, out});
    ASSERT_EQ(p.ops().size(), 1u);
    EXPECT_EQ(p.ops()[0].records, 64);
    EXPECT_EQ(p.totalKernelRecords(), 64);
}

TEST(ProgramTest, DriverOverrideRespected)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 64, true);
    int out = p.declareStream("out", 1, 64);
    p.callKernel(&k, {in, out}, 16);
    EXPECT_EQ(p.ops()[0].records, 16);
}

TEST(ProgramTest, MemLayoutAssignsDisjointBases)
{
    StreamProgram p("app");
    int a = p.declareStream("a", 2, 100, true);
    int b = p.declareStream("b", 1, 50, true);
    EXPECT_EQ(p.streams()[a].memBaseWord, 0);
    EXPECT_EQ(p.streams()[a].memFootprintWords(), 200);
    EXPECT_EQ(p.streams()[b].memBaseWord, 200);
    p.load(a);
    p.load(b);
    EXPECT_EQ(p.ops()[0].memBase, 0);
    EXPECT_EQ(p.ops()[0].memRecordWords, 2);
    EXPECT_EQ(p.ops()[1].memBase, 200);
    EXPECT_EQ(p.ops()[1].memStride, 0);
}

TEST(ProgramTest, SetMemLayoutCarriedOntoOps)
{
    StreamProgram p("app");
    int a = p.declareStream("a", 1, 64, true);
    int b = p.declareStream("b", 1, 64, true);
    // A stride wider than the record grows the footprint, so the
    // stream is re-based past everything already laid out.
    p.setMemLayout(a, 8);
    EXPECT_EQ(p.streams()[a].memFootprintWords(), 63 * 8 + 1);
    EXPECT_GE(p.streams()[a].memBaseWord,
              p.streams()[b].memBaseWord + 64);
    p.load(a);
    EXPECT_EQ(p.ops()[0].memStride, 8);
    EXPECT_EQ(p.ops()[0].memBase, p.streams()[a].memBaseWord);
}

TEST(ProgramTest, Packed16MemRecordAndFootprint)
{
    StreamProgram p("app");
    int s = p.declareStream("px", 8, 100, true, true);
    EXPECT_EQ(p.streams()[s].memRecordWords(), 4);
    EXPECT_EQ(p.streams()[s].memFootprintWords(), 400);
    p.load(s);
    EXPECT_EQ(p.ops()[0].memRecordWords, 4);
}

TEST(ProgramDeathTest, RecordWidthMismatchPanics)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 2, 64, true);
    int out = p.declareStream("out", 1, 64);
    EXPECT_DEATH(p.callKernel(&k, {in, out}), "record width");
}

TEST(ProgramDeathTest, LoadOfSrfStreamPanics)
{
    StreamProgram p("app");
    int s = p.declareStream("tmp", 1, 10, false);
    EXPECT_DEATH(p.load(s), "non-memory");
}

TEST(ProgramDeathTest, WrongArgCountPanics)
{
    static kernel::Kernel k = copyKernel();
    StreamProgram p("app");
    int in = p.declareStream("in", 1, 64, true);
    EXPECT_DEATH(p.callKernel(&k, {in}), "takes");
}

} // namespace
} // namespace sps::stream
