#include "stream/stripmine.h"

#include <gtest/gtest.h>

namespace sps::stream {
namespace {

srf::SrfModel
srfFor(int c, int n)
{
    return srf::SrfModel::forMachine({c, n},
                                     vlsi::Params::imagine());
}

TEST(StripmineTest, SingleBatchWhenDatasetFits)
{
    srf::SrfModel srf = srfFor(128, 10); // 1.4M words
    BatchPlan plan = planBatches(10000, 20, srf, 128);
    EXPECT_TRUE(plan.singleBatch());
    EXPECT_EQ(plan.recordsPerBatch, 10000);
}

TEST(StripmineTest, SplitsWhenWorkingSetExceedsSrf)
{
    srf::SrfModel srf = srfFor(8, 5); // 44000 words
    BatchPlan plan = planBatches(24576, 40, srf, 8);
    EXPECT_GT(plan.batches, 1);
    // Each batch's working set respects the budget.
    EXPECT_LE(plan.recordsPerBatch * 40,
              static_cast<int64_t>(0.9 * srf.capacityWords));
}

TEST(StripmineTest, BatchesCoverAllRecords)
{
    srf::SrfModel srf = srfFor(8, 5);
    BatchPlan plan = planBatches(24576, 40, srf, 8);
    EXPECT_GE(plan.recordsPerBatch * plan.batches, 24576);
    EXPECT_LT(plan.recordsPerBatch * (plan.batches - 1), 24576);
}

TEST(StripmineTest, BatchAlignedToClusterCount)
{
    srf::SrfModel srf = srfFor(8, 5);
    for (int align : {8, 32, 128}) {
        BatchPlan plan = planBatches(100000, 24, srf, align);
        EXPECT_EQ(plan.recordsPerBatch % align, 0) << align;
    }
}

TEST(StripmineTest, TinySrfStillMakesProgress)
{
    srf::SrfModel srf = srfFor(1, 1); // 1100 words
    BatchPlan plan = planBatches(1000, 5000, srf, 8);
    EXPECT_GE(plan.recordsPerBatch, 8);
    EXPECT_GE(plan.batches, 1);
}

TEST(StripmineTest, EmptyDataset)
{
    srf::SrfModel srf = srfFor(8, 5);
    BatchPlan plan = planBatches(0, 10, srf, 8);
    EXPECT_EQ(plan.batches, 0);
}

TEST(StripmineTest, LargerMachinesUseFewerBatches)
{
    BatchPlan small = planBatches(100000, 40, srfFor(8, 5), 8);
    BatchPlan big = planBatches(100000, 40, srfFor(64, 5), 64);
    EXPECT_LT(big.batches, small.batches);
}

} // namespace
} // namespace sps::stream
