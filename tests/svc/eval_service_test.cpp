// Tests for the evaluation service: the memory tier (completed and
// in-flight dedup), the disk tier (cross-service warm hits,
// bit-identical to computed results), the corruption contract, and
// equivalence of the service's Figure-15 sweep with the direct
// core::appPerformance path.
#include "svc/eval_service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "store/codec.h"

namespace sps::svc {
namespace {

std::string
freshRoot(const char *name)
{
    std::string root = ::testing::TempDir() + "sps_svc_" + name;
    std::filesystem::remove_all(root);
    return root;
}

std::vector<uint8_t>
encodeRes(const sim::SimResult &r)
{
    store::ByteWriter w;
    store::encodeSimResult(r, &w);
    return w.bytes();
}

const EvalPoint kPoint{"DEPTH", vlsi::MachineSize{8, 5}, {}};

TEST(EvalServiceTest, RepeatRequestResolvesFromMemory)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    sim::SimResult a = service.eval(kPoint);
    sim::SimResult b = service.eval(kPoint);
    EXPECT_EQ(encodeRes(a), encodeRes(b));
    auto c = service.counters();
    EXPECT_EQ(c.computed, 1u);
    EXPECT_EQ(c.submitted, 1u);
    EXPECT_EQ(c.memHits + c.inflightDedup, 1u);
}

TEST(EvalServiceTest, IdenticalSubmissionsComputeOnce)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    const size_t n = 16;
    std::vector<std::shared_future<sim::SimResult>> futures;
    for (size_t i = 0; i < n; ++i)
        futures.push_back(service.submit(kPoint));
    std::vector<uint8_t> first = encodeRes(futures[0].get());
    for (auto &f : futures)
        EXPECT_EQ(encodeRes(f.get()), first);
    auto c = service.counters();
    EXPECT_EQ(c.submitted, 1u);
    EXPECT_EQ(c.computed, 1u);
    EXPECT_EQ(c.memHits + c.inflightDedup, n - 1);
}

TEST(EvalServiceTest, DistinctPointsAreDistinctRequests)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    auto a = service.submit(kPoint);
    auto b = service.submit(EvalPoint{"DEPTH", {16, 5}, {}});
    auto c = service.submit(EvalPoint{"CONV", {8, 5}, {}});
    a.wait();
    b.wait();
    c.wait();
    EXPECT_EQ(service.counters().submitted, 3u);
    EXPECT_EQ(service.counters().computed, 3u);
}

TEST(EvalServiceTest, WarmStoreSkipsSimulation)
{
    std::string root = freshRoot("warm");
    store::ResultStore cold_store(root);
    std::vector<uint8_t> cold_bytes;
    {
        core::EvalEngine engine(2);
        EvalService service(&engine, &cold_store);
        cold_bytes = encodeRes(service.eval(kPoint));
        EXPECT_EQ(service.counters().computed, 1u);
        EXPECT_EQ(service.counters().diskHits, 0u);
    }

    // A second service (standing in for a second process) with the
    // same root answers from disk, bit-identically.
    store::ResultStore warm_store(root);
    core::EvalEngine engine(2);
    EvalService service(&engine, &warm_store);
    sim::SimResult res = service.eval(kPoint);
    EXPECT_EQ(encodeRes(res), cold_bytes);
    EXPECT_EQ(service.counters().computed, 0u);
    EXPECT_EQ(service.counters().diskHits, 1u);
    EXPECT_EQ(warm_store.counters().hits, 1u);
}

TEST(EvalServiceTest, CorruptEntryIsRecomputedNeverServed)
{
    std::string root = freshRoot("corrupt");
    {
        store::ResultStore store(root);
        core::EvalEngine engine(2);
        EvalService service(&engine, &store);
        service.eval(kPoint);
        ASSERT_EQ(service.counters().computed, 1u);
    }

    // Damage every persisted sim entry (truncate to half).
    int damaged = 0;
    for (auto &e : std::filesystem::directory_iterator(
             std::filesystem::path(root) / "sim")) {
        auto size = std::filesystem::file_size(e.path());
        std::filesystem::resize_file(e.path(), size / 2);
        ++damaged;
    }
    ASSERT_GT(damaged, 0);

    store::ResultStore store(root);
    core::EvalEngine engine(2);
    EvalService service(&engine, &store);
    sim::SimResult res = service.eval(kPoint);
    EXPECT_GT(res.cycles, 0);
    EXPECT_EQ(service.counters().diskHits, 0u);
    EXPECT_EQ(service.counters().computed, 1u);
    EXPECT_GT(store.counters().corrupt, 0u);
    EXPECT_EQ(store.counters().hits, 0u);

    // The recompute healed the entry: a third reader hits disk.
    store::ResultStore healed(root);
    core::EvalEngine engine2(2);
    EvalService service2(&engine2, &healed);
    service2.eval(kPoint);
    EXPECT_EQ(service2.counters().diskHits, 1u);
}

TEST(EvalServiceTest, ClearMemoryKeepsFuturesAndRecomputes)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    auto f = service.submit(kPoint);
    sim::SimResult before = f.get();
    service.clearMemory();
    // The handed-out future stays valid after the tier is dropped.
    EXPECT_EQ(encodeRes(f.get()), encodeRes(before));
    sim::SimResult after = service.eval(kPoint);
    EXPECT_EQ(encodeRes(after), encodeRes(before));
    EXPECT_EQ(service.counters().computed, 2u);
}

TEST(EvalServiceTest, AppPerformanceMatchesDirectPath)
{
    std::vector<int> cs{8, 16};
    std::vector<int> ns{5};
    core::EvalEngine engine(2);
    auto direct = core::appPerformance(cs, ns, &engine);
    EvalService service(&engine);
    auto via_service = service.appPerformance(cs, ns);

    ASSERT_EQ(via_service.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(via_service[i].app, direct[i].app);
        EXPECT_EQ(via_service[i].size.clusters,
                  direct[i].size.clusters);
        EXPECT_EQ(via_service[i].cycles, direct[i].cycles);
        EXPECT_EQ(via_service[i].speedup, direct[i].speedup);
        EXPECT_EQ(via_service[i].gops, direct[i].gops);
        EXPECT_EQ(encodeRes(via_service[i].result),
                  encodeRes(direct[i].result));
    }
    // Per app: one baseline submit plus two grid submits, of which
    // the C=8 N=5 grid point is the baseline's twin -- so exactly two
    // unique sims per app and one dedup'd request per app.
    size_t apps = direct.size() / (cs.size() * ns.size());
    auto c = service.counters();
    EXPECT_EQ(c.computed, apps * 2);
    EXPECT_EQ(c.submitted, apps * 2);
    EXPECT_EQ(c.memHits + c.inflightDedup, apps);
}

TEST(EvalServiceTest, UnknownAppDeliversExceptionNotExit)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    auto f = service.submit(EvalPoint{"NOSUCHAPP", {8, 5}, {}});
    EXPECT_THROW(f.get(), std::runtime_error);
    // The service survives and keeps answering real requests.
    EXPECT_GT(service.eval(kPoint).cycles, 0);
}

TEST(EvalServiceTest, SimConfigHashSeparatesConfigurations)
{
    sim::SimConfig base;
    base.size = {8, 5};
    uint64_t h = simConfigHash(base);
    EXPECT_EQ(h, simConfigHash(base));

    sim::SimConfig size = base;
    size.size = {16, 5};
    EXPECT_NE(simConfigHash(size), h);

    sim::SimConfig mem = base;
    mem.memConfig.channels += 1;
    EXPECT_NE(simConfigHash(mem), h);

    sim::SimConfig host = base;
    host.hostIssueCycles += 1;
    EXPECT_NE(simConfigHash(host), h);

    sim::SimConfig en = base;
    en.energyConfig.idleFraction += 0.125;
    EXPECT_NE(simConfigHash(en), h);

    sim::SimConfig tech = base;
    tech.tech.fo4Ps *= 2.0;
    EXPECT_NE(simConfigHash(tech), h);
}

TEST(EvalServiceTest, EffectiveConfigPointSizeWins)
{
    sim::SimConfig cfg;
    cfg.size = {1, 1}; // stale size inside the override
    cfg.hostIssueCycles = 3;
    EvalPoint pt{"DEPTH", {16, 10}, cfg};
    sim::SimConfig eff = effectiveSimConfig(pt);
    EXPECT_EQ(eff.size.clusters, 16);
    EXPECT_EQ(eff.size.alusPerCluster, 10);
    EXPECT_EQ(eff.hostIssueCycles, 3);
    // No override: the defaults for the point's size.
    sim::SimConfig plain = effectiveSimConfig(kPoint);
    EXPECT_EQ(plain.size.clusters, 8);
    EXPECT_EQ(simConfigHash(plain), simConfigHash(sim::SimConfig{}));
}

TEST(EvalServiceTest, DefaultConfigOverrideDedupsAgainstPlainPoint)
{
    // An explicit override equal to the defaults is the *same*
    // request: the key hashes the effective config, not the presence
    // of the optional.
    core::EvalEngine engine(2);
    EvalService service(&engine);
    sim::SimResult a = service.eval(kPoint);
    EvalPoint same{"DEPTH", {8, 5}, sim::SimConfig{}};
    sim::SimResult b = service.eval(same);
    EXPECT_EQ(encodeRes(a), encodeRes(b));
    EXPECT_EQ(service.counters().computed, 1u);
    EXPECT_EQ(service.counters().submitted, 1u);
}

TEST(EvalServiceTest, ConfigOverrideComputesUnderItsOwnKey)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    sim::SimConfig slow;
    slow.memConfig.latencyCycles += 500;
    EvalPoint overridden{"DEPTH", {8, 5}, slow};
    sim::SimResult a = service.eval(kPoint);
    sim::SimResult b = service.eval(overridden);
    EXPECT_EQ(service.counters().computed, 2u);
    // The override really was simulated (not served from the plain
    // point's slot): the added memory latency shows up.
    EXPECT_NE(encodeRes(a), encodeRes(b));
}

/** Regression for the request-key/store-key divergence: the request
 *  key used to hash a default-constructed SimConfig while the worker
 *  simulated (and persisted) under the point's real config. With the
 *  key derived from effectiveSimConfig, a second service over the
 *  same store must answer an overridden point from disk. */
TEST(EvalServiceTest, OverriddenPointWarmHitsAcrossServices)
{
    std::string root = freshRoot("override_warm");
    sim::SimConfig cfg;
    cfg.scoreboardDepth = 4;
    EvalPoint pt{"DEPTH", {8, 5}, cfg};
    std::vector<uint8_t> cold_bytes;
    {
        store::ResultStore store(root);
        core::EvalEngine engine(2);
        EvalService service(&engine, &store);
        cold_bytes = encodeRes(service.eval(pt));
        EXPECT_EQ(service.counters().computed, 1u);
    }
    store::ResultStore store(root);
    core::EvalEngine engine(2);
    EvalService service(&engine, &store);
    EXPECT_EQ(encodeRes(service.eval(pt)), cold_bytes);
    EXPECT_EQ(service.counters().computed, 0u);
    EXPECT_EQ(service.counters().diskHits, 1u);
}

} // namespace
} // namespace sps::svc
