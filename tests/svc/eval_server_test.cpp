// End-to-end tests of the Unix-domain-socket front end: a client's
// result is bit-identical to an in-process evaluation, pipelined
// responses come back in request order, concurrent clients dedup
// through the shared service, a garbage stream kills only its own
// connection, and errors travel back as Error frames instead of
// wedging the conversation.
#ifndef _WIN32

#include "svc/eval_server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_engine.h"
#include "svc/eval_client.h"
#include "svc/protocol.h"

namespace sps::svc {
namespace {

/** Short socket paths: sun_path caps out around 100 bytes, so the
 *  gtest temp dir (which can nest deep) is not safe to use. */
std::string
freshSock(const char *name)
{
    std::string path = "/tmp/sps_evald_test_" +
                       std::to_string(::getpid()) + "_" + name +
                       ".sock";
    ::unlink(path.c_str());
    return path;
}

std::vector<uint8_t>
resultBytes(const sim::SimResult &res)
{
    store::ByteWriter w;
    store::encodeSimResult(res, &w);
    return w.bytes();
}

/** A raw client socket for protocol-level (mis)behavior tests. */
int
rawConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    return fd;
}

TEST(EvalServerTest, ClientResultBitIdenticalToInProcess)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("bitident");
    EvalServer server(&service, sock);

    EvalPoint pt{"DEPTH", {8, 5}, {}};
    EvalClient client(sock);
    sim::SimResult remote = client.eval(pt);
    sim::SimResult local = service.eval(pt);
    EXPECT_EQ(resultBytes(remote), resultBytes(local));

    server.stop();
    auto c = server.counters();
    EXPECT_EQ(c.connections, 1u);
    EXPECT_EQ(c.requests, 1u);
    EXPECT_EQ(c.protocolErrors, 0u);
}

TEST(EvalServerTest, PipelinedResponsesArriveInRequestOrder)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("pipeline");
    EvalServer server(&service, sock);

    // Distinct points pipelined on a raw socket; reading them back
    // must yield each point's own result, in order, even though the
    // evaluations finish in whatever order the pool picks.
    std::vector<EvalPoint> pts{{"DEPTH", {8, 5}, {}},
                               {"DEPTH", {16, 5}, {}},
                               {"DEPTH", {8, 2}, {}}};
    int fd = rawConnect(sock);
    for (const auto &pt : pts) {
        store::ByteWriter w;
        encodeEvalRequest(pt, &w);
        ASSERT_TRUE(writeFrame(fd, FrameKind::EvalRequest, w.bytes()));
    }
    for (const auto &pt : pts) {
        Frame frame;
        ASSERT_EQ(readFrame(fd, &frame), ReadStatus::Ok);
        ASSERT_EQ(frame.kind, FrameKind::EvalResult);
        EXPECT_EQ(frame.payload, resultBytes(service.eval(pt)));
    }
    ::close(fd);
    server.stop();
}

TEST(EvalServerTest, ConcurrentClientsShareOneSimulation)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("dedup");
    EvalServer server(&service, sock);

    EvalPoint pt{"DEPTH", {8, 5}, {}};
    std::vector<std::vector<uint8_t>> results(4);
    std::vector<std::thread> clients;
    for (size_t i = 0; i < results.size(); ++i)
        clients.emplace_back([&, i] {
            EvalClient client(sock);
            results[i] = resultBytes(client.eval(pt));
        });
    for (auto &t : clients)
        t.join();
    for (size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[0]);

    // Four requests for one point: exactly one simulation; the rest
    // resolved from the in-flight future or the completed result.
    auto vc = service.counters();
    EXPECT_EQ(vc.computed, 1u);
    EXPECT_EQ(vc.memHits + vc.inflightDedup, 3u);
    server.stop();
    EXPECT_EQ(server.counters().connections, 4u);
}

TEST(EvalServerTest, GarbageStreamKillsOnlyItsConnection)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("garbage");
    EvalServer server(&service, sock);

    int fd = rawConnect(sock);
    // At least one full header of garbage: the server cannot tell a
    // bad frame from a partial one until kFrameHeaderBytes arrive.
    std::vector<uint8_t> junk(2 * kFrameHeaderBytes, 'x');
    ASSERT_GT(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL), 0);
    // The server answers with a best-effort Error frame and hangs up.
    Frame frame;
    ReadStatus st = readFrame(fd, &frame);
    if (st == ReadStatus::Ok) {
        EXPECT_EQ(frame.kind, FrameKind::Error);
    }
    EXPECT_EQ(readFrame(fd, &frame), ReadStatus::Eof);
    ::close(fd);

    // The server survived and serves fresh connections.
    EvalClient client(sock);
    EXPECT_GT(client.eval({"DEPTH", {8, 5}, {}}).cycles, 0);
    server.stop();
    EXPECT_GE(server.counters().protocolErrors, 1u);
}

TEST(EvalServerTest, UnknownAppTravelsBackAsErrorFrame)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("unknownapp");
    EvalServer server(&service, sock);

    EvalClient client(sock);
    EXPECT_THROW(client.eval({"NO_SUCH_APP", {8, 5}, {}}),
                 std::runtime_error);
    // The connection survives an Error frame: the next request on the
    // same client works.
    EXPECT_GT(client.eval({"DEPTH", {8, 5}, {}}).cycles, 0);
    server.stop();
}

TEST(EvalServerTest, ConfigOverrideEvaluatedUnderItsOwnKey)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("override");
    EvalServer server(&service, sock);

    EvalClient client(sock);
    EvalPoint plain{"DEPTH", {8, 5}, {}};
    sim::SimConfig slow;
    slow.memConfig.latencyCycles += 200;
    EvalPoint overridden{"DEPTH", {8, 5}, slow};

    sim::SimResult a = client.eval(plain);
    sim::SimResult b = client.eval(overridden);
    // Distinct keys -> two simulations -> the override's extra memory
    // latency is visible in the result.
    EXPECT_EQ(service.counters().computed, 2u);
    EXPECT_NE(resultBytes(a), resultBytes(b));
    server.stop();
}

TEST(EvalServerTest, StatsReplyCarriesServiceRows)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("stats");
    EvalServer server(&service, sock);

    EvalClient client(sock);
    client.eval({"DEPTH", {8, 5}, {}});
    auto rows = client.stats();
    bool saw_sims = false;
    for (const auto &row : rows)
        if (row.size() == 3 && row[0] == "eval_service" &&
            row[1] == "sims") {
            saw_sims = true;
            EXPECT_EQ(row[2], "1");
        }
    EXPECT_TRUE(saw_sims);
    server.stop();
}

TEST(EvalServerTest, StopSeversLiveConnections)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("stop");
    auto *server = new EvalServer(&service, sock);
    int fd = rawConnect(sock);
    // Give the acceptor a beat to hand the fd to a connection thread.
    Frame frame;
    server->stop();
    EXPECT_NE(readFrame(fd, &frame), ReadStatus::Ok);
    ::close(fd);
    // The socket file is gone: a reconnect fails.
    EXPECT_THROW(EvalClient{sock}, std::runtime_error);
    delete server;
}

} // namespace
} // namespace sps::svc

#endif // !_WIN32
