// End-to-end telemetry tests: the conservation invariant
// (requests_total == mem + disk + compute + error, per-tier histogram
// counts matching tier counters), snapshot consistency under a
// concurrent submit storm (TSan-covered in CI), the MetricsRequest
// round trip through server and client, and the server-side span
// pipeline behind the slow-request log and the Chrome-trace export.
#ifndef _WIN32

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_engine.h"
#include "obs/metrics.h"
#include "svc/eval_client.h"
#include "svc/eval_server.h"
#include "svc/eval_service.h"
#include "trace/tracer.h"

namespace sps::svc {
namespace {

std::string
freshRoot(const char *name)
{
    std::string root = ::testing::TempDir() + "sps_telemetry_" + name;
    std::filesystem::remove_all(root);
    return root;
}

std::string
freshSock(const char *name)
{
    std::string path = "/tmp/sps_evald_test_" +
                       std::to_string(::getpid()) + "_" + name +
                       ".sock";
    ::unlink(path.c_str());
    return path;
}

const EvalPoint kPoint{"DEPTH", vlsi::MachineSize{8, 5}, {}};

uint64_t
tierCounter(const obs::MetricsSnapshot &snap, const char *tier)
{
    return static_cast<uint64_t>(
        snap.value("sps_requests_tier_total",
                   std::string("tier=\"") + tier + "\""));
}

uint64_t
tierHistCount(const obs::MetricsSnapshot &snap, const char *tier)
{
    const obs::MetricSample *m =
        snap.find("sps_request_duration_us",
                  std::string("tier=\"") + tier + "\"");
    return m ? m->count : 0;
}

TEST(ServiceTelemetryTest, ConservationAcrossMemComputeAndError)
{
    obs::MetricsRegistry reg;
    core::EvalEngine engine(2);
    EvalService service(&engine);
    service.attachMetrics(&reg);

    service.eval(kPoint);                            // compute
    service.eval(kPoint);                            // mem
    EXPECT_THROW(service.eval({"NO_SUCH_APP", {8, 5}, {}}),
                 std::runtime_error);                // error

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("sps_requests_total"), 3);
    EXPECT_EQ(tierCounter(snap, "compute"), 1u);
    EXPECT_EQ(tierCounter(snap, "mem"), 1u);
    EXPECT_EQ(tierCounter(snap, "error"), 1u);
    EXPECT_EQ(tierCounter(snap, "disk"), 0u);

    // Every request resolved to exactly one tier, and the per-tier
    // duration histogram saw exactly what its counter saw.
    uint64_t tier_sum = 0;
    for (const char *tier : {"mem", "disk", "compute", "error"}) {
        EXPECT_EQ(tierHistCount(snap, tier), tierCounter(snap, tier))
            << "tier " << tier;
        tier_sum += tierCounter(snap, tier);
    }
    EXPECT_EQ(tier_sum,
              static_cast<uint64_t>(snap.value("sps_requests_total")));

    // Queue wait is recorded per dispatched job: the compute and the
    // error request queued, the mem hit resolved inside submit().
    const obs::MetricSample *qw = snap.find("sps_queue_wait_us");
    ASSERT_NE(qw, nullptr);
    EXPECT_EQ(qw->count, 2u);
    const obs::MetricSample *sim = snap.find("sps_sim_duration_us");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->count, 1u);

    // The collector gauges mirror the service's own counters.
    ServiceCounters c = service.counters();
    EXPECT_EQ(snap.value("sps_service_submitted"),
              static_cast<int64_t>(c.submitted));
    EXPECT_EQ(snap.value("sps_service_mem_hits"),
              static_cast<int64_t>(c.memHits));
    EXPECT_EQ(snap.value("sps_service_sims"),
              static_cast<int64_t>(c.computed));
}

TEST(ServiceTelemetryTest, DiskTierCountsInConservation)
{
    std::string root = freshRoot("disk");
    {
        store::ResultStore cold(root);
        core::EvalEngine engine(2);
        EvalService service(&engine, &cold);
        service.eval(kPoint);
    }

    obs::MetricsRegistry reg;
    store::ResultStore warm(root);
    warm.attachMetrics(&reg);
    core::EvalEngine engine(2);
    EvalService service(&engine, &warm);
    service.attachMetrics(&reg);
    service.eval(kPoint);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("sps_requests_total"), 1);
    EXPECT_EQ(tierCounter(snap, "disk"), 1u);
    EXPECT_EQ(tierCounter(snap, "compute"), 0u);
    EXPECT_EQ(tierHistCount(snap, "disk"), 1u);
    // No simulation ran, and the store's own instrumentation saw the
    // hit.
    const obs::MetricSample *sim = snap.find("sps_sim_duration_us");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->count, 0u);
    const obs::MetricSample *get =
        snap.find("sps_store_get_duration_us", "result=\"hit\"");
    ASSERT_NE(get, nullptr);
    EXPECT_GE(get->count, 1u);
    EXPECT_GE(snap.value("sps_store_hits"), 1);
}

TEST(ServiceTelemetryTest, SnapshotsStayConsistentUnderSubmitStorm)
{
    // Writers hammer submit() from several threads (dedup hits,
    // distinct computes, and errors all mixed) while this thread
    // scrapes; every scrape must satisfy the monotone invariant
    // sum(tiers) <= requests_total, and the quiescent scrape must
    // satisfy exact conservation. CI runs this under TSan.
    obs::MetricsRegistry reg;
    core::EvalEngine engine(2);
    EvalService service(&engine);
    service.attachMetrics(&reg);

    constexpr int kThreads = 3;
    constexpr int kRounds = 40;
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&, t] {
            std::vector<std::shared_future<sim::SimResult>> futures;
            for (int i = 0; i < kRounds; ++i) {
                futures.push_back(service.submit(kPoint));
                if (i % 8 == t)
                    futures.push_back(service.submit(
                        {"NO_SUCH_APP", {8, 5}, {}}));
            }
            for (auto &f : futures) {
                try {
                    f.get();
                } catch (const std::exception &) {
                    // error-tier futures resolve by throwing
                }
            }
        });

    std::thread scraper([&] {
        while (!done.load()) {
            obs::MetricsSnapshot snap = reg.snapshot();
            uint64_t tier_sum = 0;
            for (const char *tier :
                 {"mem", "disk", "compute", "error"}) {
                tier_sum += tierCounter(snap, tier);
                const obs::MetricSample *h =
                    snap.find("sps_request_duration_us",
                              std::string("tier=\"") + tier + "\"");
                ASSERT_NE(h, nullptr);
                uint64_t buckets = 0;
                for (uint64_t b : h->buckets)
                    buckets += b;
                EXPECT_LE(buckets, h->count);
            }
            EXPECT_LE(
                tier_sum,
                static_cast<uint64_t>(snap.value("sps_requests_total")))
                << "a tier outcome appeared before its request";
            std::this_thread::yield();
        }
    });

    for (auto &t : writers)
        t.join();
    done.store(true);
    scraper.join();

    obs::MetricsSnapshot snap = reg.snapshot();
    uint64_t tier_sum = 0;
    for (const char *tier : {"mem", "disk", "compute", "error"}) {
        EXPECT_EQ(tierHistCount(snap, tier), tierCounter(snap, tier))
            << "tier " << tier;
        tier_sum += tierCounter(snap, tier);
    }
    EXPECT_EQ(tier_sum,
              static_cast<uint64_t>(snap.value("sps_requests_total")));
    EXPECT_EQ(tierCounter(snap, "compute"), 1u);
    EXPECT_GE(tierCounter(snap, "error"), 1u);
}

TEST(ServerTelemetryTest, MetricsRoundTripThroughTheSocket)
{
    obs::MetricsRegistry reg;
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("metrics");
    ServerTelemetry telemetry;
    telemetry.registry = &reg;
    EvalServer server(&service, sock, telemetry);

    EvalClient client(sock);
    client.eval(kPoint);
    client.eval(kPoint);
    EXPECT_THROW(client.eval({"NO_SUCH_APP", {8, 5}, {}}),
                 std::runtime_error);

    // The scraped snapshot is the same registry the server serves
    // from, shipped over the wire structurally intact.
    obs::MetricsSnapshot snap = client.metrics();
    EXPECT_FALSE(client.dead());
    EXPECT_EQ(snap.value("sps_requests_total"), 3);
    EXPECT_EQ(tierCounter(snap, "compute"), 1u);
    EXPECT_EQ(tierCounter(snap, "mem"), 1u);
    EXPECT_EQ(tierCounter(snap, "error"), 1u);
    const obs::MetricSample *e2e =
        snap.find("sps_server_request_duration_us");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->count, 3u);
    EXPECT_GE(snap.value("sps_server_connections"), 1);
    // The decoded snapshot renders exactly like a local one.
    std::string text = obs::renderPrometheus(snap);
    EXPECT_NE(text.find("sps_requests_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE sps_request_duration_us histogram"),
              std::string::npos);

    // The server retired one span per request, each with a resolved
    // tier and a delivery stage, exportable as a Chrome trace.
    EXPECT_EQ(server.spanRecorder().retiredCount(), 3u);
    for (const auto &span : server.spanRecorder().spans()) {
        EXPECT_NE(span->tier(), obs::Tier::Unknown);
        EXPECT_NE(span->label().find("/8x5"), std::string::npos)
            << span->label();
        bool delivered = false;
        for (const auto &stage : span->stages())
            if (std::string(stage.name) == "deliver")
                delivered = true;
        EXPECT_TRUE(delivered) << span->describe();
    }
    trace::Tracer tracer;
    server.spanRecorder().toTracer(&tracer);
    EXPECT_GT(tracer.size(), 0u);

    server.stop();
}

TEST(ServerTelemetryTest, LocalSnapshotMatchesTheWire)
{
    obs::MetricsRegistry reg;
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("localsnap");
    ServerTelemetry telemetry;
    telemetry.registry = &reg;
    EvalServer server(&service, sock, telemetry);

    EvalClient client(sock);
    client.eval(kPoint);
    obs::MetricsSnapshot wire = client.metrics();
    obs::MetricsSnapshot local = server.metricsSnapshot();
    // Quiescent, so the two scrapes agree on everything that counts.
    EXPECT_EQ(local.value("sps_requests_total"),
              wire.value("sps_requests_total"));
    EXPECT_EQ(tierCounter(local, "compute"),
              tierCounter(wire, "compute"));
    server.stop();
}

TEST(ServerTelemetryTest, MetricsWithoutTelemetryIsACleanError)
{
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("nometrics");
    EvalServer server(&service, sock); // no registry

    EvalClient client(sock);
    EXPECT_THROW(client.metrics(), std::runtime_error);
    // A well-formed-but-unanswerable request keeps the conversation
    // in lockstep: the connection survives.
    EXPECT_FALSE(client.dead());
    EXPECT_GT(client.eval(kPoint).cycles, 0);
    EXPECT_EQ(server.metricsSnapshot().metrics.size(), 0u);
    server.stop();
}

} // namespace
} // namespace sps::svc

#endif // !_WIN32
