// The client's failure model, pinned down: a daemon that dies
// mid-sweep surfaces as one clean exception (not a hang, not a stale
// result), an Error frame mid-pipeline kills the connection so a
// buffered stale response can never be served as a later call's
// answer, and only an Error answering a single unpipelined request
// leaves the connection alive.
#ifndef _WIN32

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_engine.h"
#include "svc/eval_client.h"
#include "svc/eval_server.h"
#include "svc/protocol.h"

namespace sps::svc {
namespace {

std::string
freshSock(const char *name)
{
    std::string path = "/tmp/sps_evald_test_" +
                       std::to_string(::getpid()) + "_" + name +
                       ".sock";
    ::unlink(path.c_str());
    return path;
}

std::vector<uint8_t>
resultBytes(const sim::SimResult &res)
{
    store::ByteWriter w;
    store::encodeSimResult(res, &w);
    return w.bytes();
}

std::vector<uint8_t>
errorBytes(const std::string &message)
{
    store::ByteWriter w;
    encodeErrorString(message, &w);
    return w.bytes();
}

/**
 * A scripted stand-in for sps_evald: binds the socket, accepts one
 * connection, plays back exactly the frames the test hands it, then
 * drains the peer until EOF. Lets the tests stage failures (truncated
 * response streams, mid-pipeline errors, stale leftovers) that a real
 * server would only produce under races.
 */
class FakeServer
{
  public:
    explicit FakeServer(const std::string &path)
    {
        listen_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(listen_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        EXPECT_EQ(::bind(listen_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr),
                  0);
        EXPECT_EQ(::listen(listen_, 1), 0);
    }

    ~FakeServer()
    {
        join();
        ::close(listen_);
    }

    /** Accept one client, send the scripted frames, then either hang
     *  up immediately or linger reading until the peer goes away. */
    void
    play(std::vector<std::pair<FrameKind, std::vector<uint8_t>>> script,
         bool linger)
    {
        thread_ = std::thread([this, script = std::move(script),
                               linger] {
            int fd = ::accept(listen_, nullptr, nullptr);
            if (fd < 0)
                return;
            for (const auto &[kind, payload] : script)
                if (!writeFrame(fd, kind, payload))
                    break;
            if (linger) {
                // Keep the scripted frames deliverable (no RST from
                // an early close) until the client hangs up.
                Frame frame;
                while (readFrame(fd, &frame) == ReadStatus::Ok) {
                }
            }
            ::close(fd);
        });
    }

    void
    join()
    {
        if (thread_.joinable())
            thread_.join();
    }

  private:
    int listen_ = -1;
    std::thread thread_;
};

TEST(ClientFailureTest, ServerStoppedMidSweepThrowsCleanly)
{
    // The kill-the-daemon-mid-sweep regression: stop() severs the
    // connection while a pipelined Figure-15 sweep is in flight. The
    // sweep must surface one clean exception -- never hang on the
    // sender thread or hand back a partial sweep.
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("stopmidsweep");
    EvalServer server(&service, sock);

    EvalClient client(sock);
    std::exception_ptr thrown;
    std::thread sweep([&] {
        try {
            client.appPerformance({8}, {5});
        } catch (...) {
            thrown = std::current_exception();
        }
    });
    // A full-suite sweep takes far longer than this on a cold cache,
    // so the stop lands while responses are still outstanding.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.stop();
    sweep.join();

    ASSERT_TRUE(thrown != nullptr);
    EXPECT_THROW(std::rethrow_exception(thrown), std::runtime_error);
    EXPECT_TRUE(client.dead());
    // Every later call fails fast instead of reading a dead socket.
    EXPECT_THROW(client.eval({"DEPTH", {8, 5}, {}}),
                 std::runtime_error);
    // The daemon is gone: a reconnect fails too.
    EXPECT_THROW(EvalClient{sock}, std::runtime_error);
}

TEST(ClientFailureTest, TruncatedResponseStreamThrowsAndGoesDead)
{
    // The server hangs up after one of many pipelined responses: the
    // next read must fail the sweep, not block forever.
    std::string sock = freshSock("truncated");
    FakeServer fake(sock);
    fake.play({{FrameKind::EvalResult, resultBytes(sim::SimResult{})}},
              /*linger=*/false);

    EvalClient client(sock);
    EXPECT_THROW(client.appPerformance({8}, {5}), std::runtime_error);
    EXPECT_TRUE(client.dead());
    EXPECT_THROW(client.eval({"DEPTH", {8, 5}, {}}),
                 std::runtime_error);
    fake.join();
}

TEST(ClientFailureTest, ErrorMidPipelineNeverServesTheStaleResponse)
{
    // Response script: one good result, then an Error aborting the
    // sweep, then a leftover result that is now *stale* -- it answers
    // a request the aborted sweep wrote. A later eval() must never
    // consume it as its own answer; the dead-connection latch is what
    // guarantees that.
    std::string sock = freshSock("stale");
    FakeServer fake(sock);
    fake.play({{FrameKind::EvalResult, resultBytes(sim::SimResult{})},
               {FrameKind::Error, errorBytes("boom")},
               {FrameKind::EvalResult, resultBytes(sim::SimResult{})}},
              /*linger=*/true);

    EvalClient client(sock);
    try {
        client.appPerformance({8}, {5});
        FAIL() << "aborted sweep returned";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_TRUE(client.dead());
    try {
        client.eval({"DEPTH", {8, 5}, {}});
        FAIL() << "eval on a dead connection returned a result";
    } catch (const std::runtime_error &e) {
        // Failed on the latch, not by decoding the stale frame.
        EXPECT_NE(std::string(e.what()).find("dead"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(client.stats(), std::runtime_error);
    EXPECT_THROW(client.metrics(), std::runtime_error);
    fake.join();
}

TEST(ClientFailureTest, UnpipelinedErrorFrameKeepsTheConnection)
{
    // The one survivable error: an Error frame answering a single
    // lockstep request consumed exactly one response, so the
    // conversation is still synchronized.
    core::EvalEngine engine(2);
    EvalService service(&engine);
    std::string sock = freshSock("lockstep");
    EvalServer server(&service, sock);

    EvalClient client(sock);
    EXPECT_THROW(client.eval({"NO_SUCH_APP", {8, 5}, {}}),
                 std::runtime_error);
    EXPECT_FALSE(client.dead());
    EXPECT_GT(client.eval({"DEPTH", {8, 5}, {}}).cycles, 0);
    EXPECT_FALSE(client.dead());
    server.stop();
}

TEST(ClientFailureTest, UndecodableResultPayloadGoesDead)
{
    // A well-framed response whose payload is not a SimResult is a
    // protocol violation, not a server error: the client cannot trust
    // anything after it.
    std::string sock = freshSock("badpayload");
    FakeServer fake(sock);
    fake.play({{FrameKind::EvalResult, {0xde, 0xad, 0xbe, 0xef}}},
              /*linger=*/true);

    EvalClient client(sock);
    EXPECT_THROW(client.eval({"DEPTH", {8, 5}, {}}),
                 std::runtime_error);
    EXPECT_TRUE(client.dead());
    fake.join();
}

TEST(ClientFailureTest, UnexpectedFrameKindGoesDead)
{
    // A StatsReply answering an EvalRequest means the conversation
    // lost sync; the client must refuse to guess.
    std::string sock = freshSock("badkind");
    FakeServer fake(sock);
    store::ByteWriter w;
    encodeStatsRows({{"a", "b", "c"}}, &w);
    fake.play({{FrameKind::StatsReply, w.bytes()}}, /*linger=*/true);

    EvalClient client(sock);
    EXPECT_THROW(client.eval({"DEPTH", {8, 5}, {}}),
                 std::runtime_error);
    EXPECT_TRUE(client.dead());
    fake.join();
}

} // namespace
} // namespace sps::svc

#endif // !_WIN32
