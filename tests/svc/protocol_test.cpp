// Property tests for the evaluation wire protocol, in the store-codec
// style: a frame survives a round trip bit-for-bit, and every prefix
// truncation, trailing byte, bit flip, version bump, or kind mismatch
// is rejected outright -- never decoded into a wrong frame. The
// EvalRequest payload codec is held to the same standard, including
// the config override surviving with an identical simConfigHash.
#include "svc/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace sps::svc {
namespace {

std::vector<uint8_t>
frameBytes(FrameKind kind, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> out;
    encodeFrame(kind, payload, &out);
    return out;
}

TEST(EvalProtocolTest, FrameRoundTripEveryKind)
{
    for (FrameKind kind :
         {FrameKind::EvalRequest, FrameKind::EvalResult,
          FrameKind::Error, FrameKind::StatsRequest,
          FrameKind::StatsReply, FrameKind::MetricsRequest,
          FrameKind::MetricsReply}) {
        std::vector<uint8_t> payload{1, 2, 3, 0xff, 0};
        std::vector<uint8_t> bytes = frameBytes(kind, payload);
        EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
        Frame back;
        ASSERT_TRUE(decodeFrame(bytes, &back));
        EXPECT_EQ(back.kind, kind);
        EXPECT_EQ(back.payload, payload);
    }
}

TEST(EvalProtocolTest, EmptyPayloadRoundTrips)
{
    std::vector<uint8_t> bytes = frameBytes(FrameKind::StatsRequest, {});
    Frame back;
    ASSERT_TRUE(decodeFrame(bytes, &back));
    EXPECT_EQ(back.kind, FrameKind::StatsRequest);
    EXPECT_TRUE(back.payload.empty());
}

TEST(EvalProtocolTest, EveryPrefixTruncationRejected)
{
    std::vector<uint8_t> bytes =
        frameBytes(FrameKind::EvalResult, {10, 20, 30, 40});
    for (size_t n = 0; n < bytes.size(); ++n) {
        Frame out;
        EXPECT_FALSE(decodeFrame(
            std::vector<uint8_t>(bytes.begin(), bytes.begin() + n),
            &out))
            << "frame truncated to " << n << " bytes decoded";
    }
}

TEST(EvalProtocolTest, TrailingBytesRejected)
{
    std::vector<uint8_t> bytes =
        frameBytes(FrameKind::Error, {1, 2, 3});
    bytes.push_back(0);
    Frame out;
    EXPECT_FALSE(decodeFrame(bytes, &out));
}

TEST(EvalProtocolTest, EveryBitFlipRejectedOrTheTruth)
{
    std::vector<uint8_t> payload{0x55, 0xaa, 0x00, 0x7f};
    std::vector<uint8_t> bytes =
        frameBytes(FrameKind::EvalResult, payload);
    for (size_t byte = 0; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> damaged = bytes;
            damaged[byte] ^= static_cast<uint8_t>(1u << bit);
            Frame out;
            // A flip anywhere must never yield a *different* frame:
            // either the decode fails (magic/version/kind/length/
            // checksum/payload flips) or the decoded frame is still
            // the original (flips in the reserved header word).
            if (decodeFrame(damaged, &out)) {
                EXPECT_EQ(out.kind, FrameKind::EvalResult)
                    << "byte " << byte << " bit " << bit;
                EXPECT_EQ(out.payload, payload)
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

TEST(EvalProtocolTest, VersionMismatchRejected)
{
    std::vector<uint8_t> bytes = frameBytes(FrameKind::Error, {1});
    // Header layout: magic u32, version u32 at offset 4.
    bytes[4] = static_cast<uint8_t>(kProtocolVersion + 1);
    Frame out;
    EXPECT_FALSE(decodeFrame(bytes, &out));
}

TEST(EvalProtocolTest, UnknownKindRejected)
{
    std::vector<uint8_t> bytes = frameBytes(FrameKind::Error, {1});
    // Kind u32 lives at offset 8; 0 and 99 are not assigned.
    for (uint8_t bad : {uint8_t{0}, uint8_t{99}}) {
        std::vector<uint8_t> damaged = bytes;
        damaged[8] = bad;
        Frame out;
        EXPECT_FALSE(decodeFrame(damaged, &out));
    }
}

TEST(EvalProtocolTest, LyingLengthFieldRejected)
{
    std::vector<uint8_t> bytes =
        frameBytes(FrameKind::EvalResult, {1, 2, 3, 4});
    // Payload length u64 lives at offset 16. Claiming one byte fewer
    // or more than the buffer holds must fail, not mis-slice.
    for (int delta : {-1, 1}) {
        std::vector<uint8_t> damaged = bytes;
        damaged[16] = static_cast<uint8_t>(4 + delta);
        Frame out;
        EXPECT_FALSE(decodeFrame(damaged, &out));
    }
}

TEST(EvalProtocolTest, OversizedAnnouncedLengthRejected)
{
    std::vector<uint8_t> bytes = frameBytes(FrameKind::Error, {});
    // Announce a payload beyond kMaxFramePayloadBytes (2^31 > 2^30):
    // offset 16 is the little-endian u64 length field.
    bytes[16 + 3] = 0x80;
    Frame out;
    EXPECT_FALSE(decodeFrame(bytes, &out));
}

TEST(EvalProtocolTest, EvalRequestRoundTripDefaults)
{
    EvalPoint pt;
    pt.app = "RENDER";
    pt.size = {32, 10};
    store::ByteWriter w;
    encodeEvalRequest(pt, &w);
    EvalPoint back;
    ASSERT_TRUE(decodeEvalRequest(w.bytes(), &back));
    EXPECT_EQ(back.app, "RENDER");
    EXPECT_EQ(back.size.clusters, 32);
    EXPECT_EQ(back.size.alusPerCluster, 10);
    EXPECT_FALSE(back.config.has_value());
}

TEST(EvalProtocolTest, EvalRequestRoundTripWithConfigOverride)
{
    EvalPoint pt;
    pt.app = "DEPTH";
    pt.size = {16, 5};
    sim::SimConfig cfg;
    cfg.params.h = 0.123;
    cfg.params.b = 64;
    cfg.memConfig.latencyCycles = 77;
    cfg.hostIssueCycles = 3;
    cfg.scoreboardDepth = 9;
    cfg.energyConfig.idleFraction = 0.25;
    pt.config = cfg;

    store::ByteWriter w;
    encodeEvalRequest(pt, &w);
    EvalPoint back;
    ASSERT_TRUE(decodeEvalRequest(w.bytes(), &back));
    ASSERT_TRUE(back.config.has_value());
    EXPECT_EQ(back.config->params.b, 64);
    EXPECT_EQ(back.config->memConfig.latencyCycles, 77);
    EXPECT_EQ(back.config->hostIssueCycles, 3);
    EXPECT_EQ(back.config->scoreboardDepth, 9);
    // The decoded override keys identically: doubles ride the wire as
    // raw bit patterns, so the hash that addresses the store matches.
    EXPECT_EQ(simConfigHash(*back.config), simConfigHash(cfg));
    EXPECT_EQ(simConfigHash(effectiveSimConfig(back)),
              simConfigHash(effectiveSimConfig(pt)));
}

TEST(EvalProtocolTest, EvalRequestEveryTruncationRejected)
{
    EvalPoint pt;
    pt.app = "FFT";
    pt.size = {8, 5};
    pt.config = sim::SimConfig{};
    store::ByteWriter w;
    encodeEvalRequest(pt, &w);
    const std::vector<uint8_t> &bytes = w.bytes();
    for (size_t n = 0; n < bytes.size(); ++n) {
        EvalPoint out;
        EXPECT_FALSE(decodeEvalRequest(
            std::vector<uint8_t>(bytes.begin(), bytes.begin() + n),
            &out))
            << "request truncated to " << n << " bytes decoded";
    }
    EvalPoint out;
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(decodeEvalRequest(padded, &out));
}

TEST(EvalProtocolTest, StatsRowsRoundTrip)
{
    std::vector<std::vector<std::string>> rows{
        {"result_store", "hits", "12"},
        {"eval_service", "sims", "0"},
        {},
        {"one"},
    };
    store::ByteWriter w;
    encodeStatsRows(rows, &w);
    std::vector<std::vector<std::string>> back;
    ASSERT_TRUE(decodeStatsRows(w.bytes(), &back));
    EXPECT_EQ(back, rows);
}

TEST(EvalProtocolTest, ErrorStringRoundTrip)
{
    store::ByteWriter w;
    encodeErrorString("unknown app: BOGUS", &w);
    std::string back;
    ASSERT_TRUE(decodeErrorString(w.bytes(), &back));
    EXPECT_EQ(back, "unknown app: BOGUS");
}

obs::MetricsSnapshot
sampleSnapshot()
{
    // One of each kind, with labels, help, and a populated histogram
    // -- the shape a live daemon scrape actually carries.
    obs::MetricsRegistry reg;
    reg.counter("sps_requests_total", "", "requests")->inc(42);
    reg.gauge("sps_queue_depth", "app=\"DEPTH\"", "depth")->set(-3);
    obs::Histogram *h =
        reg.histogram("sps_request_duration_us", "tier=\"compute\"");
    for (uint64_t v : {1ull, 7ull, 7ull, 900ull, 1000000ull})
        h->observe(v);
    return reg.snapshot();
}

TEST(EvalProtocolTest, MetricsSnapshotRoundTrip)
{
    obs::MetricsSnapshot snap = sampleSnapshot();
    store::ByteWriter w;
    encodeMetricsSnapshot(snap, &w);
    obs::MetricsSnapshot back;
    ASSERT_TRUE(decodeMetricsSnapshot(w.bytes(), &back));

    ASSERT_EQ(back.metrics.size(), snap.metrics.size());
    for (size_t i = 0; i < snap.metrics.size(); ++i) {
        const obs::MetricSample &a = snap.metrics[i];
        const obs::MetricSample &b = back.metrics[i];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.labels, a.labels);
        EXPECT_EQ(b.help, a.help);
        EXPECT_EQ(b.kind, a.kind);
        EXPECT_EQ(b.value, a.value);
        EXPECT_EQ(b.buckets, a.buckets);
        EXPECT_EQ(b.count, a.count);
        EXPECT_EQ(b.sum, a.sum);
    }
    // The decoded snapshot renders identically to the original, so a
    // remote scrape and a --metrics-out dump of the same instant would
    // be byte-equal.
    EXPECT_EQ(obs::renderPrometheus(back), obs::renderPrometheus(snap));
    EXPECT_EQ(obs::renderJson(back), obs::renderJson(snap));
}

TEST(EvalProtocolTest, EmptyMetricsSnapshotRoundTrips)
{
    store::ByteWriter w;
    encodeMetricsSnapshot(obs::MetricsSnapshot{}, &w);
    obs::MetricsSnapshot back;
    back.metrics.emplace_back(); // must be cleared by the decoder
    ASSERT_TRUE(decodeMetricsSnapshot(w.bytes(), &back));
    EXPECT_TRUE(back.metrics.empty());
}

TEST(EvalProtocolTest, MetricsSnapshotEveryTruncationRejected)
{
    store::ByteWriter w;
    encodeMetricsSnapshot(sampleSnapshot(), &w);
    const std::vector<uint8_t> &bytes = w.bytes();
    for (size_t n = 0; n < bytes.size(); ++n) {
        obs::MetricsSnapshot out;
        EXPECT_FALSE(decodeMetricsSnapshot(
            std::vector<uint8_t>(bytes.begin(), bytes.begin() + n),
            &out))
            << "snapshot truncated to " << n << " bytes decoded";
    }
    obs::MetricsSnapshot out;
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(decodeMetricsSnapshot(padded, &out));
}

TEST(EvalProtocolTest, MetricsSnapshotUnknownKindRejected)
{
    obs::MetricsRegistry reg;
    reg.counter("sps_a");
    store::ByteWriter w;
    encodeMetricsSnapshot(reg.snapshot(), &w);
    std::vector<uint8_t> bytes = w.bytes();
    // Layout: u64 metric count, then str name (u64 len + bytes), str
    // labels, str help, u32 kind. For a single label-less, help-less
    // counter named "sps_a" the kind field sits at a fixed offset.
    size_t kind_at = 8 + (8 + 5) + 8 + 8;
    ASSERT_LT(kind_at + 4, bytes.size());
    ASSERT_EQ(bytes[kind_at],
              static_cast<uint8_t>(obs::MetricKind::Counter));
    bytes[kind_at] = 99;
    obs::MetricsSnapshot out;
    EXPECT_FALSE(decodeMetricsSnapshot(bytes, &out));
}

#ifndef _WIN32

TEST(EvalProtocolTest, SocketRoundTripAndCleanEof)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::vector<uint8_t> payload{9, 8, 7};
    ASSERT_TRUE(writeFrame(fds[0], FrameKind::EvalResult, payload));
    Frame back;
    EXPECT_EQ(readFrame(fds[1], &back), ReadStatus::Ok);
    EXPECT_EQ(back.kind, FrameKind::EvalResult);
    EXPECT_EQ(back.payload, payload);
    ::close(fds[0]);
    // Peer closed at a frame boundary: clean EOF, not an error.
    EXPECT_EQ(readFrame(fds[1], &back), ReadStatus::Eof);
    ::close(fds[1]);
}

TEST(EvalProtocolTest, SocketGarbageIsMalformed)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fds[0], junk, sizeof junk, 0), 0);
    ::close(fds[0]);
    Frame out;
    EXPECT_EQ(readFrame(fds[1], &out), ReadStatus::Malformed);
    ::close(fds[1]);
}

TEST(EvalProtocolTest, SocketMidFrameEofIsMalformed)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::vector<uint8_t> bytes =
        frameBytes(FrameKind::EvalResult, {1, 2, 3, 4, 5});
    // Send all but the last byte, then hang up mid-frame.
    ASSERT_GT(::send(fds[0], bytes.data(), bytes.size() - 1, 0), 0);
    ::close(fds[0]);
    Frame out;
    EXPECT_EQ(readFrame(fds[1], &out), ReadStatus::Malformed);
    ::close(fds[1]);
}

#endif // !_WIN32

} // namespace
} // namespace sps::svc
