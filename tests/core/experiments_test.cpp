#include "core/experiments.h"

#include <gtest/gtest.h>

namespace sps::core {
namespace {

TEST(ExperimentsTest, IntraSpeedupsNormalizedAtBaseline)
{
    KernelSpeedupData d = kernelIntraSpeedups({2, 5, 10}, 8);
    ASSERT_EQ(d.axis, (std::vector<int>{2, 5, 10}));
    // Six kernels plus the harmonic mean.
    ASSERT_EQ(d.series.size(), 7u);
    for (const auto &s : d.series)
        EXPECT_NEAR(s.values[1], 1.0, 1e-9) << s.name;
}

TEST(ExperimentsTest, IntraSpeedupsGrowFrom2To10)
{
    KernelSpeedupData d = kernelIntraSpeedups({2, 5, 10}, 8);
    const auto &hm = d.series.back();
    EXPECT_EQ(hm.name, "harmonic mean");
    EXPECT_LT(hm.values[0], 1.0);
    EXPECT_GT(hm.values[2], 1.4);
}

TEST(ExperimentsTest, InterSpeedupsNearLinear)
{
    // Figure 14: intercluster scaling achieves near-linear kernel
    // speedups to 128 clusters.
    KernelSpeedupData d = kernelInterSpeedups({8, 32, 128}, 5);
    const auto &hm = d.series.back();
    EXPECT_NEAR(hm.values[1], 4.0, 0.4);
    EXPECT_NEAR(hm.values[2], 16.0, 1.6);
}

TEST(ExperimentsTest, PerfPerAreaGridShape)
{
    PerfPerAreaData t = table5PerfPerArea({2, 5}, {8, 32});
    ASSERT_EQ(t.value.size(), 2u);
    ASSERT_EQ(t.value[0].size(), 2u);
    for (const auto &row : t.value)
        for (double v : row) {
            EXPECT_GT(v, 0.0);
            EXPECT_LT(v, 1.0); // overhead keeps it below the ideal 1.0
        }
}

TEST(ExperimentsTest, PerfPerAreaDegradesBeyondN5)
{
    // Table 5: configurations with N > 5 have lower performance per
    // unit area; intercluster scaling barely affects it.
    PerfPerAreaData t = table5PerfPerArea({2, 5, 10, 14}, {8, 128});
    EXPECT_GT(t.value[1][0], t.value[2][0]); // N=5 beats N=10 at C=8
    EXPECT_GT(t.value[2][0], t.value[3][0]); // N=10 beats N=14
    // C scaling is mild: within ~20% across 8 -> 128 at N=5.
    EXPECT_NEAR(t.value[1][1] / t.value[1][0], 1.0, 0.2);
}

TEST(ExperimentsTest, RunAppReturnsBaselineRelativeSpeedup)
{
    AppPoint pt = runApp("CONV", kBaseline);
    EXPECT_NEAR(pt.speedup, 1.0, 1e-9);
    EXPECT_GT(pt.gops, 1.0);
}

TEST(ExperimentsTest, HeadlineCostDegradationsMatchAbstract)
{
    Headline h = headlineNumbers(/*include_apps=*/false);
    EXPECT_NEAR(h.areaPerAluDegradation640, 0.02, 0.015);
    EXPECT_NEAR(h.energyPerOpDegradation640, 0.07, 0.02);
}

TEST(ExperimentsTest, HeadlineKernelSpeedupsScale)
{
    Headline h = headlineNumbers(/*include_apps=*/false);
    // Paper: 15.3x kernel speedup for the 640-ALU machine, 27.9x for
    // 1280 ALUs. Allow a generous band: the shape (near-linear in C,
    // sublinear in N) is what matters.
    EXPECT_GT(h.kernelSpeedup640, 10.0);
    EXPECT_LT(h.kernelSpeedup640, 18.0);
    EXPECT_GT(h.kernelSpeedup1280, h.kernelSpeedup640);
    EXPECT_GT(h.kernelGops640, 150.0);
}

} // namespace
} // namespace sps::core
