#include "core/eval_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/experiments.h"
#include "core/scaling_study.h"

namespace sps::core {
namespace {

// The determinism guarantee: a series produced with N threads is
// byte-identical to the 1-thread serial series. EvalEngine(4) forces
// real workers even on single-core hosts.

TEST(EvalEngineTest, MapPreservesIndexOrder)
{
    EvalEngine eng(4);
    auto out = eng.map(100, [](size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(EvalEngineTest, ExceptionsPropagateToCaller)
{
    EvalEngine eng(4);
    EXPECT_THROW(eng.forEach(64,
                             [](size_t i) {
                                 if (i == 17)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(EvalEngineTest, AllIndicesRunExactlyOnce)
{
    EvalEngine eng(4);
    std::vector<std::atomic<int>> counts(257);
    eng.forEach(counts.size(), [&](size_t i) { counts[i]++; });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(EvalEngineTest, ParallelKernelSpeedupsMatchSerial)
{
    EvalEngine serial(1), parallel(4);
    KernelSpeedupData a = kernelIntraSpeedups({2, 5, 10}, 8, &serial);
    KernelSpeedupData b = kernelIntraSpeedups({2, 5, 10}, 8, &parallel);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (size_t s = 0; s < a.series.size(); ++s) {
        EXPECT_EQ(a.series[s].name, b.series[s].name);
        ASSERT_EQ(a.series[s].values.size(), b.series[s].values.size());
        for (size_t i = 0; i < a.series[s].values.size(); ++i)
            // Bitwise equality, not EXPECT_NEAR: the engine must not
            // change what a point computes, only when it runs.
            EXPECT_EQ(a.series[s].values[i], b.series[s].values[i]);
    }
}

TEST(EvalEngineTest, ParallelTable5MatchesSerial)
{
    EvalEngine serial(1), parallel(4);
    PerfPerAreaData a = table5PerfPerArea({2, 5}, {8, 32}, &serial);
    PerfPerAreaData b = table5PerfPerArea({2, 5}, {8, 32}, &parallel);
    ASSERT_EQ(a.value.size(), b.value.size());
    for (size_t i = 0; i < a.value.size(); ++i) {
        ASSERT_EQ(a.value[i].size(), b.value[i].size());
        for (size_t j = 0; j < a.value[i].size(); ++j)
            EXPECT_EQ(a.value[i][j], b.value[i][j]);
    }
}

TEST(EvalEngineTest, ParallelAppGridMatchesSerial)
{
    EvalEngine serial(1), parallel(4);
    auto a = appPerformance({8, 16}, {2, 5}, &serial);
    auto b = appPerformance({8, 16}, {2, 5}, &parallel);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].app, b[i].app);
        EXPECT_EQ(a[i].size.clusters, b[i].size.clusters);
        EXPECT_EQ(a[i].size.alusPerCluster, b[i].size.alusPerCluster);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].speedup, b[i].speedup);
        EXPECT_EQ(a[i].gops, b[i].gops);
    }
}

TEST(EvalEngineTest, ParallelDesignSweepMatchesSerial)
{
    EvalEngine serial(1), parallel(4);
    auto grid = designGrid({8, 16, 32, 64, 128}, {1, 2, 5, 10, 14});
    auto a = evaluateDesigns(grid, vlsi::Params::imagine(),
                             vlsi::Technology::fortyFiveNm(), &serial);
    auto b = evaluateDesigns(grid, vlsi::Params::imagine(),
                             vlsi::Technology::fortyFiveNm(), &parallel);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].areaMm2, b[i].areaMm2);
        EXPECT_EQ(a[i].powerWatts, b[i].powerWatts);
        EXPECT_EQ(a[i].peakGops, b[i].peakGops);
        EXPECT_EQ(a[i].areaPerAlu, b[i].areaPerAlu);
        EXPECT_EQ(a[i].energyPerAluOp, b[i].energyPerAluOp);
    }
}

TEST(EvalEngineTest, SecondSweepOverSameGridRecompilesNothing)
{
    EvalEngine eng(4);
    eng.cache().clear();

    kernelInterSpeedups({8, 16, 32}, 5, &eng);
    auto cold = eng.cache().counters();
    EXPECT_GT(cold.misses, 0u) << "first sweep must compile kernels";

    kernelInterSpeedups({8, 16, 32}, 5, &eng);
    auto warm = eng.cache().counters();
    EXPECT_EQ(warm.misses, cold.misses)
        << "second sweep over the same grid recompiled a kernel";
    EXPECT_GT(warm.hits, cold.hits);
}

TEST(EvalEngineTest, CacheSharedAcrossEnginesAndThreadCounts)
{
    EvalEngine serial(1), parallel(4);
    serial.cache().clear();
    kernelIntraSpeedups({2, 5}, 8, &serial);
    auto after_serial = serial.cache().counters();
    // The parallel engine sweeps the same grid: pure hits.
    kernelIntraSpeedups({2, 5}, 8, &parallel);
    auto after_parallel = parallel.cache().counters();
    EXPECT_EQ(after_parallel.misses, after_serial.misses);
    EXPECT_GT(after_parallel.hits, after_serial.hits);
}

} // namespace
} // namespace sps::core
