#include "core/multiproc.h"

#include <gtest/gtest.h>

namespace sps::core {
namespace {

TEST(MultiprocTest, SingleProcessorIsTheIdentity)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 8, model);
    ASSERT_FALSE(pts.empty());
    EXPECT_EQ(pts[0].processors, 1);
    EXPECT_DOUBLE_EQ(pts[0].pipelineThroughput, 1.0);
    EXPECT_NEAR(pts[0].areaPerAlu,
                model.areaPerAlu({128, 5}), 1e-9);
}

TEST(MultiprocTest, CoversPowerOfTwoSplits)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 8, model);
    EXPECT_EQ(pts.size(), 8u); // M = 1..128
    for (size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(pts[i].processors, 1 << i);
}

TEST(MultiprocTest, ManySmallProcessorsPayMicrocodeReplication)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 8, model);
    // 128 single-cluster processors each carry a full microcode
    // store: clearly worse area per ALU than one big machine.
    EXPECT_GT(pts.back().areaPerAlu, 1.2 * pts.front().areaPerAlu);
}

TEST(MultiprocTest, CommLatencyShrinksWithSplit)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 8, model);
    EXPECT_LT(pts.back().commLatency, pts.front().commLatency);
}

TEST(MultiprocTest, ThroughputCapsAtInterProcEfficiency)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 8, model, 0.85);
    for (const auto &pt : pts) {
        EXPECT_LE(pt.pipelineThroughput, 1.0 + 1e-9);
        if (pt.processors > 1 && pt.processors <= 8) {
            EXPECT_NEAR(pt.pipelineThroughput, 0.85, 1e-9);
        }
    }
}

TEST(MultiprocTest, ExcessProcessorsIdle)
{
    vlsi::CostModel model;
    auto pts = multiprocStudy({128, 5}, 4, model);
    // With only 4 kernel stages, 16 processors leave 12 idle.
    for (const auto &pt : pts) {
        if (pt.processors == 16) {
            EXPECT_LT(pt.pipelineThroughput, 0.3);
        }
    }
}

} // namespace
} // namespace sps::core
