#include "core/design.h"

#include <gtest/gtest.h>

#include "workloads/suite.h"

namespace sps::core {
namespace {

TEST(DesignTest, CostsAccessibleThroughFacade)
{
    StreamProcessorDesign d({8, 5});
    EXPECT_GT(d.area().total(), 0.0);
    EXPECT_GT(d.energy().total(), 0.0);
    EXPECT_GT(d.areaPerAlu(), 0.0);
    EXPECT_GT(d.energyPerAluOp(), 0.0);
    EXPECT_GT(d.delay().interFo4, d.delay().intraFo4);
}

TEST(DesignTest, PeakGopsIsAlusTimesClock)
{
    StreamProcessorDesign d({128, 10});
    EXPECT_NEAR(d.peakGops(), 1280.0 * d.tech().clockGHz(), 1e-6);
}

TEST(DesignTest, AbsoluteAreaReasonableAt45nm)
{
    // A 40-ALU stream processor in 45nm should be tens of mm^2 at
    // most (Imagine was ~260 mm^2 in 0.18um for a similar machine).
    StreamProcessorDesign d({8, 5});
    EXPECT_GT(d.areaMm2(), 1.0);
    EXPECT_LT(d.areaMm2(), 100.0);
}

TEST(DesignTest, PowerUnder10WattsFor1280Alus)
{
    // Section 6's headline: 1280 ALUs in 45nm dissipate < 10 W.
    StreamProcessorDesign d({128, 10});
    EXPECT_LT(d.powerWatts(), 10.0);
    EXPECT_GT(d.powerWatts(), 0.5);
}

TEST(DesignTest, PeakOverTeraopFor1280Alus)
{
    // "stream processors with 1280 ALUs will be able to provide a
    // peak performance of over 1 TFLOPs" (with subword ops a 16-bit
    // kernel doubles this).
    StreamProcessorDesign d({128, 10});
    EXPECT_GE(d.peakGops() * 2.0, 1000.0);
}

TEST(DesignTest, KernelThroughputScalesWithClusters)
{
    StreamProcessorDesign d8({8, 5});
    StreamProcessorDesign d64({64, 5});
    double t8 = d8.kernelOpsPerCycle(workloads::noiseKernel());
    double t64 = d64.kernelOpsPerCycle(workloads::noiseKernel());
    EXPECT_NEAR(t64 / t8, 8.0, 0.01);
}

TEST(DesignTest, SimulateRunsViaFacade)
{
    StreamProcessorDesign d({8, 5});
    sim::StreamProcessor proc = d.makeProcessor();
    stream::StreamProgram prog =
        workloads::buildConvApp(d.size(), proc.srf());
    sim::SimResult r = d.simulate(prog);
    EXPECT_GT(r.cycles, 0);
}

} // namespace
} // namespace sps::core
