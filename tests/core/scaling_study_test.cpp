#include "core/scaling_study.h"

#include <gtest/gtest.h>

namespace sps::core {
namespace {

TEST(ScalingStudyTest, GridCoversCrossProduct)
{
    auto grid = designGrid({8, 16}, {2, 5, 10});
    EXPECT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0].clusters, 8);
    EXPECT_EQ(grid[0].alusPerCluster, 2);
    EXPECT_EQ(grid.back().clusters, 16);
    EXPECT_EQ(grid.back().alusPerCluster, 10);
}

TEST(ScalingStudyTest, EvaluationFillsAllFields)
{
    auto pts = evaluateDesigns({{8, 5}, {128, 10}});
    ASSERT_EQ(pts.size(), 2u);
    for (const auto &pt : pts) {
        EXPECT_GT(pt.areaMm2, 0.0);
        EXPECT_GT(pt.powerWatts, 0.0);
        EXPECT_GT(pt.peakGops, 0.0);
        EXPECT_GE(pt.commLatencyCycles, 1);
    }
    EXPECT_GT(pts[1].peakGops, pts[0].peakGops);
    EXPECT_GT(pts[1].areaMm2, pts[0].areaMm2);
}

TEST(ScalingStudyTest, BestUnderBudgetPicksHighestPeak)
{
    auto pts = evaluateDesigns(
        designGrid({8, 32, 128}, {2, 5, 10}));
    bool found = false;
    DesignPoint unconstrained =
        bestUnderBudget(pts, 1e12, 1e12, found);
    ASSERT_TRUE(found);
    EXPECT_EQ(unconstrained.size.clusters, 128);
    EXPECT_EQ(unconstrained.size.alusPerCluster, 10);
}

TEST(ScalingStudyTest, BudgetsActuallyConstrain)
{
    auto pts = evaluateDesigns(designGrid({8, 128}, {5}));
    bool found = false;
    double small_area = pts[0].areaMm2 * 1.1;
    DesignPoint best = bestUnderBudget(pts, small_area, 1e12, found);
    ASSERT_TRUE(found);
    EXPECT_EQ(best.size.clusters, 8);
}

TEST(ScalingStudyTest, InfeasibleBudgetReportsNotFound)
{
    auto pts = evaluateDesigns({{8, 5}});
    bool found = true;
    bestUnderBudget(pts, 0.0001, 0.0001, found);
    EXPECT_FALSE(found);
}

} // namespace
} // namespace sps::core
