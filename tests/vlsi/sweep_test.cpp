#include "vlsi/sweep.h"

#include <gtest/gtest.h>

namespace sps::vlsi {
namespace {

TEST(SweepTest, IntraclusterSweepNormalizesAtReference)
{
    CostModel m;
    SweepSeries s = intraclusterSweep(m, 8, {2, 5, 10}, 5);
    auto area = s.normalizedAreaPerAlu();
    ASSERT_EQ(area.size(), 3u);
    EXPECT_DOUBLE_EQ(area[1], 1.0);
    auto energy = s.normalizedEnergyPerOp();
    EXPECT_DOUBLE_EQ(energy[1], 1.0);
}

TEST(SweepTest, InterclusterSweepNormalizesAtReference)
{
    CostModel m;
    SweepSeries s = interclusterSweep(m, 5, {8, 32, 128}, 8);
    auto area = s.normalizedAreaPerAlu();
    EXPECT_DOUBLE_EQ(area[0], 1.0);
}

TEST(SweepTest, SweepPointsCarryComponentDetail)
{
    CostModel m;
    SweepSeries s = intraclusterSweep(m, 8, {5}, 5);
    const SweepPoint &pt = s.points[0];
    EXPECT_EQ(pt.size.clusters, 8);
    EXPECT_EQ(pt.size.alusPerCluster, 5);
    EXPECT_GT(pt.area.total(), 0.0);
    EXPECT_GT(pt.energy.total(), 0.0);
    EXPECT_GT(pt.delay.interFo4, pt.delay.intraFo4);
}

TEST(SweepTest, CombinedSweepUsesExternalReference)
{
    CostModel m;
    SweepSeries s = combinedSweep(m, 2, {8, 16}, MachineSize{32, 5});
    auto norm = s.normalizedAreaPerAlu();
    // Last entry is the reference itself.
    EXPECT_DOUBLE_EQ(norm.back(), 1.0);
    // N=2 points are less area-efficient than the N=5 reference.
    EXPECT_GT(norm[0], 1.0);
}

TEST(SweepTest, DefaultRangesMatchPaperAxes)
{
    auto intra = defaultIntraRange();
    EXPECT_EQ(intra.front(), 1);
    EXPECT_EQ(intra.back(), 128);
    auto inter = defaultInterRange();
    EXPECT_EQ(inter.front(), 8);
    EXPECT_EQ(inter.back(), 256);
}

TEST(SweepDeathTest, MissingReferencePanics)
{
    CostModel m;
    EXPECT_DEATH(intraclusterSweep(m, 8, {2, 10}, 5), "reference");
}

} // namespace
} // namespace sps::vlsi
