#include "vlsi/params.h"

#include <gtest/gtest.h>

namespace sps::vlsi {
namespace {

TEST(ParamsTest, ImagineDefaultsMatchTable1)
{
    Params p = Params::imagine();
    EXPECT_DOUBLE_EQ(p.aSram, 16.1);
    EXPECT_DOUBLE_EQ(p.aSb, 2161.8);
    EXPECT_DOUBLE_EQ(p.wAlu, 876.9);
    EXPECT_DOUBLE_EQ(p.wLrf, 437.0);
    EXPECT_DOUBLE_EQ(p.wSp, 708.9);
    EXPECT_DOUBLE_EQ(p.h, 1400.0);
    EXPECT_DOUBLE_EQ(p.v0, 1400.0);
    EXPECT_DOUBLE_EQ(p.tCyc, 45.0);
    EXPECT_DOUBLE_EQ(p.tMux, 2.0);
    EXPECT_DOUBLE_EQ(p.eAlu, 2.0e6);
    EXPECT_DOUBLE_EQ(p.eSram, 8.7);
    EXPECT_DOUBLE_EQ(p.eSb, 1936.0);
    EXPECT_DOUBLE_EQ(p.eLrf, 8.9e5);
    EXPECT_DOUBLE_EQ(p.eSp, 1.6e6);
    EXPECT_DOUBLE_EQ(p.tMem, 55.0);
    EXPECT_EQ(p.b, 32);
    EXPECT_DOUBLE_EQ(p.gSrf, 0.5);
    EXPECT_DOUBLE_EQ(p.gSb, 0.2);
    EXPECT_DOUBLE_EQ(p.gComm, 0.2);
    EXPECT_DOUBLE_EQ(p.gSp, 0.2);
    EXPECT_DOUBLE_EQ(p.i0, 196.0);
    EXPECT_DOUBLE_EQ(p.iN, 40.0);
    EXPECT_DOUBLE_EQ(p.lC, 6.0);
    EXPECT_DOUBLE_EQ(p.lO, 6.0);
    EXPECT_DOUBLE_EQ(p.lN, 0.2);
    EXPECT_DOUBLE_EQ(p.rM, 20.0);
    EXPECT_DOUBLE_EQ(p.rUc, 2048.0);
}

TEST(ParamsTest, CalibrationWeightsAreNearUnity)
{
    // The reconstruction weights must remain mild corrections, not
    // arbitrary fudge factors (see DESIGN.md).
    Params p;
    EXPECT_GT(p.kCommArea, 0.5);
    EXPECT_LE(p.kCommArea, 1.5);
    EXPECT_GT(p.kCommEnergy, 0.5);
    EXPECT_LE(p.kCommEnergy, 1.5);
    EXPECT_GT(p.kIntraEnergy, 0.5);
    EXPECT_LE(p.kIntraEnergy, 1.5);
    EXPECT_GT(p.kDistEnergy, 0.5);
    EXPECT_LE(p.kDistEnergy, 1.5);
}

} // namespace
} // namespace sps::vlsi
