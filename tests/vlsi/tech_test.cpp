#include "vlsi/tech.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sps::vlsi {
namespace {

TEST(TechTest, FortyFiveNmClockIsOneGigahertz)
{
    // Section 5: "a 45 FO4 inverter delay clock period would have a
    // 1GHz processor clock rate" in 45nm.
    Technology t = Technology::fortyFiveNm();
    EXPECT_NEAR(t.clockGHz(), 1.0, 0.01);
}

TEST(TechTest, Imagine180ClockSlower)
{
    Technology t = Technology::imagine180();
    EXPECT_LT(t.clockGHz(), 0.5);
}

TEST(TechTest, AreaConversionScalesWithPitchSquared)
{
    Technology t180 = Technology::imagine180();
    Technology t45 = Technology::fortyFiveNm();
    double grids = 1e6;
    EXPECT_GT(t180.gridsToMm2(grids), t45.gridsToMm2(grids));
    double ratio = t180.gridsToMm2(grids) / t45.gridsToMm2(grids);
    double pitch_ratio = t180.trackPitchUm / t45.trackPitchUm;
    EXPECT_NEAR(ratio, pitch_ratio * pitch_ratio, 1e-9);
}

TEST(TechTest, BandwidthTargetsMatchSection5)
{
    Technology t = Technology::fortyFiveNm();
    EXPECT_DOUBLE_EQ(t.memBwGBs, 16.0);
    EXPECT_DOUBLE_EQ(t.hostBwGBs, 2.0);
}

TEST(TechTest, PowerPositiveAndFinite)
{
    Technology t = Technology::fortyFiveNm();
    double w = t.powerWatts(2e8);
    EXPECT_GT(w, 0.0);
    EXPECT_TRUE(std::isfinite(w));
}

TEST(TechTest, PaperPowerClaimUnder10WattsFor1280Alus)
{
    // Section 6: "by 2007, stream processors with 1280 ALUs will ...
    // dissipat[e] less than 10 Watts". Check the model's total energy
    // for C=128 N=10 lands in single-digit watts at 45nm.
    Technology t = Technology::fortyFiveNm();
    // Energy per cycle of the C=128 N=10 machine in Ew units comes
    // from the cost model; use a representative magnitude here and
    // validate the full claim in integration tests.
    EXPECT_LT(t.powerWatts(3e8), 10.0);
}

} // namespace
} // namespace sps::vlsi
