/**
 * @file
 * Pins the reconstructed cost model to the paper's quantitative
 * anchors (Section 4 and the abstract). If an equation or calibration
 * weight changes, these tests flag the drift from the published
 * results.
 */
#include "vlsi/cost_model.h"

#include <gtest/gtest.h>

namespace sps::vlsi {
namespace {

class AnchorTest : public ::testing::Test
{
  protected:
    double
    areaRatio(MachineSize a, MachineSize b)
    {
        return model.areaPerAlu(a) / model.areaPerAlu(b);
    }
    double
    energyRatio(MachineSize a, MachineSize b)
    {
        return model.energyPerAluOp(a) / model.energyPerAluOp(b);
    }
    CostModel model;
};

TEST_F(AnchorTest, NEquals5IsTheIntraclusterOptimum)
{
    // "the most area- and energy-efficient configuration" (Fig 6/7).
    double a5 = model.areaPerAlu(MachineSize{8, 5});
    double e5 = model.energyPerAluOp(MachineSize{8, 5});
    for (int n : {1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 32, 64, 128}) {
        EXPECT_GE(model.areaPerAlu(MachineSize{8, n}), a5)
            << "N=" << n;
        EXPECT_GE(model.energyPerAluOp(MachineSize{8, n}), e5)
            << "N=" << n;
    }
}

TEST_F(AnchorTest, AreaPerAluNearMinimumUpTo16AlusPerCluster)
{
    // "The area per ALU then stays within 16% of the minimum up to 16
    // ALUs per cluster" -- our reconstruction tracks this within a
    // few points (the ceil() on COMM/SP counts adds small steps).
    for (int n : {6, 8, 10, 12, 14, 16})
        EXPECT_LE(areaRatio(MachineSize{8, n}, MachineSize{8, 5}), 1.25)
            << "N=" << n;
}

TEST_F(AnchorTest, EnergyPerOpAbout1Point23xAtN16)
{
    // "by 16 ALUs per cluster the energy per ALU op has grown to
    // 1.23x of the minimum".
    double r = energyRatio(MachineSize{8, 16}, MachineSize{8, 5});
    EXPECT_NEAR(r, 1.23, 0.05);
}

TEST_F(AnchorTest, C32HasAbout3PercentBetterAreaThanC8)
{
    // "The C=32 processor actually has 3% improved area per ALU over
    // the C=8 processor" (microcode amortization).
    double r = areaRatio(MachineSize{32, 5}, MachineSize{8, 5});
    EXPECT_NEAR(r, 0.97, 0.015);
}

TEST_F(AnchorTest, C128CostsAbout2PercentAreaAnd7PercentEnergy)
{
    // Abstract: the 640-ALU C=128 N=5 machine pays "2% degradation in
    // area per ALU and a 7% degradation in energy".
    EXPECT_NEAR(areaRatio(MachineSize{128, 5}, MachineSize{8, 5}), 1.02,
                0.015);
    EXPECT_NEAR(energyRatio(MachineSize{128, 5}, MachineSize{8, 5}),
                1.07, 0.02);
}

TEST_F(AnchorTest, ScalingNFrom5To10CostsSingleDigitAreaPercents)
{
    // "the additional cost of scaling from N=5 to N=10 is only 5-11%
    // ... worse for area ... per ALU" across C in [8, 128].
    for (int c : {8, 16, 32, 64, 128}) {
        double r = areaRatio(MachineSize{c, 10}, MachineSize{c, 5});
        EXPECT_GT(r, 1.03) << "C=" << c;
        EXPECT_LT(r, 1.13) << "C=" << c;
    }
}

TEST_F(AnchorTest, ScalingNFrom5To10EnergyCostGrowsWithC)
{
    // Energy penalty of N=5 -> N=10 grows with C (paper: 14-21%; the
    // reconstruction lands slightly lower, 8-14%; see EXPERIMENTS.md).
    double prev = 0.0;
    for (int c : {8, 16, 32, 64, 128}) {
        double r = energyRatio(MachineSize{c, 10}, MachineSize{c, 5});
        EXPECT_GT(r, 1.05) << "C=" << c;
        EXPECT_LT(r, 1.22) << "C=" << c;
        EXPECT_GT(r, prev) << "C=" << c;
        prev = r;
    }
}

TEST_F(AnchorTest, EnergyOverheadGrowsFasterThanAreaWithC)
{
    // "energy overhead grows slightly faster than area" (Fig 10).
    double ra = areaRatio(MachineSize{128, 5}, MachineSize{8, 5});
    double re = energyRatio(MachineSize{128, 5}, MachineSize{8, 5});
    EXPECT_GT(re, ra);
}

TEST_F(AnchorTest, N5MostEfficientCombinedScalingChoice)
{
    // Figure 12: N=5 beats N=2 and N=16 on area per ALU at matched
    // cluster counts from C=8 to C=128.
    for (int c : {8, 16, 32, 64, 128}) {
        double a5 = model.areaPerAlu(MachineSize{c, 5});
        EXPECT_LT(a5, model.areaPerAlu(MachineSize{c, 2})) << c;
        EXPECT_LT(a5, model.areaPerAlu(MachineSize{c, 16})) << c;
    }
}

TEST_F(AnchorTest, InterclusterDelayPipelinesWithinAFewCycles)
{
    // Figure 11: the C=128 intercluster traversal stays within a few
    // pipelined cycles (the paper pipelines it fully).
    int cycles = model.interCommCycles(MachineSize{128, 5});
    EXPECT_GE(cycles, 2);
    EXPECT_LE(cycles, 6);
}

} // namespace
} // namespace sps::vlsi
