/**
 * @file
 * Tests for the Section 6 future-work extensions: sparse crossbars
 * and the full-custom (20 FO4) design point.
 */
#include <gtest/gtest.h>

#include "sched/machine.h"
#include "vlsi/cost_model.h"

namespace sps::vlsi {
namespace {

TEST(SparseSwitchTest, FullConnectivityIsTheDefaultModel)
{
    CostModel base;
    CostModel sparse1(Params::sparseSwitch(1.0));
    for (int n : {2, 5, 16, 64}) {
        EXPECT_DOUBLE_EQ(base.intraSwitchArea(n),
                         sparse1.intraSwitchArea(n));
        EXPECT_DOUBLE_EQ(base.intraCommEnergyPerBit(n),
                         sparse1.intraCommEnergyPerBit(n));
    }
}

TEST(SparseSwitchTest, SparserIsSmallerAndCheaper)
{
    CostModel full;
    CostModel half(Params::sparseSwitch(0.5));
    CostModel quarter(Params::sparseSwitch(0.25));
    for (int n : {5, 16, 64}) {
        EXPECT_LT(half.intraSwitchArea(n), full.intraSwitchArea(n));
        EXPECT_LT(quarter.intraSwitchArea(n),
                  half.intraSwitchArea(n));
        EXPECT_LT(half.intraCommEnergyPerBit(n),
                  full.intraCommEnergyPerBit(n));
        EXPECT_LE(half.intraDelayFo4(n), full.intraDelayFo4(n));
    }
    MachineSize big{128, 5};
    EXPECT_LT(half.interSwitchArea(big), full.interSwitchArea(big));
    EXPECT_LT(half.interCommEnergyPerBit(big),
              full.interCommEnergyPerBit(big));
}

TEST(SparseSwitchTest, SavingsGrowWithClusterSize)
{
    // The switch is a larger share of big clusters, so sparsity helps
    // more at N=64 than at N=5.
    CostModel full;
    CostModel quarter(Params::sparseSwitch(0.25));
    double save5 = 1.0 - quarter.areaPerAlu({8, 5}) /
                             full.areaPerAlu({8, 5});
    double save64 = 1.0 - quarter.areaPerAlu({8, 64}) /
                              full.areaPerAlu({8, 64});
    EXPECT_GT(save64, save5);
}

TEST(SparseSwitchTest, LowConnectivityAddsForwardingStage)
{
    CostModel half_model(Params::sparseSwitch(0.5));
    CostModel quarter_model(Params::sparseSwitch(0.25));
    sched::MachineModel half({8, 5}, half_model);
    sched::MachineModel quarter({8, 5}, quarter_model);
    EXPECT_EQ(quarter.intraExtraStages(), half.intraExtraStages() + 1);
}

TEST(CustomDesignTest, TwentyFo4ClockKeepsRelativeCosts)
{
    // Section 4.3: "similar results would be seen for relative area
    // per ALU [and] energy overhead per ALU operation" in a
    // full-custom 20 FO4 design (area/energy formulas don't involve
    // the clock).
    CostModel std45(Params::imagine());
    CostModel custom(Params::custom20Fo4());
    for (int c : {8, 128}) {
        for (int n : {2, 5, 16}) {
            MachineSize s{c, n};
            EXPECT_DOUBLE_EQ(std45.areaPerAlu(s),
                             custom.areaPerAlu(s));
            EXPECT_DOUBLE_EQ(std45.energyPerAluOp(s),
                             custom.energyPerAluOp(s));
        }
    }
}

TEST(CustomDesignTest, LatencyInCyclesGrowsAtFasterClock)
{
    // The same FO4 traversal spans more of the shorter cycle.
    CostModel std45(Params::imagine());
    CostModel custom(Params::custom20Fo4());
    EXPECT_GT(custom.intraPipeStages(10), std45.intraPipeStages(10));
    EXPECT_GT(custom.interCommCycles({128, 5}),
              std45.interCommCycles({128, 5}));
}

} // namespace
} // namespace sps::vlsi
