#include "vlsi/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sps::vlsi {
namespace {

class CostModelTest : public ::testing::Test
{
  protected:
    CostModel model;
};

TEST_F(CostModelTest, DerivedCountsAtImaginePoint)
{
    // N=5 (the paper's reference cluster): one COMM, one SP, seven
    // cluster streambuffers, thirteen total.
    DerivedCounts d = model.derive(5);
    EXPECT_EQ(d.nComm, 1);
    EXPECT_EQ(d.nSp, 1);
    EXPECT_EQ(d.nFu, 7);
    EXPECT_EQ(d.nClSb, 7);
    EXPECT_EQ(d.nSb, 13);
    EXPECT_EQ(d.pe, 7);
}

TEST_F(CostModelTest, DerivedCountsScaleWithN)
{
    DerivedCounts d = model.derive(10);
    EXPECT_EQ(d.nComm, 2);
    EXPECT_EQ(d.nSp, 2);
    EXPECT_EQ(d.nFu, 14);
    EXPECT_EQ(d.nClSb, 8);
}

TEST_F(CostModelTest, AtLeastOneCommAndSpEvenForTinyClusters)
{
    DerivedCounts d = model.derive(1);
    EXPECT_EQ(d.nComm, 1);
    EXPECT_EQ(d.nSp, 1);
}

TEST_F(CostModelTest, AreaBreakdownSumsToTotal)
{
    AreaBreakdown a = model.area(MachineSize{16, 8});
    EXPECT_GT(a.srf, 0.0);
    EXPECT_GT(a.microcontroller, 0.0);
    EXPECT_GT(a.clusters, 0.0);
    EXPECT_GT(a.interclusterSwitch, 0.0);
    EXPECT_DOUBLE_EQ(a.total(), a.srf + a.microcontroller + a.clusters +
                                    a.interclusterSwitch);
}

TEST_F(CostModelTest, EnergyBreakdownSumsToTotal)
{
    EnergyBreakdown e = model.energy(MachineSize{16, 8});
    EXPECT_GT(e.srf, 0.0);
    EXPECT_GT(e.microcontroller, 0.0);
    EXPECT_GT(e.clusters, 0.0);
    EXPECT_GT(e.interclusterComm, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.srf + e.microcontroller + e.clusters +
                                    e.interclusterComm);
}

TEST_F(CostModelTest, ClustersDominateAreaAtReferencePoint)
{
    // Arithmetic clusters are the largest area component of a C=8 N=5
    // machine (Figure 6's breakdown).
    AreaBreakdown a = model.area(MachineSize{8, 5});
    EXPECT_GT(a.clusters, a.srf);
    EXPECT_GT(a.clusters, a.microcontroller);
    EXPECT_GT(a.clusters, a.interclusterSwitch);
}

TEST_F(CostModelTest, TotalAreaMonotoneInC)
{
    double prev = 0.0;
    for (int c : {8, 16, 32, 64, 128, 256}) {
        double a = model.area(MachineSize{c, 5}).total();
        EXPECT_GT(a, prev) << "C=" << c;
        prev = a;
    }
}

TEST_F(CostModelTest, TotalAreaMonotoneInN)
{
    double prev = 0.0;
    for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
        double a = model.area(MachineSize{8, n}).total();
        EXPECT_GT(a, prev) << "N=" << n;
        prev = a;
    }
}

TEST_F(CostModelTest, TotalEnergyMonotoneInSize)
{
    EXPECT_LT(model.energy(MachineSize{8, 5}).total(),
              model.energy(MachineSize{16, 5}).total());
    EXPECT_LT(model.energy(MachineSize{8, 5}).total(),
              model.energy(MachineSize{8, 10}).total());
}

TEST_F(CostModelTest, IntraDelayGrowsWithN)
{
    double prev = 0.0;
    for (int n : {2, 5, 10, 16, 32, 64, 128}) {
        double t = model.intraDelayFo4(n);
        EXPECT_GT(t, prev) << "N=" << n;
        prev = t;
    }
}

TEST_F(CostModelTest, InterDelayGrowsWithC)
{
    double prev = 0.0;
    for (int c : {8, 16, 32, 64, 128, 256}) {
        double t = model.interDelayFo4(MachineSize{c, 5});
        EXPECT_GT(t, prev) << "C=" << c;
        prev = t;
    }
}

TEST_F(CostModelTest, InterDelayExceedsIntraDelay)
{
    for (int c : {8, 32, 128})
        for (int n : {2, 5, 14})
            EXPECT_GT(model.interDelayFo4(MachineSize{c, n}),
                      model.intraDelayFo4(n));
}

TEST_F(CostModelTest, IntraPipeStageBoundaryMatchesSection5)
{
    // Half a 45 FO4 cycle was budgeted for intracluster traversal; the
    // paper adds an extra pipeline stage at N=14 but not at N=10.
    EXPECT_EQ(model.intraPipeStages(5), 0);
    EXPECT_EQ(model.intraPipeStages(10), 0);
    EXPECT_EQ(model.intraPipeStages(14), 1);
    EXPECT_EQ(model.intraPipeStages(16), 1);
}

TEST_F(CostModelTest, CommCyclesGrowWithMachineSize)
{
    int small = model.interCommCycles(MachineSize{8, 5});
    int large = model.interCommCycles(MachineSize{128, 10});
    EXPECT_GE(small, 1);
    EXPECT_GT(large, small);
}

TEST_F(CostModelTest, SrfAreaLinearInN)
{
    // Stream storage grows linearly with N (Section 3.1.1); the SB
    // term is also linear, so bank area at 2N is at most 2x plus the
    // ceil effects of NSB.
    double a5 = model.srfBankArea(5);
    double a10 = model.srfBankArea(10);
    EXPECT_GT(a10, 1.8 * a5);
    EXPECT_LT(a10, 2.4 * a5);
}

TEST_F(CostModelTest, IntraSwitchSuperlinearInN)
{
    // The intracluster switch grows ~NFU^1.5, so 4x the ALUs must
    // cost much more than 4x the switch area.
    double a8 = model.intraSwitchArea(8);
    double a32 = model.intraSwitchArea(32);
    EXPECT_GT(a32, 5.5 * a8);
}

TEST_F(CostModelTest, AreaPerAluMatchesTotalOverAlus)
{
    MachineSize s{32, 10};
    EXPECT_DOUBLE_EQ(model.areaPerAlu(s),
                     model.area(s).total() / (32 * 10));
}

TEST_F(CostModelTest, EnergyPerOpMatchesTotalOverAlus)
{
    MachineSize s{32, 10};
    EXPECT_DOUBLE_EQ(model.energyPerAluOp(s),
                     model.energy(s).total() / (32 * 10));
}

TEST_F(CostModelTest, MicrocodeStorageAmortizedOverClusters)
{
    // The microcontroller's share of total area falls as C grows.
    auto share = [&](int c) {
        AreaBreakdown a = model.area(MachineSize{c, 5});
        return a.microcontroller / a.total();
    };
    EXPECT_GT(share(8), share(32));
    EXPECT_GT(share(32), share(128));
}

TEST_F(CostModelTest, InterSwitchShareGrowsWithC)
{
    auto share = [&](int c) {
        AreaBreakdown a = model.area(MachineSize{c, 5});
        return a.interclusterSwitch / a.total();
    };
    EXPECT_LT(share(8), share(64));
    EXPECT_LT(share(64), share(256));
}

/** Property sweep: totals stay positive and finite over the grid. */
class CostGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CostGridTest, FiniteAndPositive)
{
    auto [c, n] = GetParam();
    CostModel model;
    MachineSize s{c, n};
    EXPECT_GT(model.area(s).total(), 0.0);
    EXPECT_GT(model.energy(s).total(), 0.0);
    EXPECT_GT(model.interDelayFo4(s), 0.0);
    EXPECT_TRUE(std::isfinite(model.area(s).total()));
    EXPECT_TRUE(std::isfinite(model.energy(s).total()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostGridTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 32, 128, 512),
                       ::testing::Values(1, 2, 5, 10, 16, 64, 128)));

TEST(CostModelDeathTest, RejectsNonPositiveN)
{
    CostModel model;
    EXPECT_DEATH(model.derive(0), "at least one ALU");
}

} // namespace
} // namespace sps::vlsi
