#include "isa/fu_mix.h"

#include <gtest/gtest.h>

namespace sps::isa {
namespace {

TEST(FuMixTest, ImagineSixAluMixIsThreeTwoOne)
{
    FuMix m = mixFor(6);
    EXPECT_EQ(m.adders, 3);
    EXPECT_EQ(m.multipliers, 2);
    EXPECT_EQ(m.dsq, 1);
}

TEST(FuMixTest, PaperReferenceFiveAluMix)
{
    FuMix m = mixFor(5);
    EXPECT_EQ(m.adders, 3);
    EXPECT_EQ(m.multipliers, 2);
    EXPECT_EQ(m.dsq, 0);
}

TEST(FuMixTest, TwoAluClusterHasBothBasicUnits)
{
    FuMix m = mixFor(2);
    EXPECT_EQ(m.adders, 1);
    EXPECT_EQ(m.multipliers, 1);
    EXPECT_EQ(m.dsq, 0);
}

TEST(FuMixTest, SingleAluIsAnAdder)
{
    FuMix m = mixFor(1);
    EXPECT_EQ(m.adders, 1);
    EXPECT_EQ(m.multipliers, 0);
}

TEST(FuMixTest, NoDsqBelowSixAlus)
{
    for (int n = 1; n <= 5; ++n)
        EXPECT_EQ(mixFor(n).dsq, 0) << "N=" << n;
}

/** Property sweep over cluster sizes. */
class FuMixSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FuMixSweep, TotalsAndRatiosHold)
{
    int n = GetParam();
    FuMix m = mixFor(n);
    EXPECT_EQ(m.total(), n);
    EXPECT_GE(m.adders, 1);
    if (n >= 2) {
        EXPECT_GE(m.multipliers, 1);
    }
    if (n >= 6) {
        EXPECT_GE(m.dsq, 1);
        // Roughly one DSQ per six ALUs.
        EXPECT_LE(m.dsq, n / 4);
        // Adders outnumber multipliers (3:2 ratio).
        EXPECT_GE(m.adders, m.multipliers);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FuMixSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10,
                                           12, 14, 16, 24, 32, 64,
                                           128));

} // namespace
} // namespace sps::isa
